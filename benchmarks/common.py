"""Shared infrastructure for the experiment benchmarks.

Each ``benchmarks/test_eN_*.py`` regenerates one paper claim (see
DESIGN.md's experiment index).  The pytest-benchmark fixture times the
*simulation run* (wall clock); the scientific output is the simulated
metrics, which every benchmark prints as a table and appends to
``benchmarks/out/`` so EXPERIMENTS.md can cite them.
"""

from __future__ import annotations

import pathlib
import sys
from typing import Iterable, List, Sequence

OUT_DIR = pathlib.Path(__file__).parent / "out"

# The cluster/viewer scaffolding is shared with the test suite (PR 5);
# make ``tests`` importable even when pytest is invoked from this dir.
_REPO_ROOT = str(pathlib.Path(__file__).resolve().parent.parent)
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

from tests.helpers import booted_cluster, viewer_evening  # noqa: E402,F401


def report(experiment: str, title: str, headers: Sequence[str],
           rows: Iterable[Sequence], notes: str = "") -> str:
    """Format, print, and persist one experiment table."""
    rows = [list(r) for r in rows]
    widths = [len(str(h)) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(_fmt(cell)))
    lines: List[str] = [f"== {experiment}: {title} =="]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(_fmt(c).ljust(w) for c, w in zip(row, widths)))
    if notes:
        lines.append(f"note: {notes}")
    text = "\n".join(lines)
    print("\n" + text)
    OUT_DIR.mkdir(exist_ok=True)
    out = OUT_DIR / f"{experiment.lower()}.txt"
    out.write_text(text + "\n")
    return text


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def once(benchmark, fn, *args, **kwargs):
    """Run an expensive simulation exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
