"""E3 -- Resource-recovery mechanism comparison (paper sections 7.1, 7.2.1).

Paper: duration time-outs leaked so badly that "resource leakage began
to make the system unusable"; short leases were "discarded because of
concerns about scaling ... this approach could consume too much network
bandwidth"; the RAS was chosen "because we believed that it would scale
best ... it requires only a small number of network messages to monitor
clients and notify services of their failure."

Series to regenerate: messages consumed by each mechanism as the client
population grows (RAS flat in clients, leases/pings linear), plus the
leakage/false-revocation table that killed duration time-outs.
"""

import pytest

from repro.core.ras.alternatives import make_all
from repro.sim import Kernel
from repro.sim.rand import SeededRandom

from common import once, report

HOLD_MEAN = 120.0        # movies are held a long time (section 7.1)
CRASH_FRACTION = 0.1     # developers crash clients constantly
RUN_SECONDS = 600.0


def run_workload(mechanism, kernel, clients: int, resources_per_client: int,
                 seed: int):
    """Grant/release/crash churn driven against one mechanism."""
    rng = SeededRandom(seed)
    step = 5.0
    t = 0.0
    kernel._now = 0.0  # each mechanism replays the identical timeline
    active = []
    counter = [0]
    while t < RUN_SECONDS:
        kernel._now = t
        # arrivals: keep ~clients sessions live
        while len(active) < clients:
            client = f"client-{counter[0]}"
            counter[0] += 1
            holds = []
            for r in range(resources_per_client):
                resource = f"{client}/res-{r}"
                mechanism.grant(client, resource, HOLD_MEAN)
                holds.append(resource)
            ends_at = t + rng.expovariate(1.0 / HOLD_MEAN)
            crashes = rng.random() < CRASH_FRACTION
            active.append({"client": client, "holds": holds,
                           "ends_at": ends_at, "crashes": crashes})
        # departures
        for session in list(active):
            if session["ends_at"] <= t:
                active.remove(session)
                if session["crashes"]:
                    mechanism.client_crashed(session["client"])
                else:
                    for resource in session["holds"]:
                        mechanism.release(resource)
        mechanism.run(t)
        t += step
    kernel._now = RUN_SECONDS
    mechanism.run(RUN_SECONDS)
    return mechanism.stats.summary()


def compare(clients: int, servers: int = 3, resources_per_client: int = 2):
    kernel = Kernel()
    rows = []
    for mech in make_all(kernel, servers=servers, granting_services=2):
        stats = run_workload(mech, kernel, clients, resources_per_client,
                             seed=42)
        rows.append((mech.name, clients, stats["messages"],
                     stats["leak_seconds"], stats["false_revocations"]))
    return rows


@pytest.mark.benchmark(group="e3")
def test_e3_message_scaling(benchmark):
    def run():
        all_rows = []
        for clients in (50, 200, 800):
            all_rows.extend(compare(clients))
        return all_rows

    rows = once(benchmark, run)
    report("E3", "recovery mechanisms: messages & leakage vs clients "
           "(sections 7.1/7.2.1)",
           ["mechanism", "clients", "messages", "leak_res_s", "false_revoke"],
           rows,
           notes="RAS messages are flat in clients; leases/pings grow "
                 "linearly; duration timeouts leak")
    by = {(r[0], r[1]): r for r in rows}

    # RAS message count is independent of the client population.
    assert by[("ras", 50)][2] == by[("ras", 800)][2]
    # Leases and per-service pings grow roughly linearly with clients.
    assert by[("short-lease", 800)][2] > 8 * by[("short-lease", 50)][2]
    assert by[("per-service-tracking", 800)][2] > \
        8 * by[("per-service-tracking", 50)][2]
    # At trial scale the RAS is the cheapest failure-detecting mechanism.
    assert by[("ras", 800)][2] < by[("short-lease", 800)][2]
    assert by[("ras", 800)][2] < by[("per-service-tracking", 800)][2]
    # Duration timeouts: zero messages but they leak for ~the estimate
    # and revoke healthy long-running clients.
    dt = by[("duration-timeout", 800)]
    assert dt[2] == 0
    assert dt[3] > by[("ras", 800)][3] * 3
    assert dt[4] > 0


@pytest.mark.benchmark(group="e3")
def test_e3_lease_interval_tradeoff(benchmark):
    """Section 7.1 on short leases: "The allocation interval must be kept
    short enough to prevent too much resource leakage.  However, short
    intervals mean numerous reallocation requests." -- the two curves
    that killed the design."""

    def run():
        from repro.core.ras.alternatives import ShortLease
        rows = []
        for lease in (2.0, 10.0, 60.0, 300.0):
            kernel = Kernel()
            mech = ShortLease(kernel, lease=lease)
            stats = run_workload(mech, kernel, clients=200,
                                 resources_per_client=2, seed=11)
            rows.append((lease, stats["messages"], stats["leak_seconds"]))
        return rows

    rows = once(benchmark, run)
    report("E3c", "short-lease interval trade-off (section 7.1)",
           ["lease_s", "messages", "leak_res_s"], rows,
           notes="short leases: message storm; long leases: leakage -- "
                 "no good setting exists, hence the RAS")
    by = {lease: (messages, leak) for lease, messages, leak in rows}
    # Messages fall ~linearly with the lease interval...
    assert by[2.0][0] > 4 * by[10.0][0]
    assert by[10.0][0] > 4 * by[60.0][0]
    # ...while leakage grows with it.
    assert by[300.0][1] > 3 * by[10.0][1]
    # And even the paper-scale 10s lease costs far more than the RAS
    # (1,574 messages for this workload, from E3).
    assert by[10.0][0] > 10_000


@pytest.mark.benchmark(group="e3")
def test_e3_ras_scales_with_servers_squared(benchmark):
    """Section 7.2.1: "The only network messages exchanged are between
    the RAS instances" -- a full mesh, so cost grows with servers^2, not
    with clients."""

    def run():
        rows = []
        for servers in (2, 4, 8):
            kernel = Kernel()
            from repro.core.ras.alternatives import RASStyle
            mech = RASStyle(kernel, servers=servers, granting_services=2)
            stats = run_workload(mech, kernel, clients=100,
                                 resources_per_client=2, seed=7)
            rows.append((servers, stats["messages"]))
        return rows

    rows = once(benchmark, run)
    report("E3b", "RAS mesh cost vs cluster size",
           ["servers", "messages"], rows)
    msgs = {servers: messages for servers, messages in rows}
    # servers^2 shape: 4 servers ~ (4*3)/(2*1) = 6x the 2-server mesh.
    ratio = msgs[4] / msgs[2]
    assert 4.0 <= ratio <= 8.0
    ratio = msgs[8] / msgs[4]
    assert 3.5 <= ratio <= 6.0
