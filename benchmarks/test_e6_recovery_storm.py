"""E6 -- Recovery storms (paper section 8.2).

Paper: "If a popular service crashes, many clients may invoke the name
service at once to ask for a new object.  Because the resolve operation
is quite fast, we do not expect this to be a problem.  If performance
difficulties arise, we can modify the library routine to back off when
repeating requests for a new service object."

We regenerate both halves: the resolve spike when a popular service's
clients all rebind at once (no backoff), and the flattened spike with
the library backoff enabled -- with every client recovering in both
modes.
"""

import pytest

from repro.cluster import build_cluster
from repro.core.control.ssc import ssc_ref
from repro.core.params import Params
from repro.core.rebind import RebindingProxy
from repro.sim.rand import SeededRandom

from common import once, report
from tests.helpers import PingService

N_CLIENTS = 60


def run_storm(rebind_backoff: float, seed: int = 6001):
    params = Params(rebind_backoff=rebind_backoff)
    cluster = build_cluster(n_servers=3, params=params, seed=seed)
    cluster.registry.register("ping", PingService)
    admin = cluster.client_on(cluster.servers[0], name="e6-admin")
    cluster.run_async(admin.runtime.invoke(
        ssc_ref(cluster.servers[0].ip), "startService", ("ping",)))
    target = f"svc/ping/{cluster.servers[0].ip}"
    assert cluster.settle(extra_names=[target])

    rng = SeededRandom(seed)
    proxies = []
    outcomes = {"ok": 0, "fail": 0}

    async def client_loop(proxy):
        # Steady state: everyone holds a cached reference.
        while True:
            try:
                await proxy.call("ping", timeout=2.0)
            except Exception:  # noqa: BLE001
                outcomes["fail"] += 1
                return
            await cluster.kernel.sleep(1.0)

    # Clients live on settops -- the real storm population, with real
    # uplink latency (50 kbit/s, section 3.1) pacing their retries.
    from repro.core.naming.client import NameClient
    from repro.ocs.runtime import OCSRuntime
    for i in range(N_CLIENTS):
        nbhd = cluster.neighborhoods[i % len(cluster.neighborhoods)]
        settop = cluster.add_settop(nbhd)
        proc = settop.spawn("storm-client")
        runtime = OCSRuntime(proc, cluster.net)
        names = NameClient(runtime, cluster.server_ips, params)
        proxy = RebindingProxy(runtime, names, target,
                               params, rng=rng.stream(f"c{i}"),
                               give_up_after=120.0)
        proxies.append(proxy)
        cluster.kernel.create_task(client_loop(proxy))
    cluster.run_for(10.0)  # all clients warm their cached references
    assert all(p.ref is not None for p in proxies)

    resolve_counts = []  # per-second resolve totals across NS replicas

    def total_resolves():
        total = 0
        for host in cluster.servers:
            proc = host.find_process("ns")
            if proc is not None and "ns_replica" in proc.attachments:
                total += proc.attachments["ns_replica"].resolves_served
        return total

    # Crash the popular service; the SSC restarts it ~1 s later and every
    # client storms the name service for a fresh reference.
    before = total_resolves()
    cluster.kill_service(0, "ping")
    last = before
    for _second in range(40):
        cluster.run_for(1.0)
        now_total = total_resolves()
        resolve_counts.append(now_total - last)
        last = now_total
    recovered = sum(1 for p in proxies if p.rebinds >= 1 and p.ref is not None)
    return {
        "peak_resolves_per_s": max(resolve_counts),
        "total_resolves": last - before,
        "recovered": recovered,
        "failed": outcomes["fail"],
    }


@pytest.mark.benchmark(group="e6")
def test_e6_storm_without_backoff(benchmark):
    result = once(benchmark, run_storm, 0.0)
    report("E6", "recovery storm, immediate re-resolve (section 8.2)",
           ["clients", "peak_resolves_per_s", "recovered", "failed"],
           [(N_CLIENTS, result["peak_resolves_per_s"],
             result["recovered"], result["failed"])],
           notes="resolve is fast, so the storm is absorbed -- the paper's "
                 "expectation")
    # The storm exists: a large fraction of the population re-resolves
    # within one second of the restart.
    assert result["peak_resolves_per_s"] >= N_CLIENTS * 0.5
    # And it is absorbed: everyone recovers.
    assert result["recovered"] == N_CLIENTS
    assert result["failed"] == 0


@pytest.mark.benchmark(group="e6")
def test_e6_backoff_flattens_the_spike(benchmark):
    def run():
        no_backoff = run_storm(0.0, seed=6002)
        with_backoff = run_storm(8.0, seed=6002)
        return no_backoff, with_backoff

    no_backoff, with_backoff = once(benchmark, run)
    report("E6b", "library backoff vs storm peak (section 8.2)",
           ["mode", "peak_resolves_per_s", "recovered"],
           [("immediate", no_backoff["peak_resolves_per_s"],
             no_backoff["recovered"]),
            ("backoff 8s+/-50%", with_backoff["peak_resolves_per_s"],
             with_backoff["recovered"])])
    # Backoff spreads the herd: the peak drops by at least 2x.
    assert (with_backoff["peak_resolves_per_s"]
            <= no_backoff["peak_resolves_per_s"] / 2)
    # Without losing anyone.
    assert with_backoff["recovered"] == N_CLIENTS
