"""E1 -- Response time (paper section 9.3).

Paper: "various constraints (notably a download bandwidth of 1 MByte per
second) lead to a start-up time of 2-4 seconds for [rich] applications.
...  Our applications are able to display cover within 0.5 seconds."

We regenerate the series: application start time vs binary size on the
settop downlink, with the cover latency alongside.  Shape to hold:
start-up lands in the 2-4 s band for the 1.5-3 MB binaries, and cover at
0.5 s always beats the download.
"""

import pytest

from repro.cluster.media import DEFAULT_APPS

from common import booted_cluster, once, report


def run_app_starts():
    cluster, (stk,) = booted_cluster(n_servers=3, seed=1001,
                                     neighborhoods=[1])
    rows = []
    # Tune through every application twice; second visits measure a warm
    # name cache (the paper's steady state).
    channels = {"navigator": "navigator", "vod": 5, "shopping": 6, "game": 7}
    order = ["vod", "shopping", "game", "navigator", "vod", "shopping",
             "game"]
    seen = set()
    for app in order:
        cluster.run_async(stk.app_manager.tune(channels[app]))
        t = stk.app_manager.last_tune
        if t["app"] != app or app in seen:
            continue
        seen.add(app)
        rows.append((app, t["bytes"], t["cover_at"], t["download_time"],
                     t["total_time"]))
        cluster.run_for(2.0)
    return sorted(rows, key=lambda r: r[1])


@pytest.mark.benchmark(group="e1")
def test_e1_app_start_times(benchmark):
    rows = once(benchmark, run_app_starts)
    report("E1", "application start-up vs size (section 9.3)",
           ["app", "bytes", "cover_s", "download_s", "total_s"], rows,
           notes="paper: 2-4s start for rich apps; cover within 0.5s")
    assert len(rows) == len(DEFAULT_APPS)
    for app, size, cover, download, total in rows:
        # Cover always beats the download (the user sees a response).
        assert cover == 0.5
        assert cover < download
        # The rich apps (>=1.5 MB) land in the paper's 2-4s band (we allow
        # ~0.5s of slack for protocol overheads at the top end).
        assert 1.5 <= download <= 4.5, (app, download)
    sizes = [r[1] for r in rows]
    downloads = [r[3] for r in rows]
    # Monotone: bigger binaries take longer (bandwidth-bound).
    assert downloads == sorted(downloads)
    # Throughput implied is the settop downlink, not the server or FDDI.
    implied_bps = 8 * sizes[-1] / downloads[-1]
    assert implied_bps <= 6_500_000


@pytest.mark.benchmark(group="e1")
def test_e1_concurrent_downloads_share_downlink(benchmark):
    """Two settops downloading at once do not slow each other: the cap is
    per settop (section 3.1), not shared."""

    def run():
        cluster, (a, b) = booted_cluster(n_servers=3, seed=1002,
                                         neighborhoods=[1, 1])
        times = {}

        async def tune(stk, tag):
            await stk.app_manager.tune(7)   # 3 MB game app
            times[tag] = stk.app_manager.last_tune["download_time"]

        cluster.kernel.create_task(tune(a, "a"))
        cluster.kernel.create_task(tune(b, "b"))
        cluster.run_for(30.0)
        return times

    times = once(benchmark, run)
    report("E1b", "concurrent downloads, separate settop downlinks",
           ["settop", "download_s"], sorted(times.items()))
    assert len(times) == 2
    for t in times.values():
        assert t <= 5.5
