"""A4 -- Ablation: the cost of *not* replicating MMS state (section 9.4).

Paper: "we chose not to provide support for state replication ...  The
volatile state of the MMS can be reconstructed by querying each MDS in
the cluster" -- the design trade is fail-over-time cost (a promoted
backup must rebuild) against steady-state simplicity (no update
shipping).

Regenerated series: state-rebuild time and completeness for a promoted
MMS backup, vs the number of open sessions it must recover.  Shape: the
rebuild is a handful of RPCs (one listOpen per MDS replica), so its cost
is flat in sessions and negligible against the 25 s fail-over bound --
which is exactly why the authors could afford stateless recovery.
"""

import pytest

from repro.cluster import build_full_cluster
from repro.cluster.media import seed_default_content
from repro.core.control.tools import OperatorConsole
from repro.core.naming.client import NameClient
from repro.core.params import Params
from repro.ocs.runtime import OCSRuntime, allocate_port

from common import once, report


def run_recovery(n_sessions: int, seed: int):
    params = Params(mds_disk_streams=max(20, n_sessions))
    cluster = build_full_cluster(n_servers=3, params=params, seed=seed)
    seed_default_content(cluster, copies=3)
    titles = ["T2", "Casablanca", "Sneakers", "Jurassic Park"]
    # One stream per settop (3 Mbit/s on a 6 Mbit/s downlink).
    for i in range(n_sessions):
        settop = cluster.add_settop(cluster.neighborhoods[i % 6])
        proc = settop.spawn("viewer")
        runtime = OCSRuntime(proc, cluster.net)
        names = NameClient(runtime, cluster.server_ips, params)

        async def open_one(runtime=runtime, names=names, i=i):
            mms = await names.resolve("svc/mms")
            await runtime.invoke(mms, "open",
                                 (titles[i % len(titles)], allocate_port()),
                                 timeout=15.0)

        cluster.kernel.create_task(open_one())
    cluster.run_for(30.0)

    client = cluster.client_on(cluster.servers[2], name="a4")

    async def status():
        ref = await client.names.resolve("svc/mms")
        return await client.runtime.invoke(ref, "status", ())

    before = cluster.run_async(status())
    assert before["sessions"] == n_sessions
    console = OperatorConsole(client.runtime, client.names, params)
    primary_ip = next(h.ip for h in cluster.servers
                      if h.name == before["host"])
    cluster.run_async(console.stop_service("mms", primary_ip))
    t_fail = cluster.now
    # Wait for the backup's promotion + recovery trace events.
    while cluster.now - t_fail < 2 * params.max_failover:
        cluster.run_for(0.5)
        promoted = [e for e in cluster.trace.select("mms", "promoted")
                    if e.time > t_fail]
        recovered = [e for e in cluster.trace.select("mms", "state_recovered")
                     if e.time > t_fail]
        if promoted and recovered:
            break
    after = cluster.run_async(status())
    rebuild_time = recovered[0].time - promoted[0].time
    return {"sessions": n_sessions,
            "failover_s": promoted[0].time - t_fail,
            "rebuild_s": rebuild_time,
            "recovered": after["sessions"]}


@pytest.mark.benchmark(group="a4")
def test_a4_stateless_recovery_cost(benchmark):
    def run():
        return [run_recovery(n, seed=16000 + n) for n in (4, 12, 24)]

    rows_data = once(benchmark, run)
    rows = [(d["sessions"], round(d["failover_s"], 1),
             round(d["rebuild_s"], 3), d["recovered"]) for d in rows_data]
    report("A4", "MMS stateless recovery cost vs open sessions "
           "(section 9.4/10.1.1)",
           ["sessions", "failover_s", "rebuild_s", "sessions_recovered"],
           rows,
           notes="rebuild = one listOpen per MDS; negligible against the "
                 "fail-over bound, which is why stateless recovery sufficed")
    for d in rows_data:
        # Full recovery, every time.
        assert d["recovered"] == d["sessions"]
        # The rebuild itself is sub-second -- dwarfed by the bind race.
        assert d["rebuild_s"] < 1.0
        assert d["failover_s"] <= Params().max_failover + 3.0
    # Flat in sessions: 6x the sessions costs < 3x the rebuild time.
    assert rows_data[2]["rebuild_s"] < 3 * max(rows_data[0]["rebuild_s"],
                                               0.01)
