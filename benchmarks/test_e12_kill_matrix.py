"""E12 -- The kill matrix: every service, killed under live load.

Section 9.5's strongest claim is universal: availability "was a
requirement for all services, and not just for key system components",
and "most failures of services and settop programs ... were covered with
only a very brief interruption".  The matrix makes that claim total: for
*each* of the sixteen server-side services in turn, kill every replica
during an active viewing session and verify the system returns to full
service.
"""

import pytest

from repro.cluster import build_full_cluster

from common import once, report

ALL_SERVICES = ["auth", "boot", "cmgr", "csc", "db", "fileservice", "game",
                "kbs", "mds", "mms", "ns", "ras", "rds", "settopmgr",
                "shopping", "vod"]


def kill_one_service_everywhere(service: str, seed: int):
    cluster = build_full_cluster(n_servers=3, seed=seed)
    stk = cluster.add_settop_kernel(1)
    assert cluster.boot_settops([stk])
    cluster.run_async(stk.app_manager.tune(5))
    vod = stk.app_manager.current_app
    cluster.run_async(vod.play("T2"))
    cluster.run_for(5.0)
    chunks_before = vod.chunks_received

    killed = 0
    for i in range(3):
        if cluster.kill_service(i, service):
            killed += 1
    # Give restarts, elections, and fail-overs time to complete.
    cluster.run_for(2 * cluster.params.max_failover)

    # Verdicts: stream still (or again) flowing, and the service answers.
    streaming = vod.chunks_received > chunks_before and (
        vod.playing or vod.finished)
    restarted = sum(
        1 for host in cluster.servers
        if host.find_process(service) is not None) >= (1 if killed else 0)
    # End-to-end check: a fresh movie open exercises naming, cmgr, mds,
    # mms, ras together.
    cluster.run_async(vod.stop())
    try:
        cluster.run_async(vod.play("Casablanca"))
        cluster.run_for(5.0)
        reopen_ok = vod.playing
    except Exception:  # noqa: BLE001
        reopen_ok = False
    return {"service": service, "killed": killed, "streaming": streaming,
            "restarted": restarted, "reopen_ok": reopen_ok}


@pytest.mark.benchmark(group="e12")
def test_e12_every_service_survivable(benchmark):
    def run():
        return [kill_one_service_everywhere(svc, seed=15000 + i)
                for i, svc in enumerate(ALL_SERVICES)]

    rows_data = once(benchmark, run)
    rows = [(d["service"], d["killed"], d["streaming"], d["restarted"],
             d["reopen_ok"]) for d in rows_data]
    report("E12", "kill matrix: every service killed during playback "
           "(section 9.5)",
           ["service", "replicas_killed", "stream_survived", "restarted",
            "reopen_ok"], rows,
           notes="availability designed into all services, not just key ones")
    failures = [d for d in rows_data
                if not (d["streaming"] and d["restarted"] and d["reopen_ok"])]
    assert failures == [], failures
    # Every service actually had replicas to kill.
    assert all(d["killed"] >= 1 for d in rows_data)
