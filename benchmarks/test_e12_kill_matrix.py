"""E12 -- The kill matrix: every service, killed under live load.

Section 9.5's strongest claim is universal: availability "was a
requirement for all services, and not just for key system components",
and "most failures of services and settop programs ... were covered with
only a very brief interruption".  The matrix makes that claim total: for
*each* of the sixteen server-side services in turn, kill every replica
during active viewing and verify the system returns to full service.

Since PR 3 each matrix row is a :class:`repro.chaos.FaultSchedule`
replayed by the chaos engine: the kills are trace-logged fault records,
the verdict is the full invariant-monitor catalog (one CSC primary,
name-service agreement, audit convergence, settops served again, no
leaked Futures) instead of hand-rolled checks, and every row carries a
replayable trace digest.
"""

import pytest

from repro.chaos import Fault, FaultSchedule, run_schedule
from repro.core.params import Params

from common import once, report

ALL_SERVICES = ["auth", "boot", "cmgr", "csc", "db", "fileservice", "game",
                "kbs", "mds", "mms", "ns", "ras", "rds", "settopmgr",
                "shopping", "vod"]

#: kills land shortly after viewers are rolling; the horizon leaves one
#: full fail-over bound of disturbed operation before the heal + quiesce.
KILL_AT = 15.0
HORIZON = 70.0


def kill_matrix_schedule(service: str, n_servers: int = 3) -> FaultSchedule:
    """Kill every replica of ``service``, one server per second."""
    faults = tuple(
        Fault(KILL_AT + i, "kill_service", {"server": i, "service": service})
        for i in range(n_servers))
    return FaultSchedule(faults=faults, horizon=HORIZON)


def kill_one_service_everywhere(service: str, seed: int):
    schedule = kill_matrix_schedule(service)
    # Matrix rows are short; a trimmed settle keeps 16 rows affordable
    # while still covering 3x the paper's 25 s fail-over bound.
    params = Params().with_overrides(chaos_settle_slack=15.0)
    result = run_schedule(schedule, seed, settops=2, params=params)
    downtime = max((s["downtime"] for s in result.availability.values()),
                   default=0.0)
    return {"service": service, "killed": result.procs_killed,
            "ok": result.ok, "viewer_ops": result.viewer_ops,
            "max_downtime": downtime,
            "monitors": result.violated_monitors(),
            "digest": result.digest[:16]}


@pytest.mark.benchmark(group="e12")
def test_e12_every_service_survivable(benchmark):
    def run():
        return [kill_one_service_everywhere(svc, seed=15000 + i)
                for i, svc in enumerate(ALL_SERVICES)]

    rows_data = once(benchmark, run)
    rows = [(d["service"], d["killed"], d["ok"], d["viewer_ops"],
             d["max_downtime"], d["digest"]) for d in rows_data]
    report("E12", "kill matrix: every service killed during playback "
           "(section 9.5), judged by the chaos invariant monitors",
           ["service", "replicas_killed", "invariants_ok", "viewer_ops",
            "max_downtime_s", "trace_digest"], rows,
           notes="availability designed into all services, not just key "
                 "ones; each row is a replayable repro.chaos schedule")
    failures = [d for d in rows_data if not d["ok"]]
    assert failures == [], failures
    # Every service actually had replicas to kill.
    assert all(d["killed"] >= 1 for d in rows_data)
