"""E5 -- Availability under failure injection (paper sections 3.5, 9.5).

Paper: "Most failures of services and settop programs (and there were
many during debugging) were covered with only a very brief
interruption."  And section 9.5's debugging workflow: kill a service
with a corrected binary in place and "clients using the service see no
disruption".

We regenerate the table: for each injected failure class, whether the
viewer's session survived and how long the interruption was, plus
overall availability of the viewing capability across a crash-heavy run.
"""

import pytest

from repro.cluster import build_full_cluster
from repro.metrics.availability import AvailabilityTimeline

from common import once, report


def viewer(cluster, neighborhood=1):
    stk = cluster.add_settop_kernel(neighborhood)
    assert cluster.boot_settops([stk])
    cluster.run_async(stk.app_manager.tune(5))
    return stk, stk.app_manager.current_app


def pumping_mds_index(cluster):
    for i, host in enumerate(cluster.servers):
        proc = host.find_process("mds")
        if proc is not None and any("pump" in t.name for t in proc._tasks):
            return i
    return None


def run_failure_campaign(seed=5001):
    """Inject each section 3.5 failure against a live movie session."""
    rows = []

    # -- MDS process crash (3.5.2): SSC restarts it, app reopens ------
    cluster = build_full_cluster(n_servers=3, seed=seed)
    stk, vod = viewer(cluster)
    cluster.run_async(vod.play("T2"))
    cluster.run_for(10.0)
    victim = pumping_mds_index(cluster)
    pos = vod.position
    cluster.kill_service(victim, "mds")
    t0 = cluster.now
    recovered = False
    while cluster.now - t0 < 120.0:
        cluster.run_for(1.0)
        if vod.playing and vod.interruptions:
            recovered = True
            break
    outage = vod.interruptions[-1]["outage"] if vod.interruptions else None
    rows.append(("mds process crash", recovered,
                 round(outage, 1) if outage else "-",
                 vod.position >= pos - 1.0))

    # -- MDS server crash (3.5.2): reopen on another replica -----------
    cluster = build_full_cluster(n_servers=3, seed=seed + 1)
    stk, vod = viewer(cluster, neighborhood=2)
    cluster.run_async(vod.play("T2"))
    cluster.run_for(10.0)
    victim = pumping_mds_index(cluster)
    pos = vod.position
    cluster.crash_server(victim)
    t0 = cluster.now
    recovered = False
    while cluster.now - t0 < 180.0:
        cluster.run_for(1.0)
        if vod.playing and vod.interruptions:
            recovered = True
            break
    outage = vod.interruptions[-1]["outage"] if vod.interruptions else None
    rows.append(("mds server crash", recovered,
                 round(outage, 1) if outage else "-",
                 vod.position >= pos - 1.0))

    # -- MMS process crash (3.5.3): SSC restart + state recovery -------
    cluster = build_full_cluster(n_servers=3, seed=seed + 2)
    stk, vod = viewer(cluster)
    cluster.run_async(vod.play("Casablanca"))
    cluster.run_for(5.0)
    chunks0 = vod.chunks_received
    for i in range(3):
        cluster.kill_service(i, "mms")
    cluster.run_for(40.0)
    # Data path is independent of the MMS: playback never stops.
    uninterrupted = (vod.chunks_received - chunks0) >= 40
    client = cluster.client_on(cluster.servers[2], name="e5")

    async def sessions():
        ref = await client.names.resolve("svc/mms")
        return await client.runtime.invoke(ref, "status", ())

    status = cluster.run_async(sessions())
    rows.append(("mms crash (+state recovery)",
                 uninterrupted and status["sessions"] == 1, 0.0, True))

    # -- debugging workflow (9.5): kill+restart every base service ------
    cluster = build_full_cluster(n_servers=3, seed=seed + 3)
    stk, vod = viewer(cluster)
    cluster.run_async(vod.play("Sneakers"))
    cluster.run_for(5.0)
    for svc in ("rds", "vod", "shopping", "game", "settopmgr"):
        for i in range(3):
            cluster.kill_service(i, svc)
    cluster.run_for(30.0)
    ok = vod.playing and not vod.interruptions
    rows.append(("kill/restart 5 services under play", ok, 0.0, True))

    return rows


def run_crash_heavy_session(seed=5100):
    """A long viewing session with repeated MDS kills: availability."""
    cluster = build_full_cluster(n_servers=3, seed=seed)
    stk, vod = viewer(cluster)
    cluster.run_async(vod.play("Jurassic Park"))   # 280 s
    timeline = AvailabilityTimeline(cluster.kernel)
    session_start = cluster.now
    kills = 0
    while cluster.now - session_start < 240.0 and not vod.finished:
        cluster.run_for(40.0)
        victim = pumping_mds_index(cluster)
        if victim is None:
            continue
        cluster.kill_service(victim, "mds")
        kills += 1
        timeline.mark_down()
        t0 = cluster.now
        while cluster.now - t0 < 60.0:
            cluster.run_for(1.0)
            if vod.playing:
                timeline.mark_up()
                break
    return kills, timeline.summary(), vod


@pytest.mark.benchmark(group="e5")
def test_e5_failure_scenarios_covered(benchmark):
    rows = once(benchmark, run_failure_campaign)
    report("E5", "section 3.5 failure coverage (section 9.5)",
           ["scenario", "covered", "interruption_s", "position_kept"], rows,
           notes="paper: failures covered with only a very brief interruption")
    for scenario, covered, _outage, position_kept in rows:
        assert covered, f"{scenario} not covered"
        assert position_kept, f"{scenario} lost play position"
    # Process-grain failures interrupt for seconds, not minutes.
    proc_outage = rows[0][2]
    assert isinstance(proc_outage, float) and proc_outage <= 15.0


@pytest.mark.benchmark(group="e5")
def test_e5_availability_under_repeated_crashes(benchmark):
    kills, summary, vod = once(benchmark, run_crash_heavy_session)
    report("E5b", "viewing availability under repeated MDS kills",
           ["mds_kills", "outages", "downtime_s", "availability",
            "longest_outage_s"],
           [(kills, summary["outages"], summary["downtime"],
             summary["availability"], summary["longest_outage"])])
    assert kills >= 3
    assert summary["availability"] >= 0.90
    assert summary["longest_outage"] <= 20.0
