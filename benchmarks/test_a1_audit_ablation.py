"""A1 -- Ablation: SSC callbacks vs pinging service objects (section 7.2).

Paper: "We originally tracked the state of service objects by
periodically pinging them.  If the object failed to respond within a few
seconds, it was declared to be dead.  However, we found that many
single-threaded services were not able to respond to pings in a timely
manner. ... we chose to use callbacks from the Service Controller."

The ablation runs both auditors against the same pair of services -- one
multi-threaded, one single-threaded and busy -- and counts false death
verdicts.  The ping-based auditor wrongly kills the busy single-threaded
service; the SSC-callback scheme never does.
"""

import pytest

from repro.cluster import build_cluster
from repro.core.control.ssc import ssc_ref
from repro.idl import register_interface
from repro.ocs import CallTimeout, OCSRuntime, ServiceUnavailable
from repro.services.base import Service

from common import once, report

register_interface("BusyWorker", {
    "ping": (),
    "churn": ("seconds",),
}, doc="ablation A1 workload service")


class _WorkerServant:
    def __init__(self, svc):
        self._svc = svc

    async def ping(self, ctx):
        return "pong"

    async def churn(self, ctx, seconds):
        # A long CPU/disk-bound request: a single-threaded service cannot
        # answer pings until it finishes.
        await self._svc.kernel.sleep(seconds)
        return "done"


class SingleThreadedWorker(Service):
    service_name = "stworker"

    async def start(self):
        self.ref = self.runtime.export(_WorkerServant(self), "BusyWorker",
                                       single_threaded=True)
        await self.register_objects([self.ref])
        await self.bind_as_replica("stworker", self.host.ip, self.ref,
                                   selector="sameserver")


class MultiThreadedWorker(Service):
    service_name = "mtworker"

    async def start(self):
        self.ref = self.runtime.export(_WorkerServant(self), "BusyWorker")
        await self.register_objects([self.ref])
        await self.bind_as_replica("mtworker", self.host.ip, self.ref,
                                   selector="sameserver")


async def ping_based_verdicts(cluster, client, refs, rounds, ping_timeout=3.0):
    """The rejected design: ping the object, declare dead on timeout."""
    verdicts = {ref: "alive" for ref in refs}
    for _ in range(rounds):
        for ref in refs:
            try:
                await client.runtime.invoke(ref, "ping", (),
                                            timeout=ping_timeout)
            except (CallTimeout, ServiceUnavailable):
                verdicts[ref] = "dead"
        await cluster.kernel.sleep(5.0)
    return verdicts


async def ssc_based_verdicts(cluster, client, refs):
    """The chosen design: ask the local RAS (fed by SSC callbacks)."""
    ras = await client.names.resolve("svc/ras")
    statuses = await client.runtime.invoke(ras, "checkStatus", (refs,))
    return dict(zip(refs, statuses))


def run_ablation(seed=11001):
    cluster = build_cluster(n_servers=2, seed=seed)
    cluster.registry.register("stworker", SingleThreadedWorker)
    cluster.registry.register("mtworker", MultiThreadedWorker)
    client = cluster.client_on(cluster.servers[0], name="a1")
    for svc in ("stworker", "mtworker"):
        cluster.run_async(client.runtime.invoke(
            ssc_ref(cluster.servers[0].ip), "startService", (svc,)))
    assert cluster.settle(extra_names=[
        f"svc/stworker/{cluster.servers[0].ip}",
        f"svc/mtworker/{cluster.servers[0].ip}"])
    st_ref = cluster.run_async(client.names.resolve(
        f"svc/stworker/{cluster.servers[0].ip}"))
    mt_ref = cluster.run_async(client.names.resolve(
        f"svc/mtworker/{cluster.servers[0].ip}"))

    # Put both services under long-request load.
    load_client = cluster.client_on(cluster.servers[1], name="load")

    async def load(ref):
        while True:
            try:
                await load_client.runtime.invoke(ref, "churn", (30.0,),
                                                 timeout=120.0)
            except ServiceUnavailable:
                await cluster.kernel.sleep(1.0)

    cluster.kernel.create_task(load(st_ref))
    cluster.kernel.create_task(load(mt_ref))
    cluster.run_for(5.0)

    ping_verdicts = cluster.run_async(
        ping_based_verdicts(cluster, client, [st_ref, mt_ref], rounds=3))
    ssc_verdicts = cluster.run_async(
        ssc_based_verdicts(cluster, client, [st_ref, mt_ref]))
    return {
        "ping": {"single-threaded": ping_verdicts[st_ref],
                 "multi-threaded": ping_verdicts[mt_ref]},
        "ssc": {"single-threaded": ssc_verdicts[st_ref],
                "multi-threaded": ssc_verdicts[mt_ref]},
    }


@pytest.mark.benchmark(group="a1")
def test_a1_ping_vs_ssc_callbacks(benchmark):
    result = once(benchmark, run_ablation)
    report("A1", "audit design ablation: ping vs SSC callbacks (section 7.2)",
           ["auditor", "single_threaded_busy", "multi_threaded_busy"],
           [("ping-based", result["ping"]["single-threaded"],
             result["ping"]["multi-threaded"]),
            ("ssc-callbacks", result["ssc"]["single-threaded"],
             result["ssc"]["multi-threaded"])],
           notes="both services are alive; 'dead' is a false verdict")
    # The rejected design falsely kills the busy single-threaded service.
    assert result["ping"]["single-threaded"] == "dead"
    assert result["ping"]["multi-threaded"] == "alive"
    # The chosen design is right about both.
    assert result["ssc"]["single-threaded"] == "alive"
    assert result["ssc"]["multi-threaded"] == "alive"
