"""A3 -- Extension: CSC auto-reassignment after server failure.

Paper sections 6.3 / 8.1 name this as unimplemented future work:
"Ultimately we expect the CSC to be able to automatically restart
services on other servers after a machine failure, but this is not yet
implemented.  In the current implementation, those services which have
replicas on other servers will continue to function.  Other services
will be unavailable until the server is restarted, or an operator
re-assigns them."

We implemented it behind ``csc_auto_reassign``.  The experiment kills
*both* servers hosting the MMS and the Kernel Broadcast Service: with
the flag off (the paper's deployment) the services stay down; with it
on, the CSC restarts them on survivors and movie opens work again.
"""

import pytest

from repro.cluster import build_full_cluster

from common import once, report


def run_case(auto_reassign: bool, seed=13001, window=180.0):
    cluster = build_full_cluster(
        n_servers=5, seed=seed,
        cluster_config={"csc_auto_reassign": auto_reassign,
                        "csc_reassign_grace": 20.0})
    client = cluster.client_on(cluster.servers[4], name="a3")

    async def mms_up():
        try:
            ref = await client.names.resolve("svc/mms")
            await client.runtime.invoke(ref, "openCount", ())
            return True
        except Exception:  # noqa: BLE001
            return False

    assert cluster.run_async(mms_up())
    # Both MMS/KBS hosts die (placement puts them on servers 0 and 1).
    cluster.crash_server(0)
    cluster.crash_server(1)
    t0 = cluster.now
    recovered_at = None
    while cluster.now - t0 < window:
        cluster.run_for(5.0)
        if cluster.run_async(mms_up()):
            recovered_at = cluster.now - t0
            break
    reassignments = 0
    for host in cluster.servers[2:]:
        proc = host.find_process("csc")
        if proc is None:
            continue
    reassignments = len(cluster.trace.select("csc", "auto_reassign"))
    return {"recovered_at": recovered_at, "reassignments": reassignments}


@pytest.mark.benchmark(group="a3")
def test_a3_auto_reassign_extension(benchmark):
    def run():
        off = run_case(False, seed=13002)
        on = run_case(True, seed=13002)
        return off, on

    off, on = once(benchmark, run)
    report("A3", "CSC auto-reassignment after losing both MMS servers "
           "(future work of sections 6.3/8.1)",
           ["mode", "mms_recovered_after_s", "auto_reassignments"],
           [("paper (off)", off["recovered_at"] or "never",
             off["reassignments"]),
            ("extension (on)", round(on["recovered_at"], 1),
             on["reassignments"])])
    # The deployed behaviour: without the extension, nothing brings the
    # MMS back inside the window ("unavailable until ... an operator
    # re-assigns them").
    assert off["recovered_at"] is None
    assert off["reassignments"] == 0
    # The extension recovers it: grace (20s) + restart + bind race.
    assert on["recovered_at"] is not None
    assert on["reassignments"] >= 1
    assert on["recovered_at"] <= 120.0
