"""E15 -- Population scale: binding cache keeps NS traffic sublinear.

Paper sections 5.1 / 9.6 claim the system scales to neighborhood-sized
settop populations because clients hold on to object references instead
of returning to the name service for every operation ("The AM only
contacts the name service for a reference to the RDS the first time",
section 3.4.2) and servers coalesce their load reports.

Series to regenerate: aggregate NS resolves served vs settop population
at a *fixed* server count (3 servers, 12 neighborhoods), with the
per-host binding cache on; plus uncached control rows at the endpoints.
With the cache, each settop costs ~one resolve ever (its first tune) so
growth is dominated by the constant cluster background (watchdogs,
audits, SSC loops) and the curve flattens; without it, every channel
change is a name-service round trip and growth is linear.
"""

import pytest

from repro.workloads.population import run_population

from common import once, report

SCALES = (500, 1000, 2000)
DURATION = 240.0
SEED = 3500


def population_rows() -> dict:
    cached = [run_population(settops=n, duration=DURATION, seed=SEED)
              for n in SCALES]
    control = [run_population(settops=n, duration=DURATION, seed=SEED,
                              cached=False)
               for n in (SCALES[0], SCALES[-1])]
    return {"cached": cached, "control": control}


@pytest.mark.benchmark(group="e15")
def test_e15_population_scale(benchmark):
    data = once(benchmark, population_rows)
    cached, control = data["cached"], data["control"]
    rows = [(r.settops, "yes" if r.cached else "no", r.ops, r.ns_resolves,
             round(r.resolves_per_settop, 2), round(r.hit_rate, 3),
             round(r.msgs_per_settop, 1))
            for r in cached + control]
    report("E15", "NS resolve traffic vs settop population (sections 5.1, 9.6)",
           ["settops", "cache", "viewer_ops", "ns_resolves",
            "resolves_per_settop", "hit_rate", "msgs_per_settop"],
           rows,
           notes="3 servers / 12 neighborhoods fixed; cached growth is the "
                 "constant background + one miss per settop")

    by_scale = {r.settops: r for r in cached}
    small, large = by_scale[SCALES[0]], by_scale[SCALES[-1]]

    # Acceptance floor: >= 2,000 simulated settops with hit rate >= 90%.
    assert large.settops >= 2000
    assert large.hit_rate >= 0.90
    assert all(r.hit_rate >= 0.90 for r in cached)
    # Healthy population: essentially no failed viewer ops.
    assert all(r.op_failures <= r.ops * 0.01 for r in cached)

    # Sublinearity: 4x the settops must cost well under 4x the resolves
    # (measured ~1.6x; the slack covers seed jitter).
    growth = large.ns_resolves / small.ns_resolves
    assert growth <= 2.5, f"cached NS resolve growth {growth:.2f}x for 4x settops"

    # The uncached control IS ~linear and strictly worse at every scale.
    # Compare marginal cost: NS resolves per *added* settop.  Cached,
    # each new settop costs ~1 resolve (its first tune); uncached it
    # costs one per tune (~13 at these think times).
    ctl = {r.settops: r for r in control}
    added = SCALES[-1] - SCALES[0]
    marginal = (large.ns_resolves - small.ns_resolves) / added
    ctl_marginal = (ctl[SCALES[-1]].ns_resolves
                    - ctl[SCALES[0]].ns_resolves) / added
    assert marginal <= 2.0, f"cached marginal cost {marginal:.2f}/settop"
    assert ctl_marginal >= 5.0 * marginal
    for n in (SCALES[0], SCALES[-1]):
        assert ctl[n].ns_resolves >= 2.0 * by_scale[n].ns_resolves
        assert ctl[n].msgs_per_settop > by_scale[n].msgs_per_settop
