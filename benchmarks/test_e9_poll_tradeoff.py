"""E9 -- RAS poll-interval trade-off (paper section 7.2.1 + 9.7).

Paper: "Currently, each RAS instance polls the others every five
seconds.  The time between polls is somewhat arbitrary and could be
increased to reduce the number of messages. ... because the RAS is used
by the name service to remove dead objects, polling intervals cannot
grow too high without adversely impacting fail-over speed."

Regenerated series: RAS poll interval vs (messages per second of RAS
traffic, measured fail-over time) -- the two curves cross in opposite
directions, which is the paper's point.
"""

import pytest

from repro.cluster import build_cluster
from repro.core.control.ssc import ssc_ref
from repro.core.params import Params

from common import once, report
from tests.helpers import PBPingService


def run_point(ras_poll: float, seed: int = 9001):
    params = Params(ras_peer_poll=ras_poll)
    cluster = build_cluster(n_servers=3, params=params, seed=seed)
    cluster.registry.register("pbping", PBPingService)
    client = cluster.client_on(cluster.servers[0], name="e9")
    for i in (0, 1):
        cluster.run_async(client.runtime.invoke(
            ssc_ref(cluster.servers[i].ip), "startService", ("pbping",)))
    assert cluster.settle(extra_names=["svc/pbping"])

    # Measure steady-state RAS message rates over a quiet window.  The
    # poll-scaled audit traffic (checkStatus) is what the paper's knob
    # controls; the SSC's coalesced load reports (PR 5) ride their own
    # fixed load_report_interval cadence, so they are accounted
    # separately rather than diluting the trade-off curve.
    window = 120.0
    before_polls = cluster.net.count_kind("rpc.call.RAS.checkStatus")
    before_reports = cluster.net.count_kind("rpc.call.RAS.reportLoad")
    cluster.run_for(window)
    ras_rate = (cluster.net.count_kind("rpc.call.RAS.checkStatus")
                - before_polls) / window
    report_rate = (cluster.net.count_kind("rpc.call.RAS.reportLoad")
                   - before_reports) / window

    # Then measure fail-over time (mean of 2 crashes).
    times = []
    for _ in range(2):
        ref = cluster.run_async(client.names.resolve("svc/pbping"))
        old = ref.ip
        cluster.run_async(client.runtime.invoke(
            ssc_ref(old), "stopService", ("pbping",)))
        t0 = cluster.now
        while cluster.now - t0 < 4 * params.max_failover + 30:
            cluster.run_for(0.5)
            try:
                ref = cluster.run_async(client.names.resolve("svc/pbping"))
            except Exception:  # noqa: BLE001
                continue
            if ref.ip != old:
                times.append(cluster.now - t0)
                break
        else:
            raise AssertionError("no fail-over")
        cluster.run_async(client.runtime.invoke(
            ssc_ref(old), "startService", ("pbping",)))
        cluster.run_for(5.0)
    return {"poll": ras_poll, "ras_msgs_per_s": ras_rate,
            "report_msgs_per_s": report_rate,
            "failover_s": sum(times) / len(times),
            "bound_s": params.max_failover}


@pytest.mark.benchmark(group="e9")
def test_e9_poll_interval_tradeoff(benchmark):
    def run():
        return [run_point(p) for p in (1.0, 5.0, 15.0, 30.0)]

    points = once(benchmark, run)
    report("E9", "RAS poll interval: messages vs fail-over (section 7.2.1)",
           ["poll_s", "poll_msgs_per_s", "report_msgs_per_s",
            "mean_failover_s", "bound_s"],
           [(p["poll"], round(p["ras_msgs_per_s"], 2),
             round(p["report_msgs_per_s"], 2),
             round(p["failover_s"], 1), p["bound_s"]) for p in points],
           notes="paper setting is 5s: cheap enough, fast enough; load "
                 "reports ride load_report_interval, not the poll knob")
    by = {p["poll"]: p for p in points}
    # Messages fall as the interval grows...
    assert by[1.0]["ras_msgs_per_s"] > by[5.0]["ras_msgs_per_s"] > \
        by[30.0]["ras_msgs_per_s"]
    # ...roughly inversely (5x interval -> ~1/5 the traffic, +-50%).
    ratio = by[1.0]["ras_msgs_per_s"] / by[5.0]["ras_msgs_per_s"]
    assert 2.5 <= ratio <= 7.5
    # The load-report channel is poll-invariant: same rate at every
    # point (it scales with load_report_interval instead).
    rates = [p["report_msgs_per_s"] for p in points]
    assert max(rates) - min(rates) <= 0.25 * max(rates)
    # ...while fail-over slows down.
    assert by[30.0]["failover_s"] > by[1.0]["failover_s"]
    # Every point respects its own analytic bound.
    for p in points:
        assert p["failover_s"] <= p["bound_s"] + 3.0
