"""E7 -- Name service replication behaviour (paper section 4.6).

Paper: "all updates are forwarded to the master, which serializes them
and multicasts them to the slaves.  Any name service replica can process
a resolve or list operation without contacting the master. ...  We
expect updates to the name space to be infrequent -- updates only occur
when services are started or restarted."

Regenerated series: (a) all updates serialize through one master no
matter which replica clients talk to; (b) election time after a master
crash; (c) steady-state update rate of a full idle cluster is ~zero
while reads keep flowing.
"""

import pytest

from repro.cluster import build_cluster, build_full_cluster
from repro.ocs.objref import ObjectRef

from common import once, report


def replica_of(cluster, host):
    proc = host.find_process("ns")
    return proc.attachments["ns_replica"] if proc else None


def make_ref(ip, port):
    return ObjectRef(ip=ip, port=port, incarnation=(0.0, 1),
                     type_id="NamingContext", object_id="x")


def run_update_serialization(seed=7001):
    cluster = build_cluster(n_servers=3, seed=seed)
    clients = [cluster.client_on(h, name=f"e7-{h.name}")
               for h in cluster.servers]
    cluster.run_async(clients[0].names.ensure_context("bench"))

    async def binder(client, tag, count):
        for i in range(count):
            await client.names.bind(f"bench/{tag}-{i}",
                                    make_ref(client.process.host.ip, i + 1))

    per_client = 40
    for i, client in enumerate(clients):
        cluster.kernel.create_task(binder(client, f"c{i}", per_client))
    cluster.run_for(30.0)
    replicas = [replica_of(cluster, h) for h in cluster.servers]
    masters = [r for r in replicas if r.role == "master"]
    rows = [(r.ip, r.role, r.store.applied_seq, r.updates_forwarded)
            for r in replicas]
    return rows, masters, per_client * len(clients)


def run_master_elections(crashes=3, seed=7002):
    cluster = build_cluster(n_servers=3, seed=seed)
    times = []
    for _ in range(crashes):
        replicas = {h.ip: replica_of(cluster, h) for h in cluster.servers
                    if replica_of(cluster, h) is not None}
        master_ip = next(ip for ip, r in replicas.items()
                         if r.role == "master")
        index = cluster.server_ips.index(master_ip)
        cluster.kill_service(index, "ns")
        t0 = cluster.now
        while cluster.now - t0 < 120.0:
            cluster.run_for(0.5)
            current = [replica_of(cluster, h) for h in cluster.servers
                       if h.find_process("ns") is not None]
            live_masters = [r for r in current
                            if r is not None and r.role == "master"
                            and r.process.alive]
            if live_masters and live_masters[0].ip != master_ip:
                times.append(cluster.now - t0)
                break
        else:
            raise AssertionError("no re-election within 120s")
        cluster.run_for(10.0)  # let the restarted replica rejoin
    return times


def run_steady_state(seed=7003, window=120.0):
    cluster = build_full_cluster(n_servers=3, seed=seed)
    stk = cluster.add_settop_kernel(1)
    assert cluster.boot_settops([stk])
    cluster.run_for(30.0)  # shake out start-up binds
    replicas = [replica_of(cluster, h) for h in cluster.servers]
    seq_before = max(r.store.applied_seq for r in replicas)
    reads_before = sum(r.resolves_served for r in replicas)
    cluster.run_for(window)
    seq_after = max(r.store.applied_seq for r in replicas)
    reads_after = sum(r.resolves_served for r in replicas)
    return {"updates": seq_after - seq_before,
            "reads": reads_after - reads_before, "window": window}


@pytest.mark.benchmark(group="e7")
def test_e7_updates_serialize_through_master(benchmark):
    rows, masters, total_updates = once(benchmark, run_update_serialization)
    report("E7", "update serialization through the master (section 4.6)",
           ["replica", "role", "applied_seq", "updates_forwarded"], rows)
    assert len(masters) == 1
    # Every replica converged to the same sequence, which covers all the
    # client updates (plus the start-up binds).
    seqs = {seq for _ip, _role, seq, _fwd in rows}
    assert len(seqs) == 1
    assert seqs.pop() >= total_updates
    # Slaves forwarded their clients' updates instead of applying locally.
    slave_rows = [r for r in rows if r[1] == "slave"]
    assert all(fwd >= 30 for _ip, _role, _seq, fwd in slave_rows)


@pytest.mark.benchmark(group="e7")
def test_e7_master_election_time(benchmark):
    times = once(benchmark, run_master_elections)
    report("E7b", "master re-election after NS master crash",
           ["crash", "election_s"],
           [(i + 1, t) for i, t in enumerate(times)],
           notes="bound ~ election timeout (4-8s randomized) + vote round")
    assert all(t <= 20.0 for t in times)
    assert all(t >= 1.0 for t in times)


@pytest.mark.benchmark(group="e7")
def test_e7_steady_state_updates_rare(benchmark):
    result = once(benchmark, run_steady_state)
    report("E7c", "steady-state name space churn (full idle cluster)",
           ["window_s", "updates", "reads"],
           [(result["window"], result["updates"], result["reads"])],
           notes="paper: updates only occur when services are started or "
                 "restarted")
    assert result["updates"] <= 2
    assert result["reads"] > 50  # liveness machinery keeps reading
