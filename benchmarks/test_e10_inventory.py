"""E10 -- System inventory (paper sections 9.1-9.2).

Paper: "The resulting system contains about 25 services" and "The
typical service in our system only exports a single object ...  The only
services that dynamically create objects are the Media Delivery Service,
which creates one object for every open movie, and the name service,
which creates one object for every context."

Regenerated: the running system's census -- service types, processes,
and exported-object counts -- checking both claims structurally.
"""

import pytest

from common import booted_cluster, once, report

# Settop-side software also counts toward the paper's "about 25
# services" (applications are services too, section 1).
SETTOP_SOFTWARE = ["settop-kernel", "appmgr", "navigator", "vod-app",
                   "shopping-app", "game-app"]


def census(seed=10001):
    cluster, (stk,) = booted_cluster(n_servers=3, seed=seed,
                                     neighborhoods=[1])
    cluster.run_async(stk.app_manager.tune(5))
    vod = stk.app_manager.current_app
    cluster.run_async(vod.play("T2"))
    cluster.run_for(10.0)

    rows = []
    dynamic = {}
    for host in cluster.servers:
        for proc in sorted(host.processes, key=lambda p: p.name):
            runtime = proc.attachments.get("ocs")
            if runtime is None:
                continue
            exported = len(runtime._exports)
            rows.append((host.name, proc.name, exported))
            dynamic.setdefault(proc.name, []).append(exported)
    server_service_types = sorted(cluster.registry.names())
    return rows, server_service_types, dynamic


@pytest.mark.benchmark(group="e10")
def test_e10_service_census(benchmark):
    rows, service_types, dynamic = once(benchmark, census)
    per_type = {}
    for _host, name, exported in rows:
        per_type.setdefault(name, []).append(exported)
    table = [(name, len(counts), max(counts))
             for name, counts in sorted(per_type.items())]
    report("E10", "service census (sections 9.1-9.2)",
           ["service", "processes", "max_objects_exported"], table,
           notes=f"server service types: {len(service_types)}; with settop "
                 f"software: {len(service_types) + len(SETTOP_SOFTWARE)} "
                 f"(paper: about 25 services built in under 15 months)")
    total_services = len(service_types) + len(SETTOP_SOFTWARE)
    # "about 25 services"
    assert 20 <= total_services <= 30

    # "The typical service ... only exports a single object."
    single_object = [name for name, counts in per_type.items()
                     if max(counts) <= 2 and name not in ("ns", "mds",
                                                          "fileservice")]
    multi_object = [name for name, counts in per_type.items()
                    if max(counts) > 2]
    assert len(single_object) >= 9, single_object
    # Dynamic object creators are exactly the paper's set (plus the file
    # service, whose contexts mirror the name service's behaviour).
    assert set(multi_object) <= {"ns", "mds", "fileservice"}, multi_object
    # The MDS with an open movie exports the service object + a movie
    # object; the name service exports one object per context.
    assert max(per_type["mds"]) >= 2
    assert max(per_type["ns"]) >= 10
