"""E11 -- Boot storm: broadcast boot scales with the plant (section 3.4.1).

Paper: "the kernel and first application are broadcast to settops" --
the point of a *broadcast* boot path on a cable plant is that a
power-restoration storm (every settop in a neighbourhood rebooting at
once) costs the same downstream bandwidth as a single boot.

Regenerated series: time until the whole population is booted vs the
number of simultaneously powered-on settops.  Shape: flat (broadcast),
versus the linear growth unicast delivery of the 512 kB kernel would
force through the servers' uplinks.
"""

import pytest

from repro.cluster import build_full_cluster
from repro.services.boot import BOOT_CYCLE, KERNEL_CYCLE, KERNEL_SIZE

from common import once, report


def boot_storm(n_settops: int, seed=14001):
    cluster = build_full_cluster(n_servers=3, seed=seed)
    kernels = [cluster.add_settop_kernel(
        cluster.neighborhoods[i % len(cluster.neighborhoods)], power_on=False)
        for i in range(n_settops)]
    # Power restoration: everyone comes up in the same instant.
    t0 = cluster.now
    for stk in kernels:
        stk.power_on()
    deadline = t0 + 300.0
    while cluster.now < deadline:
        cluster.run_for(1.0)
        if all(stk.state == "booted" for stk in kernels):
            break
    booted = sum(1 for stk in kernels if stk.state == "booted")
    last = max((stk.booted_at - t0) for stk in kernels
               if stk.booted_at is not None) if booted else None
    return {"settops": n_settops, "booted": booted, "last_boot_s": last}


@pytest.mark.benchmark(group="e11")
def test_e11_broadcast_boot_is_flat(benchmark):
    def run():
        return [boot_storm(n) for n in (4, 16, 48)]

    rows_data = once(benchmark, run)
    rows = []
    for d in rows_data:
        # What per-settop unicast of the kernel would cost at minimum:
        # serialized on each settop's 6 Mbit/s downlink is parallel, but
        # the *server uplink* (FDDI, shared per server) must carry one
        # copy per settop instead of one per cycle.
        unicast_copies_mb = d["settops"] * KERNEL_SIZE / 1e6
        rows.append((d["settops"], d["booted"], round(d["last_boot_s"], 1),
                     round(unicast_copies_mb, 1)))
    report("E11", "boot storm: time to boot N settops via broadcast "
           "(section 3.4.1)",
           ["settops", "booted", "last_boot_s", "unicast_would_send_MB"],
           rows,
           notes=f"broadcast sends one {KERNEL_SIZE//1000} kB kernel per "
                 f"{KERNEL_CYCLE:.0f}s cycle regardless of population")
    by = {d["settops"]: d for d in rows_data}
    assert all(d["booted"] == d["settops"] for d in rows_data)
    # Flat: 12x the settops costs at most ~2 extra broadcast cycles.
    assert (by[48]["last_boot_s"] - by[4]["last_boot_s"]
            <= 2 * (BOOT_CYCLE + KERNEL_CYCLE))
    # And everyone boots within a handful of cycles.
    assert by[48]["last_boot_s"] <= 4 * (BOOT_CYCLE + KERNEL_CYCLE)
