"""E4 -- Capacity scales with servers (paper sections 1, 5.1, 9.6).

Paper: "Scalable services in our system are typically implemented with a
replica running on each server. ... To expand the system's capacity, one
acquires a new server to run an additional replica for each service.  In
our system, most service replicas operate nearly independently, so that
system capacity grows linearly with the number of servers."

Series to regenerate: (a) concurrent movie streams sustained vs number
of servers; (b) aggregate name-resolve throughput vs number of servers
(reads are local, section 4.6); both should grow ~linearly.
"""

import pytest

from repro.cluster import build_full_cluster
from repro.cluster.media import seed_default_content
from repro.core.params import Params
from repro.ocs.runtime import OCSRuntime, allocate_port
from repro.core.naming.client import NameClient

from common import once, report

STREAMS_PER_SERVER = 8  # scaled-down MDS disk budget for the bench


def stream_capacity(n_servers: int, seed: int = 3000) -> dict:
    params = Params(mds_disk_streams=STREAMS_PER_SERVER)
    cluster = build_full_cluster(n_servers=n_servers, params=params,
                                 seed=seed)
    # Every title on every server so placement never constrains capacity.
    seed_default_content(cluster, copies=n_servers)
    # Enough settops that per-settop downlinks never constrain it either.
    titles = ["T2", "Casablanca", "Sneakers"]
    wanted = n_servers * STREAMS_PER_SERVER
    settops = []
    per_nbhd = max(1, (wanted // 2) // len(cluster.neighborhoods) + 1)
    for nbhd in cluster.neighborhoods:
        for _ in range(per_nbhd):
            settops.append(cluster.add_settop(nbhd))
    opened = 0
    refused = 0
    probes = []
    for settop in settops:
        proc = settop.spawn("probe")
        runtime = OCSRuntime(proc, cluster.net)
        names = NameClient(runtime, cluster.server_ips, cluster.params)
        probes.append((settop, runtime, names))

    async def open_two(runtime, names, index):
        nonlocal opened, refused
        try:
            mms = await names.resolve("svc/mms")
        except Exception:  # noqa: BLE001
            refused += 2
            return
        for k in range(2):
            title = titles[(index + k) % len(titles)]
            try:
                await runtime.invoke(mms, "open", (title, allocate_port()),
                                     timeout=10.0)
                opened += 1
            except Exception:  # noqa: BLE001 - capacity exhausted
                refused += 1

    for index, (settop, runtime, names) in enumerate(probes):
        cluster.kernel.create_task(open_two(runtime, names, index))
    cluster.run_for(120.0)
    return {"servers": n_servers, "capacity": n_servers * STREAMS_PER_SERVER,
            "opened": opened, "refused": refused}


def resolve_throughput(n_servers: int, clients_per_server: int = 3,
                       window: float = 10.0, seed: int = 3100) -> dict:
    """Closed-loop resolvers saturate each replica's lookup CPU; the
    aggregate rate measures cluster lookup capacity."""
    cluster = build_full_cluster(n_servers=n_servers, seed=seed)
    done = [0]

    async def resolver(client):
        while True:
            try:
                await client.names.resolve("svc/mds")
                done[0] += 1
            except Exception:  # noqa: BLE001
                await cluster.kernel.sleep(0.1)

    for host in cluster.servers:
        for i in range(clients_per_server):
            client = cluster.client_on(host, name=f"resolver-{i}")
            cluster.kernel.create_task(resolver(client))
    cluster.run_for(2.0)  # warm-up
    start = done[0]
    cluster.run_for(window)
    return {"servers": n_servers,
            "resolves_per_s": (done[0] - start) / window}


@pytest.mark.benchmark(group="e4")
def test_e4_stream_capacity_scales_linearly(benchmark):
    def run():
        return [stream_capacity(n) for n in (1, 2, 3)]

    rows_data = once(benchmark, run)
    rows = [(d["servers"], d["capacity"], d["opened"], d["refused"])
            for d in rows_data]
    report("E4", "concurrent movie streams vs servers (section 9.6)",
           ["servers", "disk_capacity", "streams_opened", "refused"],
           rows, notes="capacity grows linearly: each server adds its MDS")
    opened = {d["servers"]: d["opened"] for d in rows_data}
    # Each added server adds ~a server's worth of streams.
    assert opened[1] >= STREAMS_PER_SERVER - 1
    assert opened[2] >= 2 * STREAMS_PER_SERVER - 2
    assert opened[3] >= 3 * STREAMS_PER_SERVER - 3
    # And admission control did kick in (we over-offered on purpose).
    assert all(d["refused"] > 0 for d in rows_data)


@pytest.mark.benchmark(group="e4")
def test_e4_resolve_throughput_scales(benchmark):
    def run():
        return [resolve_throughput(n) for n in (1, 2, 4)]

    rows_data = once(benchmark, run)
    rows = [(d["servers"], round(d["resolves_per_s"], 1)) for d in rows_data]
    report("E4b", "aggregate resolve throughput vs servers (section 4.6)",
           ["servers", "resolves_per_s"], rows,
           notes="reads served locally by each replica; no master contact")
    rate = {d["servers"]: d["resolves_per_s"] for d in rows_data}
    # Aggregate read throughput grows with replicas (allow sub-linear
    # slack for simulation quanta).
    assert rate[2] >= 1.7 * rate[1]
    assert rate[4] >= 3.0 * rate[1]
