"""E2 -- Primary/backup fail-over speed (paper section 9.7).

Paper: with the deployed settings (backup bind retry 10 s, name service
polls RAS every 10 s, RAS polls peer RASs every 5 s) "this gives a
maximum fail over time of 25 seconds"; the parameters "can be tuned to
give the desired fail-over time, as long as it is not less than a few
seconds".

We regenerate the table: measured fail-over times (max over repeated
crashes at adversarial phases) for the paper's setting and for tuned
settings, against the analytic bound retry + ns_poll + ras_poll.
"""

import pytest

from repro.cluster import build_cluster
from repro.core.control.ssc import ssc_ref
from repro.core.params import Params

from common import once, report
from tests.helpers import PBPingService


def measure_failover(params: Params, crashes: int = 4, seed: int = 7):
    """Repeatedly crash the pbping primary; record re-bind latencies."""
    cluster = build_cluster(n_servers=3, params=params, seed=seed)
    cluster.registry.register("pbping", PBPingService)
    client = cluster.client_on(cluster.servers[0], name="e2")
    for i in (0, 1):
        cluster.run_async(client.runtime.invoke(
            ssc_ref(cluster.servers[i].ip), "startService", ("pbping",)))
    assert cluster.settle(extra_names=["svc/pbping"])

    def primary_ip():
        try:
            ref = cluster.run_async(client.names.resolve("svc/pbping"))
            return ref.ip
        except Exception:  # noqa: BLE001 - in the fail-over window
            return None

    times = []
    for crash in range(crashes):
        old = primary_ip()
        assert old is not None
        index = cluster.server_ips.index(old)
        # Vary the crash phase relative to the polling cycles.
        cluster.run_for(2.5 * crash + 0.1)
        cluster.run_async(client.runtime.invoke(
            ssc_ref(old), "stopService", ("pbping",)))
        t0 = cluster.now
        budget = 3 * params.max_failover + 30
        while cluster.now - t0 < budget:
            cluster.run_for(0.25)
            ip = primary_ip()
            if ip is not None and ip != old:
                times.append(cluster.now - t0)
                break
        else:
            raise AssertionError(f"no fail-over within {budget}s")
        # Restart the stopped replica so it becomes the new backup.
        cluster.run_async(client.runtime.invoke(
            ssc_ref(old), "startService", ("pbping",)))
        cluster.run_for(5.0)
    return times


SETTINGS = [
    # (label, bind retry, ns poll, ras poll) -- first row is the paper's.
    ("paper (10/10/5)", 10.0, 10.0, 5.0),
    ("fast (2/2/1)", 2.0, 2.0, 1.0),
    ("slow (20/20/10)", 20.0, 20.0, 10.0),
]


@pytest.mark.benchmark(group="e2")
@pytest.mark.parametrize("label,retry,ns_poll,ras_poll", SETTINGS)
def test_e2_failover_bound(benchmark, label, retry, ns_poll, ras_poll):
    params = Params(backup_bind_retry=retry, ns_audit_poll=ns_poll,
                    ras_peer_poll=ras_poll)
    times = once(benchmark, measure_failover, params)
    bound = params.max_failover
    report(f"E2-{label.split()[0]}",
           f"fail-over times, {label} (section 9.7)",
           ["crash", "failover_s", "bound_s"],
           [(i + 1, t, bound) for i, t in enumerate(times)],
           notes=f"paper bound = retry + ns_poll + ras_poll = {bound:.0f}s")
    assert times, "no fail-overs measured"
    # Every fail-over fits the paper's analytic bound (with one polling
    # grain of slack for detection/propagation quanta).
    slack = 3.0
    assert max(times) <= bound + slack
    # And the mechanism actually uses the polling pipeline: it cannot be
    # instantaneous.
    assert min(times) >= 1.0


@pytest.mark.benchmark(group="e2")
def test_e2_worst_case_phase_scan(benchmark):
    """Hunt the worst case: scan the crash instant across the bind-retry
    cycle and across seeds (which shift the audit/RAS poll phases).

    The paper reports the *analytic* maximum (25 s); the measured max
    approaches it only when the crash lands just after a bind retry AND
    the polls are maximally misaligned.
    """

    def run():
        worst = 0.0
        samples = []
        params = Params()
        for seed in (3, 17):
            cluster = build_cluster(n_servers=3, params=params, seed=seed)
            cluster.registry.register("pbping", PBPingService)
            client = cluster.client_on(cluster.servers[0], name="e2w")
            for i in (0, 1):
                cluster.run_async(client.runtime.invoke(
                    ssc_ref(cluster.servers[i].ip), "startService",
                    ("pbping",)))
            assert cluster.settle(extra_names=["svc/pbping"])
            for phase in range(0, 10):
                ref = cluster.run_async(client.names.resolve("svc/pbping"))
                old = ref.ip
                cluster.run_for(1.37)  # drift the crash phase each round
                cluster.run_async(client.runtime.invoke(
                    ssc_ref(old), "stopService", ("pbping",)))
                t0 = cluster.now
                while cluster.now - t0 < 2 * params.max_failover:
                    cluster.run_for(0.25)
                    try:
                        ref = cluster.run_async(
                            client.names.resolve("svc/pbping"))
                    except Exception:  # noqa: BLE001
                        continue
                    if ref.ip != old:
                        break
                took = cluster.now - t0
                samples.append(took)
                worst = max(worst, took)
                cluster.run_async(client.runtime.invoke(
                    ssc_ref(old), "startService", ("pbping",)))
                cluster.run_for(3.0)
        return worst, samples

    worst, samples = once(benchmark, run)
    bound = Params().max_failover
    report("E2-worst", "worst case over a crash-phase scan (section 9.7)",
           ["samples", "worst_s", "mean_s", "paper_bound_s"],
           [(len(samples), worst, sum(samples) / len(samples), bound)],
           notes="the analytic 25s bound needs adversarial alignment of "
                 "all three polling cycles")
    assert worst <= bound + 3.0
    # The scan finds materially worse cases than the average crash.
    assert worst >= sum(samples) / len(samples)
    assert worst >= 10.0


@pytest.mark.benchmark(group="e2")
def test_e2_bound_scales_with_parameters(benchmark):
    """The measured worst case tracks the analytic sum as settings scale."""

    def run():
        rows = []
        for label, retry, ns_poll, ras_poll in SETTINGS:
            params = Params(backup_bind_retry=retry, ns_audit_poll=ns_poll,
                            ras_peer_poll=ras_poll)
            times = measure_failover(params, crashes=3, seed=13)
            rows.append((label, max(times), sum(times) / len(times),
                         params.max_failover))
        return rows

    rows = once(benchmark, run)
    report("E2-sweep", "measured vs analytic fail-over bound",
           ["setting", "max_s", "mean_s", "bound_s"], rows)
    # Ordering: faster settings fail over faster.
    maxima = {label: mx for label, mx, _mean, _bound in rows}
    assert maxima["fast (2/2/1)"] < maxima["paper (10/10/5)"]
    assert maxima["paper (10/10/5)"] < maxima["slow (20/20/10)"]
