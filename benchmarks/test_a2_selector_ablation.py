"""A2 -- Ablation: static vs dynamic load-balancing selectors (section 5.1).

Paper: "Dynamic load-balancing could be accomplished with a selector
that bases its choice on the current loads of the replicas.  However,
static policies, which are quicker and easier to implement, have proved
adequate for almost all of our services."

The ablation builds the case both ways: with clients spread evenly, the
static per-server selector is indeed adequate (latencies match); with
clients piled onto one server, the static policy overloads that server's
replica while the least-loaded selector spreads the queue.
"""

import pytest

from repro.cluster import build_cluster
from repro.core.control.ssc import ssc_ref
from repro.idl import register_interface
from repro.metrics.latency import summarize
from repro.services.base import Service
from repro.sim.kernel import Queue

from common import once, report

register_interface("QueryWorker", {
    "query": (),
    "backlog": (),
}, doc="ablation A2 workload service")

SERVICE_TIME = 0.05   # one query costs 50 ms of replica time


class QueryService(Service):
    """A deliberately single-threaded query server with a visible queue."""

    service_name = "query"

    def __init__(self, env, process):
        super().__init__(env, process)
        self._queue = None
        self.backlog = 0

    async def start(self):
        self._queue = Queue(self.kernel)
        self.ref = self.runtime.export(_QueryServant(self), "QueryWorker")
        await self.register_objects([self.ref])
        await self.bind_as_replica("query", self.host.ip, self.ref,
                                   selector="sameserver")
        self.spawn_task(self._worker(), name="query-worker")
        self.spawn_task(self._load_reporter(), name="query-load")

    async def _worker(self):
        while True:
            fut = await self._queue.get()
            await self.kernel.sleep(SERVICE_TIME)
            self.backlog -= 1
            if not fut.done():
                fut.set_result("ok")

    def enqueue(self):
        self.backlog += 1
        fut = self.kernel.create_future()
        self._queue.put(fut)
        return fut

    async def _load_reporter(self):
        while True:
            try:
                await self.names.report_load("svc/query", self.host.ip,
                                             float(self.backlog))
            except Exception:  # noqa: BLE001
                pass
            await self.kernel.sleep(0.5)


class _QueryServant:
    def __init__(self, svc):
        self._svc = svc

    async def query(self, ctx):
        return await self._svc.enqueue()

    async def backlog(self, ctx):
        return self._svc.backlog


def run_workload(selector: str, client_spread, seed=12001, duration=30.0,
                 think_time=0.2):
    """client_spread: clients per server index."""
    cluster = build_cluster(n_servers=3, seed=seed)
    cluster.registry.register("query", QueryService)
    admin = cluster.client_on(cluster.servers[0], name="a2")
    for i in range(3):
        cluster.run_async(admin.runtime.invoke(
            ssc_ref(cluster.servers[i].ip), "startService", ("query",)))
    assert cluster.settle(extra_names=[
        f"svc/query/{h.ip}" for h in cluster.servers])
    cluster.run_async(admin.names.set_selector("svc/query", selector))
    # Load reporters on every replica need the selector change multicast.
    cluster.run_for(2.0)

    latencies = []

    async def client_loop(client):
        while True:
            t0 = cluster.kernel.now
            try:
                ref = await client.names.resolve("svc/query")
                await client.runtime.invoke(ref, "query", (), timeout=30.0)
                latencies.append(cluster.kernel.now - t0)
            except Exception:  # noqa: BLE001
                pass
            await cluster.kernel.sleep(think_time)

    n = 0
    for server_index, count in enumerate(client_spread):
        for _ in range(count):
            n += 1
            client = cluster.client_on(cluster.servers[server_index],
                                       name=f"q{n}")
            cluster.kernel.create_task(client_loop(client))
    cluster.run_for(duration)
    return summarize(latencies)


@pytest.mark.benchmark(group="a2")
def test_a2_static_adequate_when_balanced(benchmark):
    def run():
        static = run_workload("sameserver", [2, 2, 2], seed=12002)
        dynamic = run_workload("leastloaded", [2, 2, 2], seed=12002)
        return static, dynamic

    static, dynamic = once(benchmark, run)
    report("A2", "balanced clients: static vs least-loaded (section 5.1)",
           ["selector", "p50_s", "p90_s", "queries"],
           [("sameserver", round(static["p50"], 3), round(static["p90"], 3),
             static["count"]),
            ("leastloaded", round(dynamic["p50"], 3), round(dynamic["p90"], 3),
             dynamic["count"])],
           notes="the paper's observation: static is adequate when load "
                 "is naturally spread")
    # Static is adequate: within 2x of dynamic on the tail.
    assert static["p90"] <= 2 * dynamic["p90"] + 0.05


@pytest.mark.benchmark(group="a2")
def test_a2_dynamic_wins_under_skew(benchmark):
    def run():
        static = run_workload("sameserver", [8, 0, 0], seed=12003,
                              think_time=0.15)
        dynamic = run_workload("leastloaded", [8, 0, 0], seed=12003,
                               think_time=0.15)
        return static, dynamic

    static, dynamic = once(benchmark, run)
    report("A2b", "skewed clients: static vs least-loaded (section 5.1)",
           ["selector", "p50_s", "p90_s", "queries"],
           [("sameserver", round(static["p50"], 3), round(static["p90"], 3),
             static["count"]),
            ("leastloaded", round(dynamic["p50"], 3), round(dynamic["p90"], 3),
             dynamic["count"])],
           notes="all clients on one server: the static policy funnels "
                 "everything into one replica")
    # The dynamic selector cuts median latency materially under skew
    # (the tail stays comparable: load reports are 0.5s stale, so bursts
    # still herd) and serves substantially more queries.
    assert dynamic["p50"] <= static["p50"] * 0.7
    assert dynamic["count"] >= static["count"] * 1.2
