"""E8 -- Network budget and trial-scale concurrency (paper section 3.1).

Paper: "each settop is allowed a maximum of 50 Kbits per second from the
settop to the server and 6 Mbits per second from the server to the
settop" and "the requirement was to support 1,000 concurrent users from
a community of 4,000".

Regenerated: (a) the asymmetric per-settop caps are enforced end to end;
(b) a 1:40-scaled community (100 settops, 25 concurrent viewers) runs
with every concurrent viewer holding a live stream.
"""

import os

import pytest

from repro.cluster import build_full_cluster
from repro.cluster.media import seed_default_content
from repro.core.naming.client import NameClient
from repro.core.params import Params
from repro.net.message import Message
from repro.ocs.runtime import OCSRuntime, allocate_port

from common import once, report

COMMUNITY = 100          # 4,000 scaled by 1/40
CONCURRENT = 25          # 1,000 scaled by 1/40


def run_caps(seed=8001):
    cluster = build_full_cluster(n_servers=3, seed=seed)
    settop = cluster.add_settop(1)
    server = cluster.servers[0]
    results = {}

    # Downstream: 1.5 MB at 6 Mbit/s -> ~2 s.
    arrival = []
    cluster.net.bind_port(settop.ip, 9000, lambda m: arrival.append(cluster.now))
    t0 = cluster.now
    cluster.net.send(Message(src=(server.ip, 9000), dst=(settop.ip, 9000),
                             kind="cap-test", payload_bytes=1_500_000))
    cluster.run_for(10.0)
    results["down_s_per_1.5MB"] = arrival[0] - t0

    # Upstream: 12.5 kB at 50 kbit/s -> ~2 s.
    arrival2 = []
    cluster.net.bind_port(server.ip, 9001, lambda m: arrival2.append(cluster.now))
    t0 = cluster.now
    cluster.net.send(Message(src=(settop.ip, 9001), dst=(server.ip, 9001),
                             kind="cap-test", payload_bytes=12_500 - 256))
    cluster.run_for(30.0)
    results["up_s_per_12.5kB"] = arrival2[0] - t0
    return results


def run_community(seed=8002):
    params = Params(mds_disk_streams=12)   # 36 disk streams across 3 servers
    cluster = build_full_cluster(n_servers=3, params=params, seed=seed)
    seed_default_content(cluster, copies=3)
    # The community: all attached; the concurrent subset streams.
    settops = [cluster.add_settop(cluster.neighborhoods[i % 6])
               for i in range(COMMUNITY)]
    titles = ["T2", "Casablanca", "Sneakers", "Jurassic Park"]
    opened = [0]
    failed = [0]
    latencies = []

    async def stream(settop, index):
        proc = settop.spawn("viewer")
        runtime = OCSRuntime(proc, cluster.net)
        names = NameClient(runtime, cluster.server_ips, params)
        t0 = cluster.kernel.now
        try:
            mms = await names.resolve("svc/mms")
            movie = await runtime.invoke(
                mms, "open", (titles[index % len(titles)], allocate_port()),
                timeout=15.0)
            await runtime.invoke(movie, "play", (), timeout=5.0)
            opened[0] += 1
            latencies.append(cluster.kernel.now - t0)
        except Exception:  # noqa: BLE001
            failed[0] += 1

    for index, settop in enumerate(settops[:CONCURRENT]):
        cluster.kernel.create_task(stream(settop, index))
    cluster.run_for(60.0)
    reserved = sum(cluster.net.downlink_of(s.ip).reserved_bps
                   for s in settops[:CONCURRENT])
    return {"opened": opened[0], "failed": failed[0],
            "reserved_mbps": reserved / 1e6,
            "max_latency": max(latencies) if latencies else None}


@pytest.mark.benchmark(group="e8")
def test_e8_per_settop_caps_enforced(benchmark):
    results = once(benchmark, run_caps)
    report("E8", "per-settop bandwidth caps (section 3.1)",
           ["direction", "payload", "seconds", "implies"],
           [("down", "1.5 MB", round(results["down_s_per_1.5MB"], 2),
             "~6 Mbit/s"),
            ("up", "12.5 kB", round(results["up_s_per_12.5kB"], 2),
             "~50 kbit/s")])
    assert 1.9 <= results["down_s_per_1.5MB"] <= 2.4
    assert 1.8 <= results["up_s_per_12.5kB"] <= 2.4


@pytest.mark.benchmark(group="e8")
@pytest.mark.skipif("REPRO_FULL_SCALE" not in os.environ,
                    reason="full 4,000-settop run; set REPRO_FULL_SCALE=1 "
                           "(several minutes of wall time)")
def test_e8_full_orlando_scale(benchmark):
    """Section 9.6's open question, answerable here: "whether there are
    unsuspected bottlenecks ... can only be determined by full-scale
    testing."  The full trial target: 1,000 concurrent streams from a
    4,000-settop community on a proportionally provisioned cluster."""

    def run():
        n_servers = 30   # ~34 streams/server, Challenge-scale
        params = Params(mds_disk_streams=40)
        cluster = build_full_cluster(
            n_servers=n_servers, neighborhoods_per_server=5, params=params,
            seed=8500, settle_timeout=600.0)
        # Popular titles must be replicated wide enough to cover demand:
        # a title on k servers serves at most k x 40 streams.  (An early
        # run of this experiment with copies=3 found exactly that wall:
        # 120 of 1,000 streams for a single-title audience.)
        seed_default_content(cluster, copies=n_servers)
        titles = ["T2", "Casablanca", "Sneakers", "Jurassic Park",
                  "Toy Story", "The Fugitive"]
        settops = [cluster.add_settop(
            cluster.neighborhoods[i % len(cluster.neighborhoods)])
            for i in range(4000)]
        opened = [0]
        failed = [0]
        latencies = []

        async def stream(settop, index):
            proc = settop.spawn("viewer")
            runtime = OCSRuntime(proc, cluster.net)
            names = NameClient(runtime, cluster.server_ips, params)
            t0 = cluster.kernel.now
            try:
                mms = await names.resolve("svc/mms")
                # A 60s deadline covers the worst of the thundering herd:
                # all 1,000 viewers press play in the same instant, far
                # harsher than any real arrival process.
                movie = await runtime.invoke(
                    mms, "open", (titles[index % len(titles)],
                                  allocate_port()), timeout=60.0)
                await runtime.invoke(movie, "play", (), timeout=10.0)
                opened[0] += 1
                latencies.append(cluster.kernel.now - t0)
            except Exception:  # noqa: BLE001
                failed[0] += 1

        for index, settop in enumerate(settops[:1000]):
            cluster.kernel.create_task(stream(settop, index))
        cluster.run_for(120.0)
        mean = sum(latencies) / len(latencies) if latencies else None
        return {"opened": opened[0], "failed": failed[0],
                "mean_latency": mean,
                "max_latency": max(latencies) if latencies else None}

    result = once(benchmark, run)
    report("E8c", "full Orlando scale: 1,000 concurrent of 4,000",
           ["target", "streams_up", "failed", "mean_open_s", "max_open_s"],
           [(1000, result["opened"], result["failed"],
             round(result["mean_latency"], 1),
             round(result["max_latency"], 1))],
           notes="the same-instant burst is the worst case; steady-state "
                 "opens are sub-second (E8b)")
    assert result["opened"] >= 995


@pytest.mark.benchmark(group="e8")
def test_e8_trial_scale_concurrency(benchmark):
    result = once(benchmark, run_community)
    report("E8b", "1:40-scale Orlando community (section 3.1)",
           ["community", "concurrent", "streams_up", "failed",
            "reserved_mbps"],
           [(COMMUNITY, CONCURRENT, result["opened"], result["failed"],
             round(result["reserved_mbps"], 1))],
           notes="paper target: 1,000 concurrent users from 4,000 homes")
    assert result["opened"] == CONCURRENT
    assert result["failed"] == 0
    assert result["reserved_mbps"] == pytest.approx(CONCURRENT * 3.0, rel=0.01)
    assert result["max_latency"] <= 2.0
