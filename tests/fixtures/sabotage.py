"""Deliberate invariant sabotage, for testing that the monitors notice.

The chaos monitors are only trustworthy if a *broken* cluster actually
trips them.  ``broken_quorum()`` manufactures a real split-brain: with
the name-service quorum forced to 1, any replica that loses contact
with the master elects itself, so a partition yields two masters -- the
exact failure the majority rule exists to prevent (and which the
``ns_agreement`` monitor must report).

The patch is process-global (it swaps a class property), so it is a
context manager and chaos runs must happen strictly inside the block.
"""

from contextlib import contextmanager

from repro.core.naming.replica import NameReplicaProcess
from repro.chaos import Fault, FaultSchedule

#: A schedule built to exploit the broken quorum: partition server 0
#: away from its peers mid-run, with service kills as realistic noise
#: around it, then heal.  Under the sabotage, the minority side elects
#: its own NS master during the split.
SPLIT_BRAIN_SCHEDULE = FaultSchedule(faults=(
    Fault(20.0, "kill_service", {"server": 1, "service": "mds"}),
    Fault(30.0, "partition", {"servers_a": [0], "servers_b": [1, 2]}),
    Fault(55.0, "kill_service", {"server": 2, "service": "vod"}),
    Fault(110.0, "heal", {}),
), horizon=150.0)


@contextmanager
def broken_quorum():
    """Force the name-service quorum to 1 (split-brain becomes possible)."""
    original = NameReplicaProcess.quorum
    NameReplicaProcess.quorum = property(lambda self: 1)
    try:
        yield
    finally:
        NameReplicaProcess.quorum = original
