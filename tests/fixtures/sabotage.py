"""Deliberate invariant sabotage, for testing that the monitors notice.

The chaos monitors are only trustworthy if a *broken* cluster actually
trips them.  ``broken_quorum()`` manufactures a real split-brain: with
the name-service quorum forced to 1, any replica that loses contact
with the master elects itself, so a partition yields two masters -- the
exact failure the majority rule exists to prevent (and which the
``ns_agreement`` monitor must report).

The patch is process-global (it swaps a class property), so it is a
context manager and chaos runs must happen strictly inside the block.
"""

from contextlib import contextmanager

from repro.core.naming.replica import NameReplicaProcess
from repro.chaos import Fault, FaultSchedule

#: A schedule built to exploit the broken quorum: partition server 0
#: away from its peers mid-run, with service kills as realistic noise
#: around it, then heal.  Under the sabotage, the minority side elects
#: its own NS master during the split.
SPLIT_BRAIN_SCHEDULE = FaultSchedule(faults=(
    Fault(20.0, "kill_service", {"server": 1, "service": "mds"}),
    Fault(30.0, "partition", {"servers_a": [0], "servers_b": [1, 2]}),
    Fault(55.0, "kill_service", {"server": 2, "service": "vod"}),
    Fault(110.0, "heal", {}),
), horizon=150.0)


@contextmanager
def broken_quorum():
    """Force the name-service quorum to 1 (split-brain becomes possible)."""
    original = NameReplicaProcess.quorum
    NameReplicaProcess.quorum = property(lambda self: 1)
    try:
        yield
    finally:
        NameReplicaProcess.quorum = original


#: A benign schedule for the wedged-log sabotage: one service kill as
#: realistic noise, nothing that touches the db replicas.  The viewer
#: workload's own writes wedge the sabotaged backups immediately, so the
#: long tail of the horizon is what lets ``replica_lag_bounded`` observe
#: the cursor stuck past ``Params.replica_lag_bound``.
WEDGED_LOG_SCHEDULE = FaultSchedule(faults=(
    Fault(15.0, "kill_service", {"server": 1, "service": "mds"}),
), horizon=120.0)


#: A schedule built to exploit ack-before-sync (PR 8 sabotage): crash
#: the db primary's server while viewer writes are in flight, reboot it
#: soon enough that it reclaims its binding (so the durability monitor
#: judges *its* disk), and leave a long tail for recovery to settle.
#: Run it with ``ack_before_sync_params()``: the write barrier buffers
#: every write and the missing sync means acked rows evaporate in the
#: crash -- the exact loss the ``durability`` monitor must report.
ACK_BEFORE_SYNC_SCHEDULE = FaultSchedule(faults=(
    Fault(15.0, "kill_service", {"server": 1, "service": "mds"}),
    Fault(45.0, "crash_server", {"server": 0}),
    Fault(53.0, "reboot_server", {"server": 0}),
), horizon=150.0)


def ack_before_sync_params():
    """Params that ack db/NS writes before the disk sync (PR 8 sabotage).

    With the write barrier armed and ``ack_after_sync`` off, a primary
    acknowledges out of its volatile write cache; any crash then loses
    client-acked state.  A ``durability`` monitor that stays green under
    this combination is not testing anything.
    """
    from repro.core.params import Params
    return Params(disk_write_barrier=True, ack_after_sync=False)


#: A schedule built to exploit disabled dedup (PR 9 sabotage): heavy
#: duplication on every server's in-link while viewers place orders and
#: play games.  With the reply cache off, a duplicated non-idempotent
#: call envelope executes twice on the same server -- the exact double
#: the ``at_most_once`` monitor must report.  (No corruption here: this
#: schedule isolates the dedup layer, not the checksum layer.)
NO_DEDUP_SCHEDULE = FaultSchedule(faults=(
    Fault(15.0, "duplicate", {"target": "server:0", "probability": 0.6}),
    Fault(15.0, "duplicate", {"target": "server:1", "probability": 0.6}),
    Fault(15.0, "duplicate", {"target": "server:2", "probability": 0.6}),
    Fault(40.0, "kill_service", {"server": 1, "service": "mds"}),
), horizon=120.0)


@contextmanager
def disabled_dedup():
    """Servers skip the reply cache entirely (PR 9 sabotage).

    Recreates the pre-PR 9 failure shape: a duplicated or retried call
    envelope re-executes the servant.  The effect ledger still stamps
    every execution (it is independent of the cache by design), so the
    ``at_most_once`` monitor must notice; a monitor that stays quiet
    under this patch is not testing anything.
    """
    from repro.ocs.runtime import OCSRuntime
    original = OCSRuntime.dedup_enabled
    OCSRuntime.dedup_enabled = False
    try:
        yield
    finally:
        OCSRuntime.dedup_enabled = original


@contextmanager
def disabled_checksums():
    """Receivers dispatch corrupt frames instead of dropping them.

    With the envelope checksum guard off, a payload-damaged call reaches
    the servant; E18's ``corrupt_dispatched == 0`` assertion (and the
    delivery collector it reads) must go red under this patch.
    """
    from repro.ocs.runtime import OCSRuntime
    original = OCSRuntime.checksum_guard
    OCSRuntime.checksum_guard = False
    try:
        yield
    finally:
        OCSRuntime.checksum_guard = original


@contextmanager
def wedged_replica_log():
    """db backups silently drop every replicated entry (PR 7 sabotage).

    Recreates the pre-PR 7 failure shape: the primary acks writes, the
    backups' change-log cursors never advance, and a promoted backup
    would serve diverged data.  The ``replica_lag_bounded`` monitor must
    notice; a monitor that stays quiet under this patch is not testing
    anything.
    """
    from repro.db.service import DatabaseService
    original = DatabaseService._apply_entry
    DatabaseService._apply_entry = lambda self, seq, epoch, op: None
    try:
        yield
    finally:
        DatabaseService._apply_entry = original
