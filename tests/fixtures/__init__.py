"""Shared test fixtures that are code, not data (see lint_fixtures/ for
the linter's seeded-violation files)."""
