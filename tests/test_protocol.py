"""Protocol conformance checker (P001-P006): model extraction + rules.

The checker's model is extracted statically from every
``register_interface`` call in the tree, then every ``invoke``/proxy
call site is judged against the union of candidate declarations -- a
violation only fires when *no* registered interface could satisfy the
call, so cross-interface method-name reuse never false-positives.
"""

import os

from repro.analysis import (
    default_model,
    default_rules,
    extract_protocol,
    lint_paths,
    lint_source,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join(REPO_ROOT, "tests", "lint_fixtures")
SRC = os.path.join(REPO_ROOT, "src", "repro")


def lint_fixture(name):
    path = os.path.join(FIXTURES, name)
    with open(path) as fh:
        source = fh.read()
    return lint_source(source, path, default_rules(), relpath=name)


def hits(violations, rule):
    return [(v.rule, v.line) for v in violations if v.rule == rule]


class TestModelExtraction:
    def test_tree_model_covers_figure2_services(self):
        model = default_model()
        for iface in ("Database", "NameReplica", "SettopManager", "MDS",
                      "MMS", "VOD", "ServiceController", "RAS"):
            assert iface in model.interfaces, iface

    def test_method_params_and_oneway(self):
        model = default_model()
        db = model.resolved_methods("Database")
        assert tuple(db["forwardWrite"].params) == \
            ("table", "key", "value", "deleted")
        assert not db["forwardWrite"].oneway
        # The db change-log stream is acknowledged; the NS variant of the
        # same method name is oneway -- the checker must hold both.
        assert not db["applyUpdates"].oneway
        ns = model.resolved_methods("NameReplica")
        assert ns["applyUpdates"].oneway
        mgr = model.resolved_methods("SettopManager")
        assert mgr["reportShutdown"].oneway

    def test_idempotent_extraction(self):
        model = default_model()
        shop = model.resolved_methods("Shopping")
        assert shop["catalog"].idempotent
        assert not shop["order"].idempotent
        naming = model.resolved_methods("NamingContext")
        assert naming["resolve"].idempotent
        assert not naming["bind"].idempotent

    def test_base_chain_resolution(self):
        model = default_model()
        fsc = model.resolved_methods("FileSystemContext")
        # Inherited from the naming-context base plus its own additions.
        assert "resolve" in fsc and "bind" in fsc
        assert "createFile" in fsc

    def test_candidates_union_across_interfaces(self):
        model = default_model()
        arities = {len(m.params) for m in model.candidates("open")}
        # MDS.open (4 args) and MMS.open (2 args) both answer to "open".
        assert {2, 4} <= arities

    def test_extract_from_file(self, tmp_path):
        mod = tmp_path / "iface.py"
        mod.write_text(
            "from repro.idl import MethodDef, register_interface\n"
            "register_interface('Probe', {\n"
            "    'ping': (),\n"
            "    'push': MethodDef('push', ('x',), oneway=True),\n"
            "}, doc='test')\n")
        model = extract_protocol([str(mod)])
        probe = model.resolved_methods("Probe")
        assert tuple(probe["ping"].params) == ()
        assert probe["push"].oneway


class TestProtocolRules:
    def test_p001_unknown_operation(self):
        violations = lint_fixture("p001_unknown.py")
        assert hits(violations, "P001") == [("P001", 5), ("P001", 6)]

    def test_p002_arity_mismatch(self):
        violations = lint_fixture("p002_arity.py")
        assert hits(violations, "P002") == [("P002", 5), ("P002", 6)]

    def test_p002_message_names_declarations(self):
        violations = lint_fixture("p002_arity.py")
        first = [v for v in violations if v.rule == "P002"][0]
        assert "guess" in first.message and "3" in first.message

    def test_p003_await_oneway(self):
        violations = lint_fixture("p003_await_oneway.py")
        assert hits(violations, "P003") == [("P003", 5)]

    def test_p004_detached_two_way(self):
        violations = lint_fixture("p004_detach.py")
        assert hits(violations, "P004") == [("P004", 5)]
        # detaching the oneway reportShutdown on line 7 stays clean
        assert all(v.line != 7 for v in violations if v.rule == "P004")

    def test_p005_deadline_propagation(self):
        violations = lint_fixture("p005_deadline.py")
        assert hits(violations, "P005") == [("P005", 5), ("P005", 16)]

    def test_p006_uncached_dispatch(self):
        violations = lint_fixture("p006_uncached.py")
        # Only the Shopping opt-out fires: order/orderStatus/... are
        # two-way and not all idempotent.  Selector (all idempotent),
        # cached exports, and reply_cache=True stay clean.
        assert hits(violations, "P006") == [("P006", 5)]
        first = [v for v in violations if v.rule == "P006"][0]
        assert "order" in first.message

    def test_p006_message_names_only_unsafe_methods(self):
        violations = lint_fixture("p006_uncached.py")
        first = [v for v in violations if v.rule == "P006"][0]
        # catalog/orderStatus/myOrders are declared idempotent.
        assert "catalog" not in first.message

    def test_rules_exempt_test_files(self):
        source = "async def f(r, ref):\n    await r.invoke(ref, 'nope', ())\n"
        assert lint_source(source, "test_x.py", default_rules(),
                           relpath="test_x.py") == []


class TestScopeEdgeCases:
    def test_edge_fixture(self):
        violations = lint_fixture("edge_cases.py")
        # Only the decorated handler and the async generator leak their
        # deadline; nested def and lambda are separate scopes.
        assert hits(violations, "P005") == [("P005", 31), ("P005", 36)]

    def test_no_stale_warning_when_one_listed_rule_fires(self):
        violations = lint_fixture("edge_cases.py")
        assert hits(violations, "W001") == []
        assert hits(violations, "D003") == []  # suppressed, and not stale


class TestFalsifiability:
    """If the checker goes blind, these assertions fail loudly."""

    def test_sabotage_module_is_flagged(self):
        violations = lint_fixture("sabotage_protocol.py")
        assert hits(violations, "P002") == [("P002", 14)]
        assert hits(violations, "P001") == [("P001", 16)]
        assert hits(violations, "P004") == [("P004", 18)]


class TestCoverage:
    def test_full_tree_classifies_every_call_site(self):
        report = lint_paths([SRC])
        cov = report.protocol
        assert cov is not None
        assert cov.total >= 90          # the tree's real RPC surface
        assert cov.classified == cov.total
        stats = "\n".join(cov.stats_lines())
        assert "100.0%" in stats

    def test_src_has_no_protocol_violations(self):
        report = lint_paths([SRC])
        bad = [v for v in report.violations
               if v.rule.startswith(("P", "W"))]
        assert bad == [], bad
