"""Tests for the CLI surface and cluster builder mechanics."""

import pytest

from repro.cli import build_parser
from repro.cluster import Cluster, build_cluster, build_full_cluster
from repro.net.address import neighborhood_of


class TestCLIParser:
    def test_all_commands_parse(self):
        parser = build_parser()
        for argv in (["quickstart"], ["drill"], ["evening", "--settops", "2"],
                     ["operator"], ["report"],
                     ["inventory", "--servers", "2", "--seed", "7"]):
            args = parser.parse_args(argv)
            assert callable(args.fn)

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_inventory_runs(self, capsys):
        from repro.cli import main
        assert main(["inventory", "--servers", "2", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Service census" in out
        assert "server-1" in out


class TestBuilderMechanics:
    def test_neighborhoods_assigned_round_robin(self):
        cluster = Cluster(n_servers=3, neighborhoods_per_server=2)
        assert cluster.neighborhoods == [1, 2, 3, 4, 5, 6]
        assert cluster.neighborhoods_by_server[cluster.server_ips[0]] == [1, 4]
        assert cluster.neighborhoods_by_server[cluster.server_ips[1]] == [2, 5]

    def test_server_for_neighborhood(self):
        cluster = Cluster(n_servers=2, neighborhoods_per_server=2)
        assert cluster.server_for_neighborhood(1) is cluster.servers[0]
        assert cluster.server_for_neighborhood(2) is cluster.servers[1]
        with pytest.raises(ValueError):
            cluster.server_for_neighborhood(99)

    def test_add_settop_updates_plant_map(self):
        cluster = Cluster(n_servers=2)
        settop = cluster.add_settop(1)
        plant = cluster.cluster_config["settops_by_neighborhood"]
        assert settop.ip in plant[1]
        assert neighborhood_of(settop.ip) == 1

    def test_add_settop_unknown_neighborhood_rejected(self):
        cluster = Cluster(n_servers=2)
        with pytest.raises(ValueError):
            cluster.add_settop(42)

    def test_settle_times_out_without_services(self):
        # A cluster whose init starts nothing can never settle.
        cluster = Cluster(n_servers=2, base_services=["ns"])
        # svc/ras never binds: settle's check can't pass.
        assert cluster.settle(timeout=5.0,
                              extra_names=["svc/ras/" + cluster.server_ips[0]]
                              ) is False

    def test_build_cluster_settles(self):
        cluster = build_cluster(n_servers=2, seed=191)
        assert cluster.ns_master_ip() is not None

    def test_full_cluster_placement_written_to_disk(self):
        cluster = build_full_cluster(n_servers=2, seed=192)
        placement = cluster.servers[0].disk.read("db/config")["placement"]
        assert set(placement["mds"]) == set(cluster.server_ips)

    def test_seed_changes_timings_not_structure(self):
        a = build_cluster(n_servers=2, seed=1)
        b = build_cluster(n_servers=2, seed=2)
        assert a.server_ips == b.server_ips
        assert a.neighborhoods == b.neighborhoods

    def test_same_seed_reproduces_master(self):
        a = build_cluster(n_servers=3, seed=55)
        b = build_cluster(n_servers=3, seed=55)
        assert a.ns_master_ip() == b.ns_master_ip()
