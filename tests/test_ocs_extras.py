"""Additional OCS coverage: oneway semantics, wire accounting, stubs."""

import pytest

from repro.idl import MethodDef, register_interface
from repro.net import Network, server_ip
from repro.ocs import OCSRuntime
from repro.sim import Host, Kernel

register_interface("ExtraSvc", {
    "fire": MethodDef("fire", ("event",), oneway=True),
    "echo": ("v",),
    "big": ("n",),
})


class _Servant:
    def __init__(self):
        self.events = []

    async def fire(self, ctx, event):
        self.events.append(event)

    async def echo(self, ctx, v):
        return v

    async def big(self, ctx, n):
        return b"x" * n


@pytest.fixture
def world():
    kernel = Kernel()
    net = Network(kernel)
    hosts = []
    for i in range(2):
        host = Host(kernel, f"s{i}")
        net.attach(host, server_ip(i))
        hosts.append(host)
    server_proc = hosts[0].spawn("svc")
    server_rt = OCSRuntime(server_proc, net)
    servant = _Servant()
    ref = server_rt.export(servant, "ExtraSvc")
    client_proc = hosts[1].spawn("cli")
    client_rt = OCSRuntime(client_proc, net)
    return kernel, net, servant, ref, client_rt


class TestOneway:
    def test_oneway_completes_immediately(self, world):
        kernel, net, servant, ref, cli = world

        async def main():
            fut = cli.invoke(ref, "fire", ("evt",))
            # Oneway futures are already done: no round trip awaited.
            assert fut.done()
            return await fut

        assert kernel.run_until_complete(main()) is None
        kernel.run(until=1.0)
        assert servant.events == ["evt"]

    def test_oneway_to_dead_process_does_not_raise(self, world):
        kernel, net, servant, ref, cli = world
        net.host_at(ref.ip).find_process("svc").kill()

        async def main():
            await cli.invoke(ref, "fire", ("lost",))
            return "sent"

        assert kernel.run_until_complete(main()) == "sent"
        kernel.run(until=1.0)
        assert servant.events == []

    def test_oneway_generates_single_message(self, world):
        kernel, net, _servant, ref, cli = world

        async def main():
            await cli.invoke(ref, "fire", ("evt",))

        kernel.run_until_complete(main())
        kernel.run(until=1.0)
        assert net.sent_by_kind.get("rpc.call.ExtraSvc.fire") == 1
        assert net.sent_by_kind.get("rpc.reply", 0) == 0


class TestWireAccounting:
    def test_reply_bytes_scale_with_result(self, world):
        kernel, net, _servant, ref, cli = world

        async def main():
            await cli.invoke(ref, "big", (10,))
            small = net.bytes_by_kind["rpc.reply"]
            await cli.invoke(ref, "big", (100_000,))
            return small, net.bytes_by_kind["rpc.reply"] - small

        small, big = kernel.run_until_complete(main())
        assert big > small + 90_000

    def test_call_counters(self, world):
        kernel, _net, _servant, ref, cli = world

        async def main():
            for _ in range(3):
                await cli.invoke(ref, "echo", ("x",))

        kernel.run_until_complete(main())
        assert cli.calls_sent == 3


class TestStubs:
    def test_stub_custom_timeout(self, world):
        kernel, net, _servant, ref, cli = world
        net.host_at(ref.ip).crash()
        stub = cli.stub(ref)

        async def main():
            from repro.ocs import CallTimeout
            try:
                await stub.echo("x", timeout=1.0)
            except CallTimeout:
                return kernel.now

        assert kernel.run_until_complete(main()) == pytest.approx(1.0)

    def test_stub_exposes_ref(self, world):
        _kernel, _net, _servant, ref, cli = world
        assert cli.stub(ref).ref == ref
