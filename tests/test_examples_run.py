"""Every shipped example must run to completion (they are the docs)."""

import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


@pytest.fixture(autouse=True)
def _examples_importable():
    root = str(EXAMPLES_DIR.parent)
    if root not in sys.path:
        sys.path.insert(0, root)
    yield


def run_example(module_name: str, argv=None) -> str:
    import importlib
    if argv is not None:
        sys.argv = [module_name] + list(argv)
    module = importlib.import_module(f"examples.{module_name}")
    importlib.reload(module)   # fresh kernel/cluster per invocation
    module.main()
    return module_name


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart")
        out = capsys.readouterr().out
        assert "circuit released" in out

    def test_failover_drill(self, capsys):
        run_example("failover_drill")
        out = capsys.readouterr().out
        assert "All three section 3.5 scenarios covered" in out

    def test_operator_console(self, capsys):
        run_example("operator_console")
        out = capsys.readouterr().out
        assert "all servers up: True" in out

    def test_availability_report(self, capsys):
        run_example("availability_report")
        out = capsys.readouterr().out
        assert "availability:" in out

    def test_name_service_tour(self, capsys):
        run_example("name_service_tour")
        out = capsys.readouterr().out
        assert "Tour complete" in out

    def test_busy_evening_small(self, capsys):
        run_example("busy_evening", argv=["1"])
        out = capsys.readouterr().out
        assert "movie opens:" in out
