"""Detailed service-level tests: Settop Manager, Connection Manager,
MDS, RDS, boot services."""

import pytest

from repro.cluster import build_full_cluster
from repro.services.connection_manager import (
    BandwidthUnavailable,
    NoSuchConnection,
)
from repro.services.mds import DiskStreamsExhausted, NoSuchTitle
from repro.services.rds import NoSuchData


@pytest.fixture(scope="module")
def cluster():
    return build_full_cluster(n_servers=3, seed=121)


def resolve(cluster, client, name):
    return cluster.run_async(client.names.resolve(name))


class TestSettopManager:
    def test_heartbeats_keep_settop_up(self, cluster):
        stk = cluster.add_settop_kernel(1)
        assert cluster.boot_settops([stk])
        client = cluster.client_on(cluster.servers[0], name="sm1")
        mgr = resolve(cluster, client, "svc/settopmgr/1")
        cluster.run_for(20.0)
        status = cluster.run_async(client.runtime.invoke(
            mgr, "getStatus", ([stk.host.ip],)))
        assert status == ["up"]

    def test_crashed_settop_goes_down_after_missed_heartbeats(self, cluster):
        stk = cluster.add_settop_kernel(2)
        assert cluster.boot_settops([stk])
        client = cluster.client_on(cluster.servers[0], name="sm2")
        mgr = resolve(cluster, client, "svc/settopmgr/2")
        stk.crash()
        cluster.run_for(cluster.params.settop_dead_after + 2.0)
        status = cluster.run_async(client.runtime.invoke(
            mgr, "getStatus", ([stk.host.ip],)))
        assert status == ["down"]

    def test_unknown_settop(self, cluster):
        client = cluster.client_on(cluster.servers[0], name="sm3")
        mgr = resolve(cluster, client, "svc/settopmgr/1")
        status = cluster.run_async(client.runtime.invoke(
            mgr, "getStatus", (["10.0.1.250"],)))
        assert status == ["unknown"]

    def test_state_rebuilds_after_restart(self, cluster):
        """Stateless recovery: heartbeats repopulate the table."""
        stk = cluster.add_settop_kernel(3)
        assert cluster.boot_settops([stk])
        server = cluster.server_for_neighborhood(3)
        index = cluster.servers.index(server)
        cluster.kill_service(index, "settopmgr")
        cluster.run_for(cluster.params.settop_heartbeat * 4 + 5.0)
        client = cluster.client_on(cluster.servers[0], name="sm4")
        mgr = resolve(cluster, client, "svc/settopmgr/3")
        status = cluster.run_async(client.runtime.invoke(
            mgr, "getStatus", ([stk.host.ip],)))
        assert status == ["up"]


class TestConnectionManager:
    def test_allocate_reserves_and_deallocate_releases(self, cluster):
        settop = cluster.add_settop(1)
        client = cluster.client_on(cluster.servers[0], name="cm1")
        cmgr = resolve(cluster, client, "svc/cmgr/1")
        conn = cluster.run_async(client.runtime.invoke(
            cmgr, "allocate", (settop.ip, cluster.servers[0].ip, 2_000_000)))
        assert cluster.net.downlink_of(settop.ip).reserved_bps == 2_000_000
        cluster.run_async(client.runtime.invoke(cmgr, "deallocate", (conn,)))
        assert cluster.net.downlink_of(settop.ip).reserved_bps == 0

    def test_admission_control(self, cluster):
        settop = cluster.add_settop(1)
        client = cluster.client_on(cluster.servers[0], name="cm2")
        cmgr = resolve(cluster, client, "svc/cmgr/1")
        cluster.run_async(client.runtime.invoke(
            cmgr, "allocate", (settop.ip, cluster.servers[0].ip, 5_000_000)))
        with pytest.raises(BandwidthUnavailable):
            cluster.run_async(client.runtime.invoke(
                cmgr, "allocate",
                (settop.ip, cluster.servers[0].ip, 5_000_000)))

    def test_unknown_connection_rejected(self, cluster):
        client = cluster.client_on(cluster.servers[0], name="cm3")
        cmgr = resolve(cluster, client, "svc/cmgr/1")
        with pytest.raises(NoSuchConnection):
            cluster.run_async(client.runtime.invoke(cmgr, "deallocate",
                                                    ("bogus",)))

    def test_state_pushed_to_peer_replicas(self, cluster):
        settop = cluster.add_settop(2)
        client = cluster.client_on(cluster.servers[0], name="cm4")
        cmgr = resolve(cluster, client, "svc/cmgr/2")
        conn = cluster.run_async(client.runtime.invoke(
            cmgr, "allocate", (settop.ip, cluster.servers[0].ip, 1_000_000)))
        cluster.run_for(2.0)
        listing = cluster.run_async(client.names.list_repl("svc/cmgr-all"))
        aware = 0
        for _member, _kind, ref in listing:
            conns = cluster.run_async(client.runtime.invoke(
                ref, "connections", ()))
            if conn in conns:
                aware += 1
        assert aware == 3
        cluster.run_async(client.runtime.invoke(cmgr, "deallocate", (conn,)))

    def test_neighborhood_failover_releases_foreign_circuit(self):
        """A promoted backup cmgr can release circuits it never allocated
        (the switch state outlives the process)."""
        cluster = build_full_cluster(n_servers=3, seed=122)
        settop = cluster.add_settop(1)
        client = cluster.client_on(cluster.servers[0], name="cm5")
        cmgr = resolve(cluster, client, "svc/cmgr/1")
        conn = cluster.run_async(client.runtime.invoke(
            cmgr, "allocate", (settop.ip, cluster.servers[0].ip, 1_000_000)))
        # Crash the neighbourhood's server; a backup replica takes over.
        home = cluster.servers.index(cluster.server_for_neighborhood(1))
        cluster.crash_server(home)
        cluster.run_for(cluster.params.max_failover + 10.0)
        client2 = cluster.client_on(
            cluster.servers[(home + 1) % 3], name="cm6")
        new_cmgr = resolve(cluster, client2, "svc/cmgr/1")
        assert new_cmgr.ip != cluster.servers[home].ip
        cluster.run_async(client2.runtime.invoke(new_cmgr, "deallocate",
                                                 (conn,)))
        assert cluster.net.downlink_of(settop.ip).reserved_bps == 0


class TestMDS:
    def test_list_titles_reflects_disk(self, cluster):
        client = cluster.client_on(cluster.servers[0], name="mds1")
        mds = resolve(cluster, client, f"svc/mds/{cluster.servers[0].name}")
        titles = cluster.run_async(client.runtime.invoke(mds, "listTitles", ()))
        assert "T2" in titles or "Casablanca" in titles

    def test_open_unknown_title(self, cluster):
        client = cluster.client_on(cluster.servers[0], name="mds2")
        mds = resolve(cluster, client, f"svc/mds/{cluster.servers[0].name}")
        settop = cluster.add_settop(1)
        with pytest.raises(NoSuchTitle):
            cluster.run_async(client.runtime.invoke(
                mds, "open", ("No Such Film", settop.ip, "c1", 9999)))

    def test_disk_stream_budget(self):
        from repro.core.params import Params
        cluster = build_full_cluster(
            n_servers=1, params=Params(mds_disk_streams=2), seed=123)
        client = cluster.client_on(cluster.servers[0], name="mds3")
        mds = resolve(cluster, client, f"svc/mds/{cluster.servers[0].name}")
        titles = cluster.run_async(client.runtime.invoke(mds, "listTitles", ()))
        settops = [cluster.add_settop(1) for _ in range(3)]
        for i in range(2):
            cluster.run_async(client.runtime.invoke(
                mds, "open", (titles[0], settops[i].ip, f"c{i}", 9000 + i)))
        with pytest.raises(DiskStreamsExhausted):
            cluster.run_async(client.runtime.invoke(
                mds, "open", (titles[0], settops[2].ip, "c9", 9999)))

    def test_movie_object_lifecycle(self, cluster):
        client = cluster.client_on(cluster.servers[0], name="mds4")
        mds_name = f"svc/mds/{cluster.servers[0].name}"
        mds = resolve(cluster, client, mds_name)
        titles = cluster.run_async(client.runtime.invoke(mds, "listTitles", ()))
        settop = cluster.add_settop(1)
        cluster.net.downlink_of(settop.ip).reserve("test-conn", 3_000_000)
        movie = cluster.run_async(client.runtime.invoke(
            mds, "open", (titles[0], settop.ip, "test-conn", 9100)))
        info = cluster.run_async(client.runtime.invoke(movie, "info", ()))
        assert info["state"] == "open"
        cluster.run_async(client.runtime.invoke(movie, "close", ()))
        from repro.ocs import InvalidObjectReference
        with pytest.raises(InvalidObjectReference):
            cluster.run_async(client.runtime.invoke(movie, "info", ()))
        cluster.net.downlink_of(settop.ip).release("test-conn")


class TestRDS:
    def test_open_data_returns_blob(self, cluster):
        client = cluster.client_on(cluster.servers[0], name="rds1")
        rds = resolve(cluster, client, "svc/rds/1")
        blob = cluster.run_async(client.runtime.invoke(
            rds, "openData", ("fonts/helvetica",), timeout=10.0))
        assert blob.size == 180_000

    def test_missing_data(self, cluster):
        client = cluster.client_on(cluster.servers[0], name="rds2")
        rds = resolve(cluster, client, "svc/rds/1")
        with pytest.raises(NoSuchData):
            cluster.run_async(client.runtime.invoke(rds, "openData",
                                                    ("nope",)))

    def test_list_data(self, cluster):
        client = cluster.client_on(cluster.servers[0], name="rds3")
        rds = resolve(cluster, client, "svc/rds/1")
        names = cluster.run_async(client.runtime.invoke(rds, "listData", ()))
        assert "apps/vod" in names


class TestBootServices:
    def test_boot_info_contents(self, cluster):
        client = cluster.client_on(cluster.servers[0], name="boot1")
        boot = resolve(cluster, client, "svc/boot")
        info = cluster.run_async(client.runtime.invoke(boot, "bootInfo", (1,)))
        assert info["ns_ip"] == cluster.server_for_neighborhood(1).ip
        assert 5 in info["channels"]
        assert len(info["ns_ips"]) == 3

    def test_kbs_single_broadcaster(self, cluster):
        """Primary/backup: only one kernel broadcaster at a time."""
        broadcasting = []
        for host in cluster.servers:
            proc = host.find_process("kbs")
            if proc is not None and any("kbs-broadcast" in t.name
                                        for t in proc._tasks):
                broadcasting.append(host.name)
        assert len(broadcasting) == 1
