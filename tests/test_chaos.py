"""Chaos test: random fault injection under live load, then invariants.

The strongest availability statement the system can make is not any
single scenario but this: after an arbitrary storm of process kills and
a server crash/reboot, with viewers active throughout, the cluster
settles back to a state where every structural invariant holds --
exactly one name-service master, no leaked circuits, placement
satisfied, and a new viewer gets full service.
"""

import pytest

from repro.cluster import build_full_cluster
from repro.sim.rand import SeededRandom
from repro.workloads import run_viewers

KILLABLE = ["mds", "rds", "mms", "cmgr", "vod", "shopping", "game",
            "ras", "settopmgr", "db", "fileservice", "boot", "kbs"]


def run_chaos(seed: int):
    cluster = build_full_cluster(n_servers=3, seed=seed)
    rng = SeededRandom(seed).stream("chaos")
    kernels = [cluster.add_settop_kernel(n) for n in cluster.neighborhoods]
    assert cluster.boot_settops(kernels, timeout=300.0)

    # Viewers run concurrently with the fault storm.
    from repro.workloads.sessions import ViewerSession
    sessions = [ViewerSession(cluster, stk, rng.stream(f"v{i}"))
                for i, stk in enumerate(kernels)]
    for i, s in enumerate(sessions):
        cluster.kernel.create_task(s.run(400.0), name=f"chaos-viewer-{i}")

    # The storm: a kill every ~15 s, one server crash, one reboot.
    crash_done = False
    for round_no in range(20):
        cluster.run_for(15.0)
        roll = rng.random()
        if roll < 0.15 and not crash_done:
            victim = rng.randint(0, 2)
            cluster.crash_server(victim)
            crash_done = True
            crash_victim = victim
        elif roll < 0.2 and crash_done:
            cluster.reboot_server(crash_victim)
            crash_done = False
        else:
            service = rng.choice(KILLABLE)
            server = rng.randint(0, 2)
            cluster.kill_service(server, service)
    if crash_done:
        cluster.reboot_server(crash_victim)

    # Quiesce: stop viewers, let restarts/fail-overs/reconciles finish.
    for stk in kernels:
        app = stk.app_manager.current_app if stk.app_manager else None
        if app is not None and getattr(app, "movie", None) is not None:
            cluster.run_async(app.stop())
    cluster.run_for(3 * cluster.params.max_failover + 60.0)
    return cluster, kernels, sessions


@pytest.mark.parametrize("seed", [1009, 2025])
def test_chaos_invariants(seed):
    cluster, kernels, sessions = run_chaos(seed)

    # Invariant 1: exactly one name-service master.
    masters = []
    for host in cluster.servers:
        proc = host.find_process("ns")
        if proc is not None and "ns_replica" in proc.attachments:
            replica = proc.attachments["ns_replica"]
            if replica.role == "master":
                masters.append(replica.ip)
    assert len(masters) == 1, masters

    # Invariant 2: no leaked circuits on any settop downlink after all
    # sessions stopped their movies and the audits ran.
    leaked = {stk.host.ip: cluster.net.downlink_of(stk.host.ip).reserved_bps
              for stk in kernels
              if cluster.net.downlink_of(stk.host.ip).reserved_bps > 0}
    assert leaked == {}, leaked

    # Invariant 3: the CSC has re-satisfied the placement everywhere.
    services = cluster.running_services()
    for host in cluster.servers:
        for svc in ("mds", "rds", "cmgr", "vod", "ns", "ras"):
            assert svc in services[host.name], (host.name, svc,
                                                services[host.name])

    # Invariant 4: the system still serves: a brand-new settop boots,
    # downloads an app, and plays a movie end to end.
    stk = cluster.add_settop_kernel(1)
    assert cluster.boot_settops([stk], timeout=120.0)
    cluster.run_async(stk.app_manager.tune(5))
    vod = stk.app_manager.current_app
    cluster.run_async(vod.play("T2"))
    cluster.run_for(10.0)
    assert vod.playing and vod.chunks_received >= 8

    # And the viewers actually exercised the system during the storm.
    total_ops = sum(s.stats.opens + s.stats.orders + s.stats.game_rounds
                    for s in sessions)
    assert total_ops >= 10
