"""Crash-consistent storage (PR 8, ISSUE 8).

The faulty-disk model's unit contract (write barrier, torn writes,
bit rot, wedging, and the deep-copy fix for the disk aliasing bug);
ChangeLog per-entry checksums with truncate-to-valid-prefix recovery
and the atomic write-new-then-swap fallback; the compaction-vs-catch-up
boundary and the crash window between compaction and its snapshot hook;
``durability`` falsifiability in both directions (the ack-before-sync
sabotage trips it, the committed E17 power-failure drill replays
green); and the SSC load batch surviving a wedged replica disk with a
``gauges_stale`` transition instead of a wedged report loop.
"""

from pathlib import Path

import pytest

from repro.chaos import FaultSchedule, run_schedule
from repro.cluster import build_cluster
from repro.core.params import Params
from repro.core.replication import ChangeLog, atomic_disk_write
from repro.metrics.disks import total as disk_total
from repro.metrics.replication import all_converged
from repro.sim.host import CorruptBlob, Disk, DiskWedged, Host
from repro.sim.kernel import Kernel

from tests.fixtures.sabotage import (ACK_BEFORE_SYNC_SCHEDULE,
                                     ack_before_sync_params)

E17_SCHEDULE = (Path(__file__).resolve().parent.parent
                / "benchmarks" / "schedules" / "e17_power_failure.json")


def _op(i):
    return ("write", "t", f"k{i}", i, False)


class TestDiskAliasing:
    """The aliasing regression: disk state must never share objects
    with callers (a caller mutating its dict after write(), or mutating
    a read() result, was silently editing the 'durable' image)."""

    def test_write_detaches_from_callers_object(self):
        disk = Disk()
        rows = {"a": 1}
        disk.write("t", rows)
        rows["a"] = 99
        assert disk.read("t") == {"a": 1}

    def test_read_returns_private_copy(self):
        disk = Disk()
        disk.write("t", {"a": 1})
        first = disk.read("t")
        first["a"] = 99
        assert disk.read("t") == {"a": 1}

    def test_buffered_read_is_private_too(self):
        disk = Disk()
        disk.write_barrier = True
        disk.write("t", {"a": 1})
        disk.read("t")["a"] = 99
        assert disk.read("t") == {"a": 1}


class TestDiskFaultModel:
    def test_default_path_writes_are_immediately_durable(self):
        disk = Disk()
        disk.write("t", 1)
        disk.crash()
        assert disk.read("t") == 1
        assert disk.lost_writes == 0

    def test_unsynced_write_lost_on_crash(self):
        disk = Disk()
        disk.write_barrier = True
        disk.write("t", 1)
        assert disk.read("t") == 1          # readable before the crash
        disk.crash()
        assert disk.read("t") is None
        assert disk.lost_writes == 1

    def test_sync_makes_buffered_writes_durable(self):
        disk = Disk()
        disk.write_barrier = True
        disk.write("t", 1)
        disk.sync()
        disk.crash()
        assert disk.read("t") == 1
        assert disk.lost_writes == 0

    def test_unsynced_delete_resurrects_on_crash(self):
        disk = Disk()
        disk.write("t", 1)
        disk.write_barrier = True
        disk.delete("t")
        assert disk.read("t") is None       # deletion visible before crash
        assert "t" not in disk
        disk.crash()
        assert disk.read("t") == 1          # the delete was never synced

    def test_torn_write_leaves_corrupt_blob(self):
        disk = Disk()
        disk.arm_torn_write()               # also arms the barrier
        disk.write("t", {"a": 1})
        disk.crash()
        assert isinstance(disk.read("t"), CorruptBlob)
        assert disk.torn_writes == 1

    def test_corrupt_garbles_in_place(self):
        disk = Disk()
        disk.write("t", {"a": 1})
        assert disk.corrupt("t")
        assert isinstance(disk.read("t"), CorruptBlob)
        assert not disk.corrupt("missing")
        assert disk.corrupted_keys == 1

    def test_wedged_raises_until_healed(self):
        disk = Disk()
        disk.write("t", 1)
        disk.wedged = True
        with pytest.raises(DiskWedged):
            disk.read("t")
        with pytest.raises(DiskWedged):
            disk.write("t", 2)
        with pytest.raises(DiskWedged):
            disk.sync()
        disk.heal()
        assert disk.read("t") == 1

    def test_heal_keeps_barrier_and_buffer(self):
        disk = Disk()
        disk.arm_torn_write()
        disk.write("t", 1)
        disk.heal()                         # disarm tear, keep barrier
        assert disk.write_barrier
        assert disk.read("t") == 1
        disk.crash()
        assert disk.read("t") is None       # lost cleanly, not torn
        assert disk.torn_writes == 0

    def test_host_crash_crashes_the_disk(self):
        host = Host(Kernel(), "forge")
        host.disk.write_barrier = True
        host.disk.write("t", 1)
        host.crash()
        assert host.disk.read("t") is None
        assert host.disk.lost_writes == 1

    def test_counters_snapshot(self):
        disk = Disk()
        disk.write_barrier = True
        disk.write("a", 1)
        disk.write("b", 2)
        disk.sync()
        disk.write("c", 3)
        counters = disk.counters()
        assert counters["writes"] == 3
        assert counters["syncs"] == 1
        assert counters["unsynced"] == 1


class TestChangeLogRecovery:
    def test_reopen_verifies_per_entry_checksums(self):
        disk = Disk()
        log = ChangeLog(disk, "log")
        for i in range(5):
            log.append(_op(i), epoch=1)
        reopened = ChangeLog(disk, "log")
        assert reopened.seq == 5
        assert reopened.digest == log.digest
        assert not reopened.recovered_corrupt
        assert reopened.recovered_truncated == 0

    def test_garbled_entry_truncates_to_valid_prefix(self):
        disk = Disk()
        log = ChangeLog(disk, "log")
        for i in range(5):
            log.append(_op(i), epoch=1)
        seq, epoch, op, _sum = disk.read("log.e/3")
        disk.write("log.e/3", (seq, epoch, op, "0" * 16))
        reopened = ChangeLog(disk, "log")
        assert reopened.seq == 2                    # valid prefix only
        assert reopened.recovered_truncated == 3
        # The invalid suffix is gone from disk, not just from memory.
        assert disk.read("log.e/4") is None
        # The rebuilt digest matches an honest 2-entry history.
        honest = ChangeLog(Disk(), "log")
        for i in range(2):
            honest.append(_op(i), epoch=1)
        assert reopened.digest == honest.digest

    def test_tampered_op_fails_its_checksum(self):
        disk = Disk()
        log = ChangeLog(disk, "log")
        for i in range(3):
            log.append(_op(i), epoch=1)
        seq, epoch, _op_, csum = disk.read("log.e/2")
        disk.write("log.e/2", (seq, epoch,
                               ("write", "t", "k1", 666, False), csum))
        assert ChangeLog(disk, "log").seq == 1

    def test_garbled_first_entry_loses_the_whole_chain(self):
        disk = Disk()
        log = ChangeLog(disk, "log")
        for i in range(3):
            log.append(_op(i), epoch=1)
        disk.corrupt("log.e/1")
        reopened = ChangeLog(disk, "log")
        assert reopened.seq == 0
        assert reopened.recovered_truncated == 3

    def test_unreadable_header_starts_fresh_and_flags_it(self):
        disk = Disk()
        log = ChangeLog(disk, "log", retain=2)
        for i in range(6):
            log.append(_op(i), epoch=1)
        assert log.compactions > 0                  # a header exists now
        disk.corrupt("log")
        reopened = ChangeLog(disk, "log", retain=2)
        assert reopened.seq == 0
        assert reopened.recovered_corrupt

    def test_atomic_swap_falls_back_to_spare(self):
        disk = Disk()
        atomic_disk_write(disk, "k", {"v": 1})
        assert "k.new" not in disk                  # spare pruned on success
        # Interrupted swap: main header garbled, spare still holds the
        # payload -- recovery must read the spare instead of starting
        # fresh.
        log_disk = Disk()
        log = ChangeLog(log_disk, "log", retain=2)
        for i in range(6):
            log.append(_op(i), epoch=1)
        state = log_disk.read("log")
        log_disk.corrupt("log")
        log_disk.write("log.new", state)
        reopened = ChangeLog(log_disk, "log", retain=2)
        assert reopened.seq == 6                    # nothing lost ...
        assert reopened.recovered_corrupt           # ... garbage still flagged
        assert reopened.recovered_truncated == 0
        assert reopened.digest == log.digest

    def test_append_is_one_entry_write_not_a_log_rewrite(self):
        """The schema-2 point: appending must not rewrite the window."""
        disk = Disk()
        log = ChangeLog(disk, "log")
        for i in range(10):
            log.append(_op(i), epoch=1)
        before = disk.writes
        log.append(_op(10), epoch=1)
        assert disk.writes == before + 1            # the entry key, only
        assert disk.read("log") is None             # header: never compacted

    def test_compaction_survives_reopen(self):
        disk = Disk()
        log = ChangeLog(disk, "log", retain=4)
        for i in range(10):
            log.append(_op(i), epoch=2)
        reopened = ChangeLog(disk, "log", retain=4)
        assert reopened.seq == 10
        assert reopened.base_seq == 5
        assert reopened.base_epoch == 2
        assert reopened.digest == log.digest
        # The retained window still serves an in-window cursor.
        assert [e[0] for e in reopened.entries_from(8, 2)] == [9, 10]
        # Dropped entries' keys went with the compaction.
        assert disk.read("log.e/5") is None
        assert disk.read("log.e/6") is not None

    def test_crashed_compaction_orphans_are_swept(self):
        """Header-first compaction: a crash between the header write and
        the entry deletes leaves orphan keys below the watermark, which
        the next recovery removes without touching the live window."""
        disk = Disk()
        log = ChangeLog(disk, "log", retain=4)
        for i in range(10):
            log.append(_op(i), epoch=2)
        # Resurrect two dropped keys, as if the compaction's deletes
        # never hit the platter.
        disk.write("log.e/5", (5, 2, _op(4), "feedfacefeedface"))
        disk.write("log.e/4", (4, 2, _op(3), "feedfacefeedface"))
        reopened = ChangeLog(disk, "log", retain=4)
        assert reopened.seq == 10
        assert reopened.base_seq == 5
        assert reopened.recovered_truncated == 0    # orphans are not a tear
        assert disk.read("log.e/5") is None
        assert disk.read("log.e/4") is None


class TestCompactionRace:
    """A compaction racing a mid-catch-up replica (satellite 3)."""

    def test_cursor_at_watermark_still_serves_incrementally(self):
        log = ChangeLog(Disk(), "log", retain=4)
        for i in range(10):
            log.append(_op(i), epoch=2)
        assert log.base_seq == 5
        tail = log.entries_from(5, 2)               # exactly at watermark
        assert [e[0] for e in tail] == [6, 7, 8, 9, 10]

    def test_cursor_one_before_watermark_forces_snapshot(self):
        log = ChangeLog(Disk(), "log", retain=4)
        for i in range(10):
            log.append(_op(i), epoch=2)
        assert log.entries_from(4, 2) is None       # one past the window

    def test_on_compact_fires_before_truncation_persists(self):
        """The crash-safety ordering: the snapshot hook runs while the
        disk still holds the pre-compaction log, so a crash inside the
        hook loses neither (old snapshot + old log recover), and a crash
        after it commits both (new snapshot + truncated log)."""
        disk = Disk()
        seen = []

        def hook():
            # At hook time the *durable* image must still be the
            # pre-truncation log: the header (if any) still claims the
            # old watermark and every about-to-drop entry key is intact,
            # even though the in-memory window has already moved.
            header = disk.read("log")
            durable_base = header["base_seq"] if header is not None else 0
            seen.append((durable_base, log.base_seq))
            assert disk.read(f"log.e/{durable_base + 1}") is not None

        log = ChangeLog(disk, "log", retain=4, on_compact=hook)
        for i in range(10):
            log.append(_op(i), epoch=2)
        assert seen, "compaction never fired its hook"
        for durable_base, memory_base in seen:
            assert durable_base < memory_base


class TestDurabilityFalsifiable:
    """The durability monitor must go red under ack-before-sync sabotage
    and stay green through the committed E17 power-failure drill."""

    @pytest.fixture(scope="class")
    def sabotaged(self):
        return run_schedule(ACK_BEFORE_SYNC_SCHEDULE, seed=0, settops=2,
                            params=ack_before_sync_params())

    def test_ack_before_sync_trips_durability(self, sabotaged):
        assert not sabotaged.ok
        assert "durability" in sabotaged.violated_monitors()

    def test_sabotage_actually_lost_writes(self, sabotaged):
        assert disk_total(sabotaged.disks, "lost_writes") > 0

    @pytest.fixture(scope="class")
    def e17(self):
        schedule = FaultSchedule.load(E17_SCHEDULE)
        return run_schedule(schedule, seed=0, settops=2,
                            params=Params(hb_trace=True))

    def test_e17_zero_acked_write_loss(self, e17):
        assert e17.ok, e17.violated_monitors()

    def test_e17_zero_hb_races(self, e17):
        assert e17.hb is not None and e17.hb["races"] == 0

    def test_e17_replicas_reconverge(self, e17):
        assert all_converged(e17.replication)

    def test_e17_exercised_the_fault_model(self, e17):
        # A drill that tears and loses nothing proves nothing.
        assert disk_total(e17.disks, "lost_writes") > 0
        assert disk_total(e17.disks, "torn_writes") > 0
        assert disk_total(e17.disks, "corrupted_keys") > 0


class TestGaugesStaleTransition:
    """A wedged replica disk must not wedge the SSC load batch
    (satellite 2): the scrape skips the wedged service, emits one
    ``gauges_stale`` transition, and keeps batching the rest."""

    def test_wedged_disk_yields_stale_transition_not_stall(self):
        cluster = build_cluster(seed=11)
        wedged_at = cluster.now
        cluster.servers[0].disk.wedged = True
        cluster.run_for(3 * cluster.params.load_report_interval)
        stale = [ev for ev in cluster.trace.events
                 if ev.category == "ssc" and ev.event == "gauges_stale"]
        assert stale, "no gauges_stale transition emitted"
        # Once per transition, not once per probe.
        per_service = {}
        for ev in stale:
            key = (ev.fields.get("host"), ev.fields.get("service"))
            per_service[key] = per_service.get(key, 0) + 1
        assert all(count == 1 for count in per_service.values())
        # The batch loop itself kept running past the wedge.
        later_reports = [ev for ev in cluster.trace.events
                         if ev.category == "ssc"
                         and ev.event == "load_report"
                         and ev.time > wedged_at]
        assert later_reports, "the SSC load batch wedged with the disk"
        # Recovery: heal, and the next wedge is a fresh transition.
        cluster.servers[0].disk.wedged = False
        cluster.run_for(2 * cluster.params.load_report_interval)
        cluster.servers[0].disk.wedged = True
        cluster.run_for(2 * cluster.params.load_report_interval)
        stale_after = [ev for ev in cluster.trace.events
                       if ev.category == "ssc"
                       and ev.event == "gauges_stale"]
        assert len(stale_after) > len(stale)
        cluster.servers[0].disk.wedged = False
