"""Test helpers: small clusters for name service / OCS level tests."""

from repro.core.naming import start_name_replica
from repro.core.params import Params
from repro.net import Network, server_ip, settop_ip
from repro.sim import Host, Kernel, SeededRandom
from repro.sim.trace import TraceLog


class NsWorld:
    """A kernel + network + N servers, each running a name replica."""

    def __init__(self, n_servers=3, params=None, seed=7):
        self.kernel = Kernel()
        self.net = Network(self.kernel)
        self.params = params or Params()
        self.rng = SeededRandom(seed)
        self.trace = TraceLog(self.kernel)
        self.hosts = []
        self.replicas = {}
        ips = [server_ip(i) for i in range(n_servers)]
        self.replica_ips = ips
        for i in range(n_servers):
            host = Host(self.kernel, f"server-{i}")
            self.net.attach(host, ips[i])
            self.hosts.append(host)
        for host in self.hosts:
            self.start_replica(host)

    def start_replica(self, host):
        replica = start_name_replica(
            host, self.net, self.params, self.replica_ips,
            rng=self.rng.stream(f"ns-{host.ip}"), trace=self.trace)
        self.replicas[host.ip] = replica
        return replica

    def settle(self, duration=15.0):
        """Run long enough for a master election to complete."""
        self.kernel.run(until=self.kernel.now + duration)
        return self.master()

    def master(self):
        masters = [r for r in self.replicas.values()
                   if r.role == "master" and r.process.alive]
        return masters[0] if masters else None

    def client(self, host, name="client"):
        """A fresh client process + runtime + NameClient on ``host``."""
        from repro.core.naming import NameClient
        from repro.ocs import OCSRuntime
        proc = host.spawn(name)
        runtime = OCSRuntime(proc, self.net)
        return proc, runtime, NameClient(runtime, host.ip, self.params)

    def run_async(self, coro, limit=1e9):
        return self.kernel.run_until_complete(coro, limit=limit)




# ---------------------------------------------------------------------------
# Toy services used by cluster-level tests
# ---------------------------------------------------------------------------

from repro.core.replication import PrimaryBackupBinder  # noqa: E402
from repro.idl import register_interface  # noqa: E402
from repro.services.base import Service  # noqa: E402

register_interface("PingService", {
    "ping": (),
    "whoami": (),
}, doc="toy service for cluster tests")


class PingService(Service):
    """Active-replica toy service: binds svc/ping/<server-ip>."""

    service_name = "ping"

    async def start(self):
        self.ref = self.runtime.export(_PingServant(self), "PingService")
        await self.register_objects([self.ref])
        await self.bind_as_replica("ping", self.host.ip, self.ref,
                                   selector="sameserver")


class PBPingService(Service):
    """Primary/backup toy service racing for svc/pbping."""

    service_name = "pbping"

    async def start(self):
        self.ref = self.runtime.export(_PingServant(self), "PingService")
        await self.register_objects([self.ref])
        self.binder = PrimaryBackupBinder(self, "svc/pbping", self.ref)
        self.spawn_task(self.binder.run(), name="pb-binder")


class _PingServant:
    def __init__(self, svc):
        self._svc = svc

    async def ping(self, ctx):
        return "pong"

    async def whoami(self, ctx):
        return self._svc.host.ip


# ---------------------------------------------------------------------------
# Shared OCS-level scaffolding (PR 5: extracted from test_overload.py so
# overload, cache, and property tests stop re-declaring the same toys)
# ---------------------------------------------------------------------------

from repro.ocs import AdmissionGate, OCSRuntime  # noqa: E402

register_interface("OverloadEcho", {
    "echo": ("value",),
    "slow": ("duration",),
}, doc="toy interface for overload/cache tests")


class EchoServant:
    def __init__(self, kernel):
        self.kernel = kernel

    async def echo(self, ctx, value):
        return value

    async def slow(self, ctx, duration):
        await self.kernel.sleep(duration)
        return "done"


def small_world(n_hosts=2):
    """A kernel + network + ``n_hosts`` bare server hosts."""
    kernel = Kernel()
    net = Network(kernel)
    hosts = []
    for i in range(n_hosts):
        host = Host(kernel, f"server-{i}")
        net.attach(host, server_ip(i))
        hosts.append(host)
    return kernel, net, hosts


def start_echo(kernel, net, host, name="echo-svc"):
    """Export an OverloadEcho servant; returns (runtime, ref)."""
    proc = host.spawn(name)
    runtime = OCSRuntime(proc, net)
    ref = runtime.export(EchoServant(kernel), "OverloadEcho")
    return runtime, ref


def client_runtime(net, host, name="client"):
    proc = host.spawn(name)
    return OCSRuntime(proc, net)


def small_gate(max_inflight=2, max_queue=3):
    params = Params().with_overrides(admission_max_inflight=max_inflight,
                                     admission_max_queue=max_queue)
    return AdmissionGate("toy", params)


class StubNames:
    """Deterministic resolve results for proxy tests.

    Mimics the NameClient surface the RebindingProxy touches: resolve()
    pops scripted results (an Exception entry raises), and invalidate()
    records the proxy's coherence-by-exception reports.
    """

    def __init__(self, refs):
        self._refs = list(refs)
        self.invalidated = []

    async def resolve(self, name):
        ref = self._refs[0]
        if len(self._refs) > 1:
            self._refs.pop(0)
        if isinstance(ref, Exception):
            raise ref
        return ref

    def invalidate(self, name, ref=None):
        self.invalidated.append((name, ref))


# ---------------------------------------------------------------------------
# Shared cluster-level scaffolding (PR 5: the build/boot/viewer dance that
# test_overload.py, the chaos engine tests, and the benchmarks all repeat)
# ---------------------------------------------------------------------------


def booted_cluster(n_servers=3, seed=42, params=None, settops=1,
                   neighborhoods=None, boot_timeout=300.0, fresh=False):
    """A full cluster with ``settops`` booted settop kernels.

    ``neighborhoods`` lists the neighborhood of each kernel; by default
    kernels round-robin over the cluster's neighborhoods.  ``fresh``
    resets the global pid/port/msg counters first (needed by
    module-scoped fixtures that must not see earlier tests' state).
    Returns ``(cluster, kernels)``.
    """
    from repro.cluster.builder import build_full_cluster, fresh_run_state

    if fresh:
        fresh_run_state()
    cluster = build_full_cluster(n_servers=n_servers, seed=seed,
                                 params=params)
    if neighborhoods is None:
        neighborhoods = [cluster.neighborhoods[i % len(cluster.neighborhoods)]
                         for i in range(settops)]
    kernels = [cluster.add_settop_kernel(n) for n in neighborhoods]
    assert cluster.boot_settops(kernels, timeout=boot_timeout), \
        "settop boot did not complete"
    return cluster, kernels


def viewer_evening(cluster, kernels, duration=150.0, seed=7):
    """Run viewer sessions on booted kernels; returns SessionStats."""
    from repro.workloads.sessions import run_viewers
    return run_viewers(cluster, kernels, duration, seed=seed)


#: the chaos sweep configuration tests and CI agree must stay green
GREEN_CHAOS_SEED = 1
GREEN_CHAOS_KWARGS = dict(n_faults=5, horizon=120.0, settops=2)


def green_chaos_runs(runs=2):
    """Run the green chaos seed ``runs`` times (determinism criterion)."""
    from repro.chaos import run_seed
    return [run_seed(GREEN_CHAOS_SEED, **GREEN_CHAOS_KWARGS)
            for _ in range(runs)]
