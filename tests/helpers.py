"""Test helpers: small clusters for name service / OCS level tests."""

from repro.core.naming import start_name_replica
from repro.core.params import Params
from repro.net import Network, server_ip, settop_ip
from repro.sim import Host, Kernel, SeededRandom
from repro.sim.trace import TraceLog


class NsWorld:
    """A kernel + network + N servers, each running a name replica."""

    def __init__(self, n_servers=3, params=None, seed=7):
        self.kernel = Kernel()
        self.net = Network(self.kernel)
        self.params = params or Params()
        self.rng = SeededRandom(seed)
        self.trace = TraceLog(self.kernel)
        self.hosts = []
        self.replicas = {}
        ips = [server_ip(i) for i in range(n_servers)]
        self.replica_ips = ips
        for i in range(n_servers):
            host = Host(self.kernel, f"server-{i}")
            self.net.attach(host, ips[i])
            self.hosts.append(host)
        for host in self.hosts:
            self.start_replica(host)

    def start_replica(self, host):
        replica = start_name_replica(
            host, self.net, self.params, self.replica_ips,
            rng=self.rng.stream(f"ns-{host.ip}"), trace=self.trace)
        self.replicas[host.ip] = replica
        return replica

    def settle(self, duration=15.0):
        """Run long enough for a master election to complete."""
        self.kernel.run(until=self.kernel.now + duration)
        return self.master()

    def master(self):
        masters = [r for r in self.replicas.values()
                   if r.role == "master" and r.process.alive]
        return masters[0] if masters else None

    def client(self, host, name="client"):
        """A fresh client process + runtime + NameClient on ``host``."""
        from repro.core.naming import NameClient
        from repro.ocs import OCSRuntime
        proc = host.spawn(name)
        runtime = OCSRuntime(proc, self.net)
        return proc, runtime, NameClient(runtime, host.ip, self.params)

    def run_async(self, coro, limit=1e9):
        return self.kernel.run_until_complete(coro, limit=limit)




# ---------------------------------------------------------------------------
# Toy services used by cluster-level tests
# ---------------------------------------------------------------------------

from repro.core.replication import PrimaryBackupBinder  # noqa: E402
from repro.idl import register_interface  # noqa: E402
from repro.services.base import Service  # noqa: E402

register_interface("PingService", {
    "ping": (),
    "whoami": (),
}, doc="toy service for cluster tests")


class PingService(Service):
    """Active-replica toy service: binds svc/ping/<server-ip>."""

    service_name = "ping"

    async def start(self):
        self.ref = self.runtime.export(_PingServant(self), "PingService")
        await self.register_objects([self.ref])
        await self.bind_as_replica("ping", self.host.ip, self.ref,
                                   selector="sameserver")


class PBPingService(Service):
    """Primary/backup toy service racing for svc/pbping."""

    service_name = "pbping"

    async def start(self):
        self.ref = self.runtime.export(_PingServant(self), "PingService")
        await self.register_objects([self.ref])
        self.binder = PrimaryBackupBinder(self, "svc/pbping", self.ref)
        self.spawn_task(self.binder.run(), name="pb-binder")


class _PingServant:
    def __init__(self, svc):
        self._svc = svc

    async def ping(self, ctx):
        return "pong"

    async def whoami(self, ctx):
        return self._svc.host.ip
