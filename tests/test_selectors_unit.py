"""Direct unit tests for selector policies and media seeding helpers."""

import pytest

from repro.core.naming.errors import SelectorFailed
from repro.core.naming.selectors import (
    BUILTIN_SELECTORS,
    PreferredMemberSelector,
    SelectorState,
    run_builtin,
)
from repro.net.address import server_ip, settop_ip
from repro.ocs.objref import ObjectRef


def ref_at(ip, port=7000):
    return ObjectRef(ip=ip, port=port, incarnation=(0.0, 1),
                     type_id="NamingContext", object_id="")


@pytest.fixture
def state():
    return SelectorState()


class TestBuiltinCatalog:
    def test_expected_policies_registered(self):
        assert set(BUILTIN_SELECTORS) == {
            "first", "roundrobin", "random", "neighborhood", "sameserver",
            "leastloaded", "loadaware"}

    def test_unknown_policy_rejected(self, state):
        with pytest.raises(SelectorFailed):
            run_builtin("bogus", [("a", None)], "x", "p", state)

    def test_empty_members_rejected(self, state):
        for policy in ("first", "roundrobin", "random"):
            with pytest.raises(SelectorFailed):
                run_builtin(policy, [], "x", "p", state)


class TestNeighborhoodSelector:
    def test_routes_by_caller_neighborhood(self, state):
        bindings = [("1", None), ("2", None)]
        chosen = run_builtin("neighborhood", bindings, settop_ip(2, 0),
                             "svc/cmgr", state)
        assert chosen == "2"

    def test_server_caller_rejected(self, state):
        with pytest.raises(SelectorFailed):
            run_builtin("neighborhood", [("1", None)], server_ip(0),
                        "svc/cmgr", state)

    def test_missing_neighborhood_rejected(self, state):
        with pytest.raises(SelectorFailed):
            run_builtin("neighborhood", [("1", None)], settop_ip(7, 0),
                        "svc/cmgr", state)


class TestSameServerSelector:
    def test_matches_member_name(self, state):
        bindings = [(server_ip(0), None), (server_ip(1), None)]
        assert run_builtin("sameserver", bindings, server_ip(1),
                           "svc/ras", state) == server_ip(1)

    def test_falls_back_to_ref_ip(self, state):
        bindings = [("forge", ref_at(server_ip(0))),
                    ("kiln", ref_at(server_ip(1)))]
        assert run_builtin("sameserver", bindings, server_ip(1),
                           "svc/mds", state) == "kiln"

    def test_no_local_replica_rejected(self, state):
        with pytest.raises(SelectorFailed):
            run_builtin("sameserver", [("x", ref_at(server_ip(0)))],
                        server_ip(2), "svc/ras", state)


class TestLeastLoaded:
    def test_unreported_members_count_as_idle(self, state):
        bindings = [("a", None), ("b", None)]
        state.report_load("p", "a", 5.0)
        assert run_builtin("leastloaded", bindings, "x", "p", state) == "b"

    def test_ties_break_by_name(self, state):
        bindings = [("b", None), ("a", None)]
        assert run_builtin("leastloaded", bindings, "x", "p", state) == "a"

    def test_loads_scoped_per_path(self, state):
        state.report_load("p1", "a", 9.0)
        bindings = [("a", None), ("b", None)]
        # p2 has no loads: ties break to "a".
        assert run_builtin("leastloaded", bindings, "x", "p2", state) == "a"


class TestCustomSelectorServant:
    def test_select_validates_choice(self):
        class Rogue(PreferredMemberSelector):
            def choose(self, bindings, caller_ip):
                return "not-a-member"

        import asyncio  # noqa: F401 - not used; servant is coroutine-based
        servant = Rogue("x")
        from repro.sim import Kernel
        kernel = Kernel()

        async def call():
            return await servant.select(None, [("a", None)], "caller")

        with pytest.raises(SelectorFailed):
            kernel.run_until_complete(call())


class TestMediaSeeding:
    def test_movies_replicated_on_requested_copies(self):
        from repro.cluster import Cluster
        from repro.cluster.media import movie_locations, seed_default_content
        cluster = Cluster(n_servers=3)
        seed_default_content(cluster, copies=2)
        from repro.cluster.media import DEFAULT_MOVIES
        for title in DEFAULT_MOVIES:
            assert len(movie_locations(cluster, title)) == 2

    def test_apps_on_every_server(self):
        from repro.cluster import Cluster
        from repro.cluster.media import DEFAULT_APPS, seed_default_content
        cluster = Cluster(n_servers=2)
        seed_default_content(cluster)
        for host in cluster.servers:
            for app in DEFAULT_APPS:
                assert f"rdsdata/apps/{app}" in host.disk

    def test_blob_wire_size(self):
        from repro.services.data import Blob
        blob = Blob(name="x", size=123_456)
        assert blob.wire_size == 123_456
