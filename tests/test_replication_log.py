"""Incremental log-shipping replication (PR 7, ISSUE 7).

The ChangeLog unit contract; NS catch-up cost proportional to the
heartbeat seq gap (not O(tree)); db write-through, observable
``replication_skipped`` gaps, interleaved-write convergence; online
replica bootstrap for both services; and ``replica_lag_bounded``
falsifiability in both directions (the wedged-log sabotage trips it,
the committed kill schedules replay green).
"""

import pytest

from repro.chaos import FaultSchedule, default_monitors, run_schedule
from repro.cluster import build_cluster
from repro.core.rebind import RebindingProxy
from repro.core.replication import GENESIS_EPOCH, ChangeLog
from repro.db.service import DatabaseClient
from repro.metrics.replication import all_converged, collect_replication
from repro.ocs.exceptions import ServiceUnavailable
from repro.sim.host import Disk
from repro.sim.kernel import gather

from tests.fixtures.sabotage import WEDGED_LOG_SCHEDULE, wedged_replica_log
from tests.helpers import NsWorld
from tests.test_naming_service import make_ref


def _op(i):
    return ("write", "t", f"k{i}", i, False)


class TestChangeLogUnit:
    def test_append_assigns_monotonic_seqs(self):
        log = ChangeLog(Disk(), "log")
        assert [log.append(_op(i), epoch=1) for i in range(3)] == [1, 2, 3]
        assert log.seq == 3
        assert [e[0] for e in log.entries] == [1, 2, 3]

    def test_record_duplicate_is_noop_and_gap_raises(self):
        log = ChangeLog(Disk(), "log")
        assert log.record(1, 1, _op(1))
        assert not log.record(1, 1, _op(1))   # duplicate delivery
        assert log.seq == 1
        with pytest.raises(ValueError):
            log.record(3, 1, _op(3))          # seq 2 missing

    def test_state_survives_reopen(self):
        disk = Disk()
        log = ChangeLog(disk, "log")
        for i in range(5):
            log.append(_op(i), epoch=7)
        reopened = ChangeLog(disk, "log")
        assert reopened.seq == 5
        assert reopened.digest == log.digest
        assert reopened.entries == log.entries

    def test_digest_is_history_not_cursor(self):
        a, b, c = (ChangeLog(Disk(), "log") for _ in range(3))
        for i in range(4):
            a.append(_op(i), epoch=1)
            b.append(_op(i), epoch=1)
            c.append(_op(i if i < 3 else 99), epoch=1)
        assert a.digest == b.digest
        assert a.seq == c.seq and a.digest != c.digest

    def test_compaction_keeps_window_and_watermark(self):
        fired = []
        log = ChangeLog(Disk(), "log", retain=4,
                        on_compact=lambda: fired.append(log.seq))
        for i in range(10):
            log.append(_op(i), epoch=2)
        # Hysteresis: the log grew to 2*retain+1 entries (seq 9), then
        # cut back to retain in one step; one more append since.
        assert len(log.entries) == 5
        assert log.base_seq == 5 and log.base_epoch == 2
        assert log.compactions == 1 and fired == [9]
        assert log.epoch_at(log.base_seq) == 2      # watermark answers
        assert log.epoch_at(log.base_seq - 1) is None  # truncated away

    def test_compaction_frequency_is_appends_over_retain(self):
        """The hysteresis contract: steady-state appends pay one
        compaction (one header rewrite + one snapshot hook) per
        ``retain`` appends -- not one per append at the high-water
        mark, the schema-1 pathology the changelog_append bench caught
        (5000 appends used to cost ~4500 compactions)."""
        retain = 8
        n = 400
        log = ChangeLog(Disk(), "log", retain=retain)
        for i in range(n):
            log.append(_op(i), epoch=1)
        assert 0 < log.compactions <= n // retain
        # The window breathes between retain and 2*retain entries.
        assert retain <= len(log.entries) <= 2 * retain
        # And the retained tail still serves incremental catch-up.
        tail = log.entries_from(log.base_seq, 1)
        assert [e[0] for e in tail] == list(range(log.base_seq + 1, n + 1))

    def test_entries_from_serves_shared_history_only(self):
        log = ChangeLog(Disk(), "log", retain=4)
        for i in range(10):
            log.append(_op(i), epoch=2)
        # In-window cursor: exactly the missing tail.
        tail = log.entries_from(8, 2)
        assert [e[0] for e in tail] == [9, 10]
        assert log.entries_from(10, 2) == []        # caught up
        assert log.entries_from(11, 2) is None      # ahead of us
        assert log.entries_from(3, 2) is None       # truncated past cursor
        assert log.entries_from(8, 9) is None       # forked reign
        # A genesis cursor needs no epoch agreement.
        fresh = ChangeLog(Disk(), "log")
        fresh.append(_op(0), epoch=5)
        assert [e[0] for e in fresh.entries_from(0, GENESIS_EPOCH)] == [1]

    def test_reset_adopts_snapshot_cursor(self):
        log = ChangeLog(Disk(), "log")
        log.append(_op(0), epoch=1)
        log.reset(40, 6, "adopted-digest")
        assert (log.seq, log.base_seq, log.base_epoch) == (40, 40, 6)
        assert log.digest == "adopted-digest"
        assert log.entries_from(40, 6) == []
        assert log.record(41, 6, _op(41))
        assert log.lag_behind(45) == 4


# ---------------------------------------------------------------------------
# NS: heartbeat seq gaps close in O(gap) ops, not O(tree) snapshots
# ---------------------------------------------------------------------------


class TestNsIncrementalCatchUp:
    def test_heartbeat_gap_costs_ops_proportional_to_gap(self):
        """ISSUE 7 satellite 3: the old on_heartbeat path took a full
        ``state_fetched`` snapshot for *any* seq gap; now the behind
        replica must pull exactly the missed entries."""
        world = NsWorld(n_servers=3, seed=11)
        master = world.settle()
        slave = next(r for r in world.replicas.values()
                     if r.role == "slave" and r.process.alive)
        _, _, client = world.client(master.process.host)
        world.run_async(client.bind_new_context("gapctx"))
        world.kernel.run(until=world.kernel.now + 3.0)
        # Streaming path healthy: the slave holds the pre-partition state.
        assert slave.store.applied_seq == master.store.applied_seq > 0
        pre = sum(ev.fields["ops"] for ev in world.trace.select(
            "ns", "catch_up", replica=slave.ip))
        # Partition the slave away, grow the namespace by a known gap.
        world.net.partition({slave.ip}, {ip for ip in world.replicas
                                         if ip != slave.ip})
        for i in range(8):
            world.run_async(client.bind(f"gapctx/svc{i}", make_ref(master.ip)))
        gap = master.store.applied_seq - slave.store.applied_seq
        assert gap == 8
        world.net.heal_partitions()
        world.kernel.run(until=world.kernel.now + 15.0)
        assert slave.store.applied_seq == master.store.applied_seq
        # Catch-up cost == the gap, zero full-snapshot transfers.
        pulled = sum(ev.fields["ops"] for ev in world.trace.select(
            "ns", "catch_up", replica=slave.ip))
        assert pulled - pre == gap
        assert world.trace.select("ns", "state_fetched") == []
        assert slave.snapshot_fetches == 0
        assert slave.changelog.digest == master.changelog.digest

    def test_online_bootstrap_restarted_replica_resumes_from_disk(self):
        """A killed NS replica rejoins mid-workload, replays its on-disk
        log, and pulls only the missed tail while the peers serve."""
        world = NsWorld(n_servers=3, seed=12)
        master = world.settle()
        slave = next(r for r in world.replicas.values()
                     if r.role == "slave" and r.process.alive)
        slave_host = slave.process.host
        _, _, client = world.client(master.process.host)
        world.run_async(client.bind_new_context("boot"))
        world.run_async(client.bind("boot/before", make_ref(master.ip)))
        world.kernel.run(until=world.kernel.now + 3.0)
        # The slave holds pre-kill state on disk (applied + logged).
        assert slave.store.applied_seq == master.store.applied_seq > 0
        slave.process.kill()
        for i in range(5):
            world.run_async(client.bind(f"boot/while{i}", make_ref(master.ip)))
        revived = world.start_replica(slave_host)
        world.settle(20.0)
        assert revived.role == "slave"
        assert revived.store.applied_seq == master.store.applied_seq
        assert revived.store.exists("boot/while4")
        assert revived.snapshot_fetches == 0
        assert world.trace.select("ns", "restored", replica=slave_host.ip)
        assert revived.changelog.digest == master.changelog.digest


# ---------------------------------------------------------------------------
# db: write-through, observable skips, convergence, online bootstrap
# ---------------------------------------------------------------------------


def _db_client(cluster, server_index=0, name="db-client"):
    client = cluster.client_on(cluster.servers[server_index], name=name)
    proxy = RebindingProxy(client.runtime, client.names, "svc/db",
                           cluster.params)
    return DatabaseClient(proxy)


def _db_services(cluster):
    out = {}
    for host in cluster.servers:
        proc = host.find_process("db")
        if proc is not None and proc.alive:
            out[host.ip] = proc.attachments["service"]
    return out


class TestDbReplication:
    def test_write_through_acks_after_change_streams_back(self):
        cluster = build_cluster(n_servers=3, seed=71)
        cluster.run_for(2.0)
        services = _db_services(cluster)
        primary_ip = cluster.db_primary_ip()
        assert primary_ip is not None
        backup = next(s for ip, s in services.items() if ip != primary_ip)
        seq = cluster.run_async(backup.write("wt", "k", "direct", False))
        # Read-your-write locally: the ack waited for the stream-back.
        assert backup.get("wt", "k") == "direct"
        assert backup.log.seq >= seq
        assert services[primary_ip].get("wt", "k") == "direct"

    def test_replication_skip_is_observable(self, monkeypatch):
        """ISSUE 7 satellite 1: a ``list_repl`` failure used to drop the
        push silently; now it retries on the backoff and, only once the
        budget is spent, counts and traces the skipped replication."""
        cluster = build_cluster(n_servers=3, seed=72)
        cluster.run_for(2.0)
        primary = _db_services(cluster)[cluster.db_primary_ip()]

        async def broken_list_repl(name):
            raise ServiceUnavailable("ns flaking")

        monkeypatch.setattr(primary.names, "list_repl", broken_list_repl)
        seq = cluster.run_async(primary.write("obs", "k", 1, False))
        assert primary.replication_skipped == 1
        events = cluster.trace.select("db", "replication_skipped")
        assert events and events[-1].fields["reason"] == "list_repl"
        monkeypatch.undo()
        # The gap is repaired from the log by anti-entropy, not lost.
        cluster.run_for(cluster.params.db_replication_poll + 5.0)
        for svc in _db_services(cluster).values():
            assert svc.log.seq >= seq
            assert svc.get("obs", "k") == 1

    def test_interleaved_puts_converge_to_one_write_order(self):
        """ISSUE 7 satellite 2: pushes now carry (seq, epoch), so two
        writers hammering one key leave every replica with the same
        write order -- identical change-log digests, which PR 6 made the
        write-order conformance oracle."""
        cluster = build_cluster(n_servers=3, seed=73)
        cluster.run_for(2.0)
        a = _db_client(cluster, 1, name="ia")
        b = _db_client(cluster, 2, name="ib")

        async def storm(db, values):
            for v in values:
                await db.put("ilv", "k", v)

        cluster.run_async(gather(cluster.kernel, [
            storm(a, [1, 3, 5, 7, 9]), storm(b, [2, 4, 6, 8, 10])]))
        cluster.run_for(cluster.params.db_replication_poll + 5.0)
        services = _db_services(cluster)
        digests = {svc.log.digest for svc in services.values()}
        assert len(digests) == 1, "replicas applied different write orders"
        assert len({svc.log.seq for svc in services.values()}) == 1
        assert len({repr(svc.get("ilv", "k"))
                    for svc in services.values()}) == 1
        replication = collect_replication(cluster)
        assert replication["db"]["converged"]
        assert all_converged(replication)

    def test_online_bootstrap_restarted_db_catches_up_from_log(self):
        """Acceptance: a db replica restarted mid-workload pulls the
        missed tail incrementally -- zero snapshot fetches -- while the
        remaining replicas keep serving writes."""
        cluster = build_cluster(n_servers=3, seed=74)
        cluster.run_for(2.0)
        primary_ip = cluster.db_primary_ip()
        victim_index = next(i for i, host in enumerate(cluster.servers)
                            if host.ip != primary_ip)
        victim_ip = cluster.servers[victim_index].ip
        db = _db_client(cluster, name="boot")
        cluster.run_async(db.put("ob", "before", 1))
        assert cluster.kill_service(victim_index, "db")
        for i in range(6):   # peers serve traffic while the victim is down
            cluster.run_async(db.put("ob", f"while{i}", i))
        cluster.run_for(cluster.params.db_replication_poll + 10.0)
        revived = _db_services(cluster)[victim_ip]
        primary = _db_services(cluster)[primary_ip]
        assert revived.log.seq == primary.log.seq
        assert revived.log.digest == primary.log.digest
        assert revived.snapshot_fetches == 0
        assert revived.get("ob", "while5") == 5

    def test_restarted_primary_reclaims_stale_binding(self):
        """A killed primary leaves ``svc/db`` naming a dead endpoint.

        The restarted process must swap that stale binding for its own
        ref on its first bind attempt (section 9.5: restart invisible)
        instead of parking in AlreadyBound until the RAS audit removes
        it -- the pre-fix gap left db writes unavailable for up to an
        audit cycle plus a bind retry, longer than a viewer-facing
        deadline.
        """
        cluster = build_cluster(n_servers=3, seed=75)
        cluster.run_for(2.0)
        primary_ip = cluster.db_primary_ip()
        index = next(i for i, host in enumerate(cluster.servers)
                     if host.ip == primary_ip)
        t_kill = cluster.kernel.now
        assert cluster.kill_service(index, "db")
        cluster.run_for(5.0)   # SSC restart (~1 s) + first bind attempt
        # Reclaimed by the restart, well inside the audit bound.
        assert cluster.db_primary_ip() == primary_ip
        promoted = [e for e in cluster.trace.select("db", "promoted")
                    if e.time > t_kill]
        assert promoted and promoted[0].time - t_kill < 5.0
        # The name was swapped, not audit-removed.
        assert not [e for e in cluster.trace.select("ns", "audit_removed")
                    if e.fields["path"] == "svc/db"]
        # And writes flow again immediately.
        db = _db_client(cluster, server_index=(index + 1) % 3)
        cluster.run_async(db.put("reclaim", "k", "fast"))
        assert _db_services(cluster)[primary_ip].get("reclaim", "k") == "fast"


# ---------------------------------------------------------------------------
# replica_lag_bounded: must fire when broken, stay quiet when healthy
# ---------------------------------------------------------------------------


class TestReplicaLagFalsifiability:
    def test_wedged_log_trips_the_monitor(self):
        with wedged_replica_log():
            result = run_schedule(WEDGED_LOG_SCHEDULE, seed=5, settops=2)
        assert "replica_lag_bounded" in result.violated_monitors()
        assert not result.replication["db"]["converged"]

    def test_e13_kill_schedule_replays_green(self):
        schedule = FaultSchedule.load("benchmarks/schedules/e13_kills.json")
        result = run_schedule(schedule, seed=3, settops=2,
                              monitors=default_monitors())
        assert result.ok, [v.detail for v in result.violations]
        assert all_converged(result.replication)

    def test_e16_kill_primary_schedule_replays_green(self):
        schedule = FaultSchedule.load(
            "benchmarks/schedules/e16_kill_primary.json")
        result = run_schedule(schedule, seed=0, settops=2,
                              monitors=default_monitors())
        assert result.ok, [v.detail for v in result.violations]
        assert all_converged(result.replication)
        # The drill's gaps all fit in the retained log: no snapshots.
        assert result.replication["db"]["snapshot_fetches"] == 0
