"""Network partition tests: majority rules in the name service.

The paper's claim (section 4.6): "the name service is available as long
as a majority of replicas are alive."  The flip side we enforce: a
master partitioned into a minority must stop serving updates (it steps
down after losing quorum contact), so the majority side's new master is
the only writer -- no split brain.
"""

import pytest

from repro.core.naming import NoMaster
from repro.ocs import ObjectRef, ServiceUnavailable

from tests.helpers import NsWorld


def make_ref(ip, port=7777):
    return ObjectRef(ip=ip, port=port, incarnation=(0.0, 99),
                     type_id="TestEcho", object_id="")


def partition_master_away(world):
    master = world.settle(30.0)
    assert master is not None
    minority = {master.ip}
    majority = {ip for ip in world.replica_ips if ip != master.ip}
    master.epoch_at_partition = master.epoch
    world.net.partition(minority, majority)
    return master, minority, majority


class TestQuorum:
    def test_majority_side_elects_new_master(self):
        world = NsWorld(n_servers=3, seed=41)
        old_master, _minority, majority = partition_master_away(world)
        world.kernel.run(until=world.kernel.now + 40.0)
        new_masters = [r for r in world.replicas.values()
                       if r.role == "master" and r.ip in majority]
        assert len(new_masters) == 1
        # A higher epoch than the partitioned-away master held: the
        # isolated node may have inflated its own counter with futile
        # candidacies, so compare against the epoch at partition time.
        assert new_masters[0].epoch > old_master.epoch_at_partition

    def test_minority_master_steps_down(self):
        world = NsWorld(n_servers=3, seed=42)
        old_master, _minority, _majority = partition_master_away(world)
        world.kernel.run(until=world.kernel.now + 40.0)
        # The isolated ex-master no longer believes it is master.
        assert old_master.role != "master"

    def test_minority_rejects_updates_majority_accepts(self):
        world = NsWorld(n_servers=3, seed=43)
        old_master, minority, majority = partition_master_away(world)
        world.kernel.run(until=world.kernel.now + 40.0)
        minority_host = world.net.host_at(next(iter(minority)))
        majority_host = world.net.host_at(sorted(majority)[0])
        _, _, minority_client = world.client(minority_host, name="min-c")
        _, _, majority_client = world.client(majority_host, name="maj-c")
        # Majority side: updates flow.
        world.run_async(majority_client.bind_new_context("part"))
        world.run_async(majority_client.bind("part/x",
                                             make_ref(majority_host.ip)))
        # Minority side: updates refused (no reachable master).
        with pytest.raises((NoMaster, ServiceUnavailable)):
            world.run_async(minority_client.bind_new_context("rogue"))

    def test_minority_still_serves_stale_reads(self):
        """Reads never require the master (section 4.6)."""
        world = NsWorld(n_servers=3, seed=44)
        master = world.settle()
        _, _, client = world.client(master.process.host, name="writer")
        world.run_async(client.bind_new_context("pre"))
        world.run_async(client.bind("pre/x", make_ref(master.ip)))
        world.kernel.run(until=world.kernel.now + 2.0)
        _master, minority, _majority = partition_master_away(world)
        world.kernel.run(until=world.kernel.now + 30.0)
        minority_host = world.net.host_at(next(iter(minority)))
        _, _, reader = world.client(minority_host, name="min-reader")
        got = world.run_async(reader.resolve("pre/x"))
        assert got.ip == master.ip

    def test_heal_reconverges_to_one_master(self):
        world = NsWorld(n_servers=3, seed=45)
        _old, _minority, majority = partition_master_away(world)
        world.kernel.run(until=world.kernel.now + 40.0)
        # Write on the majority side while partitioned.
        maj_host = world.net.host_at(sorted(majority)[0])
        _, _, client = world.client(maj_host, name="maj-w")
        world.run_async(client.bind_new_context("healed"))
        world.net.heal_partitions()
        world.kernel.run(until=world.kernel.now + 40.0)
        masters = [r for r in world.replicas.values()
                   if r.role == "master" and r.process.alive]
        assert len(masters) == 1
        # Everyone converged to the same state, including the ex-minority.
        seqs = {r.store.applied_seq for r in world.replicas.values()
                if r.process.alive}
        assert len(seqs) == 1
        for r in world.replicas.values():
            if r.process.alive:
                assert r.store.exists("healed")
