"""The chaos engine: vocabulary, schedules, runner, monitors, minimizer.

The expensive end-to-end properties share module-scoped fixtures so the
simulator runs once per property, not once per assertion:

* a green sweep seed runs twice and must produce byte-identical digests;
* a sabotaged cluster (name-service quorum forced to 1) must trip the
  ``ns_agreement`` monitor, and the minimizer must shrink the failing
  schedule to a handful of essential faults.
"""

import json

import pytest

from repro.chaos import (
    FAULT_KINDS,
    Fault,
    FaultError,
    FaultSchedule,
    generate_schedule,
    minimize_schedule,
    run_schedule,
    write_minimal,
)
from repro.chaos.faults import parse_target
from repro.sim.rand import SeededRandom
from tests.fixtures.sabotage import SPLIT_BRAIN_SCHEDULE, broken_quorum
from tests.helpers import green_chaos_runs


@pytest.fixture(scope="module")
def green_runs():
    """The same seed run twice -- the determinism acceptance criterion."""
    return green_chaos_runs(runs=2)


@pytest.fixture(scope="module")
def sabotage():
    """A quorum-of-1 cluster under a split schedule, plus its shrink."""
    with broken_quorum():
        failing = run_schedule(SPLIT_BRAIN_SCHEDULE, seed=7, settops=2)
        assert not failing.ok, "sabotaged cluster failed to trip any monitor"
        minimized = minimize_schedule(SPLIT_BRAIN_SCHEDULE, seed=7,
                                      failing=failing, settops=2)
    return failing, minimized


class TestFaultVocabulary:
    def test_every_kind_is_registered(self):
        assert "kill_service" in FAULT_KINDS
        assert "partition" in FAULT_KINDS
        assert "gray" in FAULT_KINDS

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError):
            Fault(10.0, "meteor_strike", {})

    def test_missing_arg_rejected(self):
        with pytest.raises(FaultError):
            Fault(10.0, "kill_service", {"server": 0})  # no service

    def test_unknown_arg_rejected(self):
        with pytest.raises(FaultError):
            Fault(10.0, "heal", {"server": 0})

    def test_negative_time_rejected(self):
        with pytest.raises(FaultError):
            Fault(-1.0, "heal", {})

    def test_json_round_trip(self):
        fault = Fault(42.5, "loss", {"target": "settop:1",
                                     "probability": 0.3})
        again = Fault.from_dict(json.loads(json.dumps(fault.to_dict())))
        assert again == fault

    def test_describe_is_stable(self):
        fault = Fault(10.0, "kill_service", {"server": 2, "service": "mds"})
        assert fault.describe() == \
            Fault.from_dict(fault.to_dict()).describe()

    def test_parse_target(self):
        assert parse_target("server:0") == ("server", 0)
        assert parse_target("settop:3") == ("settop", 3)
        with pytest.raises(FaultError):
            parse_target("toaster:1")


class TestSchedule:
    def test_generation_is_deterministic(self):
        schedules = [
            generate_schedule(SeededRandom(9).stream("chaos-schedule"),
                              n_faults=8, horizon=240.0, n_servers=3,
                              n_settops=4)
            for _ in range(2)
        ]
        assert schedules[0].to_dict() == schedules[1].to_dict()

    def test_faults_sorted_and_inside_horizon(self):
        schedule = generate_schedule(SeededRandom(5).stream("s"),
                                     n_faults=10, horizon=200.0)
        times = [f.at for f in schedule]
        assert times == sorted(times)
        assert all(0 <= t < schedule.horizon for t in times)

    def test_fault_at_or_past_horizon_rejected(self):
        with pytest.raises(FaultError):
            FaultSchedule(faults=(Fault(150.0, "heal", {}),), horizon=150.0)

    def test_without_and_advanced(self):
        schedule = SPLIT_BRAIN_SCHEDULE
        dropped = schedule.without(1)
        assert len(dropped) == len(schedule) - 1
        assert all(f.kind != "partition" for f in dropped)
        earlier = schedule.advanced(3, 40.0)
        heals = [f for f in earlier if f.kind == "heal"]
        assert heals[0].at == 40.0
        # the original is untouched (schedules are values)
        assert schedule.faults[3].at == 110.0

    def test_json_file_round_trip(self, tmp_path):
        path = tmp_path / "schedule.json"
        SPLIT_BRAIN_SCHEDULE.save(path)
        again = FaultSchedule.load(path)
        assert again == SPLIT_BRAIN_SCHEDULE


class TestEngineGreenRun:
    def test_all_monitors_green(self, green_runs):
        result = green_runs[0]
        assert result.ok, [f"[{v.monitor}] t={v.time:.1f} {v.detail}"
                           for v in result.violations]

    def test_faults_actually_injected(self, green_runs):
        result = green_runs[0]
        assert result.faults_injected == len(result.schedule)

    def test_viewers_kept_watching(self, green_runs):
        result = green_runs[0]
        assert result.viewer_ops > 0
        assert set(result.availability) != set()

    def test_same_seed_same_digest(self, green_runs):
        first, second = green_runs
        assert first.digest == second.digest
        assert first.trace_lines == second.trace_lines
        assert first.viewer_ops == second.viewer_ops


class TestSabotageAndMinimizer:
    def test_monitors_catch_split_brain(self, sabotage):
        failing, _ = sabotage
        assert "ns_agreement" in failing.violated_monitors()

    def test_minimizer_shrinks_to_essential_faults(self, sabotage):
        failing, minimized = sabotage
        assert len(minimized.schedule) <= 3
        assert len(minimized.schedule) < len(SPLIT_BRAIN_SCHEDULE)
        # the shrunk schedule still trips an originally-violated monitor
        assert set(minimized.result.violated_monitors()) \
            & set(failing.violated_monitors())
        # the split itself must survive shrinking: without the partition
        # there is no second master
        assert any(f.kind == "partition" for f in minimized.schedule)

    def test_minimizer_spends_bounded_runs(self, sabotage):
        _, minimized = sabotage
        assert 0 < minimized.runs <= 40

    def test_write_minimal_is_replayable(self, sabotage, tmp_path):
        _, minimized = sabotage
        path = write_minimal(minimized, tmp_path)
        with open(path) as fh:
            payload = json.load(fh)
        assert payload["minimal_faults"] == len(minimized.schedule)
        replay = FaultSchedule.from_dict(payload["schedule"])
        assert replay == minimized.schedule
