"""Shared fixtures."""

import pytest

from tests.helpers import NsWorld


@pytest.fixture
def ns_world():
    world = NsWorld()
    assert world.settle() is not None
    return world
