"""Tests for the MMS orphan-circuit reconciliation (section 10.1.1)."""

import pytest

from repro.cluster import build_full_cluster


def mms_status(cluster, client):
    async def call():
        ref = await client.names.resolve("svc/mms")
        return await client.runtime.invoke(ref, "status", ())

    return cluster.run_async(call())


class TestOrphanCircuits:
    def test_unexplained_circuit_reclaimed_after_grace(self):
        """A circuit allocated outside any MMS session (e.g. the MMS died
        between allocate and open) is collected by the audit."""
        cluster = build_full_cluster(n_servers=2, seed=181)
        settop = cluster.add_settop(1)
        client = cluster.client_on(cluster.servers[0], name="oc")
        cmgr = cluster.run_async(client.names.resolve("svc/cmgr/1"))
        cluster.run_async(client.runtime.invoke(
            cmgr, "allocate", (settop.ip, cluster.servers[0].ip, 3_000_000)))
        downlink = cluster.net.downlink_of(settop.ip)
        assert downlink.reserved_bps == 3_000_000
        # grace (60s) + audit interval (30s) + slack
        cluster.run_for(120.0)
        assert downlink.reserved_bps == 0
        trace = cluster.trace.select("mms", "orphan_circuit_reclaimed")
        assert len(trace) == 1

    def test_live_session_circuit_not_reclaimed(self):
        """Circuits backing real sessions survive the audit."""
        cluster = build_full_cluster(n_servers=2, seed=182)
        stk = cluster.add_settop_kernel(1)
        assert cluster.boot_settops([stk])
        cluster.run_async(stk.app_manager.tune(5))
        vod = stk.app_manager.current_app
        cluster.run_async(vod.play("T2"))
        cluster.run_for(120.0)  # several audit rounds
        assert vod.playing
        downlink = cluster.net.downlink_of(stk.host.ip)
        assert downlink.reserved_bps == 3_000_000
        assert cluster.trace.select("mms", "orphan_circuit_reclaimed") == []

    def test_channel_change_closes_movie_gracefully(self):
        """Section 3.4.5 via the AM: switching apps releases resources."""
        cluster = build_full_cluster(n_servers=2, seed=183)
        stk = cluster.add_settop_kernel(1)
        assert cluster.boot_settops([stk])
        cluster.run_async(stk.app_manager.tune(5))
        vod = stk.app_manager.current_app
        cluster.run_async(vod.play("T2"))
        cluster.run_for(5.0)
        downlink = cluster.net.downlink_of(stk.host.ip)
        assert downlink.reserved_bps > 0
        # Channel-surf away: the AM shuts the VOD app down cleanly.
        cluster.run_async(stk.app_manager.tune(6))
        cluster.run_for(2.0)
        assert downlink.reserved_bps == 0
        client = cluster.client_on(cluster.servers[0], name="cc")
        assert mms_status(cluster, client)["sessions"] == 0


class TestSupersededSessions:
    def test_reopen_after_app_crash_reclaims_old_circuit(self):
        """Section 10.1.1: a client calling back in to restart its movie
        supersedes the session its crashed predecessor leaked."""
        cluster = build_full_cluster(n_servers=2, seed=184)
        stk = cluster.add_settop_kernel(1)
        assert cluster.boot_settops([stk])
        cluster.run_async(stk.app_manager.tune(5))
        vod = stk.app_manager.current_app
        cluster.run_async(vod.play("T2"))
        cluster.run_for(5.0)
        downlink = cluster.net.downlink_of(stk.host.ip)
        assert downlink.reserved_bps == 3_000_000
        # The app crashes without closing; the AM restarts it; the
        # restarted app resumes the same title.
        stk.host.find_process("vod-app").kill(status="segfault")
        cluster.run_for(15.0)
        new_vod = stk.app_manager.current_app
        assert new_vod is not vod and new_vod.name == "vod"
        cluster.run_async(new_vod.play("T2"))
        cluster.run_for(5.0)
        # Exactly one circuit: the old session was superseded, not leaked.
        assert downlink.reserved_bps == 3_000_000
        client = cluster.client_on(cluster.servers[0], name="ss")
        assert mms_status(cluster, client)["sessions"] == 1
        assert len(cluster.trace.select("mms", "superseded")) == 1
        # Resume point survived via the VOD service bookmark machinery.
        assert new_vod.position >= 3.0
