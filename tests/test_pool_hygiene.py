"""Pool hygiene (ISSUE 10): recycling must never leak stale state.

Two free lists exist -- reply ``Message`` envelopes and internal
``TimerHandle`` shells -- and both follow the same contract:
reset-on-release, verify-on-acquire.  The verify side is what these
tests attack: each sabotage deliberately skips a reset (the bug class
pooling invites) and asserts the next acquire raises
:class:`PoolHygieneError` instead of silently handing out a dirty
object.  The last tests prove pooling is *invisible*: envelopes really
cycle during a cluster run, and a same-seed double run still traces
byte-identically.
"""

import pytest

from repro.analysis import double_run_diff
from repro.cluster import build_cluster
from repro.net.message import Message
from repro.sim.errors import PoolHygieneError
from repro.sim.kernel import Kernel


@pytest.fixture(autouse=True)
def fresh_message_pool():
    """Isolate the class-wide reply-envelope pool per test."""
    saved = Message._pool[:]
    Message._pool.clear()
    yield
    Message._pool[:] = saved


def _reply(payload=None):
    return Message.acquire(src=("10.0.0.1", 7), dst=("10.0.0.2", 9),
                           kind="rpc.reply", payload=payload)


class TestMessagePool:
    def test_release_then_acquire_reuses_the_envelope(self):
        msg = _reply({"value": 1})
        first_id = msg.msg_id
        msg.release()
        again = _reply({"value": 2})
        assert again is msg                      # recycled, not reallocated
        assert again.msg_id > first_id           # but a *new* datagram
        assert again.payload == {"value": 2}
        assert not again.corrupted

    def test_release_resets_every_field(self):
        msg = _reply({"value": 1})
        msg.deadline = 12.5
        msg.corrupted = True
        msg.release()
        assert msg.src is None and msg.dst is None
        assert msg.kind is None and msg.payload is None
        assert msg.payload_bytes == 0
        assert msg.deadline is None and not msg.corrupted

    def test_double_release_is_a_hygiene_error(self):
        msg = _reply()
        msg.release()
        with pytest.raises(PoolHygieneError):
            msg.release()

    def test_sabotaged_release_is_caught_on_acquire(self):
        """Skip release()'s reset -- shove the live envelope straight
        into the free list -- and the next acquire must refuse it."""
        msg = _reply({"value": 1})
        msg._in_pool = True
        Message._pool.append(msg)                # sabotage: no reset
        with pytest.raises(PoolHygieneError):
            _reply()

    def test_pool_is_bounded(self, monkeypatch):
        monkeypatch.setattr(Message, "_pool_cap", 4)
        msgs = [_reply() for _ in range(8)]
        for msg in msgs:
            msg.release()
        assert len(Message._pool) == 4


class TestTimerHandlePool:
    def test_fired_pooled_handle_is_recycled_and_reused(self):
        kernel = Kernel()
        fired = []
        kernel.call_later(0.1, fired.append, 1, pooled=True)
        kernel.run()
        assert fired == [1]
        assert kernel._handle_pool, "fired pooled handle was not recycled"
        shell = kernel._handle_pool[-1]
        assert shell.fn is None and shell.args == ()
        reused = kernel.call_soon(fired.append, 2, pooled=True)
        assert reused is shell                   # came off the free list

    def test_caller_held_handles_are_never_pooled(self):
        kernel = Kernel()
        handle = kernel.call_later(0.1, lambda: None)
        kernel.run()
        assert handle not in kernel._handle_pool
        assert handle.fn is not None             # the caller's view survives

    def test_seeded_dirty_handle_is_caught_on_acquire(self):
        kernel = Kernel()
        live = kernel.call_later(5.0, print, "x")
        kernel._handle_pool.append(live)         # sabotage: still armed
        with pytest.raises(PoolHygieneError):
            kernel.call_soon(lambda: None, pooled=True)

    def test_sabotaged_recycle_is_caught_end_to_end(self):
        """Patch the recycler to skip the reset: the run loop free-lists
        the fired handle dirty, and the next pooled acquire trips."""
        kernel = Kernel()
        kernel._recycle_handle = kernel._handle_pool.append  # no reset
        kernel.call_later(0.1, lambda: None, pooled=True)
        kernel.run()
        assert kernel._handle_pool, "sabotaged recycler never ran"
        with pytest.raises(PoolHygieneError):
            kernel.call_soon(lambda: None, pooled=True)

    def test_cancelled_pooled_handle_recycles_clean(self):
        """A cancelled shell reaped inside the timer backend must come
        back reset (cancelled=False) or acquire would refuse it."""
        kernel = Kernel()
        keeper = kernel.call_later(0.2, lambda: None)
        # sleep() arms a pooled timer under the hood; cancel it via the
        # future so the backend reaps the shell.
        fut = kernel.sleep(0.1)
        fut.cancel()
        kernel.run()
        assert keeper.fn is not None
        fresh = kernel.call_soon(lambda: None, pooled=True)
        assert not fresh.cancelled


class TestPoolingIsInvisible:
    def test_cluster_run_actually_cycles_reply_envelopes(self):
        cluster = build_cluster(seed=3)
        cluster.run_for(20.0)
        assert Message._pool, "no reply envelope was ever recycled"

    def test_double_run_with_pooling_traces_byte_identically(self):
        diff = double_run_diff(seed=11, settops=2, duration=40.0)
        assert diff == [], "\n".join(diff[:50])
