"""Happens-before race detector: vector clocks, the oracle, and chaos.

Unit tests drive :mod:`repro.analysis.hb` with hand-built event
streams; the cluster tests run real instrumented clusters and assert
both directions of falsifiability -- a seeded unordered dual-write IS
flagged, and an ordinary faulted run (kills and reboots, no partition,
so the master chain never forks) stays green with identical write-order
digests across a same-seed replay.
"""

import io

import pytest

from repro.analysis.hb import (
    HbAnalyzer,
    analyze_events,
    analyze_trace,
    conformance_diff,
    dump_jsonl,
    load_jsonl,
    write_order_digests,
)
from repro.chaos import FaultSchedule, run_seed
from repro.chaos.faults import Fault
from repro.cluster import build_cluster
from repro.core.params import Params


def w(actor, var, ver, t=0.0):
    return {"event": "write", "actor": actor, "var": var, "ver": ver,
            "time": t}


class TestVectorClocks:
    def test_unordered_conflicting_writes_race(self):
        report = analyze_events([w("a/1", "x", "v1"), w("b/2", "x", "v2")])
        assert len(report.races) == 1
        race = report.races[0]
        assert race.var == "x"
        assert {race.first.ver, race.second.ver} == {"v1", "v2"}

    def test_message_edge_orders_the_writes(self):
        events = [
            {"event": "bind", "ep": "10.0.0.1:5", "actor": "a/1"},
            {"event": "bind", "ep": "10.0.0.2:5", "actor": "b/2"},
            w("a/1", "x", "v1"),
            {"event": "send", "msg": 7, "src": "10.0.0.1:5",
             "dst": "10.0.0.2:5"},
            {"event": "recv", "msg": 7, "dst": "10.0.0.2:5"},
            w("b/2", "x", "v2"),
        ]
        assert analyze_events(events).races == []

    def test_same_actor_program_order_is_never_a_race(self):
        report = analyze_events([w("a/1", "x", "v1"), w("a/1", "x", "v2")])
        assert report.races == []

    def test_same_version_fanout_is_benign(self):
        report = analyze_events([w("a/1", "x", "v1"), w("b/2", "x", "v1")])
        assert report.races == []

    def test_transitive_order_through_a_third_actor(self):
        events = [
            {"event": "bind", "ep": "1:1", "actor": "a/1"},
            {"event": "bind", "ep": "2:2", "actor": "b/2"},
            {"event": "bind", "ep": "3:3", "actor": "c/3"},
            w("a/1", "x", "v1"),
            {"event": "send", "msg": 1, "src": "1:1", "dst": "3:3"},
            {"event": "recv", "msg": 1, "dst": "3:3"},
            {"event": "send", "msg": 2, "src": "3:3", "dst": "2:2"},
            {"event": "recv", "msg": 2, "dst": "2:2"},
            w("b/2", "x", "v2"),
        ]
        assert analyze_events(events).races == []

    def test_timer_edge_carries_order(self):
        events = [
            w("a/1", "x", "v1"),
            {"event": "timer_set", "tid": 9, "actor": "a/1"},
            {"event": "timer_fire", "tid": 9, "actor": "b/2"},
            w("b/2", "x", "v2"),
        ]
        assert analyze_events(events).races == []

    def test_dropped_message_adds_no_edge(self):
        events = [
            {"event": "bind", "ep": "1:1", "actor": "a/1"},
            {"event": "bind", "ep": "2:2", "actor": "b/2"},
            w("a/1", "x", "v1"),
            {"event": "send", "msg": 1, "src": "1:1", "dst": "2:2"},
            # no recv: the datagram was dropped by a fault
            w("b/2", "x", "v2"),
        ]
        assert len(analyze_events(events).races) == 1

    def test_race_cap_per_variable(self):
        events = [w(f"a{i}/1", "x", f"v{i}") for i in range(12)]
        report = analyze_events(events)
        assert report.races  # capped, not silenced
        from repro.analysis.hb import MAX_RACES_PER_VAR
        per_var = sum(1 for r in report.races if r.var == "x")
        assert per_var <= MAX_RACES_PER_VAR * 12


class TestOracle:
    def test_digests_ignore_actor_and_time(self):
        a = analyze_events([w("a/1", "x", "v1", t=1.0),
                            w("a/1", "x", "v2", t=2.0)])
        b = analyze_events([w("z/9", "x", "v1", t=50.0),
                            w("z/9", "x", "v2", t=60.0)])
        assert write_order_digests(a) == write_order_digests(b)
        assert conformance_diff(a, b) == []

    def test_digests_catch_reordering(self):
        a = analyze_events([w("a/1", "x", "v1"), w("a/1", "x", "v2")])
        b = analyze_events([w("a/1", "x", "v2"), w("a/1", "x", "v1")])
        diff = conformance_diff(a, b)
        assert diff and "x" in diff[0]

    def test_consecutive_duplicates_collapse(self):
        a = analyze_events([w("a/1", "x", "v1"), w("b/2", "x", "v1"),
                            w("a/1", "x", "v2")])
        b = analyze_events([w("a/1", "x", "v1"), w("a/1", "x", "v2")])
        assert write_order_digests(a) == write_order_digests(b)

    def test_jsonl_round_trip(self):
        events = [
            {"event": "bind", "ep": "1:1", "actor": "a/1"},
            w("a/1", "x", "v1"),
            {"event": "send", "msg": 3, "src": "1:1", "dst": "2:2"},
        ]
        buf = io.StringIO()
        assert dump_jsonl(events, buf) == 3
        buf.seek(0)
        loaded = load_jsonl(buf)
        assert loaded == events
        assert write_order_digests(analyze_events(loaded)) == \
            write_order_digests(analyze_events(events))


class TestInstrumentedCluster:
    def test_off_by_default(self):
        cluster = build_cluster(n_servers=2, seed=71)
        assert cluster.kernel.hb_log is None
        assert not any(ev.category == "hb" for ev in cluster.trace.events)

    def test_sabotage_dual_write_is_flagged(self):
        """Falsifiability: two split-brain primaries deciding conflicting
        values concurrently (neither reply awaited before the other
        send) must produce a race.  Write-through proxying (PR 7) means
        an honest cluster serializes every write through the one bound
        primary, so the sabotage forces two replicas into believing
        they each hold the primary role."""
        cluster = build_cluster(n_servers=3, seed=72,
                                params=Params(hb_trace=True))
        client = cluster.client_on(cluster.servers[0], name="racer")
        by_ip = {}
        for host in cluster.servers:
            proc = host.find_process("db")
            if proc is not None:
                by_ip[host.ip] = proc.attachments["service"]

        async def dual_write():
            peers = await client.names.list_repl("svc/db-all")
            refs = [ref for _m, _k, ref in peers if ref is not None]
            assert len(refs) >= 2
            for ref in refs[:2]:
                by_ip[ref.ip].binder.role = "primary"  # split-brain
            # invoke() returns a Future: both requests are on the wire
            # before either reply is awaited, so no reply edge orders
            # the two primaries' writes.
            first = client.runtime.invoke(
                refs[0], "put", ("race_t", "k", "A"), timeout=5.0)
            second = client.runtime.invoke(
                refs[1], "put", ("race_t", "k", "B"), timeout=5.0)
            await first
            await second

        cluster.run_async(dual_write())
        report = analyze_trace(cluster.trace.events)
        race_vars = {r.var for r in report.races}
        assert "db:race_t/k" in race_vars, report.format_lines()

    def test_sequential_writes_stay_ordered(self):
        """The control: the same two writes, each awaited before the
        next is sent, are ordered through the reply edge -- no race."""
        cluster = build_cluster(n_servers=3, seed=73,
                                params=Params(hb_trace=True))
        client = cluster.client_on(cluster.servers[0], name="seq")

        async def sequential():
            peers = await client.names.list_repl("svc/db-all")
            refs = [ref for _m, _k, ref in peers if ref is not None]
            await client.runtime.invoke(refs[0], "put",
                                        ("seq_t", "k", "A"), timeout=5.0)
            await client.runtime.invoke(refs[1], "put",
                                        ("seq_t", "k", "B"), timeout=5.0)

        cluster.run_async(sequential())
        report = analyze_trace(cluster.trace.events)
        assert not any(r.var == "db:seq_t/k" for r in report.races), \
            report.format_lines()


KILL_SCHEDULE = FaultSchedule(faults=(
    Fault(20.0, "kill_service", {"server": 1, "service": "mds"}),
    Fault(35.0, "kill_service", {"server": 0, "service": "vod"}),
    Fault(50.0, "reboot_server", {"server": 2}),
), horizon=80.0)


class TestChaosIntegration:
    @pytest.fixture(scope="class")
    def hb_runs(self):
        results = [run_seed(11, settops=2, params=Params(hb_trace=True),
                            schedule=KILL_SCHEDULE) for _ in range(2)]
        return results

    def test_replay_stays_green(self, hb_runs):
        """Kills and reboots fork no history (a single master chain
        orders every ns write); the hb_race monitor must stay quiet."""
        result = hb_runs[0]
        assert result.hb is not None
        assert result.hb["races"] == 0
        assert not [v for v in result.violations if v.monitor == "hb_race"]
        assert result.hb["writes"] > 0
        assert result.hb["events"] > result.hb["writes"]

    def test_same_seed_runs_conform(self, hb_runs):
        """The conformance oracle: identical seeds apply identical
        updates in identical order to every piece of shared state."""
        a, b = hb_runs
        assert a.digest == b.digest
        assert a.hb["digests"] == b.hb["digests"]

    def test_hb_events_exposed_for_dump(self, hb_runs):
        events = hb_runs[0].hb_events
        assert events and events[0].get("event")
        report = analyze_events(events)
        assert report.ok
        assert write_order_digests(report) == hb_runs[0].hb["digests"]
