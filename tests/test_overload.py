"""PR 4 overload robustness: deadlines, admission control, degradation.

Four layers under test:

- unit: the backoff sleep budget, the admission gate's bounds, and the
  load-aware selector policy;
- OCS: deadline envelopes end to end (client timer, pre-dispatch and
  in-queue server rejection, shed replies resolving the caller's
  future);
- client library: the rebinding proxy's shed cooldown and steering;
- cluster: a viewer-session surge against a 2-replica VOD pool must
  shed (bounded queues), never execute expired work, and keep p99 open
  latency under ``Params.surge_p99_bound``.
"""

import pytest

from repro.core.backoff import Backoff
from repro.core.naming.errors import NamingError
from repro.core.params import Params
from repro.core.rebind import RebindError, RebindingProxy
from repro.metrics.overload import collect_overload, total_sheds
from repro.ocs import CallTimeout, DeadlineExceeded, Overloaded
from repro.sim import SeededRandom
from tests.helpers import (
    StubNames,
    client_runtime,
    small_gate,
    small_world,
    start_echo,
)


@pytest.fixture
def world():
    return small_world(n_hosts=2)


# ---------------------------------------------------------------------------
# Backoff sleep budget (satellite bugfix)
# ---------------------------------------------------------------------------


class TestBackoffBudget:
    def test_unbudgeted_backoff_grows_as_before(self):
        backoff = Backoff(Params(), SeededRandom(3), jitter=0.0)
        delays = [backoff.next_delay() for _ in range(4)]
        assert delays == sorted(delays)
        assert not backoff.exhausted

    def test_total_sleep_clamped_to_max_elapsed(self):
        backoff = Backoff(Params(), SeededRandom(3), base=1.0,
                          multiplier=2.0, jitter=0.0, max_elapsed=4.5)
        delays = [backoff.next_delay() for _ in range(5)]
        assert sum(delays) == pytest.approx(4.5)
        # 1.0 + 2.0 fit; the 4.0 draw is clamped to the 1.5 remaining.
        assert delays[2] == pytest.approx(1.5)
        assert delays[3] == 0.0 and delays[4] == 0.0
        assert backoff.exhausted

    def test_jittered_draws_also_respect_budget(self):
        backoff = Backoff(Params(), SeededRandom(11), base=2.0,
                          multiplier=2.0, jitter=0.5, max_elapsed=3.0)
        total = sum(backoff.next_delay() for _ in range(10))
        assert total <= 3.0 + 1e-9
        assert backoff.exhausted

    def test_reset_restores_budget(self):
        backoff = Backoff(Params(), SeededRandom(3), base=1.0, jitter=0.0,
                          max_elapsed=1.0)
        assert backoff.next_delay() == pytest.approx(1.0)
        assert backoff.exhausted
        backoff.reset()
        assert not backoff.exhausted
        assert backoff.next_delay() > 0.0


# ---------------------------------------------------------------------------
# Admission gate (unit)
# ---------------------------------------------------------------------------


class TestAdmissionGate:
    def test_sheds_when_queue_full(self):
        gate = small_gate(max_inflight=2, max_queue=3)
        assert all(gate.try_admit() for _ in range(3))   # queue fills
        assert not gate.try_admit()                      # 4th is shed
        assert gate.shed_count == 1
        assert gate.queued == 3 and gate.peak_queue == 3

    def test_sheds_when_inflight_full(self):
        gate = small_gate(max_inflight=2, max_queue=3)
        for _ in range(2):
            assert gate.try_admit()
            gate.begin()
        assert gate.inflight == 2 and gate.queued == 0
        assert not gate.try_admit()
        gate.done()
        assert gate.try_admit()   # capacity freed: admitted again

    def test_admitted_total_is_bounded(self):
        gate = small_gate(max_inflight=2, max_queue=3)
        admitted = 0
        for _ in range(100):
            if gate.try_admit():
                admitted += 1
                if gate.inflight < gate.max_inflight:
                    gate.begin()
        assert admitted <= gate.max_inflight + gate.max_queue
        assert gate.shed_count == 100 - admitted

    def test_drop_queued_releases_slot(self):
        gate = small_gate(max_inflight=1, max_queue=1)
        assert gate.try_admit()
        gate.drop_queued()   # expired in queue before executing
        assert gate.queued == 0
        assert gate.try_admit()

    def test_gauges_and_load(self):
        gate = small_gate(max_inflight=2, max_queue=2)
        gate.try_admit()
        gate.begin()
        gauges = gate.gauges()
        assert gauges["inflight"] == 1 and gauges["queue_depth"] == 0
        assert gauges["load"] == pytest.approx(0.5)
        assert not gauges["shedding"]
        gate.try_admit()
        gate.begin()
        assert gate.shedding()
        assert gate.gauges()["load"] == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# Deadline envelopes (OCS layer)
# ---------------------------------------------------------------------------


class TestDeadlineEnvelope:
    def test_spent_deadline_fails_fast_without_sending(self, world):
        kernel, net, hosts = world
        _, ref = start_echo(kernel, net, hosts[0])
        client = client_runtime(net, hosts[1])
        kernel.run(until=5.0)
        fut = client.invoke(ref, "echo", ("hi",), deadline=kernel.now - 1.0)

        async def wait():
            return await fut

        with pytest.raises(DeadlineExceeded):
            kernel.run_until_complete(wait())
        assert client.calls_sent == 0

    def test_explicit_deadline_raises_deadline_exceeded(self, world):
        kernel, net, hosts = world
        _, ref = start_echo(kernel, net, hosts[0])
        client = client_runtime(net, hosts[1])

        async def call():
            await client.invoke(ref, "slow", (30.0,), timeout=60.0,
                                deadline=kernel.now + 2.0)

        with pytest.raises(DeadlineExceeded):
            kernel.run_until_complete(call())
        assert kernel.now == pytest.approx(2.0, abs=0.1)

    def test_derived_deadline_still_raises_call_timeout(self, world):
        # No explicit deadline: the per-attempt timer stays CallTimeout
        # (a ServiceUnavailable) so existing rebind loops retry as before.
        kernel, net, hosts = world
        _, ref = start_echo(kernel, net, hosts[0])
        client = client_runtime(net, hosts[1])

        async def call():
            await client.invoke(ref, "slow", (30.0,), timeout=2.0)

        with pytest.raises(CallTimeout):
            kernel.run_until_complete(call())

    def test_expired_in_queue_rejected_and_counted(self, world):
        kernel, net, hosts = world
        server, ref = start_echo(kernel, net, hosts[0])
        server.servant_lag = 5.0   # slow consumer: work expires in queue
        client = client_runtime(net, hosts[1])

        async def call():
            await client.invoke(ref, "echo", ("hi",), timeout=60.0,
                                deadline=kernel.now + 1.0)

        with pytest.raises(DeadlineExceeded):
            kernel.run_until_complete(call())
        kernel.run(until=kernel.now + 10.0)   # let the servant-side lag pass
        assert server.deadline_rejects == 1
        assert server.expired_executions == 0

    def test_expired_work_executes_only_when_guard_disabled(self, world):
        # The falsifiability check for the expired_work monitor: with the
        # guard off, the same scenario runs the dead call and counts it.
        kernel, net, hosts = world
        server, ref = start_echo(kernel, net, hosts[0])
        server.servant_lag = 5.0
        server.reject_expired = False
        client = client_runtime(net, hosts[1])

        fut = client.invoke(ref, "echo", ("hi",), timeout=60.0,
                            deadline=kernel.now + 1.0)
        fut.detach()   # the client timer raises; the servant still runs
        kernel.run(until=kernel.now + 10.0)
        assert server.expired_executions == 1
        assert server.deadline_rejects == 0

    def test_shed_reply_resolves_future_with_overloaded(self, world):
        kernel, net, hosts = world
        server, ref = start_echo(kernel, net, hosts[0])
        server.admission = small_gate(max_inflight=0, max_queue=1)
        client = client_runtime(net, hosts[1])

        async def call():
            await client.invoke(ref, "echo", ("hi",), timeout=30.0)

        with pytest.raises(Overloaded) as excinfo:
            kernel.run_until_complete(call())
        assert excinfo.value.retry_after == Params().admission_retry_after
        # The shed resolved the future immediately, not at the timeout.
        assert kernel.now < 1.0
        assert server.admission.shed_count == 1
        # No pending-call leak on either side.
        assert client._pending == {}


# ---------------------------------------------------------------------------
# Load-aware selector (unit)
# ---------------------------------------------------------------------------


class TestLoadAwareSelector:
    def _state(self):
        from repro.core.naming.selectors import SelectorState
        return SelectorState()

    def test_loaded_member_skipped(self):
        from repro.core.naming.selectors import run_builtin
        state = self._state()
        bindings = [("a", None), ("b", None)]
        state.report_load("svc/vod", "a", 1.2)   # >= shed level: skip
        picks = {run_builtin("loadaware", bindings, "x", "svc/vod", state)
                 for _ in range(4)}
        assert picks == {"b"}

    def test_healthy_pool_rotates(self):
        from repro.core.naming.selectors import run_builtin
        state = self._state()
        bindings = [("a", None), ("b", None), ("c", None)]
        state.report_load("svc/vod", "b", 2.0)
        picks = [run_builtin("loadaware", bindings, "x", "svc/vod", state)
                 for _ in range(4)]
        assert picks == ["a", "c", "a", "c"]

    def test_member_recovers_when_load_drops(self):
        from repro.core.naming.selectors import run_builtin
        state = self._state()
        bindings = [("a", None), ("b", None)]
        state.report_load("svc/vod", "a", 1.5)
        assert run_builtin("loadaware", bindings, "x", "svc/vod",
                           state) == "b"
        state.report_load("svc/vod", "a", 0.2)   # gate drained: recovered
        picks = {run_builtin("loadaware", bindings, "x", "svc/vod", state)
                 for _ in range(4)}
        assert picks == {"a", "b"}

    def test_all_shedding_falls_back_to_rotation(self):
        from repro.core.naming.selectors import run_builtin
        state = self._state()
        bindings = [("a", None), ("b", None)]
        state.report_load("svc/vod", "a", 3.0)
        state.report_load("svc/vod", "b", 3.0)
        picks = [run_builtin("loadaware", bindings, "x", "svc/vod", state)
                 for _ in range(4)]
        assert picks == ["a", "b", "a", "b"]

    def test_shed_level_is_tunable(self):
        from repro.core.naming.selectors import run_builtin
        state = self._state()
        state.shed_level = 0.5
        bindings = [("a", None), ("b", None)]
        state.report_load("svc/vod", "a", 0.6)
        assert run_builtin("loadaware", bindings, "x", "svc/vod",
                           state) == "b"


# ---------------------------------------------------------------------------
# Rebinding proxy: cooldown and steering
# ---------------------------------------------------------------------------


class TestRebindCooldown:
    def test_shed_replica_cooled_and_retry_steered(self, world):
        kernel, net, hosts = world
        shedding, ref_a = start_echo(kernel, net, hosts[0], "echo-a")
        shedding.admission = small_gate(max_inflight=0, max_queue=1)
        _, ref_b = start_echo(kernel, net, hosts[1], "echo-b")
        client = client_runtime(net, hosts[0])
        params = Params()
        proxy = RebindingProxy(client, StubNames([ref_a, ref_b]),
                               "svc/echo", params=params,
                               rng=SeededRandom(5), give_up_after=30.0)

        result = kernel.run_until_complete(proxy.call("echo", "hi"))
        assert result == "hi"
        assert proxy.sheds_seen == 1
        assert (ref_a.ip, ref_a.port) in proxy._cooldowns

    def test_fail_fast_when_pool_is_cooling(self, world):
        kernel, net, hosts = world
        shedding, ref_a = start_echo(kernel, net, hosts[0], "echo-a")
        shedding.admission = small_gate(max_inflight=0, max_queue=1)
        client = client_runtime(net, hosts[1])
        proxy = RebindingProxy(client, StubNames([ref_a]), "svc/echo",
                               params=Params(), rng=SeededRandom(5),
                               give_up_after=30.0)

        with pytest.raises(Overloaded):
            kernel.run_until_complete(proxy.call("echo", "hi"))
        # One real shed; the second resolve fails fast on the cooldown
        # instead of re-hammering the saturated replica for the budget.
        assert proxy.sheds_seen == 1
        assert kernel.now < 5.0

    def test_cooldown_expires(self, world):
        kernel, net, hosts = world
        shedding, ref_a = start_echo(kernel, net, hosts[0], "echo-a")
        shedding.admission = small_gate(max_inflight=0, max_queue=1)
        client = client_runtime(net, hosts[1])
        proxy = RebindingProxy(client, StubNames([ref_a]), "svc/echo",
                               params=Params(), rng=SeededRandom(5),
                               give_up_after=30.0)
        with pytest.raises(Overloaded):
            kernel.run_until_complete(proxy.call("echo", "hi"))
        shedding.admission = None   # replica drained
        kernel.run(until=kernel.now + 10.0)   # past the jittered cooldown
        assert kernel.run_until_complete(proxy.call("echo", "hi")) == "hi"

    def test_deadline_bounds_the_rebind_loop(self, world):
        kernel, net, hosts = world
        client = client_runtime(net, hosts[1])
        proxy = RebindingProxy(client,
                               StubNames([NamingError("not bound")]),
                               "svc/gone", params=Params(),
                               rng=SeededRandom(5), give_up_after=60.0)

        with pytest.raises(DeadlineExceeded):
            kernel.run_until_complete(
                proxy.call("echo", "hi", deadline=kernel.now + 3.0))
        assert kernel.now <= 3.5   # never slept past the deadline

    def test_no_deadline_still_raises_rebind_error(self, world):
        kernel, net, hosts = world
        client = client_runtime(net, hosts[1])
        proxy = RebindingProxy(client,
                               StubNames([NamingError("not bound")]),
                               "svc/gone", params=Params(),
                               rng=SeededRandom(5), give_up_after=2.0)
        with pytest.raises(RebindError):
            kernel.run_until_complete(proxy.call("echo", "hi"))


# ---------------------------------------------------------------------------
# Cluster surge (integration)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def surge_run():
    """5 viewer sessions + an injected flash crowd vs a 2-server pool.

    Gates are shrunk so the surge genuinely saturates the VOD service;
    a slow_consumer fault on both replicas makes queues real (servants
    are instant in virtual time otherwise).
    """
    from repro.chaos.faults import Fault
    from repro.chaos.injector import FaultInjector
    from tests.helpers import booted_cluster, viewer_evening

    params = Params().with_overrides(admission_max_inflight=4,
                                     admission_max_queue=8)
    cluster, kernels = booted_cluster(n_servers=2, seed=41, params=params,
                                      settops=5, fresh=True)

    injector = FaultInjector(cluster, SeededRandom(41).stream("inj"))
    plan = [
        (15.0, Fault(0.0, "slow_consumer",
                     {"server": 0, "service": "vod", "lag": 1.0})),
        (15.0, Fault(0.0, "slow_consumer",
                     {"server": 1, "service": "vod", "lag": 1.0})),
        (20.0, Fault(0.0, "load_surge",
                     {"service": "vod", "calls": 300, "duration": 10.0})),
    ]
    for delay, fault in plan:
        cluster.kernel.call_later(delay, injector.inject, fault)

    stats = viewer_evening(cluster, kernels, 150.0, seed=7)
    injector.heal_all()
    overload = collect_overload(cluster, kernels)
    return params, stats, overload


class TestViewerSurge:
    def test_surge_sheds_instead_of_queueing(self, surge_run):
        params, _stats, overload = surge_run
        vod = overload["gates"]["vod"]
        assert vod["shed"] > 0
        assert total_sheds(overload) >= vod["shed"]

    def test_queue_depth_stays_bounded(self, surge_run):
        params, _stats, overload = surge_run
        vod = overload["gates"]["vod"]
        assert vod["peak_queue"] <= params.admission_max_queue
        assert vod["peak_inflight"] <= (params.admission_max_inflight
                                        + params.admission_max_queue)

    def test_no_expired_work_executed(self, surge_run):
        _params, _stats, overload = surge_run
        assert overload["deadlines"]["expired_executions"] == 0

    def test_p99_open_latency_within_bound(self, surge_run):
        from repro.metrics import percentile
        params, stats, _overload = surge_run
        assert stats.opens > 0, "surge run produced no successful opens"
        p99 = percentile(stats.open_latencies, 99)
        assert p99 < params.surge_p99_bound, \
            f"p99 open latency {p99:.2f}s over bound"

    def test_viewers_survived_the_surge(self, surge_run):
        _params, stats, _overload = surge_run
        # Sessions kept going: every viewer operation either succeeded
        # or was served by a degraded path, and at least one op ran.
        assert stats.opens + stats.degraded + stats.tunes > 0


# ---------------------------------------------------------------------------
# The E14 fixture stays loadable
# ---------------------------------------------------------------------------


class TestSurgeFixture:
    def test_e14_schedule_parses(self):
        import os
        from repro.chaos.schedule import FaultSchedule
        path = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "benchmarks", "schedules",
            "e14_surge.json")
        schedule = FaultSchedule.load(path)
        kinds = {f.kind for f in schedule}
        assert "load_surge" in kinds and "slow_consumer" in kinds
        assert schedule.horizon >= 60.0
