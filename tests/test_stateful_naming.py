"""Hypothesis stateful testing: the NameStore as a state machine.

A model-based test: random interleavings of bind/unbind/mkcontext/mkrepl
against a NameStore, mirrored into a plain-dict model, checking after
every step that the two agree -- plus snapshot/replica-divergence checks
woven into the machine.
"""

import hypothesis.strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.core.naming.errors import NamingError
from repro.core.naming.store import NameStore
from repro.ocs.objref import ObjectRef

COMPONENTS = ["svc", "apps", "mds", "rds", "a", "b", "c"]


def make_ref(tag: int) -> ObjectRef:
    return ObjectRef(ip="192.26.65.1", port=1000 + tag,
                     incarnation=(0.0, tag), type_id="NamingContext",
                     object_id="")


class NameStoreMachine(RuleBasedStateMachine):
    """Drives a store + a twin replica + a flat-dict model in lockstep."""

    paths = Bundle("paths")

    def __init__(self):
        super().__init__()
        self.store = NameStore()
        self.twin = NameStore()      # receives the identical numbered ops
        self.model = {}              # path -> ("context"|"replicated"|tag)
        self.seq = 0

    def _apply(self, op) -> bool:
        try:
            self.store.check(op)
        except NamingError:
            return False
        self.seq += 1
        self.store.apply_numbered(self.seq, op)
        self.twin.apply_numbered(self.seq, op)
        return True

    @rule(target=paths, parent=st.sampled_from(["", "svc", "apps"]),
          name=st.sampled_from(COMPONENTS))
    def make_path(self, parent, name):
        return f"{parent}/{name}".strip("/")

    @rule(path=paths)
    def mkcontext(self, path):
        if self._apply(("mkcontext", path)):
            self.model[path] = "context"

    @rule(path=paths)
    def mkrepl(self, path):
        if self._apply(("mkrepl", path, ("builtin", "first"))):
            self.model[path] = "replicated"

    @rule(path=paths, tag=st.integers(min_value=0, max_value=50))
    def bind(self, path, tag):
        if self._apply(("bind", path, make_ref(tag))):
            self.model[path] = tag

    @rule(path=paths)
    def unbind(self, path):
        if self._apply(("unbind", path)):
            # Children vanish with their subtree root.
            doomed = [p for p in self.model
                      if p == path or p.startswith(path + "/")]
            for p in doomed:
                del self.model[p]

    @invariant()
    def model_agrees(self):
        for path, expected in self.model.items():
            node = self.store.get_node(path)
            if expected == "context":
                assert node.kind == "context", path
            elif expected == "replicated":
                assert node.kind == "replicated", path
            else:
                assert node.kind == "leaf" and node.ref == make_ref(expected)

    @invariant()
    def replicas_converged(self):
        assert self.twin.applied_seq == self.store.applied_seq
        assert self.twin.snapshot() == self.store.snapshot()

    @invariant()
    def snapshot_round_trips(self):
        clone = NameStore()
        clone.load_snapshot(self.store.snapshot())
        assert clone.context_paths() == self.store.context_paths()


TestNameStoreMachine = NameStoreMachine.TestCase
TestNameStoreMachine.settings = __import__("hypothesis").settings(
    max_examples=30, stateful_step_count=30, deadline=None)
