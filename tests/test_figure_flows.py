"""Paper-fidelity tests: the exact message flows of Figures 3 and 4.

These assert not just the outcomes but the *wire traffic*: which
interfaces were invoked, in the paper's order, with the paper's caching
behaviour ("Most of the name resolutions occur only the first time a
movie is opened").
"""

import pytest

from repro.cluster import build_full_cluster


@pytest.fixture(scope="module")
def itv():
    cluster = build_full_cluster(n_servers=3, seed=201)
    stk = cluster.add_settop_kernel(1)
    assert cluster.boot_settops([stk])
    return cluster, stk


def kind_count(cluster, kind):
    return cluster.net.sent_by_kind.get(kind, 0)


class TestFigure3Flow:
    """Downloading an application: AM -> name service -> RDS."""

    def test_download_traffic_shape(self, itv):
        cluster, stk = itv
        open_data = "rpc.call.RDS.openData"
        before = kind_count(cluster, open_data)
        cluster.run_async(stk.app_manager.tune(5))
        assert kind_count(cluster, open_data) == before + 1

    def test_rds_reference_cached_across_downloads(self, itv):
        """Section 3.4.2: the AM contacts the name service only for the
        first download; later downloads reuse the RDS reference."""
        cluster, stk = itv
        resolves_before = stk.app_manager.rds.resolve_calls
        cluster.run_async(stk.app_manager.tune(6))
        cluster.run_async(stk.app_manager.tune(7))
        assert stk.app_manager.rds.resolve_calls == resolves_before

    def test_rds_failure_triggers_single_rebind(self, itv):
        """Paper: "If at some point the RDS reference stops working, the
        AM will obtain a new object reference and retry the download."
        """
        cluster, stk = itv
        home = cluster.server_for_neighborhood(1)
        index = cluster.servers.index(home)
        rebinds_before = stk.app_manager.rds.rebinds
        cluster.kill_service(index, "rds")
        cluster.run_for(3.0)  # SSC restarts it
        # Next download succeeds through a rebind.
        target = 5 if stk.app_manager.current_app.name != "vod" else 6
        cluster.run_async(stk.app_manager.tune(target))
        assert stk.app_manager.rds.rebinds >= rebinds_before + 1


class TestFigure4Flow:
    """Opening a movie: the ten numbered steps."""

    def test_open_invokes_each_party_once(self):
        cluster = build_full_cluster(n_servers=3, seed=202)
        stk = cluster.add_settop_kernel(1)
        assert cluster.boot_settops([stk])
        cluster.run_async(stk.app_manager.tune(5))
        vod = stk.app_manager.current_app

        counts_before = {
            "open": kind_count(cluster, "rpc.call.MMS.open"),
            "allocate": kind_count(cluster,
                                   "rpc.call.ConnectionManager.allocate"),
            "mds_open": kind_count(cluster, "rpc.call.MDS.open"),
            "play": kind_count(cluster, "rpc.call.Movie.playFrom"),
        }
        cluster.run_async(vod.play("T2"))
        # Step 2: app -> MMS.open, exactly once.
        assert kind_count(cluster, "rpc.call.MMS.open") == \
            counts_before["open"] + 1
        # Step 4: MMS -> ConnectionManager.allocate, exactly once.
        assert kind_count(cluster, "rpc.call.ConnectionManager.allocate") == \
            counts_before["allocate"] + 1
        # Step 6: MMS -> MDS.open, exactly once.
        assert kind_count(cluster, "rpc.call.MDS.open") == \
            counts_before["mds_open"] + 1
        # Step 8: settop -> movie.playFrom.
        assert kind_count(cluster, "rpc.call.Movie.playFrom") == \
            counts_before["play"] + 1

    def test_steps_9_10_ras_polling_follows(self):
        """Steps 9-10: the MMS polls the RAS about the settop."""
        cluster = build_full_cluster(n_servers=3, seed=203)
        stk = cluster.add_settop_kernel(1)
        assert cluster.boot_settops([stk])
        cluster.run_async(stk.app_manager.tune(5))
        vod = stk.app_manager.current_app
        cluster.run_async(vod.play("T2"))
        before = kind_count(cluster, "rpc.call.RAS.checkStatus")
        cluster.run_for(3 * cluster.params.ras_client_poll)
        polls = kind_count(cluster, "rpc.call.RAS.checkStatus") - before
        # At least the MMS's periodic polls landed (the NS audit also
        # uses checkStatus, so >=).
        assert polls >= 2

    def test_data_flows_over_reserved_circuit_not_rpc(self):
        """Movie data rides the CBR circuit, not the datagram path."""
        cluster = build_full_cluster(n_servers=3, seed=204)
        stk = cluster.add_settop_kernel(1)
        assert cluster.boot_settops([stk])
        cluster.run_async(stk.app_manager.tune(5))
        vod = stk.app_manager.current_app
        cluster.run_async(vod.play("T2"))
        before = kind_count(cluster, "mds.stream")
        cluster.run_for(10.0)
        chunks = kind_count(cluster, "mds.stream") - before
        assert 8 <= chunks <= 12   # ~1 per stream_chunk_seconds

    def test_close_deallocates_once(self):
        cluster = build_full_cluster(n_servers=3, seed=205)
        stk = cluster.add_settop_kernel(1)
        assert cluster.boot_settops([stk])
        cluster.run_async(stk.app_manager.tune(5))
        vod = stk.app_manager.current_app
        cluster.run_async(vod.play("T2"))
        before = kind_count(cluster, "rpc.call.ConnectionManager.deallocate")
        cluster.run_async(vod.stop())
        assert kind_count(cluster,
                          "rpc.call.ConnectionManager.deallocate") == before + 1
