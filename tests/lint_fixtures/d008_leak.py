"""Fixture: D008 -- discarded futures/tasks."""


async def leaky(kernel, service):
    kernel.create_task(service.run())            # line 5: D008
    service.spawn_task(service.audit())          # line 6: D008
    kept = kernel.create_task(service.other())   # fine: handle kept
    kernel.create_task(service.bg()).detach()    # fine: detached
    await kept
