"""P006 fixture: reply_cache=False needs an all-idempotent interface."""


def exports(runtime, servant):
    runtime.export(servant, "Shopping", reply_cache=False)   # line 5: P006
    runtime.export(servant, "Shopping")                      # cached: fine
    runtime.export(servant, "Selector", reply_cache=False)   # all idempotent
    runtime.export(servant, "Shopping", reply_cache=True)    # explicit on
