"""P002 fixture: argument count disagreeing with every declaration."""


async def caller(runtime, ref, proxy):
    await runtime.invoke(ref, "guess", ("g",), timeout=3.0)   # line 5: P002
    await proxy.call("order", "sku")                          # line 6: P002
    await runtime.invoke(ref, "guess", ("g", "p", 7), timeout=3.0)   # clean
    await proxy.call("order", "sku", 2)                              # clean
