"""Fixture: D002 -- wall-clock reads."""

import time                      # line 3: D002
from time import monotonic       # line 4: D002
from datetime import datetime


def stamp() -> float:
    started = datetime.now()     # line 9: D002
    return time.time() - monotonic() + started.timestamp()
