"""Fixture: D006 -- application layer importing the transport.

The engine is told to treat this file as living at
``services/d006_layering.py`` so the layering rule applies.
"""

from repro.net.message import Message    # line 7: D006
import repro.net.network                 # line 8: D006
from repro.ocs import ObjectRef          # fine: the sanctioned surface
