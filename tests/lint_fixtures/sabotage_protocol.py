"""Falsifiability fixture: a service-style module with broken stub calls.

This module *looks* like production replication code but gets the
protocol wrong in three distinct ways.  The test asserting each break
is flagged proves the conformance checker has teeth -- if the checker
ever goes blind (model extraction breaks, rules stop visiting call
sites), that test fails loudly instead of the checker silently passing
everything.
"""


async def replicate(runtime, ref, rows):
    # Database.forwardWrite takes (table, key, value, deleted): 4 args.
    await runtime.invoke(ref, "forwardWrite", ("t", "k", rows),
                         timeout=3.0)                      # line 14: P002
    await runtime.invoke(ref, "forwardWrit", ("t", "k", rows, False),
                         timeout=3.0)                      # line 16: P001
    runtime.invoke(ref, "put", ("t", "k", rows), timeout=3.0) \
        .detach()                                          # line 18: P004
