"""Analysis edge cases: scope boundaries and combined suppressions.

Exercises the corners the engine must get right: nested functions and
lambdas do not inherit the enclosing scope's deadline (P005 is
flow-sensitive per function), decorators and async generators do not
hide a handler from the rules, and one suppression comment may name
several rules at once.
"""
import functools


async def outer(runtime, ref, deadline):
    async def inner():
        # Clean: `inner` itself holds no deadline; P005 must not leak
        # the enclosing scope's budget into a nested function.
        await runtime.invoke(ref, "get", ("t", "k"), timeout=3.0)

    await inner()
    await runtime.invoke(ref, "get", ("t", "k"), timeout=3.0,
                         deadline=deadline)


async def with_lambda(runtime, ref, deadline):
    make = lambda: runtime.invoke(ref, "get", ("t", "k"), timeout=3.0)  # clean
    await make()
    await runtime.invoke(ref, "get", ("t", "k"), deadline=deadline)


@functools.lru_cache(maxsize=None)
async def decorated(runtime, ref, deadline):
    await runtime.invoke(ref, "get", ("t", "k"), timeout=3.0)   # line 31: P005


async def streaming(runtime, ref, deadline):
    while True:
        yield await runtime.invoke(ref, "get", ("t", "k"),
                                   timeout=3.0)                 # line 37: P005


def multi_rule_suppression():
    for key in {}.keys():   # repro: noqa: D003, D005 - D003 live, so not stale
        return key
