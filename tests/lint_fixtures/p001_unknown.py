"""P001 fixture: invoking an operation no registered interface declares."""


async def caller(runtime, ref, proxy):
    await runtime.invoke(ref, "getRow", ("t", "k"), timeout=3.0)  # line 5: P001
    await proxy.call("frobnicate", 1)                             # line 6: P001
    await runtime.invoke(ref, "get", ("t", "k"), timeout=3.0)     # known: clean
