"""Fixture: D005 -- blanket except handlers."""


def swallow_everything(fn):
    try:
        fn()
    except:                              # line 7: D005 (bare except)
        pass


def swallow_base(fn):
    try:
        fn()
    except BaseException:                # line 14: D005
        return None


def reraise_is_fine(fn):
    try:
        fn()
    except BaseException as err:         # fine: re-raises
        log = err
        raise
