"""W001 fixture: suppression comments that mask nothing must be deleted."""

X = 1  # repro: noqa D001
import random  # repro: noqa D001 - vetted: this one masks a real violation
Y = 2  # repro: noqa

USES = random.__name__
