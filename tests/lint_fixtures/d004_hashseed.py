"""Fixture: D004 -- hash()/id() in seeds and ordering keys."""


def derive_seed(ip: str) -> int:
    return hash(ip) & 0xFFFF             # line 5: D004


def order_key(obj) -> int:
    return id(obj)                       # line 9: D004
