"""Fixture: suppression comments silence specific or all rules."""

import random                    # repro: noqa D001
from time import monotonic       # repro: noqa


def mixed() -> float:
    for key in {}.keys():        # repro: noqa D005 (wrong code: D003 fires)
        return float(key)
    return random.random() + monotonic()
