"""P003 fixture: awaiting a reply the protocol says will never come."""


async def caller(runtime, ref, update):
    await runtime.invoke(ref, "applyUpdate", (1, update), timeout=3.0)  # 5: P003
    runtime.invoke(ref, "applyUpdate", (1, update), timeout=3.0).detach()  # ok
