"""P003 fixture: awaiting a reply the protocol says will never come."""


async def caller(runtime, ref, settop_ip):
    await runtime.invoke(ref, "reportShutdown", (settop_ip,), timeout=3.0)  # 5: P003
    runtime.invoke(ref, "reportShutdown", (settop_ip,), timeout=3.0).detach()  # ok
