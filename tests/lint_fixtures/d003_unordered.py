"""Fixture: D003 -- iteration over unordered collections."""


def broadcast(hosts: dict, extras) -> list:
    out = []
    for ip in hosts.keys():              # line 6: D003 (bare .keys())
        out.append(ip)
    live = set(extras)
    dead = {h for h in out if h not in extras}
    for ip in live:                      # line 10: D003 (set-typed name)
        out.append(ip)
    for ip in live - dead:               # line 12: D003 (set difference)
        out.append(ip)
    ordered = [ip for ip in sorted(live)]          # fine: sorted
    if any(ip.startswith("10.") for ip in hosts.keys()):   # fine: any()
        out.extend(ordered)
    return out
