"""D009 fixture: raw fault-surface calls outside repro.chaos."""


def storm(net, rng):
    net.partition({"10.0.0.1"}, {"10.0.0.2"})          # line 5: D009
    net.set_loss("10.0.0.1", 0.5, rng)                 # line 6: D009
    net.set_gray("10.0.0.2", 1.0)                      # line 7: D009
    net.heal_partitions()                              # line 8: D009
    net.clear_faults()                                 # line 9: D009


def not_the_network(path):
    head, _sep, tail = path.partition("/")   # str.partition: 1 arg, clean
    return head, tail
