"""P005 fixture: a scope holding a deadline must propagate it onward."""


async def handler(runtime, ref, deadline):
    await runtime.invoke(ref, "get", ("t", "k"), timeout=3.0)   # line 5: P005
    await runtime.invoke(ref, "get", ("t", "k"), timeout=3.0,
                         deadline=deadline)                     # propagated


async def no_budget_in_scope(runtime, ref):
    await runtime.invoke(ref, "get", ("t", "k"), timeout=3.0)   # no deadline here


async def local_budget(runtime, ref, ctx):
    deadline = ctx.deadline
    await runtime.invoke(ref, "get", ("t", "k"), timeout=3.0)   # line 16: P005


async def forwarded_kwargs(runtime, ref, deadline, **kw):
    await runtime.invoke(ref, "get", ("t", "k"), **kw)   # kwargs may carry it
