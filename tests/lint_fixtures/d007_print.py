"""Fixture: D007 -- print outside cli.py."""


def report(stats: dict) -> None:
    print("stats:", stats)               # line 5: D007
