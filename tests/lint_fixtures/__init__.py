# Intentionally-broken sources for the linter tests.  These files are
# parsed by repro.analysis, never imported as code; each dXXX.py seeds
# known violations for exactly one rule.
