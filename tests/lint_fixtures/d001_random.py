"""Fixture: D001 -- global random module use."""

import random                    # line 3: D001
from random import choice        # line 4: D001


def jitter() -> float:
    return random.random() + (choice([1, 2]) * 0.0)
