"""P004 fixture: detaching a two-way reply (its errors vanish silently)."""


async def caller(runtime, ref):
    runtime.invoke(ref, "put", ("t", "k", 1), timeout=3.0).detach()  # 5: P004
    await runtime.invoke(ref, "put", ("t", "k", 1), timeout=3.0)         # ok
    runtime.invoke(ref, "reportShutdown", ("ip",), timeout=3.0).detach()  # ok
