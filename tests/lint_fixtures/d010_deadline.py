"""D010 fixture: OCS invocations without a time budget."""


async def unbudgeted(runtime, ref):
    await runtime.invoke(ref, "ping", ())                   # line 5: D010
    runtime.invoke(ref, "notify", ("x",)).detach()          # line 6: D010


async def budgeted(runtime, ref, params, kernel, extra):
    await runtime.invoke(ref, "ping", (), timeout=params.call_timeout)
    await runtime.invoke(ref, "ping", (), deadline=kernel.now + 3.0)
    await runtime.invoke(ref, "ping", (), **extra)   # assume kwargs budget
    # Fire-and-forget with a considered exception:
    runtime.invoke(ref, "bye", ()).detach()   # repro: noqa: D010 - power-off


def not_the_rpc(plugin):
    plugin.invoke("hook")   # one positional arg: not invoke(ref, method, args)
