"""PR 5: the per-host binding cache against the live cluster.

Four properties the population-scale design stands on:

- singleflight: N concurrent resolves of one name on a host issue one
  name-service call (unit, and during a real post-kill rebind herd);
- coherence by exception: killing a primary invalidates exactly the dead
  binding -- cached bindings for live services are untouched;
- the name-service audit still converges within its bound with caching
  on, and the audit does not evict live cached bindings;
- the ``cache_coherence`` chaos monitor is falsifiable, and the
  rebinding proxy's params-supplied ``give_up_after`` budget genuinely
  bounds the retry loop (the PR 5 regression fix).
"""

import pytest

from repro.core.naming.cache import BindingCache, cache_for
from repro.core.naming.client import NameClient
from repro.core.naming.errors import NamingError
from repro.core.params import Params
from repro.core.rebind import RebindError, RebindingProxy
from repro.ocs import OCSRuntime
from repro.sim import Kernel, SeededRandom
from repro.sim.kernel import gather
from tests.helpers import StubNames, client_runtime, small_world


# ---------------------------------------------------------------------------
# Singleflight (unit)
# ---------------------------------------------------------------------------


class _CountingResolver:
    def __init__(self, kernel, ref, latency=0.5, error=None):
        self.kernel = kernel
        self.ref = ref
        self.latency = latency
        self.error = error
        self.calls = 0

    async def __call__(self, name):
        self.calls += 1
        await self.kernel.sleep(self.latency)
        if self.error is not None:
            raise self.error
        return self.ref


class TestSingleflight:
    def test_concurrent_resolves_issue_one_ns_call(self):
        kernel = Kernel()
        cache = BindingCache(kernel)
        resolver = _CountingResolver(kernel, ref="the-ref")

        async def run():
            return await gather(
                kernel, [cache.resolve("svc/x", resolver) for _ in range(5)])

        results = kernel.run_until_complete(run())
        assert results == ["the-ref"] * 5
        assert resolver.calls == 1
        assert cache.misses == 1 and cache.coalesced == 4
        assert cache.hits == 0

    def test_waiters_complete_in_arrival_order(self):
        kernel = Kernel()
        cache = BindingCache(kernel)
        resolver = _CountingResolver(kernel, ref="r")
        order = []

        async def one(tag):
            await cache.resolve("svc/x", resolver)
            order.append(tag)

        async def run():
            await gather(kernel, [one(i) for i in range(4)])

        kernel.run_until_complete(run())
        # Leader (0) finishes first, then waiters in FIFO arrival order.
        assert order == [0, 1, 2, 3]

    def test_leader_failure_fans_out_and_caches_nothing(self):
        kernel = Kernel()
        cache = BindingCache(kernel)
        boom = NamingError("ns down")
        resolver = _CountingResolver(kernel, ref=None, error=boom)

        async def run():
            return await gather(
                kernel, [cache.resolve("svc/x", resolver) for _ in range(3)],
                return_exceptions=True)

        results = kernel.run_until_complete(run())
        assert all(r is boom for r in results)
        assert resolver.calls == 1
        assert cache.lookup("svc/x") is None
        # The herd can retry: a later resolve is a fresh leader.
        resolver.error = None
        resolver.ref = "r2"
        assert kernel.run_until_complete(
            cache.resolve("svc/x", resolver)) == "r2"
        assert resolver.calls == 2

    def test_invalidate_requires_ref_match(self):
        kernel = Kernel()
        cache = BindingCache(kernel)
        resolver = _CountingResolver(kernel, ref="new", latency=0.0)
        kernel.run_until_complete(cache.resolve("svc/x", resolver))
        # A failure report against some older ref must not evict.
        assert not cache.invalidate("svc/x", ref="old")
        assert cache.lookup("svc/x") == "new"
        assert cache.invalidate("svc/x", ref="new")
        assert cache.lookup("svc/x") is None
        assert cache.invalidations == 1


# ---------------------------------------------------------------------------
# Cluster: rebind herd, audit interplay, monitor falsifiability
# ---------------------------------------------------------------------------


def _cached_vod_clients(cluster, settop_host, n=3):
    """``n`` processes on one settop host, sharing the host cache."""
    clients = []
    for i in range(n):
        runtime = OCSRuntime(settop_host.spawn(f"app-{i}"), cluster.net)
        names = NameClient(runtime, cluster.server_ips, cluster.params,
                           cache=cache_for(settop_host, cluster.params))
        proxy = RebindingProxy(runtime, names, "svc/vod", cluster.params,
                               rng=SeededRandom(100 + i),
                               give_up_after=30.0)
        clients.append(proxy)
    return clients


@pytest.fixture()
def vod_cluster():
    from repro.cluster.builder import build_full_cluster, fresh_run_state
    fresh_run_state()
    cluster = build_full_cluster(n_servers=2, seed=55)
    settop = cluster.add_settop(cluster.neighborhoods[0])
    return cluster, settop


class TestRebindHerd:
    def test_rebind_after_kill_is_one_resolve_per_host(self, vod_cluster):
        cluster, settop = vod_cluster
        proxies = _cached_vod_clients(cluster, settop, n=3)
        cache = settop.binding_cache

        # Warm: every app tunes once; one miss, the rest hit or coalesce.
        for proxy in proxies:
            assert cluster.run_async(proxy.call("catalog"))["titles"]
        vod_ref = cache.lookup("svc/vod")
        assert vod_ref is not None
        assert cache.misses == 1

        # A second name on the same cache, to prove it stays untouched.
        other = cluster.run_async(proxies[0]._names.resolve("svc/shopping"))
        assert cache.lookup("svc/shopping") == other

        # Kill the serving replica and let the SSC restart it, so the
        # first re-resolve round already finds a live binding.
        index = cluster.server_ips.index(vod_ref.ip)
        assert cluster.kill_service(index, "vod")
        cluster.run_for(30.0)
        fresh = cluster.servers[index].find_process("vod")
        assert fresh is not None
        assert fresh.incarnation != vod_ref.incarnation

        misses, coalesced, invalidations = (cache.misses, cache.coalesced,
                                            cache.invalidations)
        results = cluster.run_async(gather(
            cluster.kernel, [p.call("catalog") for p in proxies]))
        assert all(r["titles"] for r in results)

        # The herd re-bound with exactly ONE name-service round trip:
        # the first failure invalidated the dead binding, the three
        # concurrent re-resolves coalesced onto one leader.
        assert cache.misses == misses + 1
        assert cache.coalesced == coalesced + 2
        assert cache.invalidations == invalidations + 1
        # The live service's binding was never touched.
        assert cache.lookup("svc/shopping") == other
        # And the repaired entry points at the new incarnation.
        assert cache.lookup("svc/vod").incarnation == fresh.incarnation


class TestAuditWithCachingOn:
    def test_audit_converges_and_leaves_live_bindings_alone(self, vod_cluster):
        cluster, settop = vod_cluster
        (proxy,) = _cached_vod_clients(cluster, settop, n=1)
        cache = settop.binding_cache
        assert cluster.run_async(proxy.call("catalog"))["titles"]
        vod_ref = cache.lookup("svc/vod")
        serving = cluster.server_ips.index(vod_ref.ip)
        dead_ip = cluster.server_ips[1 - serving]

        # Crash the *other* server: nothing restarts or rebinds there,
        # so only the audit can clean its bindings out of the NS.
        cluster.crash_server(1 - serving)
        cluster.run_for(cluster.params.chaos_audit_bound)

        survivor = cluster.servers[serving].find_process("ns")
        replica = survivor.attachments["ns_replica"]
        assert replica.audit_removals > 0
        leaked = [(path, ref) for path, ref in replica.leaf_bindings()
                  if ref.ip == dead_ip]
        assert leaked == [], \
            f"audit bound missed with caching on: {leaked}"

        # The audit removed only dead bindings: the cached live binding
        # still works without a re-resolve.
        misses = cache.misses
        assert cluster.run_async(proxy.call("catalog"))["titles"]
        assert cache.misses == misses
        assert cache.lookup("svc/vod") == vod_ref


class TestCacheCoherenceMonitor:
    def test_dead_entry_held_quietly_is_legal(self, vod_cluster):
        from repro.chaos.monitors import CacheCoherenceMonitor
        cluster, settop = vod_cluster
        (proxy,) = _cached_vod_clients(cluster, settop, n=1)
        assert cluster.run_async(proxy.call("catalog"))["titles"]
        vod_ref = settop.binding_cache.lookup("svc/vod")
        cluster.settops.append(settop)

        monitor = CacheCoherenceMonitor()
        monitor.bind(cluster, None, cluster.params, {})
        cluster.crash_server(cluster.server_ips.index(vod_ref.ip))
        assert monitor.check() == []   # first sighting just timestamps
        cluster.run_for(cluster.params.chaos_audit_bound + 10.0)
        # Dead but unused: holding it lazily is the design, not a bug.
        assert monitor.check() == []
        assert monitor.finish() == []

    def test_serving_a_dead_entry_past_the_bound_is_caught(self, vod_cluster):
        from repro.chaos.monitors import CacheCoherenceMonitor
        cluster, settop = vod_cluster
        (proxy,) = _cached_vod_clients(cluster, settop, n=1)
        assert cluster.run_async(proxy.call("catalog"))["titles"]
        cache = settop.binding_cache
        vod_ref = cache.lookup("svc/vod")
        cluster.settops.append(settop)

        monitor = CacheCoherenceMonitor()
        monitor.bind(cluster, None, cluster.params, {})
        cluster.crash_server(cluster.server_ips.index(vod_ref.ip))
        assert monitor.check() == []
        cluster.run_for(cluster.params.chaos_audit_bound + 10.0)
        # Sabotage: a client that keeps hitting the dead binding without
        # ever invalidating -- the monitor must be able to see this.
        dict(cache.entries())["svc/vod"].hits += 3
        violations = monitor.check()
        assert len(violations) == 1
        assert violations[0].monitor == "cache_coherence"
        assert "svc/vod" in violations[0].detail


# ---------------------------------------------------------------------------
# RebindingProxy give_up_after via params (regression fix)
# ---------------------------------------------------------------------------


class TestGiveUpAfterFromParams:
    def test_params_budget_bounds_the_loop_without_deadline(self):
        # Regression: with ``deadline=None`` and the budget supplied via
        # Params, the cooldown/backoff sleeps must still be clamped --
        # the loop gives up at the params budget, not after the default
        # 60s (or never).
        kernel, net, hosts = small_world(2)
        client = client_runtime(net, hosts[1])
        params = Params().with_overrides(rebind_give_up_after=3.0)
        proxy = RebindingProxy(client, StubNames([NamingError("not bound")]),
                               "svc/gone", params=params,
                               rng=SeededRandom(5))
        with pytest.raises(RebindError):
            kernel.run_until_complete(proxy.call("echo", "hi"))
        assert 2.9 <= kernel.now <= 3.6, \
            f"loop ended at t={kernel.now}, budget was 3.0"

    def test_explicit_give_up_after_still_wins(self):
        kernel, net, hosts = small_world(2)
        client = client_runtime(net, hosts[1])
        params = Params().with_overrides(rebind_give_up_after=50.0)
        proxy = RebindingProxy(client, StubNames([NamingError("not bound")]),
                               "svc/gone", params=params,
                               rng=SeededRandom(5), give_up_after=2.0)
        with pytest.raises(RebindError):
            kernel.run_until_complete(proxy.call("echo", "hi"))
        assert kernel.now <= 2.6
