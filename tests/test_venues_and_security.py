"""Tests for venue channels (3.4.3), call encryption (3.3), and the
evict-style resource limit (7.3)."""

import pytest

from repro.cluster import build_full_cluster
from repro.core.params import Params
from repro.idl import register_interface
from repro.ocs import OCSRuntime


class TestVenues:
    @pytest.fixture(scope="class")
    def itv(self):
        cluster = build_full_cluster(n_servers=2, seed=151)
        stk = cluster.add_settop_kernel(1)
        assert cluster.boot_settops([stk])
        return cluster, stk

    def test_venue_channel_loads_scoped_navigator(self, itv):
        cluster, stk = itv
        cluster.run_async(stk.app_manager.tune(8))  # venue:arcade
        nav = stk.app_manager.current_app
        assert nav.name == "navigator"
        assert nav.current_venue == "arcade"
        assert set(nav.lineup()) == {"game"}

    def test_pick_from_venue_launches_app(self, itv):
        cluster, stk = itv
        cluster.run_async(stk.app_manager.tune(8))
        nav = stk.app_manager.current_app
        cluster.run_async(nav.pick("game"))
        assert stk.app_manager.current_app.name == "game"

    def test_multi_app_venue(self, itv):
        cluster, stk = itv
        cluster.run_async(stk.app_manager.tune(9))  # venue:lifestyle
        nav = stk.app_manager.current_app
        assert set(nav.lineup()) == {"shopping", "vod"}

    def test_plain_navigator_shows_everything(self, itv):
        cluster, stk = itv
        cluster.run_async(stk.app_manager.tune(4))
        nav = stk.app_manager.current_app
        assert nav.current_venue is None
        assert len(nav.lineup()) >= 6

    def test_unknown_venue_rejected(self, itv):
        cluster, stk = itv
        stk.app_manager.channels[99] = "venue:ghost"
        with pytest.raises(KeyError):
            cluster.run_async(stk.app_manager.tune(99))


register_interface("CryptoEcho", {"echo": ("v",)})


class TestEncryptedCalls:
    @pytest.fixture(scope="class")
    def cluster(self):
        from repro.cluster import build_cluster
        return build_cluster(n_servers=2, seed=152)

    def _servant(self, cluster):
        class Servant:
            async def echo(self, ctx, v):
                return {"value": v, "encrypted": ctx.encrypted}

        proc = cluster.servers[1].spawn("crypto-svc")
        runtime = OCSRuntime(proc, cluster.net)
        return runtime.export(Servant(), "CryptoEcho")

    def test_default_calls_signed_not_encrypted(self, cluster):
        ref = self._servant(cluster)
        client = cluster.client_on(cluster.servers[0], name="ce1")
        out = cluster.run_async(client.runtime.invoke(ref, "echo", ("x",)))
        assert out["encrypted"] is False

    def test_encrypted_flag_reaches_servant(self, cluster):
        ref = self._servant(cluster)
        client = cluster.client_on(cluster.servers[0], name="ce2")
        out = cluster.run_async(client.runtime.invoke(
            ref, "echo", ("x",), encrypted=True))
        assert out["encrypted"] is True

    def test_encryption_costs_bytes(self, cluster):
        ref = self._servant(cluster)
        client = cluster.client_on(cluster.servers[0], name="ce3")
        kind = "rpc.call.CryptoEcho.echo"
        before = cluster.net.bytes_by_kind.get(kind, 0)
        cluster.run_async(client.runtime.invoke(ref, "echo", ("x",)))
        plain = cluster.net.bytes_by_kind[kind] - before
        before = cluster.net.bytes_by_kind[kind]
        cluster.run_async(client.runtime.invoke(ref, "echo", ("x",),
                                                encrypted=True))
        encrypted = cluster.net.bytes_by_kind[kind] - before
        assert encrypted > plain


class TestEvictLimitPolicy:
    def test_evict_frees_oldest_connection(self):
        cluster = build_full_cluster(
            n_servers=2, seed=153,
            params=Params(max_connections_per_settop=2,
                          connection_limit_policy="evict"))
        settop = cluster.add_settop(1, downstream_bps=50_000_000)
        client = cluster.client_on(cluster.servers[0], name="ev")
        cmgr = cluster.run_async(client.names.resolve("svc/cmgr/1"))

        conns = []
        for _ in range(2):
            conns.append(cluster.run_async(client.runtime.invoke(
                cmgr, "allocate",
                (settop.ip, cluster.servers[0].ip, 1_000_000))))
            cluster.run_for(1.0)
        # Third allocation evicts the oldest instead of failing.
        third = cluster.run_async(client.runtime.invoke(
            cmgr, "allocate", (settop.ip, cluster.servers[0].ip, 1_000_000)))
        live = cluster.run_async(client.runtime.invoke(cmgr, "connections",
                                                       ()))
        assert third in live
        assert conns[0] not in live       # the oldest was freed
        assert conns[1] in live
        downlink = cluster.net.downlink_of(settop.ip)
        assert downlink.reserved_bps == 2_000_000
