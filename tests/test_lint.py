"""The determinism linter: rule coverage, suppressions, and the clean tree.

Each fixture under ``tests/lint_fixtures/`` seeds known violations for
one rule; the tests assert that exactly those are caught.  The final
test is the enforcement gate: ``src/repro`` itself must lint clean.
"""

import os
import subprocess
import sys

import pytest

from repro.analysis import (
    collect_files,
    default_rules,
    lint_paths,
    lint_source,
    rules_by_id,
)
from repro.analysis.engine import suppressed_codes

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join(REPO_ROOT, "tests", "lint_fixtures")
SRC = os.path.join(REPO_ROOT, "src", "repro")


def lint_fixture(name, relpath=None):
    path = os.path.join(FIXTURES, name)
    with open(path) as fh:
        source = fh.read()
    return lint_source(source, path, default_rules(), relpath=relpath)


def hits(violations, rule):
    return [(v.rule, v.line) for v in violations if v.rule == rule]


class TestRuleFixtures:
    def test_d001_random_module(self):
        violations = lint_fixture("d001_random.py")
        assert hits(violations, "D001") == [("D001", 3), ("D001", 4)]
        assert all(v.rule == "D001" for v in violations)

    def test_d001_allows_sim_rand(self):
        violations = lint_source("import random\n", "sim/rand.py",
                                 default_rules(), relpath="sim/rand.py")
        assert violations == []

    def test_d002_wall_clock(self):
        violations = lint_fixture("d002_wallclock.py")
        assert hits(violations, "D002") == [("D002", 3), ("D002", 4),
                                            ("D002", 9)]

    def test_d003_unordered_iteration(self):
        violations = lint_fixture("d003_unordered.py")
        assert hits(violations, "D003") == [("D003", 6), ("D003", 10),
                                            ("D003", 12)]
        # sorted()/any() consumers on lines 14-15 stay clean
        assert all(v.line not in (14, 15) for v in violations)

    def test_d004_hash_and_id(self):
        violations = lint_fixture("d004_hashseed.py")
        assert hits(violations, "D004") == [("D004", 5), ("D004", 9)]

    def test_d005_blanket_except(self):
        violations = lint_fixture("d005_swallow.py")
        assert hits(violations, "D005") == [("D005", 7), ("D005", 14)]
        # the re-raising handler on line 21 is allowed
        assert all(v.line != 21 for v in violations)

    def test_d006_layering(self):
        violations = lint_fixture("d006_layering.py",
                                  relpath="services/d006_layering.py")
        assert hits(violations, "D006") == [("D006", 7), ("D006", 8)]

    def test_d006_only_in_application_layer(self):
        source = "from repro.net.message import Message\n"
        assert lint_source(source, "x.py", default_rules(),
                           relpath="ocs/runtime.py") == []
        assert len(lint_source(source, "x.py", default_rules(),
                               relpath="settop/kernel.py")) == 1

    def test_d007_print(self):
        violations = lint_fixture("d007_print.py")
        assert hits(violations, "D007") == [("D007", 5)]

    def test_d007_allows_cli_and_examples(self):
        source = "print('hello')\n"
        assert lint_source(source, "cli.py", default_rules(),
                           relpath="cli.py") == []
        assert lint_source(source, "demo.py", default_rules(),
                           relpath="examples/demo.py") == []

    def test_d008_future_leak(self):
        violations = lint_fixture("d008_leak.py")
        assert hits(violations, "D008") == [("D008", 5), ("D008", 6)]

    def test_d009_raw_fault_surface(self):
        violations = lint_fixture("d009_rawfault.py")
        assert hits(violations, "D009") == [("D009", 5), ("D009", 6),
                                            ("D009", 7), ("D009", 8),
                                            ("D009", 9)]
        # str.partition (1 arg, line 13) is not the Network surface
        assert all(v.line != 13 for v in violations)

    def test_d009_exempts_chaos_net_and_tests(self):
        source = "net.heal_partitions()\n"
        for relpath in ("chaos/injector.py", "net/network.py",
                        "test_partitions.py"):
            assert lint_source(source, relpath, default_rules(),
                               relpath=relpath) == [], relpath
        assert len(lint_source(source, "x.py", default_rules(),
                               relpath="cluster/builder.py")) == 1

    def test_d010_deadline(self):
        violations = lint_fixture("d010_deadline.py")
        assert hits(violations, "D010") == [("D010", 5), ("D010", 6)]
        # budgeted calls, the noqa'd site, and the 1-arg non-RPC invoke
        # stay clean
        assert all(v.line in (5, 6) for v in violations
                   if v.rule == "D010")

    def test_d010_exempts_tests(self):
        source = "x = runtime.invoke(ref, 'ping', ())\n"
        assert lint_source(source, "test_ocs.py", default_rules(),
                           relpath="test_ocs.py") == []
        assert hits(lint_source(source, "x.py", default_rules(),
                                relpath="services/vod.py"),
                    "D010") == [("D010", 1)]


class TestSuppressions:
    def test_noqa_fixture(self):
        violations = lint_fixture("noqa_suppressed.py")
        # D001 noqa'd by code, D002 noqa'd by blanket comment; the D003 on
        # line 8 survives because its noqa names the wrong rule -- which
        # also makes that suppression stale (W001: it masks nothing).
        assert [(v.rule, v.line) for v in violations] == [("D003", 8),
                                                          ("W001", 8)]

    def test_w001_stale_suppressions(self):
        violations = lint_fixture("w001_stale.py")
        # Line 3 suppresses D001 on a clean line; line 5 is a blanket
        # noqa masking nothing.  The import-line noqa on line 4 masks a
        # real D001 and stays.
        assert [(v.rule, v.line) for v in violations] == [("W001", 3),
                                                          ("W001", 5)]

    def test_w001_itself_cannot_be_suppressed(self):
        source = "x = 1  # repro: noqa W001\n"
        violations = lint_source(source, "x.py", default_rules(),
                                 relpath="x.py")
        assert [(v.rule, v.line) for v in violations] == [("W001", 1)]

    def test_suppressed_codes_parsing(self):
        assert suppressed_codes("x = 1") is None
        assert suppressed_codes("x = 1  # repro: noqa") == []
        assert suppressed_codes("x = 1  # repro: noqa D003") == ["D003"]
        assert suppressed_codes("x = 1  # repro: noqa: D003, D005") == \
            ["D003", "D005"]

    def test_noqa_with_trailing_reason(self):
        source = "import random  # repro: noqa D001 - vetted: test tooling\n"
        assert lint_source(source, "x.py", default_rules(), relpath="x.py") == []


class TestEngine:
    def test_syntax_error_reported_not_raised(self):
        violations = lint_source("def broken(:\n", "x.py", default_rules(),
                                 relpath="x.py")
        assert [v.rule for v in violations] == ["E000"]

    def test_collect_files_is_sorted_and_unique(self):
        files = collect_files([SRC, SRC])
        assert files == sorted(set(files))
        assert all(f.endswith(".py") for f in files)

    def test_rules_by_id_covers_the_full_catalog(self):
        ids = sorted(rules_by_id())
        assert ids == ([f"D00{i}" for i in range(1, 10)] + ["D010"]
                       + [f"P00{i}" for i in range(1, 7)] + ["W001"])

    def test_stats_lines(self):
        report = lint_paths([os.path.join(FIXTURES, "d007_print.py")])
        stats = "\n".join(report.stats_lines())
        assert "D007: 1" in stats
        assert "d007_print.py: 1" in stats

    def test_stats_include_protocol_coverage(self):
        report = lint_paths([os.path.join(FIXTURES, "d010_deadline.py")])
        stats = "\n".join(report.stats_lines())
        assert "call-site coverage" in stats

    def test_github_format(self):
        report = lint_paths([os.path.join(FIXTURES, "d007_print.py")])
        lines = report.github_lines()
        assert len(lines) == 1
        assert lines[0].startswith("::error file=")
        assert "title=D007::" in lines[0]

    def test_json_format(self):
        import json
        report = lint_paths([os.path.join(FIXTURES, "d007_print.py")])
        data = json.loads(report.to_json())
        assert data["ok"] is False
        assert data["violations"][0]["rule"] == "D007"
        assert data["protocol_coverage"]["total_sites"] >= 0


class TestEnforcement:
    def test_src_repro_is_clean(self):
        """The gate: the tree must satisfy its own determinism rules."""
        report = lint_paths([SRC])
        assert report.ok, "\n".join(report.format_lines())

    def test_cli_lint_exit_codes(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + os.pathsep + \
            env.get("PYTHONPATH", "")
        clean = subprocess.run(
            [sys.executable, "-m", "repro", "lint", SRC],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT)
        assert clean.returncode == 0, clean.stdout + clean.stderr
        dirty = subprocess.run(
            [sys.executable, "-m", "repro", "lint",
             os.path.join(FIXTURES, "d007_print.py")],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT)
        assert dirty.returncode == 1
        assert "D007" in dirty.stdout
