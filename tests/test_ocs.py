"""Unit tests for the OCS object-exchange layer."""

import pytest

from repro.idl import register_exception, register_interface
from repro.idl.errors import NoSuchMethod, SignatureError
from repro.net import Network, server_ip
from repro.ocs import (
    CallTimeout,
    InvalidObjectReference,
    OCSRuntime,
    RemoteException,
)
from repro.sim import Host, Kernel

register_interface("TestEcho", {
    "echo": ("value",),
    "fail": ("kind",),
    "slow": ("duration",),
    "add": ("a", "b"),
}, doc="toy interface for runtime tests")


@register_exception
class TeapotError(Exception):
    """A registered application exception."""


class EchoServant:
    def __init__(self, kernel):
        self.kernel = kernel
        self.calls = []

    async def echo(self, ctx, value):
        self.calls.append((ctx.caller, value))
        return value

    async def fail(self, ctx, kind):
        if kind == "registered":
            raise TeapotError("short and stout")
        raise KeyError("unregistered")

    async def slow(self, ctx, duration):
        await self.kernel.sleep(duration)
        return "done"

    def add(self, ctx, a, b):
        # Deliberately synchronous: servants may be plain functions.
        return a + b


@pytest.fixture
def world():
    kernel = Kernel()
    net = Network(kernel)
    hosts = []
    for i in range(3):
        host = Host(kernel, f"server-{i}")
        net.attach(host, server_ip(i))
        hosts.append(host)
    return kernel, net, hosts


def start_echo(kernel, net, host):
    proc = host.spawn("echo-svc")
    runtime = OCSRuntime(proc, net)
    servant = EchoServant(kernel)
    ref = runtime.export(servant, "TestEcho")
    return proc, runtime, servant, ref


def client_runtime(net, host, name="client"):
    proc = host.spawn(name)
    return proc, OCSRuntime(proc, net)


class TestInvocation:
    def test_round_trip(self, world):
        kernel, net, hosts = world
        _, _, servant, ref = start_echo(kernel, net, hosts[0])
        _, cli = client_runtime(net, hosts[1])

        async def main():
            return await cli.invoke(ref, "echo", ("hello",))

        assert kernel.run_until_complete(main()) == "hello"
        assert servant.calls[0][1] == "hello"

    def test_caller_identity_delivered(self, world):
        kernel, net, hosts = world
        _, _, servant, ref = start_echo(kernel, net, hosts[0])
        proc, cli = client_runtime(net, hosts[1], name="vod-app")

        async def main():
            await cli.invoke(ref, "echo", ("x",))

        kernel.run_until_complete(main())
        assert servant.calls[0][0] == "vod-app@server-1"

    def test_stub_call(self, world):
        kernel, net, hosts = world
        _, _, _, ref = start_echo(kernel, net, hosts[0])
        _, cli = client_runtime(net, hosts[1])
        stub = cli.stub(ref)

        async def main():
            return await stub.add(2, 3)

        assert kernel.run_until_complete(main()) == 5

    def test_stub_unknown_method_raises_immediately(self, world):
        kernel, net, hosts = world
        _, _, _, ref = start_echo(kernel, net, hosts[0])
        _, cli = client_runtime(net, hosts[1])
        stub = cli.stub(ref)
        with pytest.raises(NoSuchMethod):
            stub.frobnicate

    def test_wrong_arity_rejected(self, world):
        kernel, net, hosts = world
        _, _, _, ref = start_echo(kernel, net, hosts[0])
        _, cli = client_runtime(net, hosts[1])

        async def main():
            await cli.invoke(ref, "add", (1,))

        with pytest.raises(SignatureError):
            kernel.run_until_complete(main())

    def test_registered_exception_round_trips(self, world):
        kernel, net, hosts = world
        _, _, _, ref = start_echo(kernel, net, hosts[0])
        _, cli = client_runtime(net, hosts[1])

        async def main():
            await cli.invoke(ref, "fail", ("registered",))

        with pytest.raises(TeapotError, match="short and stout"):
            kernel.run_until_complete(main())

    def test_unregistered_exception_becomes_remote(self, world):
        kernel, net, hosts = world
        _, _, _, ref = start_echo(kernel, net, hosts[0])
        _, cli = client_runtime(net, hosts[1])

        async def main():
            await cli.invoke(ref, "fail", ("other",))

        with pytest.raises(RemoteException, match="KeyError"):
            kernel.run_until_complete(main())

    def test_nil_reference(self, world):
        kernel, net, hosts = world
        _, cli = client_runtime(net, hosts[1])

        async def main():
            await cli.invoke(None, "echo", ("x",))

        with pytest.raises(InvalidObjectReference):
            kernel.run_until_complete(main())

    def test_concurrent_calls_to_multithreaded_servant(self, world):
        kernel, net, hosts = world
        _, _, _, ref = start_echo(kernel, net, hosts[0])
        _, cli = client_runtime(net, hosts[1])
        done_times = []

        async def one(d):
            await cli.invoke(ref, "slow", (d,))
            done_times.append(kernel.now)

        async def main():
            from repro.sim import gather
            await gather(kernel, [one(1.0), one(1.0)])

        kernel.run_until_complete(main())
        # Both ~1s: the servant handles calls concurrently.
        assert all(t < 1.5 for t in done_times)


class TestFailureDetection:
    def test_dead_process_gives_invalid_reference(self, world):
        kernel, net, hosts = world
        proc, _, _, ref = start_echo(kernel, net, hosts[0])
        _, cli = client_runtime(net, hosts[1])
        proc.kill()

        async def main():
            await cli.invoke(ref, "echo", ("x",))

        with pytest.raises(InvalidObjectReference):
            kernel.run_until_complete(main())
        # Detection is fast (port-unreachable), not a timeout.
        assert kernel.now < 0.5

    def test_crashed_host_gives_timeout(self, world):
        kernel, net, hosts = world
        _, _, _, ref = start_echo(kernel, net, hosts[0])
        _, cli = client_runtime(net, hosts[1])
        hosts[0].crash()

        async def main():
            await cli.invoke(ref, "echo", ("x",), timeout=2.0)

        with pytest.raises(CallTimeout):
            kernel.run_until_complete(main())
        assert kernel.now == pytest.approx(2.0)

    def test_restarted_process_rejects_stale_ref(self, world):
        kernel, net, hosts = world
        proc, _, _, old_ref = start_echo(kernel, net, hosts[0])
        proc.kill()
        kernel.run(until=1.0)
        # Restart the service: new incarnation, new port.
        start_echo(kernel, net, hosts[0])
        _, cli = client_runtime(net, hosts[1])

        async def main():
            await cli.invoke(old_ref, "echo", ("x",))

        with pytest.raises(InvalidObjectReference):
            kernel.run_until_complete(main())

    def test_unexported_object_rejected(self, world):
        kernel, net, hosts = world
        _, runtime, _, ref = start_echo(kernel, net, hosts[0])
        runtime.unexport("")
        _, cli = client_runtime(net, hosts[1])

        async def main():
            await cli.invoke(ref, "echo", ("x",))

        with pytest.raises(InvalidObjectReference):
            kernel.run_until_complete(main())

    def test_server_dying_mid_call_times_out(self, world):
        kernel, net, hosts = world
        proc, _, _, ref = start_echo(kernel, net, hosts[0])
        _, cli = client_runtime(net, hosts[1])
        kernel.call_later(0.5, proc.kill)

        async def main():
            await cli.invoke(ref, "slow", (10.0,), timeout=2.0)

        with pytest.raises(CallTimeout):
            kernel.run_until_complete(main())


class TestSingleThreadedServants:
    def test_calls_serialize(self, world):
        kernel, net, hosts = world
        proc = hosts[0].spawn("st-svc")
        runtime = OCSRuntime(proc, net)
        servant = EchoServant(kernel)
        ref = runtime.export(servant, "TestEcho", single_threaded=True)
        _, cli = client_runtime(net, hosts[1])
        done_times = []

        async def one(d):
            await cli.invoke(ref, "slow", (d,), timeout=30.0)
            done_times.append(round(kernel.now, 2))

        async def main():
            from repro.sim import gather
            await gather(kernel, [one(1.0), one(1.0)])

        kernel.run_until_complete(main())
        # Second call waits for the first: ~1s then ~2s.
        assert max(done_times) >= 2.0

    def test_busy_servant_cannot_answer_ping(self, world):
        """Single-threaded services miss pings while busy (section 7.2)."""
        kernel, net, hosts = world
        proc = hosts[0].spawn("st-svc")
        runtime = OCSRuntime(proc, net)
        servant = EchoServant(kernel)
        ref = runtime.export(servant, "TestEcho", single_threaded=True)
        _, cli = client_runtime(net, hosts[1])
        outcomes = {}

        async def long_call():
            outcomes["long"] = await cli.invoke(ref, "slow", (10.0,), timeout=30.0)

        async def ping():
            await kernel.sleep(1.0)  # land mid-long-call
            try:
                await cli.invoke(ref, "echo", ("ping",), timeout=2.0)
                outcomes["ping"] = "answered"
            except CallTimeout:
                outcomes["ping"] = "timeout"

        kernel.create_task(long_call())
        kernel.create_task(ping())
        kernel.run(until=60.0)
        assert outcomes["ping"] == "timeout"
        assert outcomes["long"] == "done"


class TestExportRules:
    def test_duplicate_object_id_rejected(self, world):
        kernel, net, hosts = world
        proc = hosts[0].spawn("svc")
        runtime = OCSRuntime(proc, net)
        runtime.export(EchoServant(kernel), "TestEcho")
        from repro.ocs import OCSError
        with pytest.raises(OCSError):
            runtime.export(EchoServant(kernel), "TestEcho")

    def test_multiple_objects_with_ids(self, world):
        kernel, net, hosts = world
        proc = hosts[0].spawn("svc")
        runtime = OCSRuntime(proc, net)
        r1 = runtime.export(EchoServant(kernel), "TestEcho", object_id="a")
        r2 = runtime.export(EchoServant(kernel), "TestEcho", object_id="b")
        assert r1.object_id != r2.object_id
        assert r1.port == r2.port
