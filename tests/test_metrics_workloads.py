"""Tests for the metrics helpers and the viewer workload generator."""

import pytest

from repro.metrics.availability import AvailabilityTimeline
from repro.metrics.counters import MessageCensus
from repro.metrics.latency import LatencyRecorder, percentile, summarize
from repro.net import Message, Network, server_ip
from repro.sim import Host, Kernel
from repro.sim.rand import SeededRandom


@pytest.fixture
def kernel():
    return Kernel()


class TestPercentiles:
    def test_simple(self):
        data = list(range(1, 101))
        assert percentile(data, 50) == 50
        assert percentile(data, 99) == 99
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 100

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s["count"] == 4
        assert s["mean"] == 2.5
        assert s["min"] == 1.0 and s["max"] == 4.0

    def test_summarize_empty(self):
        assert summarize([]) == {"count": 0}

    def test_nearest_rank_uses_ceil_not_bankers_rounding(self):
        """Regression: round() picked rank 22 for p90 of 25 samples.

        Nearest-rank is ceil(p/100 * n): for n=25, p90 -> ceil(22.5) =
        rank 23.  Banker's rounding (round-half-to-even) gave 22.
        """
        data = list(range(1, 26))          # values equal their rank
        assert percentile(data, 90) == 23  # round() would say 22
        assert percentile(data, 50) == 13  # ceil(12.5) = 13; round() said 12
        assert percentile(data, 10) == 3   # ceil(2.5) = 3; round() said 2
        # Ranks where ceil and round agree must be unchanged.
        assert percentile(data, 99) == 25
        assert percentile(data, 4) == 1

    def test_percentile_presorted_skips_sort(self):
        data = [5.0, 1.0, 3.0]
        assert percentile(data, 50) == 3.0
        assert percentile(sorted(data), 50, presorted=True) == 3.0

    def test_summarize_percentiles_consistent_with_percentile(self):
        data = [float(v) for v in range(100, 0, -1)]
        s = summarize(data)
        assert s["p50"] == percentile(data, 50)
        assert s["p90"] == percentile(data, 90)
        assert s["p99"] == percentile(data, 99)


class TestLatencyRecorder:
    def test_start_stop(self, kernel):
        rec = LatencyRecorder(kernel)
        rec.start("op")
        kernel.run(until=2.5)
        assert rec.stop("op") == 2.5
        assert rec.summary("op")["count"] == 1

    def test_tokens_distinguish_concurrent(self, kernel):
        rec = LatencyRecorder(kernel)
        rec.start("op", token="a")
        kernel.run(until=1.0)
        rec.start("op", token="b")
        kernel.run(until=3.0)
        assert rec.stop("op", token="a") == 3.0
        assert rec.stop("op", token="b") == 2.0

    def test_stop_unknown_raises(self, kernel):
        with pytest.raises(KeyError):
            LatencyRecorder(kernel).stop("ghost")

    def test_discard_abandons_open_timer(self, kernel):
        """Regression: a mid-flight death leaked the _open entry forever."""
        rec = LatencyRecorder(kernel)
        rec.start("op", token="dying")
        assert rec.open_timers() == 1
        assert rec.discard("op", token="dying")
        assert rec.open_timers() == 0
        assert rec.summary("op") == {"count": 0}
        with pytest.raises(KeyError):
            rec.stop("op", token="dying")

    def test_discard_unknown_is_false(self, kernel):
        assert not LatencyRecorder(kernel).discard("ghost")

    def test_time_context_manager_records_on_success(self, kernel):
        rec = LatencyRecorder(kernel)
        with rec.time("op") as timer:
            kernel.run(until=1.5)
        assert timer.elapsed == 1.5
        assert rec.summary("op")["count"] == 1
        assert rec.open_timers() == 0

    def test_time_context_manager_discards_on_exception(self, kernel):
        rec = LatencyRecorder(kernel)
        with pytest.raises(RuntimeError):
            with rec.time("op"):
                kernel.run(until=1.0)
                raise RuntimeError("operation died mid-flight")
        assert rec.summary("op") == {"count": 0}
        assert rec.open_timers() == 0

    def test_time_nests_without_token_collisions(self, kernel):
        rec = LatencyRecorder(kernel)
        with rec.time("op"):
            kernel.run(until=1.0)
            with rec.time("op"):
                kernel.run(until=2.0)
        assert rec.summary("op")["count"] == 2
        assert sorted(rec.samples("op")) == [1.0, 2.0]

    def test_summary_sorted_cache_tracks_new_samples(self, kernel):
        rec = LatencyRecorder(kernel)
        for v in (3.0, 1.0, 2.0):
            rec.record("op", v)
        assert rec.summary("op")["min"] == 1.0
        rec.record("op", 0.5)  # must invalidate the cached sort
        s = rec.summary("op")
        assert s["min"] == 0.5 and s["count"] == 4


class TestAvailabilityTimeline:
    def test_no_outage(self, kernel):
        tl = AvailabilityTimeline(kernel)
        kernel.run(until=100.0)
        assert tl.availability() == 1.0
        assert tl.outages() == []

    def test_single_outage(self, kernel):
        tl = AvailabilityTimeline(kernel)
        kernel.run(until=10.0)
        tl.mark_down()
        kernel.run(until=15.0)
        tl.mark_up()
        kernel.run(until=100.0)
        assert tl.outages() == [(10.0, 5.0)]
        assert tl.downtime() == 5.0
        assert tl.availability() == pytest.approx(0.95)

    def test_open_outage_counts_to_now(self, kernel):
        tl = AvailabilityTimeline(kernel)
        kernel.run(until=90.0)
        tl.mark_down()
        kernel.run(until=100.0)
        assert tl.downtime() == pytest.approx(10.0)
        assert not tl.is_up

    def test_double_mark_is_idempotent(self, kernel):
        tl = AvailabilityTimeline(kernel)
        tl.mark_down()
        tl.mark_down()
        kernel.run(until=5.0)
        tl.mark_up()
        tl.mark_up()
        assert len(tl.outages()) == 1

    def test_until_clamps_out_of_scope_transitions(self, kernel):
        """Regression: an up-transition after ``until`` closed the outage
        at its real end, overstating downtime(until)."""
        tl = AvailabilityTimeline(kernel)
        kernel.run(until=5.0)
        tl.mark_down()
        kernel.run(until=15.0)
        tl.mark_up()
        kernel.run(until=30.0)
        assert tl.outages(until=10.0) == [(5.0, 5.0)]
        assert tl.downtime(until=10.0) == pytest.approx(5.0)
        # The cutoff exactly at the up-transition is the closed interval.
        assert tl.downtime(until=15.0) == pytest.approx(10.0)
        # Transitions entirely past the cutoff are invisible.
        assert tl.outages(until=5.0) == []
        assert tl.downtime() == pytest.approx(10.0)

    def test_availability_with_clamped_window(self, kernel):
        tl = AvailabilityTimeline(kernel)
        kernel.run(until=5.0)
        tl.mark_down()
        kernel.run(until=15.0)
        tl.mark_up()
        kernel.run(until=20.0)
        assert tl.availability(until=10.0) == pytest.approx(0.5)

    def test_summary_fields(self, kernel):
        tl = AvailabilityTimeline(kernel)
        kernel.run(until=10.0)
        tl.mark_down()
        kernel.run(until=12.0)
        tl.mark_up()
        kernel.run(until=20.0)
        s = tl.summary()
        assert s["outages"] == 1
        assert s["longest_outage"] == 2.0


class TestMessageCensus:
    def test_delta_and_groups(self, kernel):
        net = Network(kernel)
        a = Host(kernel, "a")
        b = Host(kernel, "b")
        net.attach(a, server_ip(0))
        net.attach(b, server_ip(1))
        net.bind_port(b.ip, 1, lambda m: None)
        census = MessageCensus(net)
        for _ in range(4):
            net.send(Message(src=(a.ip, 1), dst=(b.ip, 1),
                             kind="rpc.call.RAS.checkStatus"))
        net.send(Message(src=(a.ip, 1), dst=(b.ip, 1), kind="mds.stream"))
        kernel.run()
        groups = census.by_group()
        assert groups["ras"] == 4
        assert groups["media-data"] == 1
        assert census.total() == 5
        census.snapshot()
        assert census.total() == 0

    def test_rate_requires_positive_duration(self, kernel):
        net = Network(kernel)
        census = MessageCensus(net)
        with pytest.raises(ValueError):
            census.rate_per_second(0)


class TestZipf:
    def test_zipf_skews_to_head(self):
        rng = SeededRandom(5)
        draws = [rng.zipf_index(10, skew=1.2) for _ in range(2000)]
        head = sum(1 for d in draws if d == 0)
        tail = sum(1 for d in draws if d == 9)
        assert head > 5 * max(tail, 1)
        assert all(0 <= d < 10 for d in draws)

    def test_zipf_rejects_empty(self):
        with pytest.raises(ValueError):
            SeededRandom(1).zipf_index(0)


class TestViewerWorkload:
    def test_sessions_generate_activity(self):
        from repro.cluster import build_full_cluster
        from repro.workloads import run_viewers
        cluster = build_full_cluster(n_servers=3, seed=111)
        kernels = [cluster.add_settop_kernel(n)
                   for n in cluster.neighborhoods[:3]]
        assert cluster.boot_settops(kernels)
        stats = run_viewers(cluster, kernels, duration=300.0, seed=5)
        assert stats.opens + stats.orders + stats.game_rounds > 0
        assert stats.open_failures == 0
        assert stats.tunes > 0
        # Channel changes hit the paper's 2-4s app start band.
        assert all(0.5 <= t <= 6.0 for t in stats.tune_latencies)
