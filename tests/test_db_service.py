"""Tests for the database service: persistence, replication, fail-over."""

import pytest

from repro.cluster import build_cluster
from repro.core.rebind import RebindingProxy
from repro.db.service import DatabaseClient, NoSuchKey


@pytest.fixture(scope="module")
def cluster():
    return build_cluster(n_servers=3, seed=61)


def db_client(cluster, server_index=0, name="db-client"):
    client = cluster.client_on(cluster.servers[server_index], name=name)
    proxy = RebindingProxy(client.runtime, client.names, "svc/db",
                           cluster.params)
    return DatabaseClient(proxy)


class TestBasicOperations:
    def test_put_get(self, cluster):
        db = db_client(cluster, name="c1")
        cluster.run_async(db.put("t", "k", {"v": 1}))
        assert cluster.run_async(db.get("t", "k")) == {"v": 1}

    def test_get_missing_raises(self, cluster):
        db = db_client(cluster, name="c2")
        with pytest.raises(NoSuchKey):
            cluster.run_async(db.get("t", "ghost"))

    def test_get_or_default(self, cluster):
        db = db_client(cluster, name="c3")
        assert cluster.run_async(db.get_or("t", "ghost", 7)) == 7

    def test_delete(self, cluster):
        db = db_client(cluster, name="c4")
        cluster.run_async(db.put("t", "gone", 1))
        cluster.run_async(db.delete("t", "gone"))
        with pytest.raises(NoSuchKey):
            cluster.run_async(db.get("t", "gone"))

    def test_scan(self, cluster):
        db = db_client(cluster, name="c5")
        cluster.run_async(db.put("scan_t", "a", 1))
        cluster.run_async(db.put("scan_t", "b", 2))
        assert cluster.run_async(db.scan("scan_t")) == {"a": 1, "b": 2}

    def test_config_table_seeded(self, cluster):
        db = db_client(cluster, name="c6")
        nbhds = cluster.run_async(db.get("config", "neighborhoods_by_server"))
        assert nbhds == cluster.neighborhoods_by_server


class TestDurabilityAndFailover:
    def test_data_survives_db_process_crash(self):
        cluster = build_cluster(n_servers=3, seed=62)
        db = db_client(cluster)
        cluster.run_async(db.put("orders", "o1", {"item": "mug"}))
        for i in range(3):
            cluster.kill_service(i, "db")
        cluster.run_for(10.0)  # SSCs restart the replicas from disk
        assert cluster.run_async(db.get("orders", "o1")) == {"item": "mug"}

    def test_writes_replicated_to_backup_disks(self):
        cluster = build_cluster(n_servers=3, seed=63)
        db = db_client(cluster)
        cluster.run_async(db.put("bm", "k", "v"))
        cluster.run_for(2.0)  # replication pushes land
        on_disk = sum(1 for host in cluster.servers
                      if host.disk.read("db/bm", {}).get("k") == "v")
        assert on_disk == 3

    def test_primary_failover_serves_replicated_data(self):
        cluster = build_cluster(n_servers=3, seed=64)
        db = db_client(cluster)
        cluster.run_async(db.put("fo", "k", 42))
        cluster.run_for(2.0)
        # Find and crash the whole server hosting the primary.
        finder = cluster.client_on(cluster.servers[0], name="find")
        ref = cluster.run_async(finder.names.resolve("svc/db"))
        primary_index = cluster.server_ips.index(ref.ip)
        cluster.crash_server(primary_index)
        cluster.run_for(cluster.params.max_failover + 10.0)
        survivor = (primary_index + 1) % 3
        db2 = db_client(cluster, server_index=survivor, name="after")
        assert cluster.run_async(db2.get("fo", "k")) == 42
