"""Unit + integration tests for the authentication service (section 3.3)."""

import pytest

from repro.auth.tickets import Ticket, sign_ticket, verify_ticket
from repro.auth.service import AuthRefused, enable_signing, install_verifier
from repro.cluster import build_cluster
from repro.ocs import AuthError, OCSRuntime

SECRET = b"test-secret"


class TestTickets:
    def test_round_trip(self):
        ticket = sign_ticket(SECRET, "alice", issued_at=0.0, lifetime=100.0)
        assert verify_ticket(SECRET, ticket, now=50.0,
                             expected_principal="alice")

    def test_expired_rejected(self):
        ticket = sign_ticket(SECRET, "alice", issued_at=0.0, lifetime=100.0)
        assert not verify_ticket(SECRET, ticket, now=101.0,
                                 expected_principal="alice")

    def test_wrong_principal_rejected(self):
        ticket = sign_ticket(SECRET, "alice", issued_at=0.0, lifetime=100.0)
        assert not verify_ticket(SECRET, ticket, now=1.0,
                                 expected_principal="mallory")

    def test_tampered_signature_rejected(self):
        ticket = sign_ticket(SECRET, "alice", issued_at=0.0, lifetime=100.0)
        forged = Ticket(principal=ticket.principal,
                        issued_at=ticket.issued_at,
                        expires_at=ticket.expires_at + 10_000,
                        signature=ticket.signature)
        assert not verify_ticket(SECRET, forged, now=1.0,
                                 expected_principal="alice")

    def test_wrong_key_rejected(self):
        ticket = sign_ticket(SECRET, "alice", issued_at=0.0, lifetime=100.0)
        assert not verify_ticket(b"other-key", ticket, now=1.0,
                                 expected_principal="alice")

    def test_non_ticket_rejected(self):
        assert not verify_ticket(SECRET, "garbage", now=0.0,
                                 expected_principal="alice")


class TestAuthService:
    @pytest.fixture(scope="class")
    def cluster(self):
        return build_cluster(n_servers=2, seed=31)

    def test_ticket_issued_for_own_identity(self, cluster):
        client = cluster.client_on(cluster.servers[0], name="alice")

        async def get():
            auth = await client.names.resolve("svc/auth")
            return await client.runtime.invoke(
                auth, "getTicket", (client.runtime.principal,))

        ticket = cluster.run_async(get())
        assert isinstance(ticket, Ticket)
        assert ticket.principal == client.runtime.principal

    def test_cannot_impersonate(self, cluster):
        client = cluster.client_on(cluster.servers[0], name="mallory")

        async def get():
            auth = await client.names.resolve("svc/auth")
            return await client.runtime.invoke(auth, "getTicket",
                                               ("somebody-else",))

        with pytest.raises(AuthRefused):
            cluster.run_async(get())

    def test_renewal(self, cluster):
        client = cluster.client_on(cluster.servers[0], name="renewer")

        async def flow():
            auth = await client.names.resolve("svc/auth")
            first = await client.runtime.invoke(
                auth, "getTicket", (client.runtime.principal,))
            return await client.runtime.invoke(auth, "renewTicket", (first,))

        renewed = cluster.run_async(flow())
        assert renewed.principal == client.runtime.principal

    def test_verifier_rejects_unsigned_calls(self, cluster):
        """A servant with the verifier installed refuses anonymous calls."""
        from repro.idl import register_interface
        register_interface("SecuredEcho", {"echo": ("v",)})

        class Servant:
            async def echo(self, ctx, v):
                return (v, ctx.authenticated)

        secret = cluster.cluster_config["auth_secret"]
        server_proc = cluster.servers[1].spawn("secured")
        server_rt = OCSRuntime(server_proc, cluster.net)
        install_verifier(server_rt, secret)
        ref = server_rt.export(Servant(), "SecuredEcho")

        client = cluster.client_on(cluster.servers[0], name="anon")
        with pytest.raises(AuthError):
            cluster.run_async(client.runtime.invoke(ref, "echo", ("hi",)))

    def test_signed_calls_accepted(self, cluster):
        from repro.idl import register_interface
        register_interface("SecuredEcho2", {"echo": ("v",)})

        class Servant:
            async def echo(self, ctx, v):
                return (v, ctx.authenticated)

        secret = cluster.cluster_config["auth_secret"]
        server_proc = cluster.servers[1].spawn("secured2")
        server_rt = OCSRuntime(server_proc, cluster.net)
        install_verifier(server_rt, secret)
        ref = server_rt.export(Servant(), "SecuredEcho2")

        client = cluster.client_on(cluster.servers[0], name="signer")

        async def flow():
            auth = await client.names.resolve("svc/auth")
            ticket = await client.runtime.invoke(
                auth, "getTicket", (client.runtime.principal,))
            enable_signing(client.runtime, ticket)
            return await client.runtime.invoke(ref, "echo", ("hi",))

        value, authenticated = cluster.run_async(flow())
        assert value == "hi"
        assert authenticated
