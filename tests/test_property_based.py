"""Property-based tests (hypothesis) on core invariants.

Targets the data structures whose correctness everything else leans on:
the name store's update semantics, link reservation accounting, the
kernel's event ordering, selector totality, and marshal-size sanity.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.naming.errors import NamingError
from repro.core.naming.store import NameStore, join_name, split_name
from repro.idl import estimated_size
from repro.net.link import Link, ReservationError
from repro.ocs.objref import ObjectRef
from repro.sim import Kernel

# -- strategies -------------------------------------------------------

name_component = st.text(
    alphabet=st.sampled_from("abcdefgh0123456789-_"), min_size=1, max_size=8)
path_strategy = st.lists(name_component, min_size=1, max_size=4).map(join_name)


def ref_strategy():
    return st.builds(
        ObjectRef,
        ip=st.sampled_from(["192.26.65.1", "192.26.65.2", "10.0.1.1"]),
        port=st.integers(min_value=1, max_value=65535),
        incarnation=st.tuples(st.floats(min_value=0, max_value=1e6,
                                        allow_nan=False),
                              st.integers(min_value=1, max_value=10**6)),
        type_id=st.just("NamingContext"),
        object_id=st.text(max_size=4),
    )


op_strategy = st.one_of(
    st.tuples(st.just("mkcontext"), path_strategy),
    st.tuples(st.just("mkrepl"), path_strategy,
              st.just(("builtin", "first"))),
    st.tuples(st.just("bind"), path_strategy, ref_strategy()),
    st.tuples(st.just("unbind"), path_strategy),
)


class TestNameStoreProperties:
    @given(st.lists(op_strategy, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_checked_ops_never_corrupt_the_tree(self, ops):
        """Any sequence of validated updates leaves a consistent tree."""
        store = NameStore()
        applied = []
        for op in ops:
            try:
                store.check(op)
            except NamingError:
                continue
            store.apply(op)
            applied.append(op)
        # Invariant 1: every leaf binding reachable via iter_leaf_bindings
        # resolves through get_node to the same ref.
        for path, ref in store.iter_leaf_bindings():
            if path.endswith("/selector"):
                continue
            assert store.get_node(path).ref == ref
        # Invariant 2: context_paths are all actual contexts.
        for path in store.context_paths():
            assert store.get_node(path).is_context()

    @given(st.lists(op_strategy, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_snapshot_round_trip_is_identity(self, ops):
        store = NameStore()
        seq = 0
        for op in ops:
            try:
                store.check(op)
            except NamingError:
                continue
            seq += 1
            store.apply_numbered(seq, op)
        clone = NameStore()
        clone.load_snapshot(store.snapshot())
        assert clone.applied_seq == store.applied_seq
        assert clone.context_paths() == store.context_paths()
        assert (sorted(clone.iter_leaf_bindings())
                == sorted(store.iter_leaf_bindings()))

    @given(st.lists(op_strategy, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_replicas_applying_same_ops_converge(self, ops):
        """Determinism: the replication safety property."""
        a, b = NameStore(), NameStore()
        seq = 0
        for op in ops:
            try:
                a.check(op)
            except NamingError:
                continue
            seq += 1
            a.apply_numbered(seq, op)
            b.apply_numbered(seq, op)
        assert a.snapshot() == b.snapshot()

    @given(path_strategy)
    def test_split_join_round_trip(self, path):
        assert join_name(split_name(path)) == path


class TestLinkProperties:
    @given(st.lists(st.tuples(st.sampled_from(["reserve", "release"]),
                              st.integers(min_value=0, max_value=9),
                              st.floats(min_value=1, max_value=2e6,
                                        allow_nan=False)),
                    max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_reservations_never_exceed_capacity(self, actions):
        kernel = Kernel()
        link = Link(kernel, rate_bps=6_000_000)
        for action, key_i, bps in actions:
            key = f"k{key_i}"
            if action == "reserve":
                try:
                    link.reserve(key, bps)
                except (ReservationError, ValueError):
                    pass
            else:
                link.release(key)
            assert 0 <= link.reserved_bps <= link.rate_bps + 1e-6
            assert link.available_bps >= -1e-6
            assert link.effective_rate_bps > 0

    @given(st.lists(st.integers(min_value=1, max_value=10**6), min_size=1,
                    max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_fifo_delays_are_monotone(self, sizes):
        """Messages queued back-to-back never reorder on one link."""
        kernel = Kernel()
        link = Link(kernel, rate_bps=1_000_000, latency=0.001)
        delays = [link.occupy(size) for size in sizes]
        arrivals = [d for d in delays]
        assert arrivals == sorted(arrivals)


class TestKernelProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1000, allow_nan=False),
                    min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_events_fire_in_time_order(self, delays):
        kernel = Kernel()
        fired = []
        for d in delays:
            kernel.call_later(d, lambda d=d: fired.append(kernel.now))
        kernel.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(st.lists(st.floats(min_value=0.001, max_value=100,
                              allow_nan=False), min_size=1, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_sequential_sleeps_sum(self, naps):
        kernel = Kernel()

        async def sleeper():
            for nap in naps:
                await kernel.sleep(nap)
            return kernel.now

        total = kernel.run_until_complete(sleeper())
        assert total == pytest.approx(sum(naps))


class TestSelectorProperties:
    @given(st.lists(st.tuples(name_component, st.none()), min_size=1,
                    max_size=8, unique_by=lambda b: b[0]),
           st.sampled_from(["first", "roundrobin", "random"]))
    @settings(max_examples=60, deadline=None)
    def test_builtin_selectors_choose_a_member(self, bindings, policy):
        from repro.core.naming.selectors import SelectorState, run_builtin
        state = SelectorState()
        chosen = run_builtin(policy, bindings, "10.0.1.1", "svc/x", state)
        assert chosen in {name for name, _ in bindings}

    @given(st.lists(st.tuples(name_component, st.none()), min_size=1,
                    max_size=6, unique_by=lambda b: b[0]),
           st.integers(min_value=1, max_value=30))
    @settings(max_examples=40, deadline=None)
    def test_round_robin_is_fair(self, bindings, rounds):
        from repro.core.naming.selectors import SelectorState, run_builtin
        state = SelectorState()
        counts = {name: 0 for name, _ in bindings}
        for _ in range(rounds * len(bindings)):
            counts[run_builtin("roundrobin", bindings, "x", "p", state)] += 1
        assert max(counts.values()) - min(counts.values()) == 0


class TestMarshalProperties:
    @given(st.recursive(
        st.one_of(st.none(), st.booleans(), st.integers(), st.text(),
                  st.binary(max_size=64)),
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.dictionaries(st.text(max_size=4), children, max_size=4)),
        max_leaves=20))
    @settings(max_examples=80, deadline=None)
    def test_size_positive_and_grows_with_nesting(self, value):
        size = estimated_size(value)
        assert size >= 1
        assert estimated_size([value]) > size


class TestBindingCacheProperties:
    """PR 5: the binding cache is coherent *by exception* -- it may hand
    out a stale reference, but using one against a restarted exporter
    must raise StaleReference (never silently hit the wrong incarnation,
    never error against the live one)."""

    # derandomize: each example spawns hosts/processes, advancing the
    # process-global pid/port allocators.  A randomized example count
    # would leave those counters at a different value every run, and
    # every cluster test that follows would see shifted absolute
    # pids/ports -- the whole suite must stay run-to-run deterministic.
    @given(st.lists(st.sampled_from(["use", "restart", "invalidate"]),
                    min_size=1, max_size=12))
    @settings(max_examples=25, deadline=None, derandomize=True,
              database=None)
    def test_stale_hits_always_raise_stale_reference(self, ops):
        from repro.core.naming.cache import BindingCache
        from repro.ocs import OCSRuntime, StaleReference
        from tests.helpers import EchoServant, small_world

        kernel, net, hosts = small_world(n_hosts=2)
        server_host, client_host = hosts
        live = {}

        def start_server():
            proc = server_host.spawn("echo")
            runtime = OCSRuntime(proc, net, port=7001)
            live["proc"] = proc
            live["ref"] = runtime.export(EchoServant(kernel), "OverloadEcho")

        start_server()
        client = OCSRuntime(client_host.spawn("client"), net)
        cache = BindingCache.for_host(client_host)

        async def resolver(name):
            return live["ref"]

        async def use():
            ref = await cache.resolve("svc/echo", resolver)
            try:
                result = await client.invoke(ref, "echo", ("x",),
                                             timeout=3.0)
            except StaleReference:
                # Legal only when the exporter really did restart ...
                assert ref.incarnation != live["proc"].incarnation
                # ... and the coherence protocol repairs the cache.
                cache.invalidate("svc/echo", ref)
                return
            # A silent success must have gone to the live incarnation.
            assert result == "x"
            assert ref.incarnation == live["proc"].incarnation

        for op in ops:
            if op == "use":
                kernel.run_until_complete(use())
            elif op == "restart":
                live["proc"].kill()
                start_server()
            else:
                cache.invalidate("svc/echo")
        # After one repair round the cache always converges on the live
        # exporter: use() either hits live or invalidates, so the second
        # use() must succeed.
        kernel.run_until_complete(use())
        kernel.run_until_complete(use())
        assert [entry.ref.incarnation for _name, entry in cache.entries()] \
            == [live["proc"].incarnation]


class TestAdmissionGateProperties:
    """PR 5: the outstanding-work bound under arbitrary legal traffic."""

    @given(st.lists(st.sampled_from(["admit", "begin", "done", "drop"]),
                    min_size=1, max_size=200))
    @settings(max_examples=80, deadline=None, derandomize=True,
              database=None)
    def test_outstanding_work_never_exceeds_bound(self, ops):
        from tests.helpers import small_gate
        gate = small_gate(max_inflight=3, max_queue=5)
        bound = gate.max_inflight + gate.max_queue
        queued = inflight = shed = 0
        for op in ops:
            if op == "admit":
                if gate.try_admit():
                    queued += 1
                else:
                    shed += 1
            elif op == "begin" and queued > 0:
                gate.begin()
                queued -= 1
                inflight += 1
            elif op == "done" and inflight > 0:
                gate.done()
                inflight -= 1
            elif op == "drop" and queued > 0:
                gate.drop_queued()
                queued -= 1
            # The gate's books match the model exactly ...
            assert gate.queued == queued
            assert gate.inflight == inflight
            assert gate.shed_count == shed
            # ... and the paper-facing invariants hold at every step.
            assert queued + inflight <= bound
            assert gate.queued <= gate.max_queue
            assert gate.peak_queue <= gate.max_queue
            assert gate.load() >= 0.0
            gauges = gate.gauges()
            assert gauges["inflight"] == inflight
            assert gauges["queue_depth"] == queued
        # Everything offered was either admitted or shed -- no losses.
        assert gate.admitted + gate.shed_count == \
            sum(1 for op in ops if op == "admit")
