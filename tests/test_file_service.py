"""Tests for the File Service: FileSystemContext through the name space.

The interesting property (section 4.3/4.6): resolution of names under
``files/<server>/...`` crosses from the name service into a context
implemented by *another* service, transparently to the client.
"""

import pytest

from repro.cluster import build_full_cluster
from repro.core.naming.errors import AlreadyBound, NameNotFound, NotAContext


@pytest.fixture(scope="module")
def cluster():
    return build_full_cluster(n_servers=3, seed=81)


@pytest.fixture(scope="module")
def client(cluster):
    return cluster.client_on(cluster.servers[0], name="fs-client")


def my_files(cluster):
    """Path to the file service on server 0 (sameserver member name)."""
    return f"files/{cluster.servers[0].ip}"


class TestResolutionHandoff:
    def test_resolve_file_through_name_service(self, cluster, client):
        ref = cluster.run_async(
            client.names.resolve(f"{my_files(cluster)}/etc/motd"))
        assert ref.type_id == "File"

    def test_resolve_directory_gives_fs_context(self, cluster, client):
        ref = cluster.run_async(client.names.resolve(f"{my_files(cluster)}/etc"))
        assert ref.type_id == "FileSystemContext"

    def test_sameserver_selector_picks_local_fileservice(self, cluster):
        local = cluster.client_on(cluster.servers[1], name="fs-local")
        ref = cluster.run_async(local.names.resolve("files"))
        assert ref.ip == cluster.servers[1].ip

    def test_missing_file_raises_through_handoff(self, cluster, client):
        with pytest.raises(NameNotFound):
            cluster.run_async(
                client.names.resolve(f"{my_files(cluster)}/no/such/file"))

    def test_list_directory_via_context_object(self, cluster, client):
        ctx = cluster.run_async(client.names.resolve(my_files(cluster)))
        listing = cluster.run_async(client.runtime.invoke(ctx, "list", ("",)))
        names = [n for n, _k, _r in listing]
        assert "etc" in names and "content" in names


class TestFileOperations:
    def test_create_read_stat(self, cluster, client):
        ctx = cluster.run_async(client.names.resolve(my_files(cluster)))
        file_ref = cluster.run_async(client.runtime.invoke(
            ctx, "createFile", ("tmp/report.txt", 1234)))
        blob = cluster.run_async(client.runtime.invoke(file_ref, "read", ()))
        assert blob.size == 1234
        stat = cluster.run_async(client.runtime.invoke(file_ref, "stat", ()))
        assert stat["size"] == 1234

    def test_create_duplicate_rejected(self, cluster, client):
        ctx = cluster.run_async(client.names.resolve(my_files(cluster)))
        cluster.run_async(client.runtime.invoke(ctx, "createFile",
                                                ("tmp/dup.txt", 10)))
        with pytest.raises(AlreadyBound):
            cluster.run_async(client.runtime.invoke(ctx, "createFile",
                                                    ("tmp/dup.txt", 10)))

    def test_write_updates_size(self, cluster, client):
        ctx = cluster.run_async(client.names.resolve(my_files(cluster)))
        ref = cluster.run_async(client.runtime.invoke(
            ctx, "createFile", ("tmp/grow.txt", 10)))
        cluster.run_async(client.runtime.invoke(ref, "write", (999,)))
        blob = cluster.run_async(client.runtime.invoke(ref, "read", ()))
        assert blob.size == 999

    def test_remove_file(self, cluster, client):
        ctx = cluster.run_async(client.names.resolve(my_files(cluster)))
        cluster.run_async(client.runtime.invoke(ctx, "createFile",
                                                ("tmp/rm.txt", 10)))
        cluster.run_async(client.runtime.invoke(ctx, "removeFile",
                                                ("tmp/rm.txt",)))
        with pytest.raises(NameNotFound):
            cluster.run_async(
                client.names.resolve(f"{my_files(cluster)}/tmp/rm.txt"))

    def test_mkdir_via_bind_new_context(self, cluster, client):
        ctx = cluster.run_async(client.names.resolve(my_files(cluster)))
        cluster.run_async(client.runtime.invoke(ctx, "bindNewContext",
                                                ("newdir",)))
        ref = cluster.run_async(
            client.names.resolve(f"{my_files(cluster)}/newdir"))
        assert ref.type_id == "FileSystemContext"

    def test_bind_arbitrary_object_rejected(self, cluster, client):
        ctx = cluster.run_async(client.names.resolve(my_files(cluster)))
        with pytest.raises(NotAContext):
            cluster.run_async(client.runtime.invoke(ctx, "bind", ("x", ctx)))


class TestPersistence:
    def test_files_survive_service_restart(self):
        cluster = build_full_cluster(n_servers=2, seed=82)
        client = cluster.client_on(cluster.servers[0], name="fs-p")
        path = f"files/{cluster.servers[0].ip}"
        ctx = cluster.run_async(client.names.resolve(path))
        cluster.run_async(client.runtime.invoke(ctx, "createFile",
                                                ("keep/me.dat", 777)))
        cluster.kill_service(0, "fileservice")
        cluster.run_for(20.0)   # SSC restart + audit rebind of "files"
        ref = cluster.run_async(client.names.resolve(f"{path}/keep/me.dat"))
        blob = cluster.run_async(client.runtime.invoke(ref, "read", ()))
        assert blob.size == 777


class TestListHandoff:
    def test_list_through_name_service_path(self):
        """list() on a path crossing into the file service delegates."""
        cluster = build_full_cluster(n_servers=2, seed=83)
        client = cluster.client_on(cluster.servers[0], name="fs-l")
        path = f"files/{cluster.servers[0].ip}/etc"
        listing = cluster.run_async(client.names.list(path))
        names = [n for n, _k, _r in listing]
        assert "motd" in names

    def test_list_remote_root_via_leaf_binding(self):
        """Listing the file-service binding itself delegates to its root."""
        cluster = build_full_cluster(n_servers=2, seed=84)
        client = cluster.client_on(cluster.servers[0], name="fs-l2")
        listing = cluster.run_async(
            client.names.list(f"files/{cluster.servers[0].ip}"))
        names = [n for n, _k, _r in listing]
        assert "etc" in names and "content" in names
