"""Tests for VCR-style trick play on the VOD app (pause/seek/resume)."""

import pytest

from repro.cluster import build_full_cluster


@pytest.fixture(scope="module")
def playing():
    cluster = build_full_cluster(n_servers=2, seed=211)
    stk = cluster.add_settop_kernel(1)
    assert cluster.boot_settops([stk])
    cluster.run_async(stk.app_manager.tune(5))
    return cluster, stk.app_manager.current_app


class TestTrickPlay:
    def test_seek_forward(self, playing):
        cluster, vod = playing
        cluster.run_async(vod.play("T2", resume=False))
        cluster.run_for(5.0)
        cluster.run_async(vod.seek(100.0))
        cluster.run_for(5.0)
        assert 100.0 <= vod.position <= 108.0
        assert vod.playing

    def test_seek_backward(self, playing):
        cluster, vod = playing
        cluster.run_async(vod.seek(20.0))
        cluster.run_for(3.0)
        assert 20.0 <= vod.position <= 26.0

    def test_seek_clamps_negative(self, playing):
        cluster, vod = playing
        cluster.run_async(vod.seek(-50.0))
        assert vod.position == 0.0

    def test_pause_then_seek_resumes(self, playing):
        cluster, vod = playing
        cluster.run_async(vod.pause())
        assert not vod.playing
        chunks = vod.chunks_received
        cluster.run_for(5.0)
        assert vod.chunks_received == chunks
        cluster.run_async(vod.seek(vod.position))
        cluster.run_for(5.0)
        assert vod.playing
        assert vod.chunks_received > chunks

    def test_watchdog_quiet_while_paused(self, playing):
        """A paused stream must not look like a stall."""
        cluster, vod = playing
        cluster.run_async(vod.pause())
        stalls = len(vod.interruptions)
        cluster.run_for(30.0)
        assert len(vod.interruptions) == stalls
        cluster.run_async(vod.seek(vod.position))
        cluster.run_for(3.0)
        assert vod.playing

    def test_stop_cleans_up(self, playing):
        cluster, vod = playing
        cluster.run_async(vod.stop())
        downlink = cluster.net.downlink_of(vod.host.ip)
        assert downlink.reserved_bps == 0
