"""Settop partition recovery and genuine multiplayer games."""

import pytest

from repro.cluster import build_full_cluster


class TestSettopPartition:
    def test_playback_survives_transient_partition(self):
        """A settop cut off from the plant stalls, then recovers on heal."""
        cluster = build_full_cluster(n_servers=3, seed=231)
        stk = cluster.add_settop_kernel(1)
        assert cluster.boot_settops([stk])
        cluster.run_async(stk.app_manager.tune(5))
        vod = stk.app_manager.current_app
        cluster.run_async(vod.play("T2"))
        cluster.run_for(10.0)
        chunks = vod.chunks_received
        # Cut the settop off from every server for 20 s.
        cluster.net.partition({stk.host.ip}, set(cluster.server_ips))
        cluster.run_for(20.0)
        assert vod.chunks_received == chunks  # nothing got through
        cluster.net.heal_partitions()
        cluster.run_for(60.0)
        assert vod.playing
        assert vod.chunks_received > chunks
        # The app noticed and recovered (stall -> reopen), and the old
        # session was superseded rather than doubled.
        assert vod.interruptions
        downlink = cluster.net.downlink_of(stk.host.ip)
        assert downlink.reserved_bps == cluster.params.movie_bitrate_bps

    def test_long_partition_reclaims_resources(self):
        """If the settop stays unreachable past the liveness horizon, the
        system treats it as dead and reclaims (section 3.5.1)."""
        cluster = build_full_cluster(n_servers=3, seed=232)
        stk = cluster.add_settop_kernel(1)
        assert cluster.boot_settops([stk])
        cluster.run_async(stk.app_manager.tune(5))
        vod = stk.app_manager.current_app
        cluster.run_async(vod.play("T2"))
        cluster.run_for(10.0)
        cluster.net.partition({stk.host.ip}, set(cluster.server_ips))
        budget = (cluster.params.settop_dead_after
                  + cluster.params.ras_peer_poll
                  + cluster.params.ras_client_poll + 20.0)
        cluster.run_for(budget)
        client = cluster.client_on(cluster.servers[0], name="part")

        async def sessions():
            ref = await client.names.resolve("svc/mms")
            return await client.runtime.invoke(ref, "openCount", ())

        assert cluster.run_async(sessions()) == 0
        downlink = cluster.net.downlink_of(stk.host.ip)
        assert downlink.reserved_bps == 0


class TestMultiplayer:
    def test_two_settops_share_a_lobby(self):
        """Settops in one neighbourhood land in the same game instance."""
        cluster = build_full_cluster(n_servers=3, seed=233)
        a = cluster.add_settop_kernel(1)
        b = cluster.add_settop_kernel(1)
        assert cluster.boot_settops([a, b])
        cluster.run_async(a.app_manager.tune(7))
        cluster.run_async(b.app_manager.tune(7))
        game_a = a.app_manager.current_app
        game_b = b.app_manager.current_app
        assert game_a.game_id == game_b.game_id
        state = cluster.run_async(game_a.game.call("gameState",
                                                   game_a.game_id))
        assert set(state["players"]) == {game_a.player, game_b.player}
        # Rounds played by either player advance the shared game.
        cluster.run_async(game_a.play_round(50))
        cluster.run_async(game_b.play_round(25))
        state = cluster.run_async(game_b.game.call("gameState",
                                                   game_b.game_id))
        assert state["rounds"] == 2

    def test_different_neighborhoods_different_lobbies(self):
        cluster = build_full_cluster(n_servers=3, seed=234)
        a = cluster.add_settop_kernel(1)
        b = cluster.add_settop_kernel(2)
        assert cluster.boot_settops([a, b])
        cluster.run_async(a.app_manager.tune(7))
        cluster.run_async(b.app_manager.tune(7))
        assert (a.app_manager.current_app.game_id
                != b.app_manager.current_app.game_id)


class TestPersistentContextRefs:
    def test_context_ref_survives_ns_restart(self):
        """Section 9.2: "name service context objects are persistent so
        that they can be activated on demand" -- a held context reference
        still works after its name-service replica restarts."""
        cluster = build_full_cluster(n_servers=2, seed=235)
        client = cluster.client_on(cluster.servers[0], name="pctx")
        ctx_ref = cluster.run_async(client.names.resolve("svc"))
        assert ctx_ref.type_id == "NamingContext"
        # Works before...
        cluster.run_async(client.runtime.invoke(ctx_ref, "resolve", ("ras",)))
        cluster.kill_service(0, "ns")
        cluster.run_for(15.0)  # SSC restarts; replica refetches state
        # ...and after: the bootstrap-style incarnation survives restart.
        result = cluster.run_async(
            client.runtime.invoke(ctx_ref, "resolve", ("ras",)))
        assert result is not None
