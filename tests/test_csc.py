"""Tests for the Cluster Service Controller (section 6.2-6.3)."""

import pytest

from repro.cluster import build_full_cluster
from repro.core.control.csc import NotPrimary
from repro.core.control.tools import OperatorConsole


@pytest.fixture(scope="module")
def cluster():
    return build_full_cluster(n_servers=3, seed=71)


def console_on(cluster, index=2, name="op"):
    client = cluster.client_on(cluster.servers[index], name=name)
    return client, OperatorConsole(client.runtime, client.names,
                                   cluster.params)


class TestPlacementDriven:
    def test_csc_started_services_per_placement(self, cluster):
        services = cluster.running_services()
        for host in cluster.servers:
            assert "mds" in services[host.name]
            assert "rds" in services[host.name]
        mms_hosts = [h for h, procs in services.items() if "mms" in procs]
        assert len(mms_hosts) == 2

    def test_placement_query(self, cluster):
        _client, console = console_on(cluster, name="op-pq")
        placement = cluster.run_async(console.placement())
        assert set(placement["mds"]) == set(cluster.server_ips)
        assert len(placement["mms"]) == 2

    def test_cluster_state_lists_running(self, cluster):
        _client, console = console_on(cluster, name="op-cs")
        state = cluster.run_async(console.cluster_state())
        for ip in cluster.server_ips:
            assert "mds" in state[ip]


class TestDirectedOperations:
    def test_move_service(self):
        cluster = build_full_cluster(n_servers=3, seed=72)
        _client, console = console_on(cluster)
        src, dst = cluster.server_ips[0], cluster.server_ips[2]
        # kbs runs on servers 0 and 1; move the replica 0 -> 2.
        cluster.run_async(console.move_service("kbs", src, dst))
        cluster.run_for(10.0)
        services = cluster.running_services()
        assert "kbs" not in services["server-0"]
        assert "kbs" in services["server-2"]
        placement = cluster.run_async(console.placement())
        assert dst in placement["kbs"] and src not in placement["kbs"]

    def test_stop_sticks_across_reconcile(self):
        cluster = build_full_cluster(n_servers=3, seed=73)
        _client, console = console_on(cluster)
        cluster.run_async(console.stop_service("game",
                                               cluster.server_ips[1]))
        cluster.run_for(3 * cluster.params.csc_ping_interval)
        assert "game" not in cluster.running_services()["server-1"]

    def test_backup_refuses_directed_ops(self):
        cluster = build_full_cluster(n_servers=3, seed=74)
        # Find the backup CSC process and invoke it directly.
        client = cluster.client_on(cluster.servers[0], name="direct")
        primary_ref = cluster.run_async(client.names.resolve("svc/csc"))
        backup = None
        for host in cluster.servers:
            proc = host.find_process("csc")
            if proc is None:
                continue
            runtime = proc.attachments["ocs"]
            if runtime.port != primary_ref.port or host.ip != primary_ref.ip:
                from repro.ocs.objref import ObjectRef
                backup = ObjectRef(ip=host.ip, port=runtime.port,
                                   incarnation=proc.incarnation,
                                   type_id="ClusterController",
                                   object_id="")
                break
        assert backup is not None
        with pytest.raises(NotPrimary):
            cluster.run_async(client.runtime.invoke(
                backup, "startServiceOn", ("game", cluster.server_ips[0])))


class TestRecovery:
    def test_csc_failover_discovers_state(self):
        """Section 6.2: a promoted backup queries each SSC."""
        cluster = build_full_cluster(n_servers=3, seed=75)
        client, console = console_on(cluster, index=2)
        primary_ref = cluster.run_async(client.names.resolve("svc/csc"))
        primary_index = cluster.server_ips.index(primary_ref.ip)
        cluster.crash_server(primary_index)
        # The crashed server may also host the name-service master, so
        # allow re-election + audit restart + the CSC bind race.
        cluster.run_for(2 * cluster.params.max_failover + 20.0)
        status = cluster.run_async(console.server_status())
        assert status[primary_ref.ip] is False
        state = cluster.run_async(console.cluster_state())
        live = [ip for ip, services in state.items() if services]
        assert len(live) == 2

    def test_rebooted_server_gets_services_back(self):
        """Section 6.3: the CSC detects the new SSC and re-places."""
        cluster = build_full_cluster(n_servers=3, seed=76)
        cluster.crash_server(2)
        cluster.run_for(10.0)
        cluster.reboot_server(2)
        cluster.run_for(60.0)
        services = cluster.running_services()["server-2"]
        for svc in ("mds", "rds", "cmgr", "vod"):
            assert svc in services, services
