"""Additional substrate coverage: trace log, kernel edges, settop power."""

import pytest

from repro.sim import CancelledError, Kernel, SimTimeoutError, gather
from repro.sim.errors import KernelStopped
from repro.sim.trace import TraceLog


@pytest.fixture
def kernel():
    return Kernel()


class TestTraceLog:
    def test_emit_and_select(self, kernel):
        trace = TraceLog(kernel)
        trace.emit("ns", "update", path="svc/mms")
        kernel.run(until=5.0)
        trace.emit("ns", "audit_removed", path="svc/mms")
        trace.emit("mms", "opened", title="T2")
        assert trace.count("ns") == 2
        assert trace.count("ns", "update") == 1
        assert trace.select("mms")[0].fields["title"] == "T2"

    def test_select_by_field(self, kernel):
        trace = TraceLog(kernel)
        trace.emit("svc", "x", host="a")
        trace.emit("svc", "x", host="b")
        assert len(trace.select("svc", "x", host="a")) == 1

    def test_timestamps_recorded(self, kernel):
        trace = TraceLog(kernel)
        kernel.run(until=3.0)
        trace.emit("t", "now")
        assert trace.last("t").time == 3.0

    def test_disabled_log_is_silent(self, kernel):
        trace = TraceLog(kernel, enabled=False)
        trace.emit("x", "y")
        assert len(trace) == 0

    def test_last_returns_none_when_empty(self, kernel):
        assert TraceLog(kernel).last("nope") is None


class TestKernelEdges:
    def test_stop_halts_run(self, kernel):
        seen = []
        kernel.call_later(1.0, seen.append, "a")
        kernel.call_later(2.0, kernel.stop)
        kernel.call_later(3.0, seen.append, "b")
        kernel.run()
        assert seen == ["a"]

    def test_schedule_after_stop_raises(self, kernel):
        kernel.stop()
        with pytest.raises(KernelStopped):
            kernel.call_later(1.0, lambda: None)

    def test_pending_events_counts_uncancelled(self, kernel):
        h1 = kernel.call_later(1.0, lambda: None)
        kernel.call_later(2.0, lambda: None)
        h1.cancel()
        assert kernel.pending_events() == 1

    def test_run_one_processes_single_event(self, kernel):
        seen = []
        kernel.call_later(1.0, seen.append, 1)
        kernel.call_later(2.0, seen.append, 2)
        kernel.run_one()
        assert seen == [1]
        assert kernel.now == 1.0

    def test_run_until_complete_dry_loop_raises(self, kernel):
        fut = kernel.create_future()
        with pytest.raises(RuntimeError, match="ran dry"):
            kernel.run_until_complete(fut)

    def test_wait_for_wraps_coroutines(self, kernel):
        async def slow():
            await kernel.sleep(10.0)
            return "late"

        async def main():
            try:
                return await kernel.wait_for(slow(), timeout=1.0)
            except SimTimeoutError:
                return "timeout"

        assert kernel.run_until_complete(main()) == "timeout"

    def test_gather_empty(self, kernel):
        async def main():
            return await gather(kernel, [])

        assert kernel.run_until_complete(main()) == []

    def test_nested_wait_for(self, kernel):
        async def inner():
            await kernel.sleep(0.5)
            return "ok"

        async def outer():
            return await kernel.wait_for(
                kernel.wait_for(inner(), timeout=2.0), timeout=3.0)

        assert kernel.run_until_complete(outer()) == "ok"

    def test_task_cancelling_itself_via_future(self, kernel):
        async def main():
            fut = kernel.create_future()
            kernel.call_later(1.0, fut.cancel)
            try:
                await fut
            except CancelledError:
                return "cancelled"

        assert kernel.run_until_complete(main()) == "cancelled"


class TestSettopPowerCycle:
    def test_power_off_then_on_reboots(self):
        from repro.cluster import build_full_cluster
        cluster = build_full_cluster(n_servers=2, seed=141)
        stk = cluster.add_settop_kernel(1)
        assert cluster.boot_settops([stk])
        first_boot = stk.booted_at
        stk.power_off()
        assert stk.state == "off"
        cluster.run_for(5.0)
        stk.power_on()
        assert cluster.boot_settops([stk], timeout=60.0)
        assert stk.booted_at > first_boot
        # The Application Manager came back with the navigator.
        assert stk.app_manager.current_app is not None

    def test_settop_manager_sees_power_cycle(self):
        from repro.cluster import build_full_cluster
        cluster = build_full_cluster(n_servers=2, seed=142)
        stk = cluster.add_settop_kernel(1)
        assert cluster.boot_settops([stk])
        client = cluster.client_on(cluster.servers[0], name="pc")
        mgr = cluster.run_async(client.names.resolve("svc/settopmgr/1"))

        def status():
            return cluster.run_async(client.runtime.invoke(
                mgr, "getStatus", ([stk.host.ip],)))[0]

        cluster.run_for(10.0)
        assert status() == "up"
        stk.power_off()
        cluster.run_for(cluster.params.settop_dead_after + 5.0)
        assert status() == "down"
        stk.power_on()
        assert cluster.boot_settops([stk], timeout=60.0)
        cluster.run_for(10.0)
        assert status() == "up"


class TestAppCrashRestart:
    def test_am_restarts_crashed_application(self):
        """Section 3: "people don't expect TVs to crash" -- the AM
        restarts a crashed application on the current channel."""
        from repro.cluster import build_full_cluster
        cluster = build_full_cluster(n_servers=2, seed=221)
        stk = cluster.add_settop_kernel(1)
        assert cluster.boot_settops([stk])
        cluster.run_async(stk.app_manager.tune(5))
        vod = stk.app_manager.current_app
        app_proc = stk.host.find_process("vod-app")
        assert app_proc is not None
        app_proc.kill(status="segfault")
        cluster.run_for(15.0)
        # A fresh VOD app instance is running on the same channel.
        new_app = stk.app_manager.current_app
        assert new_app is not None and new_app is not vod
        assert new_app.name == "vod"
        assert stk.host.find_process("vod-app") is not None
        crashes = cluster.trace.select("am", "app_crashed")
        assert len(crashes) == 1

    def test_channel_change_not_treated_as_crash(self):
        from repro.cluster import build_full_cluster
        cluster = build_full_cluster(n_servers=2, seed=222)
        stk = cluster.add_settop_kernel(1)
        assert cluster.boot_settops([stk])
        cluster.run_async(stk.app_manager.tune(5))
        cluster.run_async(stk.app_manager.tune(6))
        cluster.run_for(10.0)
        assert stk.app_manager.current_app.name == "shopping"
        assert cluster.trace.select("am", "app_crashed") == []


class TestGracefulPowerOff:
    def test_shutdown_report_marks_down_immediately(self):
        """A clean power-off skips the missed-heartbeat horizon."""
        from repro.cluster import build_full_cluster
        cluster = build_full_cluster(n_servers=2, seed=261)
        stk = cluster.add_settop_kernel(1)
        assert cluster.boot_settops([stk])
        client = cluster.client_on(cluster.servers[0], name="gp")
        mgr = cluster.run_async(client.names.resolve("svc/settopmgr/1"))
        cluster.run_for(10.0)
        stk.power_off()
        cluster.run_for(2.0)  # well inside settop_dead_after (15 s)
        status = cluster.run_async(client.runtime.invoke(
            mgr, "getStatus", ([stk.host.ip],)))
        assert status == ["down"]
        assert stk.state == "off"
        assert not stk.host.up

    def test_power_off_speeds_reclamation(self):
        """Movie resources come back faster than after a crash."""
        from repro.cluster import build_full_cluster
        cluster = build_full_cluster(n_servers=2, seed=262)
        stk = cluster.add_settop_kernel(1)
        assert cluster.boot_settops([stk])
        cluster.run_async(stk.app_manager.tune(5))
        vod = stk.app_manager.current_app
        cluster.run_async(vod.play("T2"))
        cluster.run_for(5.0)
        downlink = cluster.net.downlink_of(stk.host.ip)
        assert downlink.reserved_bps > 0
        stk.power_off()
        # Crash-grade budget includes settop_dead_after (15 s); a clean
        # power-off only needs the RAS + MMS polling pipeline.
        t0 = cluster.now
        budget = (cluster.params.ras_peer_poll
                  + cluster.params.ras_client_poll + 10.0)
        while downlink.reserved_bps > 0 and cluster.now - t0 < budget:
            cluster.run_for(1.0)
        assert downlink.reserved_bps == 0
        assert cluster.now - t0 <= budget
