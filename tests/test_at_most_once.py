"""At-most-once RPC under a hostile network (PR 9, ISSUE 9).

The server-side reply cache (seq-windowed dedup with LRU eviction,
inflight waiter parking, and the stale floor); request identity reuse
across ``RebindingProxy`` retries (the latent double-execution fix);
the envelope checksum guard dropping corrupt frames before dispatch;
the kernel-resident effect ledger behind the ``at_most_once`` monitor;
and the committed E18 hostile-network drill -- green with the guards
on, red under the dedup/checksum sabotage fixtures.
"""

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import FaultSchedule, run_schedule
from repro.chaos.monitors import EffectLedger
from repro.core.params import Params
from repro.core.rebind import RebindingProxy
from repro.idl import register_interface
from repro.metrics.delivery import faults_exercised
from repro.net import Network
from repro.ocs import CallTimeout, OCSRuntime, RemoteException
from repro.ocs.replycache import ReplyCache
from repro.sim import SeededRandom

from tests.fixtures.sabotage import (NO_DEDUP_SCHEDULE, disabled_checksums,
                                     disabled_dedup)
from tests.helpers import StubNames, client_runtime, small_world

E18_SCHEDULE = (Path(__file__).resolve().parent.parent
                / "benchmarks" / "schedules" / "e18_hostile_net.json")

register_interface("TallyCounter", {
    "bump": ("amount",),
    "slow_bump": ("amount", "duration"),
    "boom": (),
    "peek": (),
}, doc="toy non-idempotent counter for at-most-once tests",
    idempotent=("peek",))


class TallyServant:
    """Counts real executions so a replayed request is visible."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.total = 0
        self.executions = 0
        self.peeks = 0
        self.booms = 0

    async def bump(self, ctx, amount):
        self.executions += 1
        self.total += amount
        return self.total

    async def slow_bump(self, ctx, amount, duration):
        await self.kernel.sleep(duration)
        self.executions += 1
        self.total += amount
        return self.total

    async def boom(self, ctx):
        self.booms += 1
        raise RuntimeError("tally exploded")

    async def peek(self, ctx):
        self.peeks += 1
        return self.total


def tally_world():
    """kernel, net, server runtime, servant, ref, client runtime."""
    kernel, net, hosts = small_world(n_hosts=2)
    proc = hosts[0].spawn("tally-svc")
    server = OCSRuntime(proc, net)
    servant = TallyServant(kernel)
    ref = server.export(servant, "TallyCounter")
    client = client_runtime(net, hosts[1])
    return kernel, net, server, servant, ref, client


# ---------------------------------------------------------------------------
# ReplyCache unit contract
# ---------------------------------------------------------------------------


class TestReplyCache:
    def test_execute_then_replay(self):
        cache = ReplyCache(capacity=4)
        verdict, entry = cache.begin("c", 1)
        assert verdict == "execute"
        assert cache.complete("c", 1, {"ok": True, "result": 7}) == []
        verdict, entry = cache.begin("c", 1)
        assert verdict == "replay"
        assert entry.reply == {"ok": True, "result": 7}
        assert cache.replays == 1

    def test_inflight_parks_waiters_until_complete(self):
        cache = ReplyCache(capacity=4)
        cache.begin("c", 1)
        verdict, entry = cache.begin("c", 1)
        assert verdict == "inflight"
        entry.waiters.append(("msg", 42))
        assert cache.complete("c", 1, {"ok": True}) == [("msg", 42)]
        # Once done, a third arrival replays instead of parking.
        assert cache.begin("c", 1)[0] == "replay"
        assert cache.suppressed == 1

    def test_abort_forgets_entry_so_retry_can_run(self):
        cache = ReplyCache(capacity=4)
        _, entry = cache.begin("c", 1)
        entry.waiters.append(("msg", 9))
        assert cache.abort("c", 1) == [("msg", 9)]
        # The request never executed: the same id may run now.
        assert cache.begin("c", 1)[0] == "execute"
        # Aborting an unknown id is harmless.
        assert cache.abort("nobody", 99) == []

    def test_abort_never_forgets_a_completed_entry(self):
        # Found by the property test below: an abort racing a completed
        # entry must not forget it, or the executed id could run again.
        cache = ReplyCache(capacity=4)
        cache.begin("c", 1)
        cache.complete("c", 1, {"ok": True, "result": 7})
        assert cache.abort("c", 1) == []
        verdict, entry = cache.begin("c", 1)
        assert verdict == "replay"
        assert entry.reply == {"ok": True, "result": 7}

    def test_eviction_raises_floor_and_drops_stale(self):
        cache = ReplyCache(capacity=2)
        for seq in (1, 2, 3):
            cache.begin("c", seq)
            cache.complete("c", seq, {"ok": True, "result": seq})
        assert cache.evictions == 1
        # seq 1 was evicted; its floor drop is the liveness cost of the
        # safety guarantee (never execute a forgotten id again).
        verdict, entry = cache.begin("c", 1)
        assert verdict == "stale" and entry is None
        assert cache.stale_drops == 1
        # seqs above the floor still replay.
        assert cache.begin("c", 3)[0] == "replay"

    def test_inflight_entries_are_never_evicted(self):
        cache = ReplyCache(capacity=1)
        cache.begin("slow", 1)          # stays inflight throughout
        for seq in (1, 2, 3):
            cache.begin("fast", seq)
            cache.complete("fast", seq, {"ok": True})
        # Completed entries churned through the LRU, the inflight one
        # survived: its waiter can still find the reply.
        verdict, entry = cache.begin("slow", 1)
        assert verdict == "inflight"
        entry.waiters.append(("msg", 1))
        assert cache.complete("slow", 1, {"ok": True}) == [("msg", 1)]

    def test_error_replies_are_cached_too(self):
        cache = ReplyCache(capacity=4)
        cache.begin("c", 1)
        record = {"ok": False, "error": "TeapotError", "detail": "nope"}
        cache.complete("c", 1, record)
        verdict, entry = cache.begin("c", 1)
        assert verdict == "replay" and entry.reply == record

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ReplyCache(capacity=0)

    def test_stats_shape(self):
        cache = ReplyCache(capacity=4)
        cache.begin("c", 1)
        cache.complete("c", 1, {"ok": True})
        cache.begin("c", 1)
        assert cache.stats() == {"executions": 1, "replays": 1,
                                 "suppressed": 0, "stale_drops": 0,
                                 "evictions": 0, "cached": 1}


class TestReplyCacheProperty:
    """Random interleavings of begin/complete/abort never double-execute."""

    @given(st.lists(st.tuples(st.sampled_from(["a", "b"]),
                              st.integers(min_value=1, max_value=12),
                              st.sampled_from(["begin", "begin_complete",
                                               "abort"])),
                    max_size=80))
    @settings(max_examples=120, deadline=None)
    def test_no_request_id_executes_twice(self, ops):
        cache = ReplyCache(capacity=3)
        completed = {}
        live = set()
        for client, seq, action in ops:
            key = (client, seq)
            if action == "abort":
                cache.abort(client, seq)
                live.discard(key)
                continue
            verdict, entry = cache.begin(client, seq)
            if verdict == "execute":
                # The core safety property: a completed request id never
                # earns a second execution, no matter what was evicted
                # in between; an inflight one never runs concurrently.
                assert key not in completed
                assert key not in live
                live.add(key)
            elif verdict == "replay":
                assert entry.reply == completed[key]
            elif verdict == "inflight":
                assert key in live
            else:
                assert verdict == "stale"
                assert key not in live   # inflight entries are unevictable
            if action == "begin_complete" and key in live:
                reply = f"{client}:{seq}"
                cache.complete(client, seq, reply)
                completed[key] = reply
                live.discard(key)


# ---------------------------------------------------------------------------
# Request identity through the runtime
# ---------------------------------------------------------------------------


class TestRequestIdentity:
    def test_same_request_id_replays_instead_of_reexecuting(self):
        kernel, net, server, servant, ref, client = tally_world()
        rid = client.next_request_id()

        async def main():
            first = await client.invoke(ref, "bump", (3,), request_id=rid)
            second = await client.invoke(ref, "bump", (3,), request_id=rid)
            return first, second

        first, second = kernel.run_until_complete(main())
        assert (first, second) == (3, 3)
        assert servant.executions == 1
        assert server.reply_cache.replays == 1

    def test_fresh_request_ids_execute_independently(self):
        kernel, net, server, servant, ref, client = tally_world()

        async def main():
            a = await client.invoke(ref, "bump", (1,))
            b = await client.invoke(ref, "bump", (1,))
            return a, b

        assert kernel.run_until_complete(main()) == (1, 2)
        assert servant.executions == 2
        assert server.reply_cache.replays == 0

    def test_wire_duplicate_executes_once(self):
        kernel, net, server, servant, ref, client = tally_world()
        net.set_duplicate(server.ip, 1.0, SeededRandom(3))
        result = kernel.run_until_complete(client.invoke(ref, "bump", (2,)))
        assert result == 2
        assert servant.executions == 1
        assert net.messages_duplicated > 0
        cache = server.reply_cache
        assert cache.replays + cache.suppressed >= 1

    def test_exception_outcome_is_replayed_not_reraised_fresh(self):
        kernel, net, server, servant, ref, client = tally_world()
        rid = client.next_request_id()

        async def attempt():
            try:
                await client.invoke(ref, "boom", (), request_id=rid)
            except RemoteException as err:
                return str(err)
            return None

        async def main():
            return await attempt(), await attempt()

        first, second = kernel.run_until_complete(main())
        assert first is not None and "tally exploded" in first
        assert second == first
        assert servant.booms == 1

    def test_idempotent_method_bypasses_the_cache(self):
        kernel, net, server, servant, ref, client = tally_world()
        rid = client.next_request_id()

        async def main():
            await client.invoke(ref, "peek", (), request_id=rid)
            await client.invoke(ref, "peek", (), request_id=rid)

        kernel.run_until_complete(main())
        # Declared idempotent: re-running is cheaper than remembering.
        assert servant.peeks == 2
        assert server.reply_cache.executions == 0

    def test_reply_cache_false_export_opts_out(self):
        kernel, net, server, servant, ref, client = tally_world()
        bare = TallyServant(kernel)
        bare_ref = server.export(bare, "TallyCounter", object_id="bare",
                                 reply_cache=False)
        rid = client.next_request_id()

        async def main():
            await client.invoke(bare_ref, "bump", (1,), request_id=rid)
            await client.invoke(bare_ref, "bump", (1,), request_id=rid)

        kernel.run_until_complete(main())
        assert bare.executions == 2

    def test_dedup_disabled_double_executes(self):
        with disabled_dedup():
            kernel, net, server, servant, ref, client = tally_world()
            assert server.reply_cache is None
            rid = client.next_request_id()

            async def main():
                await client.invoke(ref, "bump", (1,), request_id=rid)
                await client.invoke(ref, "bump", (1,), request_id=rid)

            kernel.run_until_complete(main())
        assert servant.executions == 2


class TestRetryAfterTimeout:
    """The latent double-execution fix (satellite 1): a retry after
    CallTimeout against a slow-but-alive server must not run the op
    twice."""

    def test_timed_out_retry_parks_on_the_original_execution(self):
        kernel, net, server, servant, ref, client = tally_world()
        names = StubNames([ref])
        params = Params().with_overrides(call_timeout=1.0,
                                         rebind_backoff=0.0)
        proxy = RebindingProxy(client, names, "svc/tally", params,
                               give_up_after=30.0)
        # The servant takes 1.8s; the per-attempt timeout is 1.0s.  The
        # first attempt times out, the proxy rebinds and re-invokes
        # under the SAME request id; the server parks the retry on the
        # still-running execution and answers it from the one result.
        result = kernel.run_until_complete(
            proxy.call("slow_bump", 5, 1.8))
        assert result == 5
        assert servant.executions == 1
        assert servant.total == 5
        assert proxy.rebinds >= 1
        assert server.reply_cache.suppressed >= 1

    def test_slow_retry_lands_after_completion_and_replays(self):
        kernel, net, server, servant, ref, client = tally_world()
        names = StubNames([ref])
        params = Params().with_overrides(call_timeout=1.0,
                                         rebind_backoff=2.0)
        proxy = RebindingProxy(client, names, "svc/tally", params,
                               rng=SeededRandom(4), give_up_after=30.0)
        # With backoff the retry arrives after the first execution
        # finished: the replay path, same single execution.
        result = kernel.run_until_complete(
            proxy.call("slow_bump", 5, 1.5))
        assert result == 5
        assert servant.executions == 1
        assert server.reply_cache.replays >= 1


class TestChecksumGuard:
    def test_corrupt_frames_dropped_before_dispatch(self):
        kernel, net, server, servant, ref, client = tally_world()
        net.set_corrupt(server.ip, 1.0, SeededRandom(5))
        with pytest.raises(CallTimeout):
            kernel.run_until_complete(
                client.invoke(ref, "bump", (1,), timeout=2.0))
        assert servant.executions == 0
        assert server.corrupt_dropped > 0
        assert server.corrupt_dispatched == 0

    def test_guard_disabled_dispatches_corrupt_frames(self):
        with disabled_checksums():
            kernel, net, server, servant, ref, client = tally_world()
            net.set_corrupt(server.ip, 1.0, SeededRandom(5))
            result = kernel.run_until_complete(
                client.invoke(ref, "bump", (4,)))
        # The damaged frame reached the servant -- exactly what E18
        # asserts never happens with the guard on.
        assert result == 4
        assert servant.executions == 1
        assert server.corrupt_dispatched > 0
        assert server.corrupt_dropped == 0


# ---------------------------------------------------------------------------
# The effect ledger and the at_most_once monitor's evidence
# ---------------------------------------------------------------------------


class TestEffectLedger:
    def test_same_actor_double_is_flagged(self):
        ledger = EffectLedger(None)
        ledger.record(("c", 1), actor="a1", method="Shopping.order", at=1.0)
        ledger.record(("c", 1), actor="a1", method="Shopping.order", at=2.0)
        ledger.record(("c", 2), actor="a1", method="Shopping.order", at=3.0)
        doubles = ledger.double_executions()
        assert [rid for rid, _ in doubles] == [("c", 1)]
        summary = ledger.summary()
        assert summary["same_actor_doubles"] == 1
        assert summary["cross_actor_reexecutions"] == 0
        assert summary["executions"] == 3
        assert summary["request_ids"] == 2

    def test_cross_actor_reexecution_is_excused(self):
        # Failover: the first server died with the reply; the rebound
        # attempt executing on a different incarnation is the known
        # at-most-once-per-incarnation cost, not a violation.
        ledger = EffectLedger(None)
        ledger.record(("c", 1), actor="a1", method="VOD.play", at=1.0)
        ledger.record(("c", 1), actor="a2", method="VOD.play", at=2.0)
        assert ledger.double_executions() == []
        assert ledger.summary()["cross_actor_reexecutions"] == 1

    def test_runtime_stamps_executions_into_kernel_ledger(self):
        kernel, net, server, servant, ref, client = tally_world()
        kernel.effect_ledger = EffectLedger(None)
        rid = client.next_request_id()

        async def main():
            await client.invoke(ref, "bump", (2,), request_id=rid)
            await client.invoke(ref, "peek", ())   # idempotent: no stamp

        kernel.run_until_complete(main())
        ledger = kernel.effect_ledger
        assert ledger.total == 1
        assert list(ledger.executions) == [rid]
        assert ledger.executions[rid][0]["method"] == "TallyCounter.bump"


# ---------------------------------------------------------------------------
# E18: the committed hostile-network drill, falsifiable both ways
# ---------------------------------------------------------------------------


class TestE18HostileNetDrill:
    @pytest.fixture(scope="class")
    def e18(self):
        schedule = FaultSchedule.load(E18_SCHEDULE)
        return run_schedule(schedule, seed=7)

    def test_e18_green(self, e18):
        assert e18.ok, e18.violated_monitors()

    def test_e18_exercised_all_three_fault_surfaces(self, e18):
        # A hostile-net drill that duplicated, reordered, and corrupted
        # nothing proves nothing.
        assert faults_exercised(e18.delivery)

    def test_e18_zero_double_executions(self, e18):
        assert e18.delivery["effects"]["same_actor_doubles"] == 0

    def test_e18_zero_corrupt_dispatches(self, e18):
        env = e18.delivery["envelopes"]
        assert env["corrupt_dispatched"] == 0
        assert env["corrupt_dropped"] > 0

    def test_e18_dedup_actually_fired(self, e18):
        # The duplicates really reached servers and really were
        # collapsed -- replays and suppressions, not silence.
        env = e18.delivery["envelopes"]
        assert env["replays"] > 0
        assert env["executions"] > 0

    def test_e18_viewers_made_progress(self, e18):
        assert e18.viewer_ops > 0


class TestAtMostOnceFalsifiable:
    @pytest.fixture(scope="class")
    def sabotaged(self):
        with disabled_dedup():
            return run_schedule(NO_DEDUP_SCHEDULE, seed=11)

    def test_dedup_sabotage_trips_exactly_at_most_once(self, sabotaged):
        assert not sabotaged.ok
        assert sabotaged.violated_monitors() == ["at_most_once"]

    def test_sabotage_actually_double_executed(self, sabotaged):
        assert sabotaged.delivery["effects"]["same_actor_doubles"] > 0
