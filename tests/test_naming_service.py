"""Integration tests for the replicated name service (paper section 4)."""

import pytest

from repro.core.naming import AlreadyBound, NameClient, NameNotFound
from repro.core.naming.errors import SelectorFailed
from repro.net import settop_ip
from repro.ocs import OCSRuntime, ObjectRef
from repro.sim import Host

from tests.helpers import NsWorld


def make_ref(ip, port=7777, type_id="TestEcho", oid=""):
    return ObjectRef(ip=ip, port=port, incarnation=(0.0, 99),
                     type_id=type_id, object_id=oid)


class TestElection:
    def test_master_elected_at_cold_start(self):
        world = NsWorld(n_servers=3)
        master = world.settle()
        assert master is not None
        # Exactly one master.
        roles = [r.role for r in world.replicas.values()]
        assert roles.count("master") == 1

    def test_single_replica_elects_itself(self):
        world = NsWorld(n_servers=1)
        assert world.settle() is not None

    def test_five_replicas(self):
        world = NsWorld(n_servers=5)
        assert world.settle() is not None

    def test_master_crash_triggers_reelection(self):
        world = NsWorld(n_servers=3)
        old_master = world.settle()
        old_ip = old_master.ip
        old_master.process.kill()
        new_master = world.settle(30.0)
        assert new_master is not None
        assert new_master.ip != old_ip
        assert new_master.epoch > old_master.epoch

    def test_no_master_without_majority(self):
        world = NsWorld(n_servers=3)
        world.settle()
        # Kill two of three replicas: the survivor cannot win a majority.
        killed = 0
        for replica in list(world.replicas.values()):
            if killed < 2:
                replica.process.kill()
                killed += 1
        world.kernel.run(until=world.kernel.now + 60.0)
        assert world.master() is None

    def test_rejoined_replica_becomes_slave_and_catches_up(self):
        world = NsWorld(n_servers=3)
        master = world.settle()
        # Bind something, then kill a slave.
        slave = next(r for r in world.replicas.values() if r.role == "slave")
        slave_host = slave.process.host
        slave.process.kill()
        _, _, client = world.client(master.process.host)
        world.run_async(client.bind_new_context("svc"))
        world.run_async(client.bind("svc/mms", make_ref(master.ip)))
        # Restart the replica; it should fetch state from the master.
        revived = world.start_replica(slave_host)
        world.settle(20.0)
        assert revived.role == "slave"
        assert revived.store.exists("svc/mms")


class TestBindResolve:
    def test_bind_then_resolve_anywhere(self, ns_world):
        world = ns_world
        master = world.master()
        _, _, client = world.client(master.process.host)
        ref = make_ref(master.ip)
        world.run_async(client.bind_new_context("svc"))
        world.run_async(client.bind("svc/mms", ref))
        world.kernel.run(until=world.kernel.now + 1.0)  # let multicast land
        # Resolve from every server: reads are local.
        for host in world.hosts:
            _, _, cli = world.client(host, name=f"cli-{host.name}")
            got = world.run_async(cli.resolve("svc/mms"))
            assert got == ref

    def test_read_your_writes_on_slave(self, ns_world):
        world = ns_world
        slave = next(r for r in world.replicas.values() if r.role == "slave")
        _, _, client = world.client(slave.process.host)

        async def bind_and_read():
            await client.bind_new_context("apps")
            await client.bind("apps/vod", make_ref(slave.ip))
            return await client.resolve("apps/vod")

        assert world.run_async(bind_and_read()) is not None

    def test_resolve_missing_raises(self, ns_world):
        world = ns_world
        _, _, client = world.client(world.hosts[0])
        with pytest.raises(NameNotFound):
            world.run_async(client.resolve("no/such/name"))

    def test_duplicate_bind_raises_already_bound(self, ns_world):
        world = ns_world
        _, _, client = world.client(world.hosts[0])
        world.run_async(client.bind_new_context("svc"))
        world.run_async(client.bind("svc/kbs", make_ref(world.hosts[0].ip)))
        with pytest.raises(AlreadyBound):
            world.run_async(client.bind("svc/kbs", make_ref(world.hosts[1].ip)))

    def test_unbind_then_rebind(self, ns_world):
        world = ns_world
        _, _, client = world.client(world.hosts[0])
        world.run_async(client.bind_new_context("svc"))
        world.run_async(client.bind("svc/x", make_ref(world.hosts[0].ip)))
        world.run_async(client.unbind("svc/x"))
        world.run_async(client.bind("svc/x", make_ref(world.hosts[1].ip)))
        got = world.run_async(client.resolve("svc/x"))
        assert got.ip == world.hosts[1].ip

    def test_resolve_context_returns_context_ref(self, ns_world):
        world = ns_world
        _, _, client = world.client(world.hosts[0])
        world.run_async(client.bind_new_context("svc"))
        ref = world.run_async(client.resolve("svc"))
        assert ref.type_id == "NamingContext"

    def test_resolve_via_context_object(self, ns_world):
        """Resolve a name relative to a non-root context object."""
        world = ns_world
        proc, runtime, client = world.client(world.hosts[0])
        world.run_async(client.bind_new_context("svc"))
        target = make_ref(world.hosts[0].ip)
        world.run_async(client.bind("svc/rds", target))
        ctx_ref = world.run_async(client.resolve("svc"))
        got = world.run_async(runtime.invoke(ctx_ref, "resolve", ("rds",)))
        assert got == target

    def test_list_context(self, ns_world):
        world = ns_world
        _, _, client = world.client(world.hosts[0])
        world.run_async(client.bind_new_context("svc"))
        world.run_async(client.bind("svc/a", make_ref(world.hosts[0].ip)))
        world.run_async(client.bind("svc/b", make_ref(world.hosts[1].ip)))
        names = [n for n, _kind, _ref in world.run_async(client.list("svc"))]
        assert names == ["a", "b"]


class TestReplicatedContexts:
    def test_first_selector_returns_member(self, ns_world):
        world = ns_world
        _, _, client = world.client(world.hosts[0])
        world.run_async(client.ensure_context("svc"))
        world.run_async(client.bind_repl_context("svc/rds", "first"))
        r1 = make_ref(world.hosts[0].ip, port=1)
        r2 = make_ref(world.hosts[1].ip, port=2)
        world.run_async(client.bind("svc/rds/1", r1))
        world.run_async(client.bind("svc/rds/2", r2))
        got = world.run_async(client.resolve("svc/rds"))
        assert got == r1

    def test_roundrobin_cycles(self, ns_world):
        world = ns_world
        _, _, client = world.client(world.hosts[0])
        world.run_async(client.ensure_context("svc"))
        world.run_async(client.bind_repl_context("svc/rds", "roundrobin"))
        r1 = make_ref(world.hosts[0].ip, port=1)
        r2 = make_ref(world.hosts[1].ip, port=2)
        world.run_async(client.bind("svc/rds/1", r1))
        world.run_async(client.bind("svc/rds/2", r2))
        seen = [world.run_async(client.resolve("svc/rds")) for _ in range(4)]
        assert seen == [r1, r2, r1, r2]

    def test_explicit_member_name_bypasses_selector(self, ns_world):
        """Figure 8: resolving svc/cmgr/1 names the member directly."""
        world = ns_world
        _, _, client = world.client(world.hosts[0])
        world.run_async(client.ensure_context("svc"))
        world.run_async(client.bind_repl_context("svc/cmgr", "neighborhood"))
        r1 = make_ref(world.hosts[0].ip, port=1)
        world.run_async(client.bind("svc/cmgr/1", r1))
        got = world.run_async(client.resolve("svc/cmgr/1"))
        assert got == r1

    def test_neighborhood_selector_uses_caller_ip(self, ns_world):
        world = ns_world
        _, _, client = world.client(world.hosts[0])
        world.run_async(client.ensure_context("svc"))
        world.run_async(client.bind_repl_context("svc/cmgr", "neighborhood"))
        r1 = make_ref(world.hosts[0].ip, port=1)
        r2 = make_ref(world.hosts[1].ip, port=2)
        world.run_async(client.bind("svc/cmgr/1", r1))
        world.run_async(client.bind("svc/cmgr/2", r2))
        # A settop in neighborhood 2 resolves svc/cmgr.
        settop = Host(world.kernel, "settop", kind="settop")
        world.net.attach(settop, settop_ip(2, 0))
        proc = settop.spawn("app")
        runtime = OCSRuntime(proc, world.net)
        cli = NameClient(runtime, world.hosts[0].ip, world.params)
        got = world.run_async(cli.resolve("svc/cmgr"))
        assert got == r2

    def test_neighborhood_selector_fails_without_member(self, ns_world):
        world = ns_world
        _, _, client = world.client(world.hosts[0])
        world.run_async(client.ensure_context("svc"))
        world.run_async(client.bind_repl_context("svc/cmgr", "neighborhood"))
        world.run_async(client.bind("svc/cmgr/1",
                                    make_ref(world.hosts[0].ip, port=1)))
        settop = Host(world.kernel, "settop9", kind="settop")
        world.net.attach(settop, settop_ip(9, 0))
        proc = settop.spawn("app")
        runtime = OCSRuntime(proc, world.net)
        cli = NameClient(runtime, world.hosts[0].ip, world.params)
        with pytest.raises(SelectorFailed):
            world.run_async(cli.resolve("svc/cmgr"))

    def test_sameserver_selector(self, ns_world):
        world = ns_world
        _, _, client = world.client(world.hosts[0])
        world.run_async(client.ensure_context("svc"))
        world.run_async(client.bind_repl_context("svc/ras", "sameserver"))
        for host in world.hosts:
            world.run_async(client.bind(f"svc/ras/{host.ip}",
                                        make_ref(host.ip, port=5)))
        # Let the master's multicast reach server 1's replica: reads are
        # local and may lag updates made elsewhere.
        world.kernel.run(until=world.kernel.now + 1.0)
        # A client on server 1 gets the replica on server 1.
        _, _, cli1 = world.client(world.hosts[1], name="c1")
        got = world.run_async(cli1.resolve("svc/ras"))
        assert got.ip == world.hosts[1].ip

    def test_member_contexts_selected_for_deeper_lookup(self, ns_world):
        """Figure 7: bin/vod resolves inside the selected member context."""
        world = ns_world
        _, _, client = world.client(world.hosts[0])
        world.run_async(client.bind_repl_context("bin", "first"))
        world.run_async(client.bind_new_context("bin/1"))
        world.run_async(client.bind_new_context("bin/2"))
        vod1 = make_ref(world.hosts[0].ip, port=11)
        vod2 = make_ref(world.hosts[1].ip, port=22)
        world.run_async(client.bind("bin/1/vod", vod1))
        world.run_async(client.bind("bin/2/vod", vod2))
        got = world.run_async(client.resolve("bin/vod"))
        assert got == vod1  # "first" picks member context 1

    def test_list_replicated_returns_selected(self, ns_world):
        world = ns_world
        _, _, client = world.client(world.hosts[0])
        world.run_async(client.bind_repl_context("rds", "first"))
        r1 = make_ref(world.hosts[0].ip, port=1)
        world.run_async(client.bind("rds/1", r1))
        world.run_async(client.bind("rds/2", make_ref(world.hosts[1].ip, 2)))
        listing = world.run_async(client.list("rds"))
        assert listing == [("1", "leaf", r1)]

    def test_list_repl_returns_all(self, ns_world):
        world = ns_world
        _, _, client = world.client(world.hosts[0])
        world.run_async(client.bind_repl_context("rds", "first"))
        world.run_async(client.bind("rds/1", make_ref(world.hosts[0].ip, 1)))
        world.run_async(client.bind("rds/2", make_ref(world.hosts[1].ip, 2)))
        names = [n for n, _k, _r in world.run_async(client.list_repl("rds"))]
        assert names == ["1", "2"]

    def test_custom_selector_object(self, ns_world):
        """A user-provided Selector object is invoked remotely (Figure 6)."""
        world = ns_world
        from repro.core.naming.selectors import PreferredMemberSelector
        host = world.hosts[2]
        proc = host.spawn("selector-svc")
        runtime = OCSRuntime(proc, world.net)
        sel_ref = runtime.export(PreferredMemberSelector("2"), "Selector")
        _, _, client = world.client(world.hosts[0])
        world.run_async(client.bind_repl_context("rds", "first"))
        r1 = make_ref(world.hosts[0].ip, port=1)
        r2 = make_ref(world.hosts[1].ip, port=2)
        world.run_async(client.bind("rds/1", r1))
        world.run_async(client.bind("rds/2", r2))
        world.run_async(client.bind("rds/selector", sel_ref))
        got = world.run_async(client.resolve("rds"))
        assert got == r2

    def test_empty_replicated_context_fails_selection(self, ns_world):
        world = ns_world
        _, _, client = world.client(world.hosts[0])
        world.run_async(client.bind_repl_context("rds", "first"))
        with pytest.raises(SelectorFailed):
            world.run_async(client.resolve("rds"))

    def test_least_loaded_selector(self, ns_world):
        world = ns_world
        _, _, client = world.client(world.hosts[0])
        world.run_async(client.bind_repl_context("mds", "leastloaded"))
        r1 = make_ref(world.hosts[0].ip, port=1)
        r2 = make_ref(world.hosts[1].ip, port=2)
        world.run_async(client.bind("mds/a", r1))
        world.run_async(client.bind("mds/b", r2))
        world.run_async(client.report_load("mds", "a", 10.0))
        world.run_async(client.report_load("mds", "b", 2.0))
        got = world.run_async(client.resolve("mds"))
        assert got == r2
