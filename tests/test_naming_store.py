"""Unit tests for the pure name tree (NameStore)."""

import pytest

from repro.core.naming.errors import (
    AlreadyBound,
    InvalidName,
    NameNotFound,
    NotAContext,
)
from repro.core.naming.store import NameStore, join_name, split_name
from repro.ocs.objref import ObjectRef


def make_ref(ip="192.26.65.1", port=7000, type_id="TestEcho", oid=""):
    return ObjectRef(ip=ip, port=port, incarnation=(0.0, 1),
                     type_id=type_id, object_id=oid)


@pytest.fixture
def store():
    return NameStore()


class TestNames:
    def test_split_simple(self):
        assert split_name("svc/rds/1") == ["svc", "rds", "1"]

    def test_split_strips_slashes(self):
        assert split_name("/svc/rds/") == ["svc", "rds"]

    def test_split_root(self):
        assert split_name("") == []
        assert split_name("/") == []

    def test_split_rejects_empty_component(self):
        with pytest.raises(InvalidName):
            split_name("svc//rds")

    def test_split_rejects_dots(self):
        with pytest.raises(InvalidName):
            split_name("svc/../etc")

    def test_join_round_trips(self):
        assert join_name(split_name("a/b/c")) == "a/b/c"


class TestUpdates:
    def apply(self, store, *ops):
        for op in ops:
            store.check(op)
            store.apply(op)

    def test_bind_and_get(self, store):
        ref = make_ref()
        self.apply(store, ("mkcontext", "svc"), ("bind", "svc/mms", ref))
        assert store.get_node("svc/mms").ref == ref

    def test_bind_without_parent_fails(self, store):
        with pytest.raises(NameNotFound):
            store.check(("bind", "svc/mms", make_ref()))

    def test_bind_duplicate_raises_already_bound(self, store):
        self.apply(store, ("mkcontext", "svc"), ("bind", "svc/mms", make_ref()))
        with pytest.raises(AlreadyBound):
            store.check(("bind", "svc/mms", make_ref(port=8000)))

    def test_bind_non_ref_rejected(self, store):
        self.apply(store, ("mkcontext", "svc"))
        with pytest.raises(InvalidName):
            store.check(("bind", "svc/mms", "not-a-ref"))

    def test_unbind(self, store):
        self.apply(store, ("mkcontext", "svc"), ("bind", "svc/mms", make_ref()),
                   ("unbind", "svc/mms"))
        assert not store.exists("svc/mms")

    def test_unbind_missing_raises(self, store):
        self.apply(store, ("mkcontext", "svc"))
        with pytest.raises(NameNotFound):
            store.check(("unbind", "svc/ghost"))

    def test_bind_into_leaf_raises(self, store):
        self.apply(store, ("mkcontext", "svc"), ("bind", "svc/mms", make_ref()))
        with pytest.raises(NotAContext):
            store.check(("bind", "svc/mms/x", make_ref()))

    def test_cannot_create_root(self, store):
        with pytest.raises(InvalidName):
            store.check(("mkcontext", ""))

    def test_mkrepl_members(self, store):
        self.apply(store, ("mkcontext", "svc"),
                   ("mkrepl", "svc/rds", ("builtin", "first")),
                   ("bind", "svc/rds/1", make_ref(port=1)),
                   ("bind", "svc/rds/2", make_ref(port=2)))
        node = store.get_node("svc/rds")
        assert node.kind == "replicated"
        assert [n for n, _ in node.members()] == ["1", "2"]

    def test_selector_binding_sets_selector(self, store):
        sel = make_ref(type_id="Selector", oid="sel")
        self.apply(store, ("mkrepl", "rds", ("builtin", "first")),
                   ("bind", "rds/selector", sel))
        node = store.get_node("rds")
        assert node.selector == ("object", sel)
        # The selector binding is excluded from member selection.
        assert node.members() == []

    def test_unbind_selector_restores_builtin(self, store):
        sel = make_ref(type_id="Selector", oid="sel")
        self.apply(store, ("mkrepl", "rds", ("builtin", "roundrobin")),
                   ("bind", "rds/selector", sel), ("unbind", "rds/selector"))
        assert store.get_node("rds").selector == ("builtin", "first")

    def test_setselector_requires_replicated(self, store):
        self.apply(store, ("mkcontext", "svc"))
        with pytest.raises(NotAContext):
            store.check(("setselector", "svc", ("builtin", "roundrobin")))

    def test_unknown_op_rejected(self, store):
        with pytest.raises(InvalidName):
            store.check(("frobnicate", "x"))


class TestSequencing:
    def test_apply_numbered_in_order(self, store):
        assert store.apply_numbered(1, ("mkcontext", "a"))
        assert store.apply_numbered(2, ("mkcontext", "a/b"))
        assert store.applied_seq == 2

    def test_duplicate_seq_is_noop(self, store):
        store.apply_numbered(1, ("mkcontext", "a"))
        assert not store.apply_numbered(1, ("mkcontext", "a"))

    def test_gap_raises(self, store):
        store.apply_numbered(1, ("mkcontext", "a"))
        with pytest.raises(ValueError):
            store.apply_numbered(3, ("mkcontext", "b"))


class TestSnapshot:
    def test_round_trip(self, store):
        ref = make_ref()
        for seq, op in enumerate([
            ("mkcontext", "svc"),
            ("mkrepl", "svc/rds", ("builtin", "neighborhood")),
            ("bind", "svc/rds/1", ref),
            ("bind", "svc/mms", make_ref(port=9)),
        ], start=1):
            store.apply_numbered(seq, op)
        snap = store.snapshot()
        other = NameStore()
        other.load_snapshot(snap)
        assert other.applied_seq == 4
        assert other.get_node("svc/rds").selector == ("builtin", "neighborhood")
        assert other.get_node("svc/rds/1").ref == ref
        assert other.context_paths() == store.context_paths()

    def test_iter_leaf_bindings(self, store):
        r1, r2 = make_ref(port=1), make_ref(port=2)
        sel = make_ref(type_id="Selector", port=3)
        for seq, op in enumerate([
            ("mkcontext", "svc"),
            ("bind", "svc/mms", r1),
            ("mkrepl", "svc/rds", ("builtin", "first")),
            ("bind", "svc/rds/1", r2),
            ("bind", "svc/rds/selector", sel),
        ], start=1):
            store.apply_numbered(seq, op)
        bindings = dict(store.iter_leaf_bindings())
        assert bindings["svc/mms"] == r1
        assert bindings["svc/rds/1"] == r2
        assert bindings["svc/rds/selector"] == sel

    def test_context_paths(self, store):
        store.apply_numbered(1, ("mkcontext", "svc"))
        store.apply_numbered(2, ("mkrepl", "svc/rds", ("builtin", "first")))
        assert store.context_paths() == ["", "svc", "svc/rds"]
