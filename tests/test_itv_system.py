"""System tests: the full ITV stack, replaying the paper's flows.

Covers Figure 3 (downloading an application), Figure 4 (opening a
movie), and the section 3.5 failure scenarios.
"""

import pytest

from repro.cluster import build_full_cluster
from repro.cluster.media import movie_locations
from repro.services.connection_manager import BandwidthUnavailable


@pytest.fixture(scope="module")
def itv():
    """One full cluster + booted settop shared by read-only tests."""
    cluster = build_full_cluster(n_servers=3, seed=42)
    stk = cluster.add_settop_kernel(1)
    assert cluster.boot_settops([stk])
    return cluster, stk


def fresh_itv(seed=77, neighborhood=1, n_servers=3):
    cluster = build_full_cluster(n_servers=n_servers, seed=seed)
    stk = cluster.add_settop_kernel(neighborhood)
    assert cluster.boot_settops([stk])
    return cluster, stk


def tune(cluster, stk, channel):
    cluster.run_async(stk.app_manager.tune(channel))
    return stk.app_manager.current_app


def play_movie(cluster, app, title="T2", resume=True):
    cluster.run_async(app.play(title, resume=resume))


class TestBootAndDownload:
    def test_settop_boots_from_broadcast(self, itv):
        cluster, stk = itv
        assert stk.state == "booted"
        assert stk.boot_params["ns_ip"] == cluster.server_for_neighborhood(1).ip

    def test_navigator_loaded_first(self, itv):
        """Figure 3 + section 3.4.2: the AM's first download is the navigator."""
        _cluster, stk = itv
        assert stk.app_manager.current_app.name in ("navigator", "vod",
                                                    "shopping", "game")

    def test_app_download_takes_2_to_4_seconds(self):
        """Section 9.3: rich apps start in 2-4 s at settop bandwidth."""
        cluster, stk = fresh_itv(seed=101)
        for channel, low, high in [(5, 2.0, 4.5), (6, 2.5, 5.0)]:
            tune(cluster, stk, channel)
            t = stk.app_manager.last_tune
            assert low <= t["download_time"] <= high, t

    def test_cover_beats_download(self, itv):
        """Viewers see a response within 0.5 s (section 9.3)."""
        _cluster, stk = itv
        t = stk.app_manager.last_tune
        assert t["cover_at"] == 0.5
        assert t["cover_at"] < t["download_time"]

    def test_tune_to_same_channel_is_noop(self):
        cluster, stk = fresh_itv(seed=102)
        tune(cluster, stk, 5)
        before = stk.app_manager.last_tune
        tune(cluster, stk, 5)
        assert stk.app_manager.last_tune is before

    def test_unknown_channel_rejected(self, itv):
        cluster, stk = itv
        with pytest.raises(KeyError):
            cluster.run_async(stk.app_manager.tune(99))


class TestMoviePlayback:
    def test_open_reserves_bandwidth(self):
        """Figure 4 step 4: the Connection Manager reserves the circuit."""
        cluster, stk = fresh_itv(seed=103)
        vod = tune(cluster, stk, 5)
        downlink = cluster.net.downlink_of(stk.host.ip)
        before = downlink.reserved_bps
        play_movie(cluster, vod)
        assert downlink.reserved_bps == before + cluster.params.movie_bitrate_bps

    def test_chunks_flow_and_position_advances(self):
        cluster, stk = fresh_itv(seed=104)
        vod = tune(cluster, stk, 5)
        play_movie(cluster, vod)
        cluster.run_for(20.0)
        assert vod.chunks_received >= 18
        assert 18.0 <= vod.position <= 22.0

    def test_close_releases_resources(self):
        """Section 3.4.5: closing lets the MMS reclaim circuit + stream."""
        cluster, stk = fresh_itv(seed=105)
        vod = tune(cluster, stk, 5)
        play_movie(cluster, vod)
        cluster.run_for(5.0)
        cluster.run_async(vod.stop())
        downlink = cluster.net.downlink_of(stk.host.ip)
        assert downlink.reserved_bps == 0
        client = cluster.client_on(cluster.servers[0], name="t-close")

        async def sessions():
            ref = await client.names.resolve("svc/mms")
            return await client.runtime.invoke(ref, "openCount", ())

        assert cluster.run_async(sessions()) == 0

    def test_admission_control_limits_streams(self):
        """Two 3 Mbit/s streams fill a 6 Mbit/s downlink; a third fails."""
        cluster, stk = fresh_itv(seed=106)
        vod = tune(cluster, stk, 5)
        client = cluster.client_on(cluster.servers[0], name="t-adm")

        async def open_direct(title):
            ref = await client.names.resolve("svc/mms")
            # Impersonate more streams to the same settop via the MMS's
            # caller-ip logic: open on behalf of the settop by calling
            # from the settop's own app.
            return ref

        play_movie(cluster, vod, "T2")
        # Open a second stream from the same settop via a raw invocation.
        from repro.ocs import OCSRuntime
        proc = stk.host.spawn("second-app")
        runtime = OCSRuntime(proc, cluster.net)
        from repro.core.naming.client import NameClient
        names = NameClient(runtime, stk.boot_params["ns_ip"], cluster.params)

        async def open_more(title):
            mms = await names.resolve("svc/mms")
            from repro.ocs.runtime import allocate_port
            return await runtime.invoke(mms, "open", (title, allocate_port()),
                                        timeout=5.0)

        cluster.run_async(open_more("Casablanca"))
        from repro.services.connection_manager import ResourceLimitExceeded
        from repro.services.mms import MovieUnavailable
        # The third stream is denied: either by the per-settop connection
        # quota (section 7.3) or by bandwidth admission control -- the
        # quota (2) and the downlink (6/3 Mbit/s) bind at the same point.
        with pytest.raises((BandwidthUnavailable, MovieUnavailable,
                            ResourceLimitExceeded)):
            cluster.run_async(open_more("Sneakers"))

    def test_movie_plays_to_completion(self):
        cluster, stk = fresh_itv(seed=107)
        vod = tune(cluster, stk, 5)
        play_movie(cluster, vod, "Toy Story")   # 200 s
        cluster.run_for(230.0)
        assert vod.finished
        assert not vod.playing
        assert cluster.net.downlink_of(stk.host.ip).reserved_bps == 0

    def test_pause_stops_chunks(self):
        cluster, stk = fresh_itv(seed=108)
        vod = tune(cluster, stk, 5)
        play_movie(cluster, vod)
        cluster.run_for(5.0)
        cluster.run_async(vod.pause())
        got = vod.chunks_received
        cluster.run_for(10.0)
        assert vod.chunks_received == got


class TestFailureScenarios:
    """Section 3.5: the three crash cases, plus server-grain variants."""

    def test_mds_crash_recovered_by_reopen(self):
        """Section 3.5.2: app detects the stall, closes, reopens."""
        cluster, stk = fresh_itv(seed=109)
        vod = tune(cluster, stk, 5)
        play_movie(cluster, vod, "T2")
        cluster.run_for(10.0)
        pos_before = vod.position
        # Find and kill the MDS serving this movie; keep it dead a while
        # by stopping it through its SSC (no auto-restart).
        serving = [i for i, h in enumerate(cluster.servers)
                   if any(p.name == "mds" and p.alive and any(
                       "pump" in (t.name or "") for t in p._tasks)
                       for p in h.processes)]
        # Fallback: kill every MDS that has open streams.
        killed = False
        for i, host in enumerate(cluster.servers):
            proc = host.find_process("mds")
            if proc is None:
                continue
            svc_tasks = [t for t in proc._tasks if "pump" in t.name]
            if svc_tasks:
                cluster.kill_service(i, "mds")
                killed = True
                break
        assert killed, "no MDS had an active pump"
        cluster.run_for(60.0)
        assert vod.interruptions, "app never noticed the stall"
        assert vod.playing, "app did not recover playback"
        assert vod.position >= pos_before

    def test_mms_crash_backup_takes_over_with_state(self):
        """Section 3.5.3 + 10.1.1: backup MMS rebuilds state from MDSs."""
        cluster, stk = fresh_itv(seed=110)
        vod = tune(cluster, stk, 5)
        play_movie(cluster, vod, "T2")
        cluster.run_for(5.0)
        client = cluster.client_on(cluster.servers[2], name="t-mms")

        async def mms_status():
            ref = await client.names.resolve("svc/mms")
            return await client.runtime.invoke(ref, "status", ())

        primary = cluster.run_async(mms_status())
        primary_index = next(i for i, h in enumerate(cluster.servers)
                             if h.name == primary["host"])
        # Stop it through the CSC (operator tool): plain SSC stop would be
        # undone by the CSC's reconcile loop restarting the service.
        from repro.core.control.tools import OperatorConsole
        console = OperatorConsole(client.runtime, client.names, cluster.params)
        cluster.run_async(console.stop_service(
            "mms", cluster.servers[primary_index].ip))
        # Wait out fail-over; playback continues meanwhile (data path is
        # independent of the MMS).
        chunks_before = vod.chunks_received
        cluster.run_for(cluster.params.max_failover + 10.0)
        assert vod.chunks_received > chunks_before
        status = cluster.run_async(mms_status())
        assert status["host"] != primary["host"]
        assert status["sessions"] == 1  # recovered by querying the MDSs

    def test_settop_crash_reclaims_resources(self):
        """Section 3.5.1: MMS polls the RAS and closes orphaned movies."""
        cluster, stk = fresh_itv(seed=111)
        vod = tune(cluster, stk, 5)
        play_movie(cluster, vod, "T2")
        cluster.run_for(5.0)
        downlink = cluster.net.downlink_of(stk.host.ip)
        assert downlink.reserved_bps > 0
        stk.crash()
        # settop_dead_after (15 s) + RAS settop poll + MMS client poll.
        budget = (cluster.params.settop_dead_after
                  + cluster.params.ras_peer_poll
                  + cluster.params.ras_client_poll + 15.0)
        cluster.run_for(budget)
        assert downlink.reserved_bps == 0, "circuit leaked after settop crash"
        client = cluster.client_on(cluster.servers[0], name="t-settop")

        async def sessions():
            ref = await client.names.resolve("svc/mms")
            return await client.runtime.invoke(ref, "openCount", ())

        assert cluster.run_async(sessions()) == 0

    def test_mds_server_crash_movie_reopens_on_replica(self):
        """Section 3.5.2: movies are replicated, so a whole-server crash
        is covered by reopening from another server."""
        cluster, stk = fresh_itv(seed=112)
        vod = tune(cluster, stk, 5)
        play_movie(cluster, vod, "T2")
        cluster.run_for(5.0)
        locations = movie_locations(cluster, "T2")
        assert len(locations) >= 2
        # Crash the server whose MDS is pumping.
        serving_index = None
        for i, host in enumerate(cluster.servers):
            proc = host.find_process("mds")
            if proc is not None and any("pump" in t.name for t in proc._tasks):
                serving_index = i
                break
        assert serving_index is not None
        cluster.crash_server(serving_index)
        cluster.run_for(90.0)
        assert vod.playing, "playback did not resume on a surviving replica"


class TestShoppingAndGames:
    def test_order_flow(self):
        cluster, stk = fresh_itv(seed=113)
        shop = tune(cluster, stk, 6)
        catalog = cluster.run_async(shop.browse())
        assert "mug" in catalog
        order_id = cluster.run_async(shop.buy("mug", 2))
        status = cluster.run_async(shop.check_order(order_id))
        assert status["status"] == "accepted"
        assert status["quantity"] == 2

    def test_orders_survive_shopping_service_crash(self):
        cluster, stk = fresh_itv(seed=114)
        shop = tune(cluster, stk, 6)
        order_id = cluster.run_async(shop.buy("cap"))
        # Kill every shopping replica; SSCs restart them.
        for i in range(len(cluster.servers)):
            cluster.kill_service(i, "shopping")
        cluster.run_for(10.0)
        status = cluster.run_async(shop.check_order(order_id))
        assert status["item"] == "cap"

    def test_game_round_trip(self):
        cluster, stk = fresh_itv(seed=115)
        game = tune(cluster, stk, 7)
        outcome = cluster.run_async(game.play_round(50))
        assert outcome["result"] in ("correct", "higher", "lower")

    def test_game_state_recovered_from_client(self):
        """Section 9.4: game state is regenerated from client rejoins."""
        cluster, stk = fresh_itv(seed=116)
        game = tune(cluster, stk, 7)
        game.score = 3  # pretend some wins happened
        cluster.run_async(game.join())
        # Kill the game replica serving this neighbourhood.
        server = cluster.server_for_neighborhood(1)
        index = cluster.servers.index(server)
        cluster.kill_service(index, "game")
        cluster.run_for(5.0)  # SSC restarts it, with empty state
        outcome = cluster.run_async(game.play_round(42))
        assert game.rejoins >= 1
        assert outcome["state"]["players"][game.player] >= 3


class TestVODBookmarks:
    def test_resume_position_survives_app_restart(self):
        """Section 10.1.1: the VOD service holds the resume point."""
        cluster, stk = fresh_itv(seed=117)
        vod = tune(cluster, stk, 5)
        play_movie(cluster, vod, "Casablanca")
        cluster.run_for(30.0)
        cluster.run_async(vod.stop())
        pos = vod.position
        assert pos >= 25.0
        # Channel-surf away and back: new app process, no local state.
        tune(cluster, stk, 6)
        vod2 = tune(cluster, stk, 5)
        assert vod2 is not vod
        play_movie(cluster, vod2, "Casablanca")
        assert vod2.position >= pos - 1.0
