"""The paper's own checklists, verified one line at a time.

Section 4.1 states five design goals for the naming system; section 8
states three availability mechanisms.  Each goal gets the smallest test
that demonstrates it against the running system.
"""

import pytest

from repro.cluster import build_full_cluster
from repro.idl import lookup_interface


@pytest.fixture(scope="module")
def cluster():
    return build_full_cluster(n_servers=3, seed=281)


@pytest.fixture(scope="module")
def client(cluster):
    return cluster.client_on(cluster.servers[0], name="goals")


class TestSection41NamingGoals:
    def test_goal1_objects_of_all_types_nameable(self, cluster, client):
        """"Allow objects of all types to be named." -- the name space
        holds MMS, RAS, Database, File, ... objects side by side."""
        types_seen = set()
        for name in ("svc/mms", "svc/db", "svc/csc", "svc/kbs"):
            ref = cluster.run_async(client.names.resolve(name))
            types_seen.add(ref.type_id)
        assert len(types_seen) == 4

    def test_goal2_multiple_name_service_implementations(self, cluster,
                                                         client):
        """"Allow multiple implementations of the name service
        interface." -- FileSystemContext is a NamingContext subtype."""
        fs = lookup_interface("FileSystemContext")
        assert fs.is_a("NamingContext")
        ref = cluster.run_async(
            client.names.resolve(f"files/{cluster.servers[0].ip}"))
        assert ref.type_id == "FileSystemContext"

    def test_goal3_components_export_contexts(self, cluster, client):
        """"System components should be able to export objects by
        implementing the context interface." -- resolution recurses into
        the file service's exported context."""
        ref = cluster.run_async(client.names.resolve(
            f"files/{cluster.servers[0].ip}/etc/motd"))
        assert ref.type_id == "File"

    def test_goal4_distributed_implementation(self, cluster):
        """"Allow the implementation of the name service to be
        distributed for both scalability and availability." -- a replica
        runs on every server and any of them answers."""
        for host in cluster.servers:
            local = cluster.client_on(host, name=f"goal4-{host.name}")
            ref = cluster.run_async(local.names.resolve("svc/mms"))
            assert ref is not None

    def test_goal5_replication_support(self, cluster, client):
        """"Provide support for building replicated services." -- the
        ReplicatedContext type exists in the wire type system and routes
        by selector."""
        repl = lookup_interface("ReplicatedContext")
        assert repl.is_a("NamingContext")
        listing = cluster.run_async(client.names.list_repl("svc/mds"))
        assert len(listing) == 3


class TestSection8AvailabilityMechanisms:
    def test_mechanism1_automatic_restart(self):
        """Paper: "Automatic (re)start of services"."""
        cluster = build_full_cluster(n_servers=2, seed=282)
        cluster.kill_service(0, "vod")
        cluster.run_for(5.0)
        proc = cluster.find_service(0, "vod")
        assert proc is not None and proc.alive

    def test_mechanism2_automatic_rebinding(self):
        """Paper: "Automatic rebinding of clients after service recovery"."""
        from repro.core.rebind import RebindingProxy
        cluster = build_full_cluster(n_servers=2, seed=283)
        client = cluster.client_on(cluster.servers[0], name="m2")
        proxy = RebindingProxy(client.runtime, client.names, "svc/mms",
                               cluster.params)
        assert cluster.run_async(proxy.openCount()) == 0
        cluster.kill_service(0, "mms")
        cluster.kill_service(1, "mms")
        cluster.run_for(2.0)
        assert cluster.run_async(proxy.openCount()) == 0
        assert proxy.rebinds >= 1

    def test_mechanism3_failure_notification(self):
        """Paper: "Optional notification of failures among clients or
        services" -- the audit library calls back on death."""
        from repro.core.ras.client import AuditClient
        cluster = build_full_cluster(n_servers=2, seed=284)
        client = cluster.client_on(cluster.servers[0], name="m3")
        target = cluster.run_async(client.names.resolve("svc/kbs"))
        audit = AuditClient(client.runtime, client.names, cluster.params)
        deaths = []
        audit.watch(target, deaths.append)
        audit.start(client.process)
        # Stop kbs through the CSC so nothing restarts-and-rebinds it.
        from repro.core.control.tools import OperatorConsole
        console = OperatorConsole(client.runtime, client.names,
                                  cluster.params)
        cluster.run_async(console.stop_service("kbs", target.ip))
        cluster.run_for(3 * cluster.params.ras_client_poll)
        assert deaths == [target]
