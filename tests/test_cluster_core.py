"""Integration tests: SSC + RAS + name service working together.

These exercise the paper's availability machinery end to end: automatic
restart (section 8.1), audit removal of dead objects (section 4.7),
primary/backup fail-over through the bind race (section 5.2), and client
rebinding (section 8.2).
"""

import pytest

from repro.cluster import build_cluster
from repro.core.control.ssc import ssc_ref
from repro.core.naming.errors import NameNotFound, SelectorFailed
from repro.core.rebind import RebindingProxy
from repro.ocs import ServiceUnavailable

from tests.helpers import PBPingService, PingService


@pytest.fixture(scope="module")
def base_cluster():
    return build_cluster(n_servers=3, seed=11)


def fresh_cluster(**kwargs):
    kwargs.setdefault("seed", 23)
    return build_cluster(n_servers=3, **kwargs)


class TestClusterBringup:
    def test_base_services_running_everywhere(self, base_cluster):
        services = base_cluster.running_services()
        for host_name, procs in services.items():
            assert "ssc" in procs
            assert "ns" in procs
            assert "ras" in procs
            assert "settopmgr" in procs

    def test_ras_resolvable_per_server(self, base_cluster):
        cluster = base_cluster
        client = cluster.client_on(cluster.servers[1], name="t-ras")
        ref = cluster.run_async(client.names.resolve("svc/ras"))
        # sameserver selector: a client on server 1 gets server 1's RAS.
        assert ref.ip == cluster.servers[1].ip

    def test_ssc_ping(self, base_cluster):
        cluster = base_cluster
        client = cluster.client_on(cluster.servers[0], name="t-ssc")
        info = cluster.run_async(client.runtime.invoke(
            ssc_ref(cluster.servers[0].ip), "ping", ()))
        assert "ns" in info["services"]


class TestAutomaticRestart:
    def test_ssc_restarts_crashed_service(self):
        cluster = fresh_cluster()
        assert cluster.kill_service(0, "ras")
        cluster.run_for(5.0)
        proc = cluster.find_service(0, "ras")
        assert proc is not None and proc.alive

    def test_init_restarts_crashed_ssc(self):
        cluster = fresh_cluster()
        ssc_proc = cluster.servers[0].find_process("ssc")
        children = [p.name for p in ssc_proc.children]
        assert "ns" in children
        ssc_proc.kill()
        # Children die with the SSC (section 6.1 footnote).
        assert cluster.servers[0].find_process("ns") is None
        cluster.run_for(10.0)
        assert cluster.servers[0].find_process("ssc") is not None
        assert cluster.servers[0].find_process("ns") is not None

    def test_reboot_restores_base_services(self):
        cluster = fresh_cluster()
        cluster.crash_server(2)
        cluster.run_for(5.0)
        assert cluster.servers[2].processes == []
        cluster.reboot_server(2)
        cluster.run_for(20.0)
        names = sorted(p.name for p in cluster.servers[2].processes)
        assert "ssc" in names and "ns" in names and "ras" in names


class TestAudit:
    def test_dead_service_binding_removed(self):
        """Section 4.7: dead objects leave the name space within seconds."""
        cluster = fresh_cluster()
        cluster.registry.register("ping", PingService)
        client = cluster.client_on(cluster.servers[0], name="t-audit")
        cluster.run_async(client.runtime.invoke(
            ssc_ref(cluster.servers[0].ip), "startService", ("ping",)))
        assert cluster.settle(extra_names=[f"svc/ping/{cluster.servers[0].ip}"])
        # Kill the service *and* prevent restart, so the binding goes stale.
        cluster.run_async(client.runtime.invoke(
            ssc_ref(cluster.servers[0].ip), "stopService", ("ping",)))
        t_dead = cluster.now
        deadline = t_dead + 3 * cluster.params.max_failover
        removed_at = None
        while cluster.now < deadline:
            cluster.run_for(1.0)
            try:
                cluster.run_async(
                    client.names.resolve(f"svc/ping/{cluster.servers[0].ip}"))
            except (NameNotFound, SelectorFailed):
                # Gone: either the member binding vanished (NameNotFound
                # via another member) or the context emptied entirely.
                removed_at = cluster.now
                break
        assert removed_at is not None
        # Name service audit poll (10s) + RAS freshness: within ~2 polls.
        assert removed_at - t_dead <= (cluster.params.ns_audit_poll
                                       + cluster.params.ras_peer_poll + 5.0)


class TestPrimaryBackup:
    def start_pbping(self, cluster, indices=(0, 1)):
        cluster.registry.register("pbping", PBPingService)
        client = cluster.client_on(cluster.servers[0], name="t-pb")
        for i in indices:
            cluster.run_async(client.runtime.invoke(
                ssc_ref(cluster.servers[i].ip), "startService", ("pbping",)))
        assert cluster.settle(extra_names=["svc/pbping"])
        return client

    def whois_primary(self, cluster, client):
        ref = cluster.run_async(client.names.resolve("svc/pbping"))
        return ref.ip

    def test_first_binder_becomes_primary(self):
        cluster = fresh_cluster()
        client = self.start_pbping(cluster)
        primary_ip = self.whois_primary(cluster, client)
        assert primary_ip in (cluster.servers[0].ip, cluster.servers[1].ip)

    def test_process_crash_fails_over_within_bound(self):
        """Section 9.7: fail-over completes within 25 seconds."""
        cluster = fresh_cluster()
        client = self.start_pbping(cluster)
        primary_ip = self.whois_primary(cluster, client)
        primary_index = cluster.server_ips.index(primary_ip)
        backup_index = 1 if primary_index == 0 else 0
        # Stop (not crash) so the SSC does not restart it: the backup on
        # the other server must take over.
        cluster.run_async(client.runtime.invoke(
            ssc_ref(primary_ip), "stopService", ("pbping",)))
        t_fail = cluster.now
        new_primary = None
        while cluster.now < t_fail + 2 * cluster.params.max_failover:
            cluster.run_for(0.5)
            try:
                ip = self.whois_primary(cluster, client)
            except Exception:  # noqa: BLE001 - transient window
                continue
            if ip != primary_ip:
                new_primary = ip
                break
        assert new_primary == cluster.servers[backup_index].ip
        assert cluster.now - t_fail <= cluster.params.max_failover + 1.0

    def test_server_crash_fails_over(self):
        cluster = fresh_cluster()
        client = self.start_pbping(cluster)
        primary_ip = self.whois_primary(cluster, client)
        primary_index = cluster.server_ips.index(primary_ip)
        cluster.crash_server(primary_index)
        t_fail = cluster.now
        new_primary = None
        while cluster.now < t_fail + 3 * cluster.params.max_failover:
            cluster.run_for(0.5)
            try:
                ip = self.whois_primary(cluster, client)
            except Exception:  # noqa: BLE001
                continue
            if ip != primary_ip:
                new_primary = ip
                break
        assert new_primary is not None
        assert new_primary != primary_ip


class TestRebinding:
    def test_proxy_survives_service_restart(self):
        cluster = fresh_cluster()
        cluster.registry.register("ping", PingService)
        client = cluster.client_on(cluster.servers[1], name="t-rebind")
        cluster.run_async(client.runtime.invoke(
            ssc_ref(cluster.servers[0].ip), "startService", ("ping",)))
        assert cluster.settle(extra_names=[f"svc/ping/{cluster.servers[0].ip}"])
        proxy = RebindingProxy(client.runtime, client.names,
                               f"svc/ping/{cluster.servers[0].ip}",
                               cluster.params)
        assert cluster.run_async(proxy.ping()) == "pong"
        # Kill the service; the SSC restarts it; the proxy rebinds.
        cluster.kill_service(0, "ping")
        cluster.run_for(0.1)
        result = cluster.run_async(proxy.ping())
        assert result == "pong"
        assert proxy.rebinds >= 1

    def test_proxy_gives_up_eventually(self):
        cluster = fresh_cluster()
        client = cluster.client_on(cluster.servers[0], name="t-giveup")
        proxy = RebindingProxy(client.runtime, client.names, "svc/ghost",
                               cluster.params, give_up_after=10.0)
        from repro.core.rebind import RebindError
        with pytest.raises(RebindError):
            cluster.run_async(proxy.ping())


class TestCrashLoopBackoff:
    def test_crash_looping_service_backs_off(self):
        """A service dying at start restarts with escalating delays
        instead of hammering the server."""
        cluster = fresh_cluster(seed=241)

        class DoomedService:
            def __init__(self, env, process):
                self.process = process

            async def run(self):
                raise RuntimeError("bad binary")

        cluster.registry.register("doomed", DoomedService)
        client = cluster.client_on(cluster.servers[0], name="cl")
        cluster.run_async(client.runtime.invoke(
            ssc_ref(cluster.servers[0].ip), "startService", ("doomed",)))
        cluster.run_for(60.0)
        restarts = cluster.trace.select("ssc", "service_restarted",
                                        service="doomed")
        # Without backoff: ~60 restarts in 60 s.  With doubling backoff
        # capped at 30 s: far fewer.
        assert 3 <= len(restarts) <= 12, len(restarts)

    def test_healthy_service_restart_stays_fast(self):
        """Backoff only punishes crash loops, not one-off failures."""
        cluster = fresh_cluster(seed=242)
        cluster.run_for(30.0)   # ras has been up for a while
        t0 = cluster.now
        cluster.kill_service(0, "ras")
        while cluster.now - t0 < 30.0:
            cluster.run_for(0.5)
            proc = cluster.find_service(0, "ras")
            if proc is not None and proc.alive:
                break
        # Restarted within the plain restart delay (+1s slack).
        assert cluster.now - t0 <= cluster.params.ssc_restart_delay + 1.5
