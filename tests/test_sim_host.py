"""Unit tests for hosts, processes, and the failure model."""

import pytest

from repro.sim import CancelledError, Host, Kernel, ProcessExit
from repro.sim.host import Disk


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def host(kernel):
    return Host(kernel, "forge")


class TestProcessLifecycle:
    def test_spawn_gives_unique_pids(self, host):
        a = host.spawn("svc-a")
        b = host.spawn("svc-b")
        assert a.pid != b.pid

    def test_incarnation_unique_per_restart(self, kernel, host):
        first = host.spawn("mms")
        first_inc = first.incarnation
        first.kill()
        kernel.run(until=1.0)
        second = host.spawn("mms")
        assert second.incarnation != first_inc

    def test_kill_cancels_tasks(self, kernel, host):
        proc = host.spawn("svc")
        state = {"interrupted": False}

        async def loop():
            try:
                await kernel.sleep(1000.0)
            except CancelledError:
                state["interrupted"] = True
                raise

        proc.create_task(loop())
        kernel.call_later(1.0, proc.kill)
        kernel.run(until=5.0)
        assert state["interrupted"]
        assert not proc.alive

    def test_kill_is_idempotent(self, host):
        proc = host.spawn("svc")
        proc.kill()
        proc.kill()
        assert proc.exit_status == "killed"

    def test_children_die_with_parent(self, host):
        ssc = host.spawn("ssc")
        child = host.spawn("mds", parent=ssc)
        grandchild = host.spawn("helper", parent=child)
        ssc.kill()
        assert not child.alive
        assert not grandchild.alive
        assert "parent" in child.exit_status

    def test_exit_watcher_fires(self, kernel, host):
        proc = host.spawn("svc")
        seen = []
        proc.on_exit(lambda p: seen.append(p.pid))
        proc.kill()
        assert seen == [proc.pid]

    def test_exit_watcher_on_dead_process_fires_soon(self, kernel, host):
        proc = host.spawn("svc")
        proc.kill()
        seen = []
        proc.on_exit(lambda p: seen.append("late"))
        kernel.run()
        assert seen == ["late"]

    def test_create_task_on_dead_process_raises(self, host):
        proc = host.spawn("svc")
        proc.kill()

        async def noop():
            return None

        with pytest.raises(ProcessExit):
            proc.create_task(noop())


class TestHostFailure:
    def test_crash_kills_all_processes(self, host):
        procs = [host.spawn(f"svc-{i}") for i in range(3)]
        host.crash()
        assert not host.up
        assert all(not p.alive for p in procs)

    def test_spawn_on_down_host_raises(self, host):
        host.crash()
        with pytest.raises(ProcessExit):
            host.spawn("svc")

    def test_boot_runs_hooks(self, host):
        booted = []
        host.add_boot_hook(lambda h: booted.append(h.boot_count))
        host.crash()
        host.boot()
        assert host.up
        assert booted == [2]

    def test_boot_on_up_host_is_noop(self, host):
        host.boot()
        assert host.boot_count == 1

    def test_disk_survives_crash(self, host):
        host.disk.write("movies/T2", b"data")
        host.crash()
        host.boot()
        assert host.disk.read("movies/T2") == b"data"

    def test_find_process(self, host):
        host.spawn("ns")
        assert host.find_process("ns") is not None
        assert host.find_process("absent") is None
        host.find_process("ns").kill()
        assert host.find_process("ns") is None


class TestDisk:
    def test_read_default(self):
        disk = Disk()
        assert disk.read("missing", default=42) == 42

    def test_write_read_delete(self):
        disk = Disk()
        disk.write("k", "v")
        assert "k" in disk
        disk.delete("k")
        assert "k" not in disk

    def test_keys_sorted(self):
        disk = Disk()
        disk.write("b", 1)
        disk.write("a", 2)
        assert disk.keys() == ["a", "b"]
