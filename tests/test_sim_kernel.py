"""Unit tests for the virtual-time kernel primitives."""

import pytest

from repro.sim import (
    CancelledError,
    Event,
    Kernel,
    Queue,
    Semaphore,
    SimTimeoutError,
    gather,
)
from repro.sim.errors import InvalidStateError


@pytest.fixture
def kernel():
    return Kernel()


class TestClock:
    def test_starts_at_zero(self, kernel):
        assert kernel.now == 0.0

    def test_run_advances_to_until(self, kernel):
        kernel.run(until=42.0)
        assert kernel.now == 42.0

    def test_call_later_fires_at_right_time(self, kernel):
        seen = []
        kernel.call_later(5.0, lambda: seen.append(kernel.now))
        kernel.run()
        assert seen == [5.0]

    def test_events_fire_in_time_order(self, kernel):
        seen = []
        kernel.call_later(3.0, lambda: seen.append("c"))
        kernel.call_later(1.0, lambda: seen.append("a"))
        kernel.call_later(2.0, lambda: seen.append("b"))
        kernel.run()
        assert seen == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self, kernel):
        seen = []
        for tag in ("x", "y", "z"):
            kernel.call_later(1.0, seen.append, tag)
        kernel.run()
        assert seen == ["x", "y", "z"]

    def test_cancelled_timer_does_not_fire(self, kernel):
        seen = []
        handle = kernel.call_later(1.0, seen.append, "nope")
        handle.cancel()
        kernel.run()
        assert seen == []

    def test_run_until_stops_before_later_events(self, kernel):
        seen = []
        kernel.call_later(10.0, seen.append, "late")
        kernel.run(until=5.0)
        assert seen == []
        kernel.run(until=15.0)
        assert seen == ["late"]

    def test_call_at_in_past_clamps_to_now(self, kernel):
        kernel.run(until=10.0)
        seen = []
        kernel.call_at(5.0, lambda: seen.append(kernel.now))
        kernel.run()
        assert seen == [10.0]


class TestFastLane:
    """The call_soon deque must interleave with the heap in seq order."""

    def test_soon_and_past_call_at_share_fifo_order(self, kernel):
        kernel.run(until=3.0)
        seen = []
        kernel.call_soon(seen.append, "a")
        kernel.call_at(1.0, seen.append, "b")   # past: clamps to now, FIFO
        kernel.call_soon(seen.append, "c")
        kernel.call_at(3.0, seen.append, "d")   # == now: also the fast lane
        kernel.run()
        assert seen == ["a", "b", "c", "d"]

    def test_soon_before_pending_heap_event_at_same_timestamp(self, kernel):
        seen = []

        def first():
            kernel.call_soon(seen.append, "soon")  # deque, later seq

        kernel.call_at(5.0, first)                 # heap, seq 1
        kernel.call_at(5.0, seen.append, "second")  # heap, seq 2
        kernel.run()
        # "second" (seq 2) precedes "soon" (seq 3): deque must not jump
        # ahead of an equal-timestamp heap entry with an earlier seq.
        assert seen == ["second", "soon"]

    def test_ready_events_respect_until(self, kernel):
        kernel.run(until=10.0)
        seen = []
        kernel.call_soon(seen.append, "now")
        kernel.run(until=4.0)   # until in the past: nothing may fire
        assert seen == []
        assert kernel.now == 10.0
        kernel.run()
        assert seen == ["now"]

    def test_cancelled_soon_callback_does_not_fire(self, kernel):
        seen = []
        handle = kernel.call_soon(seen.append, "nope")
        handle.cancel()
        kernel.call_soon(seen.append, "yes")
        kernel.run()
        assert seen == ["yes"]

    def test_pending_events_counts_ready_lane(self, kernel):
        kernel.call_soon(lambda: None)
        kernel.call_later(5.0, lambda: None)
        cancelled = kernel.call_soon(lambda: None)
        cancelled.cancel()
        assert kernel.pending_events() == 2

    def test_cancel_is_idempotent_and_releases_callback(self, kernel):
        handle = kernel.call_later(5.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.fn is None and handle.args == ()
        kernel.run()

    def test_mass_cancellation_compaction_keeps_order(self, kernel):
        """Cancelling most of the heap triggers in-place compaction; the
        survivors must still fire in exact (when, seq) order."""
        seen = []
        handles = [kernel.call_later(float(i), seen.append, i)
                   for i in range(1, 501)]
        for h in handles:
            if h.args and h.args[0] % 5:
                h.cancel()
        kernel.run()
        assert seen == [i for i in range(1, 501) if not i % 5]

    def test_compaction_during_run_does_not_lose_events(self, kernel):
        """Compaction must mutate the heap in place: the run loop holds a
        reference to the list across callbacks."""
        seen = []
        victims = [kernel.call_later(200.0 + i, seen.append, "victim")
                   for i in range(300)]

        def massacre():
            for h in victims:
                h.cancel()
            kernel.call_later(1.0, seen.append, "after")

        kernel.call_later(1.0, massacre)
        kernel.call_later(50.0, seen.append, "tail")
        kernel.run()
        assert seen == ["after", "tail"]


class TestFuture:
    def test_result_before_done_raises(self, kernel):
        fut = kernel.create_future()
        with pytest.raises(InvalidStateError):
            fut.result()

    def test_set_result(self, kernel):
        fut = kernel.create_future()
        fut.set_result(7)
        assert fut.done() and fut.result() == 7

    def test_double_set_raises(self, kernel):
        fut = kernel.create_future()
        fut.set_result(1)
        with pytest.raises(InvalidStateError):
            fut.set_result(2)

    def test_exception_propagates(self, kernel):
        fut = kernel.create_future()
        fut.set_exception(ValueError("boom"))
        with pytest.raises(ValueError):
            fut.result()

    def test_cancel(self, kernel):
        fut = kernel.create_future()
        assert fut.cancel()
        assert fut.cancelled()
        with pytest.raises(CancelledError):
            fut.result()

    def test_callback_runs_on_completion(self, kernel):
        fut = kernel.create_future()
        seen = []
        fut.add_done_callback(lambda f: seen.append(f.result()))
        fut.set_result("hi")
        kernel.run()
        assert seen == ["hi"]

    def test_callback_added_after_done_still_runs(self, kernel):
        fut = kernel.create_future()
        fut.set_result(3)
        seen = []
        fut.add_done_callback(lambda f: seen.append(f.result()))
        kernel.run()
        assert seen == [3]


class TestTask:
    def test_task_returns_value(self, kernel):
        async def main():
            return 99

        assert kernel.run_until_complete(main()) == 99

    def test_sleep_advances_time(self, kernel):
        async def main():
            await kernel.sleep(2.5)
            return kernel.now

        assert kernel.run_until_complete(main()) == 2.5

    def test_sequential_sleeps_accumulate(self, kernel):
        async def main():
            await kernel.sleep(1.0)
            await kernel.sleep(2.0)
            return kernel.now

        assert kernel.run_until_complete(main()) == 3.0

    def test_exception_in_task_propagates(self, kernel):
        async def main():
            raise RuntimeError("kaboom")

        with pytest.raises(RuntimeError, match="kaboom"):
            kernel.run_until_complete(main())

    def test_cancel_sleeping_task(self, kernel):
        state = {"cleaned": False}

        async def main():
            try:
                await kernel.sleep(100.0)
            except CancelledError:
                state["cleaned"] = True
                raise

        task = kernel.create_task(main())
        kernel.call_later(1.0, task.cancel)
        kernel.run(until=10.0)
        assert task.cancelled()
        assert state["cleaned"]

    def test_task_awaiting_task(self, kernel):
        async def inner():
            await kernel.sleep(1.0)
            return "inner-done"

        async def outer():
            return await kernel.create_task(inner())

        assert kernel.run_until_complete(outer()) == "inner-done"

    def test_cancel_completed_task_is_noop(self, kernel):
        async def main():
            return 1

        task = kernel.create_task(main())
        kernel.run()
        assert not task.cancel()

    def test_wait_for_times_out(self, kernel):
        async def main():
            await kernel.wait_for(kernel.sleep(100.0), timeout=5.0)

        with pytest.raises(SimTimeoutError):
            kernel.run_until_complete(main())
        assert kernel.now == 5.0

    def test_wait_for_completes_in_time(self, kernel):
        async def main():
            return await kernel.wait_for(kernel.sleep(1.0), timeout=5.0)

        kernel.run_until_complete(main())
        assert kernel.now == 1.0

    def test_gather_collects_results(self, kernel):
        async def delayed(v, d):
            await kernel.sleep(d)
            return v

        async def main():
            return await gather(kernel, [delayed("a", 3), delayed("b", 1)])

        assert kernel.run_until_complete(main()) == ["a", "b"]
        assert kernel.now == 3.0

    def test_gather_return_exceptions(self, kernel):
        async def bad():
            raise ValueError("x")

        async def good():
            return 1

        async def main():
            return await gather(kernel, [bad(), good()], return_exceptions=True)

        results = kernel.run_until_complete(main())
        assert isinstance(results[0], ValueError)
        assert results[1] == 1


class TestSyncPrimitives:
    def test_event_wakes_waiters(self, kernel):
        ev = Event(kernel)
        seen = []

        async def waiter(tag):
            await ev.wait()
            seen.append((tag, kernel.now))

        kernel.create_task(waiter("a"))
        kernel.create_task(waiter("b"))
        kernel.call_later(4.0, ev.set)
        kernel.run()
        assert seen == [("a", 4.0), ("b", 4.0)]

    def test_event_already_set(self, kernel):
        ev = Event(kernel)
        ev.set()

        async def main():
            await ev.wait()
            return kernel.now

        assert kernel.run_until_complete(main()) == 0.0

    def test_queue_fifo(self, kernel):
        q = Queue(kernel)

        async def main():
            q.put(1)
            q.put(2)
            return [await q.get(), await q.get()]

        assert kernel.run_until_complete(main()) == [1, 2]

    def test_queue_blocks_until_put(self, kernel):
        q = Queue(kernel)
        kernel.call_later(3.0, q.put, "item")

        async def main():
            item = await q.get()
            return (item, kernel.now)

        assert kernel.run_until_complete(main()) == ("item", 3.0)

    def test_semaphore_limits_concurrency(self, kernel):
        sem = Semaphore(kernel, 2)
        active = {"n": 0, "max": 0}

        async def worker():
            await sem.acquire()
            active["n"] += 1
            active["max"] = max(active["max"], active["n"])
            await kernel.sleep(1.0)
            active["n"] -= 1
            sem.release()

        for _ in range(5):
            kernel.create_task(worker())
        kernel.run()
        assert active["max"] == 2

    def test_semaphore_try_acquire(self, kernel):
        sem = Semaphore(kernel, 1)
        assert sem.try_acquire()
        assert not sem.try_acquire()
        sem.release()
        assert sem.try_acquire()
