"""The indexed TraceLog must be observationally identical to a linear scan.

The index is a pure query accelerator: for every interleaving of emits
and queries, ``select``/``count``/``last`` must return exactly what the
reference O(n) scan (kept as ``TraceLog._select_linear``) returns.
Property-based interleavings are the point -- the index catches up
lazily, so the bugs to guard against live at the emit/query boundaries.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.sim import Kernel
from repro.sim.trace import TraceEvent, TraceLog

CATEGORIES = ["mms", "ras", "ns", "boot"]
EVENTS = ["start", "stop", "poll", "fail"]

op_strategy = st.one_of(
    # emit(category, event, host=...)
    st.tuples(st.just("emit"), st.sampled_from(CATEGORIES),
              st.sampled_from(EVENTS), st.integers(0, 3)),
    # advance the clock so events spread over time
    st.tuples(st.just("tick"), st.floats(0.1, 5.0, allow_nan=False)),
    # query(category?, event?)
    st.tuples(st.just("query"),
              st.one_of(st.none(), st.sampled_from(CATEGORIES)),
              st.one_of(st.none(), st.sampled_from(EVENTS))),
)


class TestIndexEquivalence:
    @given(st.lists(op_strategy, max_size=80))
    @settings(max_examples=80, deadline=None)
    def test_indexed_matches_linear_under_interleaving(self, ops):
        kernel = Kernel()
        trace = TraceLog(kernel)
        for op in ops:
            if op[0] == "emit":
                _, cat, ev, host = op
                trace.emit(cat, ev, host=f"h{host}")
            elif op[0] == "tick":
                kernel.run(until=kernel.now + op[1])
            else:
                _, cat, ev = op
                assert trace.select(cat, ev) == trace._select_linear(cat, ev)
                assert trace.count(cat, ev) == len(trace._select_linear(cat, ev))
                linear = trace._select_linear(cat, ev)
                assert trace.last(cat, ev) == (linear[-1] if linear else None)
        # Final full sweep over every key, including the match-all key.
        for cat in [None] + CATEGORIES:
            for ev in [None] + EVENTS:
                assert trace.select(cat, ev) == trace._select_linear(cat, ev)

    @given(st.lists(op_strategy, max_size=80))
    @settings(max_examples=40, deadline=None)
    def test_field_filters_match_linear(self, ops):
        kernel = Kernel()
        trace = TraceLog(kernel)
        for op in ops:
            if op[0] == "emit":
                _, cat, ev, host = op
                trace.emit(cat, ev, host=f"h{host}")
        for host in ("h0", "h1", "h9"):
            assert (trace.select("mms", None, host=host)
                    == trace._select_linear("mms", None, host=host))


class TestTraceLogBasics:
    def test_select_returns_fresh_lists(self):
        trace = TraceLog(Kernel())
        trace.emit("a", "x")
        first = trace.select("a")
        first.append("junk")
        assert trace.select("a") == trace._select_linear("a")

    def test_events_emitted_after_a_query_are_found(self):
        trace = TraceLog(Kernel())
        trace.emit("a", "x", n=1)
        assert trace.count("a", "x") == 1
        trace.emit("a", "x", n=2)
        trace.emit("b", "y")
        assert trace.count("a", "x") == 2
        assert trace.last("a", "x").fields["n"] == 2
        assert trace.count() == 3

    def test_disabled_log_emits_nothing(self):
        trace = TraceLog(Kernel(), enabled=False)
        trace.emit("a", "x")
        assert len(trace) == 0 and trace.select() == []

    def test_trace_event_equality(self):
        a = TraceEvent(1.0, "c", "e", {"k": 1})
        b = TraceEvent(1.0, "c", "e", {"k": 1})
        c = TraceEvent(1.0, "c", "e", {"k": 2})
        assert a == b and a != c


class TestRingBuffer:
    def test_ring_retains_newest_and_counts_dropped(self):
        kernel = Kernel()
        trace = TraceLog(kernel, max_events=10)
        for i in range(35):
            trace.emit("cat", "ev", seq=i)
        assert len(trace) <= 2 * 10
        assert trace.dropped == 35 - len(trace)
        # The retained window is the newest suffix, still in order.
        seqs = [ev.fields["seq"] for ev in trace]
        assert seqs == list(range(35 - len(trace), 35))

    def test_queries_agree_with_linear_after_trims(self):
        trace = TraceLog(Kernel(), max_events=8)
        for i in range(50):
            trace.emit("cat", "ev" if i % 3 else "other", seq=i)
            if i % 7 == 0:
                assert trace.select("cat", "ev") == \
                    trace._select_linear("cat", "ev")
        assert trace.count("cat", "ev") == len(trace._select_linear("cat", "ev"))

    def test_on_drop_sink_receives_trimmed_block(self):
        archived = []
        trace = TraceLog(Kernel(), max_events=5, on_drop=archived.extend)
        for i in range(12):
            trace.emit("cat", "ev", seq=i)
        assert len(archived) == trace.dropped > 0
        # sink + retained window together reconstruct the full stream
        all_seqs = [ev.fields["seq"] for ev in archived] + \
            [ev.fields["seq"] for ev in trace]
        assert all_seqs == list(range(12))
