"""Tests for the declarative scenario runner."""

import pytest

from repro.cluster import build_full_cluster
from repro.cluster.scenario import Scenario


@pytest.fixture(scope="module")
def cluster():
    return build_full_cluster(n_servers=3, seed=171)


class TestScenarioMechanics:
    def test_steps_fire_in_order_at_offsets(self, cluster):
        fired = []
        report = (Scenario()
                  .at(5.0, "b", lambda c: fired.append(("b", c.now)))
                  .at(2.0, "a", lambda c: fired.append(("a", c.now)))
                  .lasting(10.0)
                  .run(cluster))
        assert [f[0] for f in fired] == ["a", "b"]
        assert report.event_times("a")[0] == pytest.approx(2.0)
        assert report.event_times("b")[0] == pytest.approx(5.0)

    def test_probes_sample_on_schedule(self, cluster):
        report = (Scenario()
                  .observe_every(3.0, "clock", lambda c: round(c.now, 1))
                  .lasting(10.0)
                  .run(cluster))
        samples = report.series("clock")
        assert len(samples) == 4  # t = 0, 3, 6, 9
        offsets = [t for t, _v in samples]
        assert offsets == sorted(offsets)

    def test_step_past_end_rejected(self, cluster):
        scenario = Scenario().at(100.0, "late", lambda c: None).lasting(10.0)
        with pytest.raises(ValueError):
            scenario.run(cluster)

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            Scenario().at(-1.0, "x", lambda c: None)

    def test_bad_probe_interval_rejected(self):
        with pytest.raises(ValueError):
            Scenario().observe_every(0, "x", lambda c: None)


class TestScenarioAgainstCluster:
    def test_fault_script_with_observation(self):
        """The E5-style pattern as a scenario: kill an MDS, watch the
        playback recover through the probe series."""
        cluster = build_full_cluster(n_servers=3, seed=172)
        stk = cluster.add_settop_kernel(1)
        assert cluster.boot_settops([stk])
        cluster.run_async(stk.app_manager.tune(5))
        vod = stk.app_manager.current_app
        cluster.run_async(vod.play("T2"))

        def serving_index(c):
            for i, host in enumerate(c.servers):
                proc = host.find_process("mds")
                if proc is not None and any("pump" in t.name
                                            for t in proc._tasks):
                    return i
            return None

        report = (Scenario()
                  .at(10.0, "kill-mds",
                      lambda c: c.kill_service(serving_index(c), "mds"))
                  .observe_every(2.0, "state",
                                 lambda c: {"playing": vod.playing,
                                            "stalls": len(vod.interruptions)})
                  .lasting(60.0)
                  .run(cluster))
        stalls = [v for _t, v in report.series("state", "stalls")]
        playing = [v for _t, v in report.series("state", "playing")]
        assert stalls[0] == 0 and stalls[-1] >= 1   # a stall was recorded...
        assert playing[-1] is True                  # ...and playback recovered
        kill_t = report.event_times("kill-mds")[0]
        assert kill_t == pytest.approx(10.0)
