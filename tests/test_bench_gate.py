"""The bench regression gate (ISSUE 10): ``repro bench --check``.

Pure-function coverage of the comparator -- no benchmark actually runs
here.  The gate's contract: gated throughputs may drift down by the
tolerance, anything worse fails, missing baselines (fresh machine, new
metric) gate nothing, and improvements never complain.
"""

import json
from pathlib import Path

from repro.bench import (GATED_METRICS, REGRESSION_TOLERANCE,
                         compare_to_baseline, load_baseline)


def _results(**throughputs):
    benchmarks = {}
    for name, value in throughputs.items():
        benchmarks[name] = {GATED_METRICS[name]: value}
    return {"benchmarks": benchmarks}


BASE = _results(kernel_timers=100_000, network_send=50_000,
                trace_emit=200_000)


class TestCompareToBaseline:
    def test_healthy_run_passes(self):
        assert compare_to_baseline(BASE, BASE) == []

    def test_improvement_passes(self):
        fast = _results(kernel_timers=300_000, network_send=150_000,
                        trace_emit=600_000)
        assert compare_to_baseline(fast, BASE) == []

    def test_drift_within_tolerance_passes(self):
        shave = 1.0 - REGRESSION_TOLERANCE + 0.01
        ok = _results(kernel_timers=int(100_000 * shave),
                      network_send=int(50_000 * shave),
                      trace_emit=int(200_000 * shave))
        assert compare_to_baseline(ok, BASE) == []

    def test_regression_past_tolerance_fails_that_metric(self):
        bad = _results(kernel_timers=int(100_000 * 0.5),
                       network_send=50_000, trace_emit=200_000)
        failures = compare_to_baseline(bad, BASE)
        assert len(failures) == 1
        assert failures[0].startswith("kernel_timers.events_per_sec")

    def test_every_gated_metric_is_checked(self):
        bad = _results(kernel_timers=1, network_send=1, trace_emit=1)
        assert len(compare_to_baseline(bad, BASE)) == len(GATED_METRICS)

    def test_missing_baseline_gates_nothing(self):
        assert compare_to_baseline(BASE, None) == []
        assert compare_to_baseline(BASE, {}) == []

    def test_new_metric_without_baseline_entry_is_skipped(self):
        old = {"benchmarks": {"kernel_timers":
                              {"events_per_sec": 100_000}}}
        assert compare_to_baseline(BASE, old) == []


class TestLoadBaseline:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "BENCH_micro.json"
        path.write_text(json.dumps(BASE))
        assert load_baseline(str(path)) == BASE

    def test_absent_file_is_none(self, tmp_path):
        assert load_baseline(str(tmp_path / "missing.json")) is None

    def test_garbled_file_is_none(self, tmp_path):
        path = tmp_path / "BENCH_micro.json"
        path.write_text("{not json")
        assert load_baseline(str(path)) is None
        path.write_text('["a", "list"]')
        assert load_baseline(str(path)) is None

    def test_committed_baseline_has_every_gated_metric(self):
        committed = (Path(__file__).resolve().parent.parent
                     / "BENCH_micro.json")
        baseline = load_baseline(str(committed))
        assert baseline is not None
        for name, key in GATED_METRICS.items():
            assert baseline["benchmarks"][name][key] > 0
