"""Golden traces: the kernel fast-path must not move a single event.

The PR that introduced the ``call_soon`` FIFO lane, slotted
futures/messages, indexed traces and batched network accounting recorded
these digests from the *pre-change* scheduler.  Any optimisation that
reorders even one event (or changes one emitted field) changes the
digest -- which is exactly the regression this file exists to catch.
Same-seed double runs (tests/test_determinism.py) prove a run agrees
with itself; these goldens prove it agrees with history.
"""

import hashlib

from repro.analysis.determinism import reference_scenario_trace

# sha256 of "\n".join(trace lines) for the reference failover scenario.
# Re-recorded for PR 4 (overload robustness): every OCS call envelope
# now carries an 8-byte absolute deadline (DEADLINE_BYTES changes wire
# sizes and therefore transmission timestamps), gated services push
# periodic load reports to RAS and the NS replicas (new messages on the
# wire), and rebind/backoff sleeps are clamped to the caller's
# remaining budget (moving retry timestamps), and viewer-facing app
# calls carry an 8 s interactive deadline so overloaded apps degrade
# instead of retrying for a minute.  All are deliberate behaviour
# changes, not scheduler regressions.  These digests pin the new event
# order against drift.
#
# Re-recorded for PR 5 (population scale): the SSC now owns the load
# reporting loop -- it coalesces every local gate's gauges and pushes
# ONE reportLoadBatch per target per load_report_interval, emitting an
# ``ssc load_report`` trace event per push.  The diff against the PR 4
# goldens is exactly +75 ``ssc.load_report`` lines per scenario (all
# other event kinds and counts unchanged; timestamps shift with the
# new wire traffic).  Deliberate message-count change, not drift.
#
# Re-recorded for PR 7 (incremental log-shipping replication).  Event-
# kind diff against the PR 5/6 goldens, per scenario: all three
# ``ns.state_fetched`` full-snapshot lines become O(gap) ``ns.catch_up``
# lines, the reboot leg adds one ``ns.restored`` (the NS replica
# resumes from its on-disk change log) and 2-3 ``db.catch_up`` lines
# (db replicas stream the missed tail / anti-entropy poll).  Net +3
# lines (seed 3) / +4 (seed 7); wire sizes of the replication messages
# and the ``repl_lag`` field in SSC load reports shift the timestamps.
# Backups also now probe the current binding on every AlreadyBound bind
# retry (stale-binding reclaim, DESIGN.md section 13.4) -- one extra
# resolve per backup per retry cycle moves timestamps without changing
# any event count.  Deliberate protocol change, not drift.
#
# Re-recorded for PR 9 (at-most-once RPC).  Every call envelope now
# carries a 16-byte request id and 4-byte payload checksum
# (REQUEST_ID_BYTES + CHECKSUM_BYTES), so every transmission timestamp
# shifts.  Seed 3 keeps the exact same event-kind counts (361 lines);
# seed 7 fits one fewer VOD open/close cycle in the 60 s window under
# the shifted timings (-1 each of mds.movie_opened/movie_closed,
# mms.opened/closed/superseded, cmgr.allocated/deallocated: -7 lines).
# Deliberate wire-format change, not drift.
GOLDEN = {
    # (seed, settops, duration): (n_lines, sha256)
    (3, 2, 60.0): (
        361,
        "6b46b5eab62e27b7cc7a655efa958dd4159548cc910367f702dac0a9af0deb72"),
    (7, 2, 60.0): (
        377,
        "b7049ff8542350a4f3d1d746c72ce1f7d70c5b42984656796300438eb30041be"),
}


class TestGoldenTraces:
    def test_reference_scenario_matches_prechange_digests(self):
        for (seed, settops, duration), (n_lines, digest) in GOLDEN.items():
            lines = reference_scenario_trace(seed, settops=settops,
                                             duration=duration)
            assert len(lines) == n_lines, (
                f"seed {seed}: trace length {len(lines)} != golden {n_lines}")
            got = hashlib.sha256("\n".join(lines).encode()).hexdigest()
            assert got == digest, (
                f"seed {seed}: trace digest drifted from the pre-fast-path "
                f"golden; an optimisation reordered or altered events")
