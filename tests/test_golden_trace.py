"""Golden traces: the kernel fast-path must not move a single event.

The PR that introduced the ``call_soon`` FIFO lane, slotted
futures/messages, indexed traces and batched network accounting recorded
these digests from the *pre-change* scheduler.  Any optimisation that
reorders even one event (or changes one emitted field) changes the
digest -- which is exactly the regression this file exists to catch.
Same-seed double runs (tests/test_determinism.py) prove a run agrees
with itself; these goldens prove it agrees with history.
"""

import hashlib

from repro.analysis.determinism import reference_scenario_trace

# sha256 of "\n".join(trace lines) for the reference failover scenario.
# Re-recorded for PR 4 (overload robustness): every OCS call envelope
# now carries an 8-byte absolute deadline (DEADLINE_BYTES changes wire
# sizes and therefore transmission timestamps), gated services push
# periodic load reports to RAS and the NS replicas (new messages on the
# wire), and rebind/backoff sleeps are clamped to the caller's
# remaining budget (moving retry timestamps), and viewer-facing app
# calls carry an 8 s interactive deadline so overloaded apps degrade
# instead of retrying for a minute.  All are deliberate behaviour
# changes, not scheduler regressions.  These digests pin the new event
# order against drift.
GOLDEN = {
    # (seed, settops, duration): (n_lines, sha256)
    (3, 2, 60.0): (
        283,
        "c13e4d8481cf47906fd8ba257d22d8b701658f8baca550d52c70345bacc86b2a"),
    (7, 2, 60.0): (
        305,
        "d1c3d249c4dfba868a9e1f48d0b17302ce326c75cc4639dd5ac77c11963241e5"),
}


class TestGoldenTraces:
    def test_reference_scenario_matches_prechange_digests(self):
        for (seed, settops, duration), (n_lines, digest) in GOLDEN.items():
            lines = reference_scenario_trace(seed, settops=settops,
                                             duration=duration)
            assert len(lines) == n_lines, (
                f"seed {seed}: trace length {len(lines)} != golden {n_lines}")
            got = hashlib.sha256("\n".join(lines).encode()).hexdigest()
            assert got == digest, (
                f"seed {seed}: trace digest drifted from the pre-fast-path "
                f"golden; an optimisation reordered or altered events")
