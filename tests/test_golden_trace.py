"""Golden traces: the kernel fast-path must not move a single event.

The PR that introduced the ``call_soon`` FIFO lane, slotted
futures/messages, indexed traces and batched network accounting recorded
these digests from the *pre-change* scheduler.  Any optimisation that
reorders even one event (or changes one emitted field) changes the
digest -- which is exactly the regression this file exists to catch.
Same-seed double runs (tests/test_determinism.py) prove a run agrees
with itself; these goldens prove it agrees with history.
"""

import hashlib

from repro.analysis.determinism import reference_scenario_trace

# sha256 of "\n".join(trace lines) for the reference failover scenario,
# captured before the hot-path pass (PR 2) touched the kernel.
GOLDEN = {
    # (seed, settops, duration): (n_lines, sha256)
    (3, 2, 60.0): (
        280,
        "471133cd319028b4c60ce8f71e40e048509c136812a388cd50b316b3827276f5"),
    (7, 2, 60.0): (
        293,
        "35965a79b3a04ce3e3a50031d45febb12074822f08f70080efa45d2a08f62662"),
}


class TestGoldenTraces:
    def test_reference_scenario_matches_prechange_digests(self):
        for (seed, settops, duration), (n_lines, digest) in GOLDEN.items():
            lines = reference_scenario_trace(seed, settops=settops,
                                             duration=duration)
            assert len(lines) == n_lines, (
                f"seed {seed}: trace length {len(lines)} != golden {n_lines}")
            got = hashlib.sha256("\n".join(lines).encode()).hexdigest()
            assert got == digest, (
                f"seed {seed}: trace digest drifted from the pre-fast-path "
                f"golden; an optimisation reordered or altered events")
