"""Golden traces: the kernel fast-path must not move a single event.

The PR that introduced the ``call_soon`` FIFO lane, slotted
futures/messages, indexed traces and batched network accounting recorded
these digests from the *pre-change* scheduler.  Any optimisation that
reorders even one event (or changes one emitted field) changes the
digest -- which is exactly the regression this file exists to catch.
Same-seed double runs (tests/test_determinism.py) prove a run agrees
with itself; these goldens prove it agrees with history.
"""

import hashlib

from repro.analysis.determinism import reference_scenario_trace

# sha256 of "\n".join(trace lines) for the reference failover scenario.
# Re-recorded for PR 3: the shared jittered-exponential backoff replaced
# the fixed sleep(1.0) retry loops (moving retry timestamps),
# ``Cluster.settle`` now waits for every base service's bindings (not
# just RAS) before declaring the cluster up, and NS replicas force a
# state fetch when they adopt a new master (split-brain hardening found
# by the chaos sweep -- adds a boot-time state_fetched event per slave).
# All are behaviour changes, not scheduler regressions; the PR 2 kernel
# fast path itself is unchanged.  These digests pin the new event order
# against drift.
GOLDEN = {
    # (seed, settops, duration): (n_lines, sha256)
    (3, 2, 60.0): (
        282,
        "6c4f2f73432ce938645937e131a739df203683e1ad43ca681bf575550281fde8"),
    (7, 2, 60.0): (
        305,
        "c6d84cefd1183eafcc756391816e63a99784eaa82607fc16be2c9622740ea069"),
}


class TestGoldenTraces:
    def test_reference_scenario_matches_prechange_digests(self):
        for (seed, settops, duration), (n_lines, digest) in GOLDEN.items():
            lines = reference_scenario_trace(seed, settops=settops,
                                             duration=duration)
            assert len(lines) == n_lines, (
                f"seed {seed}: trace length {len(lines)} != golden {n_lines}")
            got = hashlib.sha256("\n".join(lines).encode()).hexdigest()
            assert got == digest, (
                f"seed {seed}: trace digest drifted from the pre-fast-path "
                f"golden; an optimisation reordered or altered events")
