"""Unit-level tests for the rebinding proxy and the primary/backup binder."""

import pytest

from repro.cluster import build_cluster
from repro.core.control.ssc import ssc_ref
from repro.core.rebind import RebindError, RebindingProxy
from repro.core.params import Params

from tests.helpers import PBPingService, PingService


def cluster_with_ping(seed=161, **params_kw):
    cluster = build_cluster(n_servers=3, seed=seed,
                            params=Params(**params_kw) if params_kw else None)
    cluster.registry.register("ping", PingService)
    cluster.registry.register("pbping", PBPingService)
    return cluster


def start_service(cluster, index, name):
    client = cluster.client_on(cluster.servers[0], name="admin")
    cluster.run_async(client.runtime.invoke(
        ssc_ref(cluster.servers[index].ip), "startService", (name,)))
    return client


class TestRebindingProxy:
    def test_first_call_resolves_then_caches(self):
        cluster = cluster_with_ping()
        start_service(cluster, 0, "ping")
        target = f"svc/ping/{cluster.servers[0].ip}"
        assert cluster.settle(extra_names=[target])
        client = cluster.client_on(cluster.servers[1], name="c")
        proxy = RebindingProxy(client.runtime, client.names, target,
                               cluster.params)
        assert proxy.ref is None
        cluster.run_async(proxy.ping())
        assert proxy.ref is not None
        assert proxy.resolve_calls == 1
        for _ in range(5):
            cluster.run_async(proxy.ping())
        # Section 3.4.2: the reference is cached after the first resolve.
        assert proxy.resolve_calls == 1

    def test_invalidate_forces_re_resolve(self):
        cluster = cluster_with_ping(seed=162)
        start_service(cluster, 0, "ping")
        target = f"svc/ping/{cluster.servers[0].ip}"
        assert cluster.settle(extra_names=[target])
        client = cluster.client_on(cluster.servers[1], name="c")
        proxy = RebindingProxy(client.runtime, client.names, target,
                               cluster.params)
        cluster.run_async(proxy.ping())
        proxy.invalidate()
        assert proxy.ref is None
        cluster.run_async(proxy.ping())
        assert proxy.resolve_calls == 2

    def test_waits_out_unbound_name(self):
        """A proxy created before the service exists succeeds once the
        service binds (start-up ordering tolerance)."""
        cluster = cluster_with_ping(seed=163)
        target = f"svc/ping/{cluster.servers[0].ip}"
        client = cluster.client_on(cluster.servers[1], name="c")
        proxy = RebindingProxy(client.runtime, client.names, target,
                               cluster.params, give_up_after=60.0)
        start_service(cluster, 0, "ping")
        result = cluster.run_async(proxy.ping())
        assert result == "pong"

    def test_give_up_raises_rebind_error(self):
        cluster = cluster_with_ping(seed=164)
        client = cluster.client_on(cluster.servers[1], name="c")
        proxy = RebindingProxy(client.runtime, client.names, "svc/never",
                               cluster.params, give_up_after=5.0)
        with pytest.raises(RebindError):
            cluster.run_async(proxy.ping())
        # Give-up is prompt: roughly the configured budget, not unbounded.
        assert cluster.now <= 20.0


class TestBinderDemotion:
    def test_operator_unbind_demotes_primary(self):
        """If the primary's binding is removed while it lives (operator
        move or spurious audit), it demotes and rejoins the race."""
        cluster = cluster_with_ping(seed=165)
        start_service(cluster, 0, "pbping")
        start_service(cluster, 1, "pbping")
        assert cluster.settle(extra_names=["svc/pbping"])
        # Find the primary's service object.
        binders = []
        for host in cluster.servers[:2]:
            proc = host.find_process("pbping")
            runtime = proc.attachments["ocs"]
            binders.append(runtime)
        client = cluster.client_on(cluster.servers[2], name="op")
        old = cluster.run_async(client.names.resolve("svc/pbping"))
        # Operator removes the binding out from under the primary.
        cluster.run_async(client.names.unbind("svc/pbping"))
        cluster.run_for(3 * cluster.params.backup_bind_retry)
        new = cluster.run_async(client.names.resolve("svc/pbping"))
        # Someone owns the name again (possibly the other replica), and
        # exactly one replica believes it is primary.
        assert new is not None
        demotions = cluster.trace.select("pbping", "demoted")
        promotions = cluster.trace.select("pbping", "promoted")
        assert len(promotions) >= 2  # initial + post-unbind winner
        assert len(demotions) >= 1 or new != old


class TestLossyPlant:
    def test_rpc_traffic_survives_plant_noise(self):
        """Calls under 20% inbound loss at the client still complete via
        timeouts + retries (the rebinding proxy's normal machinery)."""
        from repro.sim.rand import SeededRandom
        cluster = cluster_with_ping(seed=271)
        start_service(cluster, 0, "ping")
        target = f"svc/ping/{cluster.servers[0].ip}"
        assert cluster.settle(extra_names=[target])
        settop = cluster.add_settop(1)
        from repro.ocs import OCSRuntime
        from repro.core.naming.client import NameClient
        proc = settop.spawn("noisy-client")
        runtime = OCSRuntime(proc, cluster.net)
        names = NameClient(runtime, cluster.server_ips, cluster.params)
        proxy = RebindingProxy(runtime, names, target, cluster.params,
                               give_up_after=120.0)
        cluster.net.set_loss(settop.ip, 0.2, SeededRandom(9))
        completed = 0
        for _ in range(20):
            assert cluster.run_async(proxy.ping()) == "pong"
            completed += 1
        assert completed == 20
        assert cluster.net.messages_lost > 0
