"""Detailed tests for the Resource Audit Service (section 7.2)."""

import pytest

from repro.cluster import build_cluster
from repro.core.ras.client import AuditClient
from repro.ocs import ObjectRef

from tests.helpers import PingService


def make_cluster(seed=91):
    cluster = build_cluster(n_servers=3, seed=seed)
    cluster.registry.register("ping", PingService)
    return cluster


def local_ras_call(cluster, client, entities):
    async def call():
        ras = await client.names.resolve("svc/ras")
        return await client.runtime.invoke(ras, "checkStatus", (entities,))

    return cluster.run_async(call())


def ping_ref(cluster, client, index=0):
    async def get():
        return await client.names.resolve(
            f"svc/ping/{cluster.servers[index].ip}")

    return cluster.run_async(get())


def start_ping(cluster, client, index=0):
    from repro.core.control.ssc import ssc_ref
    cluster.run_async(client.runtime.invoke(
        ssc_ref(cluster.servers[index].ip), "startService", ("ping",)))
    assert cluster.settle(
        extra_names=[f"svc/ping/{cluster.servers[index].ip}"])


class TestStatusSources:
    def test_local_object_alive(self):
        cluster = make_cluster()
        client = cluster.client_on(cluster.servers[0], name="c")
        start_ping(cluster, client, 0)
        ref = ping_ref(cluster, client, 0)
        assert local_ras_call(cluster, client, [ref]) == ["alive"]

    def test_local_object_dead_after_kill(self):
        cluster = make_cluster(seed=92)
        client = cluster.client_on(cluster.servers[0], name="c")
        start_ping(cluster, client, 0)
        ref = ping_ref(cluster, client, 0)
        proc = cluster.find_service(0, "ping")
        proc.kill()
        cluster.run_for(1.0)  # SSC callback propagates
        assert local_ras_call(cluster, client, [ref]) == ["dead"]

    def test_stale_incarnation_is_dead(self):
        """A restarted service's old refs audit as dead (section 3.2.1)."""
        cluster = make_cluster(seed=93)
        client = cluster.client_on(cluster.servers[0], name="c")
        start_ping(cluster, client, 0)
        old_ref = ping_ref(cluster, client, 0)
        cluster.kill_service(0, "ping")
        cluster.run_for(25.0)  # SSC restarts; new incarnation binds
        new_ref = ping_ref(cluster, client, 0)
        assert new_ref != old_ref
        statuses = local_ras_call(cluster, client, [old_ref, new_ref])
        assert statuses == ["dead", "alive"]

    def test_remote_object_unknown_then_resolved(self):
        """Remote entities start unknown and converge via peer polls."""
        cluster = make_cluster(seed=94)
        client = cluster.client_on(cluster.servers[0], name="c")
        start_ping(cluster, client, 1)   # runs on server 1
        ref = ping_ref(cluster, client, 1)
        first = local_ras_call(cluster, client, [ref])   # asked of RAS(0)
        assert first == ["unknown"]
        cluster.run_for(2 * cluster.params.ras_peer_poll + 2.0)
        assert local_ras_call(cluster, client, [ref]) == ["alive"]

    def test_remote_server_crash_marks_dead(self):
        cluster = make_cluster(seed=95)
        client = cluster.client_on(cluster.servers[0], name="c")
        start_ping(cluster, client, 1)
        ref = ping_ref(cluster, client, 1)
        local_ras_call(cluster, client, [ref])     # start watching
        cluster.run_for(2 * cluster.params.ras_peer_poll + 2.0)
        cluster.crash_server(1)
        cluster.run_for(cluster.params.ras_peer_poll
                        + cluster.params.ras_call_timeout + 3.0)
        assert local_ras_call(cluster, client, [ref]) == ["dead"]

    def test_never_seen_settop_unknown(self):
        cluster = make_cluster(seed=96)
        client = cluster.client_on(cluster.servers[0], name="c")
        assert local_ras_call(cluster, client, ["10.0.1.99"]) == ["unknown"]


class TestStatelessRecovery:
    def test_ras_restart_rebuilds_from_questions(self):
        """Section 7.2: 'After failure it can recover state automatically
        as clients ask it questions.'"""
        cluster = make_cluster(seed=97)
        client = cluster.client_on(cluster.servers[0], name="c")
        start_ping(cluster, client, 0)
        ref = ping_ref(cluster, client, 0)
        assert local_ras_call(cluster, client, [ref]) == ["alive"]
        cluster.kill_service(0, "ras")
        cluster.run_for(10.0)  # SSC restarts the RAS; it knows nothing yet
        # First question after restart re-seeds the state; the local SSC
        # callback gives an immediate answer for local objects.
        assert local_ras_call(cluster, client, [ref]) == ["alive"]

    def test_answers_do_not_block(self):
        """'Any call to the RAS returns immediately' -- even about an
        unreachable remote server, the answer is the cached one."""
        cluster = make_cluster(seed=98)
        client = cluster.client_on(cluster.servers[0], name="c")
        start_ping(cluster, client, 1)
        ref = ping_ref(cluster, client, 1)
        cluster.crash_server(1)
        t0 = cluster.now
        local_ras_call(cluster, client, [ref])
        # The call completed without waiting out any peer-poll timeout.
        assert cluster.now - t0 < 1.0


class TestAuditClientLibrary:
    def test_callback_fires_once_on_death(self):
        cluster = make_cluster(seed=99)
        client = cluster.client_on(cluster.servers[0], name="watcher")
        start_ping(cluster, client, 0)
        ref = ping_ref(cluster, client, 0)
        audit = AuditClient(client.runtime, client.names, cluster.params)
        deaths = []
        audit.watch(ref, deaths.append)
        audit.start(client.process)
        cluster.run_for(cluster.params.ras_client_poll + 2.0)
        assert deaths == []
        proc = cluster.find_service(0, "ping")
        proc.kill()
        cluster.run_for(2 * cluster.params.ras_client_poll + 2.0)
        assert deaths == [ref]
        assert not audit.watching(ref)
        # No duplicate callbacks on later polls.
        cluster.run_for(2 * cluster.params.ras_client_poll)
        assert len(deaths) == 1

    def test_unwatch_stops_callbacks(self):
        cluster = make_cluster(seed=100)
        client = cluster.client_on(cluster.servers[0], name="watcher")
        start_ping(cluster, client, 0)
        ref = ping_ref(cluster, client, 0)
        audit = AuditClient(client.runtime, client.names, cluster.params)
        deaths = []
        audit.watch(ref, deaths.append)
        audit.start(client.process)
        audit.unwatch(ref)
        cluster.find_service(0, "ping").kill()
        cluster.run_for(3 * cluster.params.ras_client_poll)
        assert deaths == []
