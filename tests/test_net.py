"""Unit tests for the network substrate: links, addressing, delivery."""

import pytest

from repro.net import (
    Link,
    Message,
    Network,
    ReservationError,
    neighborhood_of,
    server_ip,
    settop_ip,
)
from repro.net.address import is_server_ip, is_settop_ip
from repro.sim import Host, Kernel


@pytest.fixture
def kernel():
    return Kernel()


@pytest.fixture
def net(kernel):
    return Network(kernel)


def make_server(kernel, net, index):
    host = Host(kernel, f"server-{index}")
    net.attach(host, server_ip(index))
    return host


def make_settop(kernel, net, neighborhood, unit):
    host = Host(kernel, f"settop-{neighborhood}-{unit}", kind="settop")
    net.attach(host, settop_ip(neighborhood, unit))
    return host


class TestAddressing:
    def test_server_ip_format(self):
        assert server_ip(0) == "192.26.65.1"
        assert server_ip(1) == "192.26.65.2"

    def test_settop_ip_encodes_neighborhood(self):
        ip = settop_ip(3, 7)
        assert neighborhood_of(ip) == 3

    def test_neighborhood_of_server_raises(self):
        with pytest.raises(ValueError):
            neighborhood_of(server_ip(0))

    def test_is_server_is_settop(self):
        assert is_server_ip(server_ip(0))
        assert not is_server_ip(settop_ip(0, 0))
        assert is_settop_ip(settop_ip(0, 0))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            server_ip(500)
        with pytest.raises(ValueError):
            settop_ip(300, 0)


class TestLink:
    def test_serialization_time(self, kernel):
        link = Link(kernel, rate_bps=8_000_000)  # 1 MByte/s
        assert link.serialization_time(1_000_000) == pytest.approx(1.0)

    def test_back_to_back_messages_queue(self, kernel):
        link = Link(kernel, rate_bps=8_000, latency=0.0)
        first = link.occupy(1_000)   # 1 second of serialization
        second = link.occupy(1_000)  # queues behind the first
        assert first == pytest.approx(1.0)
        assert second == pytest.approx(2.0)

    def test_latency_added(self, kernel):
        link = Link(kernel, rate_bps=8_000_000, latency=0.25)
        assert link.occupy(1_000) == pytest.approx(0.001 + 0.25)

    def test_reservation_admission_control(self, kernel):
        link = Link(kernel, rate_bps=6_000_000)
        link.reserve("movie-1", 4_000_000)
        with pytest.raises(ReservationError):
            link.reserve("movie-2", 4_000_000)
        link.release("movie-1")
        link.reserve("movie-2", 4_000_000)

    def test_duplicate_reservation_key_rejected(self, kernel):
        link = Link(kernel, rate_bps=6_000_000)
        link.reserve("m", 1_000_000)
        with pytest.raises(ReservationError):
            link.reserve("m", 1_000_000)

    def test_release_unknown_key(self, kernel):
        link = Link(kernel, rate_bps=1_000)
        assert not link.release("ghost")

    def test_reservations_slow_datagrams(self, kernel):
        link = Link(kernel, rate_bps=8_000_000, latency=0.0)
        base = link.serialization_time(1_000_000)
        link.reserve("movie", 4_000_000)
        assert link.serialization_time(1_000_000) == pytest.approx(base * 2)


class TestDelivery:
    def test_message_delivered_to_bound_port(self, kernel, net):
        a = make_server(kernel, net, 0)
        b = make_server(kernel, net, 1)
        received = []
        net.bind_port(b.ip, 7000, received.append)
        net.send(Message(src=(a.ip, 1), dst=(b.ip, 7000), kind="test",
                         payload="hello", payload_bytes=100))
        kernel.run()
        assert len(received) == 1
        assert received[0].payload == "hello"

    def test_unbound_port_triggers_unreachable(self, kernel, net):
        a = make_server(kernel, net, 0)
        b = make_server(kernel, net, 1)
        received = []
        net.bind_port(a.ip, 1, received.append)
        net.send(Message(src=(a.ip, 1), dst=(b.ip, 9999), kind="test"))
        kernel.run()
        assert len(received) == 1
        assert received[0].kind == "port_unreachable"

    def test_down_host_drops_silently(self, kernel, net):
        a = make_server(kernel, net, 0)
        b = make_server(kernel, net, 1)
        received = []
        net.bind_port(a.ip, 1, received.append)
        b.crash()
        net.send(Message(src=(a.ip, 1), dst=(b.ip, 7000), kind="test"))
        kernel.run()
        assert received == []
        assert net.messages_dropped == 1

    def test_host_dying_in_flight_drops(self, kernel, net):
        a = make_server(kernel, net, 0)
        b = make_settop(kernel, net, 0, 0)
        received = []
        net.bind_port(b.ip, 7000, received.append)
        # Large payload so the message is still in flight when b crashes.
        net.send(Message(src=(a.ip, 1), dst=(b.ip, 7000), kind="big",
                         payload_bytes=600_000))
        kernel.call_later(0.01, b.crash)
        kernel.run()
        assert received == []

    def test_partition_blocks_both_directions(self, kernel, net):
        a = make_server(kernel, net, 0)
        b = make_server(kernel, net, 1)
        got_a, got_b = [], []
        net.bind_port(a.ip, 1, got_a.append)
        net.bind_port(b.ip, 1, got_b.append)
        net.partition({a.ip}, {b.ip})
        net.send(Message(src=(a.ip, 1), dst=(b.ip, 1), kind="x"))
        net.send(Message(src=(b.ip, 1), dst=(a.ip, 1), kind="x"))
        kernel.run()
        assert got_a == [] and got_b == []
        net.heal_partitions()
        net.send(Message(src=(a.ip, 1), dst=(b.ip, 1), kind="x"))
        kernel.run()
        assert len(got_b) == 1

    def test_settop_download_takes_bandwidth_time(self, kernel, net):
        server = make_server(kernel, net, 0)
        settop = make_settop(kernel, net, 0, 0)
        arrival = []
        net.bind_port(settop.ip, 7000, lambda m: arrival.append(kernel.now))
        # 1.5 MByte at 6 Mbit/s -> ~2 seconds on the settop downlink, plus
        # the store-and-forward hop across the server's FDDI interface.
        net.send(Message(src=(server.ip, 1), dst=(settop.ip, 7000),
                         kind="download", payload_bytes=1_500_000))
        kernel.run()
        assert arrival[0] == pytest.approx(2.0, rel=0.1)

    def test_settop_uplink_is_slow(self, kernel, net):
        server = make_server(kernel, net, 0)
        settop = make_settop(kernel, net, 0, 0)
        arrival = []
        net.bind_port(server.ip, 7000, lambda m: arrival.append(kernel.now))
        # 50 kbit/s uplink: 6250 bytes take 1 second.
        net.send(Message(src=(settop.ip, 1), dst=(server.ip, 7000),
                         kind="upload", payload_bytes=6250 - 256))
        kernel.run()
        assert arrival[0] == pytest.approx(1.0, rel=0.02)

    def test_kind_counters(self, kernel, net):
        a = make_server(kernel, net, 0)
        b = make_server(kernel, net, 1)
        net.bind_port(b.ip, 1, lambda m: None)
        for _ in range(3):
            net.send(Message(src=(a.ip, 1), dst=(b.ip, 1), kind="ras.poll"))
        net.send(Message(src=(a.ip, 1), dst=(b.ip, 1), kind="rpc.call"))
        kernel.run()
        assert net.sent_by_kind["ras.poll"] == 3
        assert net.count_kind("ras.") == 3

    def test_duplicate_attach_rejected(self, kernel, net):
        make_server(kernel, net, 0)
        other = Host(kernel, "dup")
        with pytest.raises(ValueError):
            net.attach(other, server_ip(0))

    def test_loopback_is_fast(self, kernel, net):
        a = make_server(kernel, net, 0)
        arrival = []
        net.bind_port(a.ip, 5, lambda m: arrival.append(kernel.now))
        net.send(Message(src=(a.ip, 1), dst=(a.ip, 5), kind="local",
                         payload_bytes=10_000_000))
        kernel.run()
        assert arrival[0] < 0.001


class TestLossInjection:
    def test_loss_drops_fraction(self, kernel, net):
        from repro.sim.rand import SeededRandom
        a = make_server(kernel, net, 0)
        b = make_server(kernel, net, 1)
        received = []
        net.bind_port(b.ip, 1, received.append)
        net.set_loss(b.ip, 0.5, SeededRandom(3))
        for _ in range(200):
            net.send(Message(src=(a.ip, 1), dst=(b.ip, 1), kind="x"))
        kernel.run()
        assert 60 <= len(received) <= 140
        assert net.messages_lost == 200 - len(received)

    def test_clear_loss_restores_delivery(self, kernel, net):
        from repro.sim.rand import SeededRandom
        a = make_server(kernel, net, 0)
        b = make_server(kernel, net, 1)
        received = []
        net.bind_port(b.ip, 1, received.append)
        net.set_loss(b.ip, 1.0, SeededRandom(3))
        net.send(Message(src=(a.ip, 1), dst=(b.ip, 1), kind="x"))
        kernel.run()
        assert received == []
        net.clear_loss()
        net.send(Message(src=(a.ip, 1), dst=(b.ip, 1), kind="x"))
        kernel.run()
        assert len(received) == 1

    def test_bad_probability_rejected(self, kernel, net):
        make_server(kernel, net, 0)
        with pytest.raises(ValueError):
            net.set_loss(server_ip(0), 1.5, None)


class TestFaultParity:
    """broadcast()/send_reserved() must see faults exactly like send().

    Partition drops, unknown-destination drops, and plant-noise loss are
    accounted on the shared counters regardless of which delivery path
    carried the datagram -- the chaos monitors depend on that parity.
    """

    def test_broadcast_counts_partitioned_receivers_as_drops(self, kernel, net):
        server = make_server(kernel, net, 0)
        near = make_settop(kernel, net, 0, 0)
        far = make_settop(kernel, net, 0, 1)
        got_near, got_far = [], []
        net.bind_port(near.ip, 7000, got_near.append)
        net.bind_port(far.ip, 7000, got_far.append)
        net.partition({server.ip}, {far.ip})
        reached = net.broadcast(server.ip, [near.ip, far.ip], 7000,
                                "boot.announce", payload=None)
        kernel.run()
        assert reached == 1
        assert len(got_near) == 1 and got_far == []
        assert net.messages_dropped == 1
        assert net.sent_by_kind["boot.announce"] == 2  # both counted as sent

    def test_broadcast_counts_unknown_receiver_as_drop(self, kernel, net):
        server = make_server(kernel, net, 0)
        settop = make_settop(kernel, net, 0, 0)
        got = []
        net.bind_port(settop.ip, 7000, got.append)
        reached = net.broadcast(server.ip, [settop.ip, settop_ip(0, 9)],
                                7000, "boot.announce", payload=None)
        kernel.run()
        assert reached == 1 and len(got) == 1
        assert net.messages_dropped == 1

    def test_broadcast_subject_to_loss_like_send(self, kernel, net):
        from repro.sim.rand import SeededRandom
        server = make_server(kernel, net, 0)
        settop = make_settop(kernel, net, 0, 0)
        got = []
        net.bind_port(settop.ip, 7000, got.append)
        net.set_loss(settop.ip, 1.0, SeededRandom(3))
        assert net.broadcast(server.ip, [settop.ip], 7000,
                             "boot.announce", payload=None) == 1
        kernel.run()
        assert got == [] and net.messages_lost == 1
        net.clear_loss()
        net.broadcast(server.ip, [settop.ip], 7000, "boot.announce",
                      payload=None)
        kernel.run()
        assert len(got) == 1

    def test_send_reserved_partition_drops_with_accounting(self, kernel, net):
        server = make_server(kernel, net, 0)
        settop = make_settop(kernel, net, 0, 0)
        got = []
        net.bind_port(settop.ip, 7000, got.append)
        net.interface(settop.ip).in_link.reserve("vc-1", 3_000_000)
        msg = Message(src=(server.ip, 1), dst=(settop.ip, 7000),
                      kind="stream.cells", payload_bytes=1_000)
        net.partition({server.ip}, {settop.ip})
        assert net.send_reserved(msg, "vc-1") is False
        assert net.messages_dropped == 1
        net.heal_partitions()
        assert net.send_reserved(msg, "vc-1") is True
        kernel.run()
        assert len(got) == 1

    def test_send_reserved_missing_circuit_drops(self, kernel, net):
        server = make_server(kernel, net, 0)
        settop = make_settop(kernel, net, 0, 0)
        msg = Message(src=(server.ip, 1), dst=(settop.ip, 7000),
                      kind="stream.cells", payload_bytes=1_000)
        assert net.send_reserved(msg, "torn-down-vc") is False
        assert net.messages_dropped == 1
        assert net.sent_by_kind["stream.cells"] == 1  # sent, then dropped

    def test_send_reserved_subject_to_loss_like_send(self, kernel, net):
        from repro.sim.rand import SeededRandom
        server = make_server(kernel, net, 0)
        settop = make_settop(kernel, net, 0, 0)
        got = []
        net.bind_port(settop.ip, 7000, got.append)
        net.interface(settop.ip).in_link.reserve("vc-1", 3_000_000)
        net.set_loss(settop.ip, 1.0, SeededRandom(3))
        msg = Message(src=(server.ip, 1), dst=(settop.ip, 7000),
                      kind="stream.cells", payload_bytes=1_000)
        assert net.send_reserved(msg, "vc-1") is True  # lost in flight,
        kernel.run()                                   # not refused at send
        assert got == [] and net.messages_lost == 1

    def test_delay_fault_applies_to_all_three_paths(self, kernel, net):
        a = make_server(kernel, net, 0)
        b = make_server(kernel, net, 1)
        settop = make_settop(kernel, net, 0, 0)
        net.interface(settop.ip).in_link.reserve("vc-1", 3_000_000)
        times = {}
        net.bind_port(b.ip, 1, lambda m: times.setdefault("send", kernel.now))
        net.bind_port(settop.ip, 7000,
                      lambda m: times.setdefault(m.kind, kernel.now))
        net.set_delay(b.ip, 2.0)
        net.set_delay(settop.ip, 2.0)
        net.send(Message(src=(a.ip, 1), dst=(b.ip, 1), kind="x"))
        net.broadcast(a.ip, [settop.ip], 7000, "bcast", payload=None)
        net.send_reserved(Message(src=(a.ip, 1), dst=(settop.ip, 7000),
                                  kind="cbr", payload_bytes=100), "vc-1")
        kernel.run()
        assert times["send"] > 2.0
        assert times["bcast"] > 2.0
        assert times["cbr"] > 2.0
        net.clear_faults()
        net.send(Message(src=(a.ip, 1), dst=(b.ip, 1), kind="x"))
        start = kernel.now
        kernel.run()
        assert kernel.now - start < 1.0

    def test_gray_failure_slows_replies_from_source(self, kernel, net):
        a = make_server(kernel, net, 0)
        b = make_server(kernel, net, 1)
        times = []
        net.bind_port(a.ip, 1, lambda m: times.append(kernel.now))
        net.set_gray(b.ip, 5.0)
        net.send(Message(src=(b.ip, 1), dst=(a.ip, 1), kind="reply"))
        kernel.run()
        assert times[0] > 5.0

    def test_duplicate_fault_delivers_echo(self, kernel, net):
        from repro.sim.rand import SeededRandom
        a = make_server(kernel, net, 0)
        b = make_server(kernel, net, 1)
        got = []
        net.bind_port(b.ip, 1, got.append)
        net.set_duplicate(b.ip, 1.0, SeededRandom(5))
        net.send(Message(src=(a.ip, 1), dst=(b.ip, 1), kind="x"))
        kernel.run()
        assert len(got) == 2
        assert net.messages_duplicated == 1
        assert net.messages_delivered == 2

    def test_duplicate_fault_applies_to_broadcast_and_reserved(self, kernel,
                                                               net):
        """PR 9 parity: duplication hits all three delivery paths."""
        from repro.sim.rand import SeededRandom
        server = make_server(kernel, net, 0)
        settop = make_settop(kernel, net, 0, 0)
        got = []
        net.bind_port(settop.ip, 7000, got.append)
        net.interface(settop.ip).in_link.reserve("vc-1", 3_000_000)
        net.set_duplicate(settop.ip, 1.0, SeededRandom(5))
        net.broadcast(server.ip, [settop.ip], 7000, "bcast", payload=None)
        kernel.run()
        assert len(got) == 2
        assert net.send_reserved(
            Message(src=(server.ip, 1), dst=(settop.ip, 7000),
                    kind="cbr", payload_bytes=100), "vc-1") is True
        kernel.run()
        assert len(got) == 4
        assert net.messages_duplicated == 2

    def test_reorder_fault_lets_later_sends_overtake(self, kernel, net):
        """A reordered message is held back, so a later send lands first."""
        from repro.sim.rand import SeededRandom
        a = make_server(kernel, net, 0)
        b = make_server(kernel, net, 1)
        got = []
        net.bind_port(b.ip, 1, lambda m: got.append(m.kind))
        # Probability 1 with a large skew: every message is skewed, but
        # by a seeded-random amount, so arrival order != send order.
        net.set_reorder(b.ip, 1.0, 5.0, SeededRandom(9))
        for i in range(6):
            net.send(Message(src=(a.ip, 1), dst=(b.ip, 1), kind=f"m{i}"))
        kernel.run()
        assert sorted(got) == [f"m{i}" for i in range(6)]  # all delivered
        assert got != [f"m{i}" for i in range(6)]          # out of order
        assert net.messages_reordered == 6

    def test_reorder_applies_to_all_three_paths(self, kernel, net):
        from repro.sim.rand import SeededRandom
        server = make_server(kernel, net, 0)
        settop = make_settop(kernel, net, 0, 0)
        got = []
        net.bind_port(settop.ip, 7000, got.append)
        net.interface(settop.ip).in_link.reserve("vc-1", 3_000_000)
        net.set_reorder(settop.ip, 1.0, 2.0, SeededRandom(4))
        net.send(Message(src=(server.ip, 1), dst=(settop.ip, 7000),
                         kind="x"))
        net.broadcast(server.ip, [settop.ip], 7000, "bcast", payload=None)
        net.send_reserved(Message(src=(server.ip, 1), dst=(settop.ip, 7000),
                                  kind="cbr", payload_bytes=100), "vc-1")
        kernel.run()
        assert len(got) == 3
        assert net.messages_reordered == 3

    def test_corrupt_fault_flags_delivered_copy(self, kernel, net):
        from repro.sim.rand import SeededRandom
        a = make_server(kernel, net, 0)
        b = make_server(kernel, net, 1)
        got = []
        net.bind_port(b.ip, 1, got.append)
        net.set_corrupt(b.ip, 1.0, SeededRandom(2))
        msg = Message(src=(a.ip, 1), dst=(b.ip, 1), kind="x",
                      payload={"k": "v"})
        net.send(msg)
        kernel.run()
        assert len(got) == 1
        assert got[0].corrupted
        assert not msg.corrupted            # the sender's copy is untouched
        assert got[0].payload == {"k": "v"}  # flag, not mutation
        assert net.messages_corrupted == 1

    def test_corrupt_rolls_per_delivery_including_duplicates(self, kernel,
                                                             net):
        """Each delivery (original or duplicate echo) rolls corruption
        independently: a seed where one copy arrives clean proves the
        duplicate is not aliased to the corrupted one."""
        from repro.sim.rand import SeededRandom
        a = make_server(kernel, net, 0)
        b = make_server(kernel, net, 1)
        got = []
        net.bind_port(b.ip, 1, got.append)
        net.set_duplicate(b.ip, 1.0, SeededRandom(5))
        net.set_corrupt(b.ip, 0.5, SeededRandom(12))
        for i in range(8):
            net.send(Message(src=(a.ip, 1), dst=(b.ip, 1), kind=f"m{i}"))
        kernel.run()
        assert len(got) == 16
        flags = {m.corrupted for m in got}
        assert flags == {True, False}       # some corrupted, some clean
        assert net.messages_corrupted == sum(1 for m in got if m.corrupted)

    def test_clear_faults_clears_reorder_and_corrupt(self, kernel, net):
        from repro.sim.rand import SeededRandom
        a = make_server(kernel, net, 0)
        b = make_server(kernel, net, 1)
        got = []
        net.bind_port(b.ip, 1, got.append)
        net.set_reorder(b.ip, 1.0, 5.0, SeededRandom(1))
        net.set_corrupt(b.ip, 1.0, SeededRandom(2))
        net.clear_faults()
        net.send(Message(src=(a.ip, 1), dst=(b.ip, 1), kind="x"))
        start = kernel.now
        kernel.run()
        assert len(got) == 1 and not got[0].corrupted
        assert kernel.now - start < 1.0
        assert net.messages_reordered == 0 and net.messages_corrupted == 0

    def test_reorder_and_corrupt_validate_arguments(self, net):
        from repro.sim.rand import SeededRandom
        rng = SeededRandom(0)
        with pytest.raises(ValueError):
            net.set_reorder("10.0.0.1", 1.5, 1.0, rng)
        with pytest.raises(ValueError):
            net.set_reorder("10.0.0.1", 0.5, 0.0, rng)
        with pytest.raises(ValueError):
            net.set_corrupt("10.0.0.1", -0.1, rng)
        # Zero probability uninstalls rather than registers.
        net.set_reorder("10.0.0.1", 0.0, 1.0, rng)
        net.set_corrupt("10.0.0.1", 0.0, rng)
        assert not net._reorder and not net._corrupt
