"""Unit tests for the section 7.1 resource-recovery alternatives."""

import pytest

from repro.core.ras.alternatives import (
    DurationTimeout,
    PerServiceTracking,
    RASStyle,
    ShortLease,
    make_all,
)
from repro.sim import Kernel


@pytest.fixture
def kernel():
    return Kernel()


class TestDurationTimeout:
    def test_reclaims_after_estimate(self, kernel):
        mech = DurationTimeout(kernel, slack=2.0)
        mech.grant("c1", "r1", estimated_duration=10.0)
        mech.client_crashed("c1")
        kernel._now = 19.0
        mech.run(19.0)
        assert mech.stats.reclaimed == 0   # estimate*slack not reached
        kernel._now = 21.0
        mech.run(21.0)
        assert mech.stats.reclaimed == 1
        # Leaked from death (t=0) to reclamation (t=20... measured at run).
        assert mech.stats.leak_seconds == pytest.approx(21.0)

    def test_revokes_healthy_long_runner(self, kernel):
        mech = DurationTimeout(kernel, slack=2.0)
        mech.grant("c1", "r1", estimated_duration=10.0)
        kernel._now = 25.0
        mech.run(25.0)
        assert mech.stats.false_revocations == 1
        assert mech.stats.reclaimed == 0

    def test_sends_no_messages(self, kernel):
        mech = DurationTimeout(kernel)
        mech.grant("c1", "r1", 5.0)
        kernel._now = 100.0
        mech.run(100.0)
        assert mech.stats.messages == 0


class TestShortLease:
    def test_renewals_cost_messages(self, kernel):
        mech = ShortLease(kernel, lease=10.0)
        mech.grant("c1", "r1", 0.0)
        kernel._now = 100.0
        mech.run(100.0)
        # grant + 10 renewals x (request + ack)
        assert mech.stats.messages == 1 + 10 * 2

    def test_crash_reclaims_at_next_lease_boundary(self, kernel):
        mech = ShortLease(kernel, lease=10.0)
        mech.grant("c1", "r1", 0.0)
        kernel._now = 12.0
        mech.run(12.0)
        mech.client_crashed("c1")
        kernel._now = 25.0
        mech.run(25.0)
        assert mech.stats.reclaimed == 1
        # Died at t=12, lease expired unrenewed at t=20 -> ~8s of leak.
        assert mech.stats.leak_seconds <= 15.0

    def test_explicit_release_costs_nothing_more(self, kernel):
        mech = ShortLease(kernel, lease=10.0)
        mech.grant("c1", "r1", 0.0)
        mech.release("r1")
        kernel._now = 100.0
        mech.run(100.0)
        assert mech.stats.messages == 1   # just the grant


class TestPerServiceTracking:
    def test_pings_scale_with_clients(self, kernel):
        mech = PerServiceTracking(kernel, ping_interval=5.0)
        for i in range(10):
            mech.grant(f"c{i}", f"r{i}", 0.0)
        mech.run(50.0)
        # 11 ping rounds (t=0..50) x 10 clients x (ping+pong)
        assert mech.stats.messages == 11 * 10 * 2

    def test_dead_client_reclaimed(self, kernel):
        mech = PerServiceTracking(kernel, ping_interval=5.0)
        mech.grant("c1", "r1", 0.0)
        mech.run(4.0)
        mech.client_crashed("c1")
        kernel._now = 5.0
        mech.run(10.0)
        assert mech.stats.reclaimed == 1


class TestRASStyle:
    def test_messages_independent_of_clients(self, kernel):
        small = RASStyle(kernel, servers=3)
        big = RASStyle(kernel, servers=3)
        small.grant("c1", "r1", 0.0)
        for i in range(100):
            big.grant(f"c{i}", f"r{i}", 0.0)
        small.run(100.0)
        big.run(100.0)
        assert small.stats.messages == big.stats.messages

    def test_detection_pipeline_delay(self, kernel):
        mech = RASStyle(kernel, servers=3, peer_poll=5.0, client_poll=10.0)
        mech.grant("c1", "r1", 0.0)
        mech.run(1.0)
        mech.client_crashed("c1")
        # Death at t=1; next peer poll detects; next client poll reclaims.
        mech.run(30.0)
        assert mech.stats.reclaimed == 1
        assert mech.stats.leak_seconds <= (5.0 + 10.0 + 1.0)

    def test_make_all_lineup(self, kernel):
        names = [m.name for m in make_all(kernel)]
        assert names == ["duration-timeout", "short-lease",
                         "per-service-tracking", "ras"]
