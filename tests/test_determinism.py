"""Runtime determinism: the same seed must reproduce a run exactly.

Covers the three legs of the invariant: seeded substreams are stable
across interpreter runs and independent of each other, the reference
failover scenario traces byte-identically when run twice, and detached
tasks/futures (linter rule D008) behave as declared.
"""

from repro.analysis import double_run_diff, reference_scenario_trace
from repro.sim.kernel import Kernel
from repro.sim.rand import SeededRandom, stable_seed


class TestStableSeed:
    def test_stable_across_interpreter_runs(self):
        # Golden value: any drift here breaks every recorded benchmark.
        assert stable_seed(42, "workload") == 1930480936

    def test_distinct_parts_distinct_seeds(self):
        assert stable_seed(42, "workload") != stable_seed(42, "failures")
        assert stable_seed(42, "workload") != stable_seed(43, "workload")


class TestSubstreams:
    def test_stream_values_stable_across_runs(self):
        """Golden draws: stream derivation must never silently change."""
        workload = SeededRandom(42).stream("workload")
        assert [workload.randint(0, 10**6) for _ in range(4)] == \
            [321672, 939788, 534102, 361350]
        failures = SeededRandom(42).stream("failures")
        assert [failures.randint(0, 10**6) for _ in range(4)] == \
            [938053, 495927, 958835, 970284]

    def test_streams_are_independent(self):
        """Draws on one stream must not perturb a sibling stream."""
        lone = SeededRandom(42).stream("workload")
        expected = [lone.random() for _ in range(8)]

        rng = SeededRandom(42)
        noisy = rng.stream("failures")
        interleaved = []
        workload = rng.stream("workload")
        for _ in range(8):
            noisy.random()          # interference draws
            interleaved.append(workload.random())
        assert interleaved == expected

    def test_same_name_returns_same_stream(self):
        rng = SeededRandom(7)
        assert rng.stream("a") is rng.stream("a")
        assert rng.stream("a") is not rng.stream("b")


class TestDoubleRun:
    def test_reference_scenario_is_deterministic(self):
        """The acceptance gate: same-seed double run, empty trace diff."""
        diff = double_run_diff(seed=7, settops=2, duration=60.0)
        assert diff == [], "\n".join(diff[:50])

    def test_different_seeds_diverge(self):
        """The check has teeth: different seeds must not trace identically."""
        a = reference_scenario_trace(seed=1, settops=2, duration=60.0)
        b = reference_scenario_trace(seed=2, settops=2, duration=60.0)
        assert a != b


class TestDetach:
    def test_detach_returns_self_and_marks(self):
        kernel = Kernel()
        fut = kernel.create_future()
        assert fut.detach() is fut
        assert fut.detached

    def test_unstarted_task_coroutine_closed_quietly(self):
        """Tasks scheduled right before teardown must not leak coroutines.

        pytest promotes RuntimeWarning to an error (see pyproject), so a
        "coroutine ... was never awaited" leak fails this test on GC.
        """
        import gc

        async def never_stepped():
            return 1            # pragma: no cover - intentionally unrun

        kernel = Kernel()
        kernel.create_task(never_stepped()).detach()
        del kernel
        gc.collect()
