"""The section 9.5 debugging/upgrade workflow, as a test.

Paper: "When we find a bug in a service, we can simply copy a corrected
binary to the appropriate servers and kill the service.  The service
will be restarted running the new version.  Clients using the service
see no disruption; the normal recovery mechanisms make the stop and
restart invisible."

We roll a kill across every replica of every ITV service, one server at
a time with settle gaps (a rolling upgrade), while a viewer keeps
watching and shopping, and assert the viewer's experience stayed whole.
"""

import pytest

from repro.cluster import build_full_cluster

ROLLABLE = ["rds", "vod", "shopping", "game", "cmgr", "mds", "mms",
            "settopmgr", "ras", "db", "fileservice", "boot", "kbs",
            "auth", "csc", "ns"]


class TestRollingUpgrade:
    def test_full_stack_rolls_without_viewer_disruption(self):
        cluster = build_full_cluster(n_servers=3, seed=251)
        stk = cluster.add_settop_kernel(1)
        assert cluster.boot_settops([stk])
        cluster.run_async(stk.app_manager.tune(5))
        vod = stk.app_manager.current_app
        cluster.run_async(vod.play("Jurassic Park"))  # 280 s: spans the roll
        cluster.run_for(5.0)

        # The roll: every service, one server at a time, 8 s apart.
        for service in ROLLABLE:
            for index in range(3):
                cluster.kill_service(index, service)
                cluster.run_for(8.0)

        cluster.run_for(30.0)
        # The viewer's movie is still going (or finished naturally).
        assert vod.playing or vod.finished
        # Only brief interruptions, all recovered.
        for interruption in vod.interruptions:
            assert interruption["recovered"]
        # Every service came back everywhere.
        services = cluster.running_services()
        for host in cluster.servers:
            for service in ROLLABLE:
                if service in ("kbs", "mms"):
                    continue  # primary/backup pair, placed on two servers
                assert service in services[host.name], (host.name, service)
        mms_hosts = [h for h, procs in services.items() if "mms" in procs]
        assert len(mms_hosts) == 2

    def test_roll_under_shopping_traffic(self):
        """Orders placed throughout a roll of the shopping+db path."""
        cluster = build_full_cluster(n_servers=3, seed=252)
        stk = cluster.add_settop_kernel(2)
        assert cluster.boot_settops([stk])
        cluster.run_async(stk.app_manager.tune(6))
        shop = stk.app_manager.current_app
        order_ids = []
        for index in range(3):
            order_ids.append(cluster.run_async(shop.buy("mug")))
            cluster.kill_service(index, "shopping")
            cluster.kill_service(index, "db")
            cluster.run_for(10.0)
        order_ids.append(cluster.run_async(shop.buy("cap")))
        # Every order placed across the roll is durable and readable.
        for order_id in order_ids:
            status = cluster.run_async(shop.check_order(order_id))
            assert status["status"] == "accepted"
