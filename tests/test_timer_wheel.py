"""Differential proof that the timer wheel equals the reference heap.

The kernel's timer backend was swapped from a binary heap to a
hierarchical timer wheel (``repro.sim.wheel``).  The contract is strict:
*byte-identical* ``(when, seq)`` firing order, because every golden
trace digest depends on it.  This suite drives both backends through
identical workloads -- seeded unit scenarios plus hypothesis-generated
arm/cancel/advance programs -- and asserts the observable event streams
are equal.

Two layers:

- Backend-level: synthetic ``TimerHandle`` streams pushed straight into
  ``TimerWheel`` / ``TimerHeap``, popped in interleaved batches, with
  cancellations (including enough to trip the heap's mass-cancellation
  compaction).  Exercises slot math, cascades, head demotion and the
  overflow heap without kernel noise.

- Kernel-level: full ``Kernel(timer_backend=...)`` pairs running the
  same program of ``call_soon`` / ``call_at`` / ``call_later`` /
  ``cancel`` / ``run(until)`` steps, including callbacks that re-arm
  timers mid-fire and ``wait_for`` churn.  The recorded ``(now, tag)``
  stream must match exactly.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.sim import Kernel
from repro.sim.kernel import TimerHandle
from repro.sim.rand import SeededRandom
from repro.sim.wheel import TimerHeap, TimerWheel

# One tick at the wheel's 256 Hz resolution, and the spans of its four
# levels, in seconds: the boundaries where cascade bugs would live.
TICK = 1.0 / 256.0
LEVEL_SPANS = [256 * TICK, 256 ** 2 * TICK, 256 ** 3 * TICK, 256 ** 4 * TICK]


# ---------------------------------------------------------------------
# backend-level differential harness
# ---------------------------------------------------------------------

def _handles(whens):
    return [TimerHandle(when, seq, (lambda: None), ())
            for seq, when in enumerate(whens)]


def _drain(backend):
    out = []
    while True:
        h = backend.peek()
        if h is None:
            return out
        assert backend.pop() is h
        out.append((h.when, h.seq))


def _differential_pop_order(whens, cancel_idx=(), interleave=None):
    """Push the same handles into both backends; assert equal pop order.

    ``interleave`` is an optional list of pop-counts: after pushing
    handle i, if interleave says so, pop that many entries before
    continuing -- this moves the wheel cursor mid-arming, exercising the
    due-now buffer path and head demotion.
    """
    streams = []
    for backend_cls in (TimerWheel, TimerHeap):
        dropped = []
        backend = backend_cls(on_drop=dropped.append)
        handles = _handles(whens)
        for h in handles:
            if h.seq in cancel_idx and h.seq % 2 == 0:
                h.cancel()  # cancel-before-push
        popped = []
        floor = 0.0
        for i, h in enumerate(handles):
            # Respect the kernel contract: never arm behind an already
            # popped timer.
            if h.when <= floor:
                h.when = floor + TICK / 7
            backend.push(h)
            if h._in_timers is False:
                h._in_timers = True
            if interleave and i < len(interleave):
                for _ in range(interleave[i]):
                    live = backend.peek()
                    if live is None:
                        break
                    assert backend.pop() is live
                    popped.append((live.when, live.seq))
                    floor = live.when
            if h.seq in cancel_idx and h.seq % 2 == 1:
                if not h.cancelled:
                    h.cancel()   # cancel-after-push (lazy reap path)
                    backend.note_cancelled()
        popped.extend(_drain(backend))
        streams.append(popped)
        # Every cancelled-but-unpopped handle must be reaped exactly once.
        assert len(backend) == 0
    assert streams[0] == streams[1]
    return streams[0]


class TestBackendDifferential:
    def test_dense_same_tick(self):
        # Hundreds of distinct floats quantizing to a handful of ticks:
        # sub-tick order must come out exact.
        whens = [1.0 + i * (TICK / 50) for i in range(400)]
        order = _differential_pop_order(whens)
        assert order == sorted(order)
        assert len(order) == 400

    def test_equal_whens_pop_in_seq_order(self):
        whens = [5.0] * 100
        order = _differential_pop_order(whens)
        assert [seq for _w, seq in order] == list(range(100))

    def test_cascade_boundaries(self):
        whens = []
        for span in LEVEL_SPANS:
            for nudge in (-TICK, -TICK / 3, 0.0, TICK / 3, TICK):
                whens.append(span + nudge)
                whens.append(span * 0.5 + nudge)
        whens += [TICK, TICK * 2, TICK / 2, 3.0]
        order = _differential_pop_order(whens)
        assert order == sorted(order)

    def test_overflow_beyond_level_coverage(self):
        far = LEVEL_SPANS[-1]
        whens = [far * 3, 1.0, far + 1.0, 2.0, far * 2 + 0.5, far * 3 + TICK]
        order = _differential_pop_order(whens)
        assert order == sorted(order)
        assert len(order) == len(whens)

    def test_interleaved_pops_move_cursor(self):
        rng = SeededRandom(11)
        whens = [rng.uniform(0.01, 600.0) for _ in range(300)]
        interleave = [rng.randint(0, 2) for _ in range(300)]
        _differential_pop_order(whens, interleave=interleave)

    def test_mass_cancellation_compaction_parity(self):
        # >64 cancels with cancelled dominating trips the heap's
        # compaction; the wheel reaps lazily.  Survivor order must match.
        rng = SeededRandom(7)
        whens = [rng.uniform(0.01, 2000.0) for _ in range(400)]
        cancel_idx = set(range(0, 400, 2)) | set(range(1, 150, 3))
        order = _differential_pop_order(whens, cancel_idx=cancel_idx)
        assert order == sorted(order)

    def test_head_demotion_on_earlier_push(self):
        # peek() pops the head out of the wheel; a later push that beats
        # it must demote it back into the buffer.
        wheel = TimerWheel()
        late = TimerHandle(10.0, 1, (lambda: None), ())
        wheel.push(late)
        assert wheel.peek() is late
        early = TimerHandle(10.0 - TICK * 3, 2, (lambda: None), ())
        # The cursor has advanced to late's slot, so early's tick is
        # behind it -- the due-now buffer path.
        wheel.push(early)
        assert wheel.peek() is early
        assert wheel.pop() is early
        assert wheel.peek() is late

    def test_same_tick_seq_beats_head(self):
        wheel = TimerWheel()
        a = TimerHandle(4.0, 5, (lambda: None), ())
        wheel.push(a)
        assert wheel.peek() is a
        b = TimerHandle(4.0, 2, (lambda: None), ())
        wheel.push(b)
        assert [wheel.peek() and wheel.pop() for _ in range(2)] == [b, a]


# ---------------------------------------------------------------------
# kernel-level differential harness
# ---------------------------------------------------------------------

def _run_program(backend, program, tail_run=True):
    """Interpret an op program on a fresh kernel; return the fire stream."""
    kernel = Kernel(timer_backend=backend)
    fired = []
    handles = []

    def make_cb(tag):
        def cb():
            fired.append((round(kernel.now, 9), tag))
        return cb

    for n, op in enumerate(program):
        kind = op[0]
        if kind == "later":
            handles.append(kernel.call_later(op[1], make_cb(n)))
        elif kind == "at":
            handles.append(kernel.call_at(kernel.now + op[1], make_cb(n)))
        elif kind == "soon":
            handles.append(kernel.call_soon(make_cb(n)))
        elif kind == "cancel":
            if handles:
                handles[op[1] % len(handles)].cancel()
        elif kind == "run_for":
            kernel.run(until=kernel.now + op[1])
        elif kind == "run_one":
            kernel.run_one()
    if tail_run:
        kernel.run()
    return fired, kernel


def assert_program_parity(program, tail_run=True):
    wheel_fired, wheel_k = _run_program("wheel", program, tail_run)
    heap_fired, heap_k = _run_program("heap", program, tail_run)
    assert wheel_fired == heap_fired
    assert wheel_k.now == heap_k.now
    assert wheel_k.pending_events() == heap_k.pending_events()
    return wheel_fired


class TestKernelDifferential:
    def test_mixed_soon_at_later(self):
        rng = SeededRandom(3)
        program = []
        for _ in range(300):
            roll = rng.random()
            if roll < 0.3:
                program.append(("soon",))
            elif roll < 0.6:
                program.append(("later", rng.uniform(0.0, 30.0)))
            elif roll < 0.8:
                program.append(("at", rng.uniform(0.0, 90.0)))
            elif roll < 0.9:
                program.append(("cancel", rng.randint(0, 999)))
            else:
                program.append(("run_for", rng.uniform(0.0, 10.0)))
        fired = assert_program_parity(program)
        assert fired  # the workload actually fired things

    def test_dense_duplicate_deadlines(self):
        program = [("later", (i % 7) * 0.25) for i in range(500)]
        fired = assert_program_parity(program)
        assert len(fired) == 500

    def test_cancel_heavy_wait_for_churn(self):
        # The archetype workload for heap compaction: thousands of
        # armed-then-disarmed timeouts.  wait_for cancels its timeout
        # handle whenever the inner future wins.
        def scenario(kernel):
            async def quick(n):
                await kernel.sleep(0.001 * (n % 5))
                return n

            async def main():
                total = 0
                for n in range(300):
                    total += await kernel.wait_for(quick(n), timeout=60.0)
                return total

            return kernel.run_until_complete(main())

        wheel_k = Kernel(timer_backend="wheel")
        heap_k = Kernel(timer_backend="heap")
        assert scenario(wheel_k) == scenario(heap_k)
        assert wheel_k.now == heap_k.now

    def test_rearm_from_callback_storm(self):
        # Callbacks that schedule more work mid-fire, including at the
        # current instant (due-now buffer + head demotion paths).
        def run(backend):
            kernel = Kernel(timer_backend=backend)
            fired = []
            rng = SeededRandom(19)

            def boom(depth, tag):
                fired.append((round(kernel.now, 9), tag))
                if depth:
                    kernel.call_soon(boom, depth - 1, tag * 31 + 1)
                    kernel.call_later(rng.uniform(0.0, 5.0) * depth,
                                      boom, depth - 1, tag * 31 + 2)

            for i in range(40):
                kernel.call_later(rng.uniform(0.0, 40.0), boom, 3, i)
            kernel.run()
            return fired, kernel.now

        assert run("wheel") == run("heap")

    def test_run_until_windows(self):
        program = [("later", d) for d in (0.1, 5.0, 5.0, 64.0, 256.5, 300.0)]
        program += [("run_for", 5.0), ("soon",), ("run_for", 0.0),
                    ("later", 1.0), ("run_for", 100.0), ("at", 2.0)]
        assert_program_parity(program)

    def test_run_one_stepping(self):
        program = ([("later", d) for d in (3.0, 1.0, 2.0, 1.0)]
                   + [("run_one",)] * 3 + [("soon",), ("run_one",)])
        assert_program_parity(program)

    def test_long_horizon_overflow(self):
        far = LEVEL_SPANS[-1]
        program = [("later", far * 2), ("later", 1.0), ("later", far + 5.0),
                   ("run_for", 2.0), ("later", far * 3), ("cancel", 2)]
        assert_program_parity(program)


# ---------------------------------------------------------------------
# hypothesis: arbitrary arm/cancel/advance programs
# ---------------------------------------------------------------------

# Delays mix boundary-hugging values (slot edges, level spans) with
# arbitrary floats, including zero (the ready-lane fast path).
_boundary = st.sampled_from(
    [0.0, TICK / 3, TICK, TICK * 2]
    + [span + nudge for span in LEVEL_SPANS[:3]
       for nudge in (-TICK, 0.0, TICK)])
_delay = st.one_of(
    _boundary,
    st.floats(min_value=0.0, max_value=700.0,
              allow_nan=False, allow_infinity=False))

_op = st.one_of(
    st.tuples(st.just("later"), _delay),
    st.tuples(st.just("at"), _delay),
    st.tuples(st.just("soon")),
    st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=10 ** 6)),
    st.tuples(st.just("run_for"), _delay),
    st.tuples(st.just("run_one")),
)


class TestHypothesisPrograms:
    @settings(max_examples=120, deadline=None)
    @given(program=st.lists(_op, max_size=60))
    def test_arbitrary_programs_fire_identically(self, program):
        assert_program_parity(program)

    @settings(max_examples=80, deadline=None)
    @given(
        whens=st.lists(
            st.floats(min_value=1e-4, max_value=LEVEL_SPANS[-1] * 2,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=80),
        cancels=st.sets(st.integers(min_value=0, max_value=79)),
        interleave=st.lists(st.integers(min_value=0, max_value=2),
                            max_size=80),
    )
    def test_backend_pop_order_identical(self, whens, cancels, interleave):
        order = _differential_pop_order(
            whens, cancel_idx=cancels, interleave=interleave)
        assert order == sorted(order)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2 ** 20))
    def test_seeded_cancel_compaction_storms(self, seed):
        # Heavy cancellation with seeded shape: enough dead shells to
        # trip the heap compaction threshold (>64, majority dead).
        rng = SeededRandom(seed)
        program = []
        for _ in range(150):
            program.append(("later", rng.uniform(0.0, 500.0)))
            if rng.random() < 0.6:
                program.append(("cancel", rng.randint(0, 999)))
            if rng.random() < 0.1:
                program.append(("run_for", rng.uniform(0.0, 20.0)))
        assert_program_parity(program)


class TestWheelInternals:
    """White-box checks on wheel bookkeeping the differential layer
    cannot see (counters, iteration, reap accounting)."""

    def test_len_and_iter_track_contents(self):
        wheel = TimerWheel()
        handles = _handles([1.0, 2.0, LEVEL_SPANS[1] + 1.0,
                            LEVEL_SPANS[3] * 2])
        for h in handles:
            wheel.push(h)
        assert len(wheel) == 4
        assert sorted(h.seq for h in wheel) == [0, 1, 2, 3]
        first = wheel.peek()
        assert first is handles[0]
        assert len(wheel) == 4          # peek holds, does not remove
        wheel.pop()
        assert len(wheel) == 3

    def test_on_drop_called_once_per_cancelled(self):
        dropped = []
        wheel = TimerWheel(on_drop=dropped.append)
        handles = _handles([1.0, 2.0, 3.0])
        for h in handles:
            wheel.push(h)
        handles[1].cancel()
        assert _drain(wheel) == [(1.0, 0), (3.0, 2)]
        assert dropped == [handles[1]]
        assert len(wheel) == 0

    def test_pending_events_skips_cancelled_shells(self):
        for backend in ("wheel", "heap"):
            kernel = Kernel(timer_backend=backend)
            keep = kernel.call_later(5.0, lambda: None)
            drop = kernel.call_later(6.0, lambda: None)
            drop.cancel()
            assert kernel.pending_events() == 1
            keep.cancel()
            assert kernel.pending_events() == 0

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            Kernel(timer_backend="calendar")
