"""Unit tests for the IDL layer: declarations, subtyping, marshal sizes."""

import pytest

from repro.idl import (
    MethodDef,
    estimated_size,
    lookup_interface,
    register_exception,
    register_interface,
    resolve_exception,
)
from repro.idl.errors import (
    DuplicateInterface,
    NoSuchMethod,
    SignatureError,
    UnknownInterface,
)
from repro.ocs.objref import ObjectRef

register_interface("IdlBase", {"ping": (), "add": ("a", "b")})
register_interface("IdlDerived", {"extra": ("x",)}, base="IdlBase")


class TestInterfaces:
    def test_lookup_registered(self):
        iface = lookup_interface("IdlBase")
        assert iface.name == "IdlBase"

    def test_lookup_unknown_raises(self):
        with pytest.raises(UnknownInterface):
            lookup_interface("Nope")

    def test_method_lookup(self):
        iface = lookup_interface("IdlBase")
        assert iface.method("add").params == ("a", "b")

    def test_missing_method_raises(self):
        with pytest.raises(NoSuchMethod):
            lookup_interface("IdlBase").method("frob")

    def test_inherited_method_found(self):
        derived = lookup_interface("IdlDerived")
        assert derived.method("ping").name == "ping"
        assert derived.method("extra").params == ("x",)

    def test_is_a_subtype(self):
        derived = lookup_interface("IdlDerived")
        assert derived.is_a("IdlBase")
        assert derived.is_a("IdlDerived")
        assert not lookup_interface("IdlBase").is_a("IdlDerived")

    def test_all_methods_merges_chain(self):
        methods = lookup_interface("IdlDerived").all_methods()
        assert set(methods) >= {"ping", "add", "extra"}

    def test_arity_check(self):
        mdef = lookup_interface("IdlBase").method("add")
        mdef.check_args((1, 2))
        with pytest.raises(SignatureError):
            mdef.check_args((1,))

    def test_idempotent_reregistration(self):
        again = register_interface("IdlBase", {"ping": (), "add": ("a", "b")})
        assert again is lookup_interface("IdlBase")

    def test_conflicting_redefinition_rejected(self):
        with pytest.raises(DuplicateInterface):
            register_interface("IdlBase", {"ping": (), "other": ()})

    def test_oneway_methoddef(self):
        register_interface("IdlOneway", {
            "notify": MethodDef("notify", ("event",), oneway=True)})
        assert lookup_interface("IdlOneway").method("notify").oneway


class TestExceptionRegistry:
    def test_registered_resolvable(self):
        @register_exception
        class IdlTestError(Exception):
            pass

        assert resolve_exception("IdlTestError") is IdlTestError

    def test_unregistered_returns_none(self):
        assert resolve_exception("TotallyUnknownError") is None


class TestEstimatedSize:
    def test_scalars(self):
        assert estimated_size(None) == 1
        assert estimated_size(True) == 1
        assert estimated_size(42) == 8
        assert estimated_size(3.14) == 8

    def test_string_scales_with_length(self):
        assert estimated_size("abc") == 4 + 3
        assert estimated_size("a" * 100) == 4 + 100

    def test_bytes(self):
        assert estimated_size(b"x" * 1000) == 4 + 1000

    def test_containers_sum_members(self):
        assert estimated_size([1, 2, 3]) == 4 + 24
        assert estimated_size({"k": 1}) == 4 + (4 + 1) + 8

    def test_objref_uses_hint(self):
        ref = ObjectRef(ip="1.2.3.4", port=1, incarnation=(0.0, 1),
                        type_id="IdlBase")
        assert estimated_size(ref) == 64

    def test_blob_uses_declared_size(self):
        from repro.services.data import Blob
        blob = Blob(name="app", size=2_000_000)
        assert estimated_size(blob) == 2_000_000

    def test_nested_structure(self):
        value = {"refs": [ObjectRef(ip="1.1.1.1", port=1,
                                    incarnation=(0.0, 1),
                                    type_id="IdlBase")] * 3}
        assert estimated_size(value) > 3 * 64
