"""Tests for section 7.3: resource limits and accounting for buggy clients."""

import pytest

from repro.cluster import build_full_cluster
from repro.core.params import Params
from repro.core.rebind import RebindingProxy
from repro.db.service import DatabaseClient
from repro.services.connection_manager import ResourceLimitExceeded


@pytest.fixture(scope="module")
def cluster():
    # Generous bandwidth so the *quota*, not the downlink, binds.
    return build_full_cluster(
        n_servers=2, seed=131,
        params=Params(max_connections_per_settop=2))


def cmgr_for(cluster, client, nbhd=1):
    return cluster.run_async(client.names.resolve(f"svc/cmgr/{nbhd}"))


class TestConnectionQuota:
    def test_quota_denies_buggy_client(self, cluster):
        """Paper: "either its request is denied or one of the previously
        allocated resources is freed" -- we deny."""
        settop = cluster.add_settop(1, downstream_bps=50_000_000)
        client = cluster.client_on(cluster.servers[0], name="q1")
        cmgr = cmgr_for(cluster, client)
        for _ in range(2):
            cluster.run_async(client.runtime.invoke(
                cmgr, "allocate", (settop.ip, cluster.servers[0].ip,
                                   1_000_000)))
        with pytest.raises(ResourceLimitExceeded):
            cluster.run_async(client.runtime.invoke(
                cmgr, "allocate", (settop.ip, cluster.servers[0].ip,
                                   1_000_000)))

    def test_release_frees_quota(self, cluster):
        settop = cluster.add_settop(1, downstream_bps=50_000_000)
        client = cluster.client_on(cluster.servers[0], name="q2")
        cmgr = cmgr_for(cluster, client)
        conns = [cluster.run_async(client.runtime.invoke(
            cmgr, "allocate", (settop.ip, cluster.servers[0].ip, 1_000_000)))
            for _ in range(2)]
        cluster.run_async(client.runtime.invoke(cmgr, "deallocate",
                                                (conns[0],)))
        # Quota freed: a new allocation succeeds.
        cluster.run_async(client.runtime.invoke(
            cmgr, "allocate", (settop.ip, cluster.servers[0].ip, 1_000_000)))

    def test_quota_is_per_settop(self, cluster):
        a = cluster.add_settop(1, downstream_bps=50_000_000)
        b = cluster.add_settop(1, downstream_bps=50_000_000)
        client = cluster.client_on(cluster.servers[0], name="q3")
        cmgr = cmgr_for(cluster, client)
        for settop in (a, b):
            for _ in range(2):
                cluster.run_async(client.runtime.invoke(
                    cmgr, "allocate",
                    (settop.ip, cluster.servers[0].ip, 1_000_000)))
        # Both settops at quota independently; neither blocked the other.


class TestResourceAccounting:
    def test_usage_recorded_on_release(self, cluster):
        settop = cluster.add_settop(2, downstream_bps=50_000_000)
        client = cluster.client_on(cluster.servers[0], name="acct")
        cmgr = cmgr_for(cluster, client, nbhd=2)
        conn = cluster.run_async(client.runtime.invoke(
            cmgr, "allocate", (settop.ip, cluster.servers[0].ip, 2_000_000)))
        cluster.run_for(30.0)
        cluster.run_async(client.runtime.invoke(cmgr, "deallocate", (conn,)))
        cluster.run_for(2.0)
        db = DatabaseClient(RebindingProxy(client.runtime, client.names,
                                           "svc/db", cluster.params))
        usage = cluster.run_async(db.get("usage", settop.ip))
        assert usage["connections"] == 1
        assert usage["connection_seconds"] == pytest.approx(30.0, abs=1.0)
        assert usage["megabit_seconds"] == pytest.approx(60.0, rel=0.05)

    def test_usage_accumulates(self, cluster):
        settop = cluster.add_settop(2, downstream_bps=50_000_000)
        client = cluster.client_on(cluster.servers[0], name="acct2")
        cmgr = cmgr_for(cluster, client, nbhd=2)
        for _ in range(3):
            conn = cluster.run_async(client.runtime.invoke(
                cmgr, "allocate",
                (settop.ip, cluster.servers[0].ip, 1_000_000)))
            cluster.run_for(5.0)
            cluster.run_async(client.runtime.invoke(cmgr, "deallocate",
                                                    (conn,)))
            cluster.run_for(1.0)
        db = DatabaseClient(RebindingProxy(client.runtime, client.names,
                                           "svc/db", cluster.params))
        usage = cluster.run_async(db.get("usage", settop.ip))
        assert usage["connections"] == 3

    def test_accounting_can_be_disabled(self):
        cluster = build_full_cluster(
            n_servers=2, seed=132,
            params=Params(resource_accounting=False))
        settop = cluster.add_settop(1)
        client = cluster.client_on(cluster.servers[0], name="acct3")
        cmgr = cmgr_for(cluster, client)
        conn = cluster.run_async(client.runtime.invoke(
            cmgr, "allocate", (settop.ip, cluster.servers[0].ip, 1_000_000)))
        cluster.run_for(5.0)
        cluster.run_async(client.runtime.invoke(cmgr, "deallocate", (conn,)))
        cluster.run_for(2.0)
        db = DatabaseClient(RebindingProxy(client.runtime, client.names,
                                           "svc/db", cluster.params))
        assert cluster.run_async(db.get_or("usage", settop.ip)) is None
