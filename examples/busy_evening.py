"""A busy evening: dozens of concurrent viewers across neighbourhoods.

Exercises the scalability story (sections 5.1, 9.6): per-neighbourhood
and per-server replicas share the load, movie opens follow a Zipf
popularity curve, and the run reports the response-time distribution
against the paper's half-second expectation plus section 9.3's app-start
numbers.

Run:  python examples/busy_evening.py [settops-per-neighborhood]
"""

import sys

from repro.cluster import build_full_cluster
from repro.metrics.counters import MessageCensus
from repro.metrics.latency import summarize
from repro.workloads import run_viewers


def main() -> None:
    per_nbhd = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    cluster = build_full_cluster(n_servers=3, seed=515)
    kernels = []
    for nbhd in cluster.neighborhoods:
        for _ in range(per_nbhd):
            kernels.append(cluster.add_settop_kernel(nbhd))
    print(f"== Booting {len(kernels)} settops across "
          f"{len(cluster.neighborhoods)} neighborhoods ==")
    assert cluster.boot_settops(kernels, timeout=300.0)
    print(f"all booted by t={cluster.now:.0f}s")

    census = MessageCensus(cluster.net)
    duration = 600.0
    print(f"\n== Running {duration:.0f}s of viewer sessions ==")
    stats = run_viewers(cluster, kernels, duration, seed=99)

    print(f"\nmovie opens: {stats.opens} "
          f"(+{stats.open_failures} failed), "
          f"{stats.watch_seconds/3600:.1f} viewer-hours watched, "
          f"{stats.interruptions} interruptions")
    if stats.open_latencies:
        s = summarize(stats.open_latencies)
        print(f"open latency: p50={s['p50']:.2f}s p90={s['p90']:.2f}s "
              f"max={s['max']:.2f}s (target: sub-second control path)")
    if stats.tune_latencies:
        s = summarize(stats.tune_latencies)
        print(f"app starts:   p50={s['p50']:.2f}s p90={s['p90']:.2f}s "
              f"(paper section 9.3: 2-4s)")
    print(f"shopping orders: {stats.orders}, game rounds: {stats.game_rounds}")

    print("\nmessage mix over the run:")
    for group, rate in sorted(census.rate_per_second(duration).items()):
        print(f"  {group:>16}: {rate:8.2f} msg/s")

    print("\nper-server MDS load at the end:")
    client = cluster.client_on(cluster.servers[0], name="report")

    async def loads():
        out = {}
        listing = await client.names.list_repl("svc/mds")
        for member, _kind, ref in listing:
            out[member] = await client.runtime.invoke(ref, "load", ())
        return out

    for member, load in sorted(cluster.run_async(loads()).items()):
        print(f"  {member}: {load['open_streams']}/{load['capacity']} streams")


if __name__ == "__main__":
    main()
