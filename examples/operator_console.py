"""Operator's view: the CSC and the section 6.2 / 8.1 tooling.

Shows the "simple tools that allow an operator to cause a service or
group of services to be stopped, started, or moved between nodes":
inspect placement, survive a whole-server failure, and manually
reassign the per-neighbourhood services that -- as the paper admits --
are *not* restarted automatically after a server crash.

Run:  python examples/operator_console.py
"""

from repro.cluster import build_full_cluster
from repro.core.control.tools import OperatorConsole


def show_state(cluster, console, client, banner):
    print(f"-- {banner} (t={cluster.now:.0f}s)")
    state = cluster.run_async(console.cluster_state())
    for ip, services in sorted(state.items()):
        if services is None:
            print(f"  {ip}: UNREACHABLE")
        else:
            print(f"  {ip}: {len(services)} services "
                  f"({', '.join(s for s in services if s != 'ns')[:60]}...)")


def main() -> None:
    cluster = build_full_cluster(n_servers=3, seed=808)
    client = cluster.client_on(cluster.servers[2], name="operator")
    console = OperatorConsole(client.runtime, client.names, cluster.params)

    show_state(cluster, console, client, "initial cluster")
    placement = cluster.run_async(console.placement())
    print(f"placement (from the database): mms on "
          f"{placement['mms']}, mds on {len(placement['mds'])} servers")

    victim = cluster.servers[0]
    print(f"\n== Crashing {victim.name} ({victim.ip}) ==")
    cluster.crash_server(0)
    cluster.run_for(15.0)
    show_state(cluster, console, client, "after crash")
    status = cluster.run_async(console.server_status())
    down = [ip for ip, up in status.items() if not up]
    print(f"CSC marks down: {down}")

    # Section 8.1: per-neighbourhood services on the dead server are not
    # restarted automatically -- the operator reassigns them.
    orphaned = sorted(cluster.neighborhoods_by_server[victim.ip])
    print(f"\n== Neighborhoods {orphaned} lost their rds/cmgr primaries ==")
    target = cluster.servers[1]
    print(f"operator: move rds workload toward {target.name} "
          f"(start an extra replica)")
    cluster.run_async(console.start_service("rds", target.ip))
    cluster.run_for(10.0)

    print(f"\n== Rebooting {victim.name} ==")
    cluster.reboot_server(0)
    # The CSC's reconcile loop notices the SSC answering again and
    # restarts the placed services (section 6.3).
    cluster.run_for(40.0)
    show_state(cluster, console, client, "after reboot + CSC reconcile")
    status = cluster.run_async(console.server_status())
    print(f"all servers up: {all(status.values())}")


if __name__ == "__main__":
    main()
