"""Availability report: a scripted failure campaign with measurements.

Uses the declarative :class:`repro.cluster.Scenario` runner to replay an
operations-night from hell -- service kills, a whole-server crash, and a
reboot -- against a live viewer, then prints the availability timeline
the way section 9.5 reports it ("covered with only a very brief
interruption").

Run:  python examples/availability_report.py
"""

from repro.cluster import Scenario, build_full_cluster
from repro.metrics.availability import AvailabilityTimeline


def main() -> None:
    cluster = build_full_cluster(n_servers=3, seed=909)
    stk = cluster.add_settop_kernel(1)
    assert cluster.boot_settops([stk])
    cluster.run_async(stk.app_manager.tune(5))
    vod = stk.app_manager.current_app
    cluster.run_async(vod.play("Jurassic Park"))

    timeline = AvailabilityTimeline(cluster.kernel)

    def serving_mds(c):
        for i, host in enumerate(c.servers):
            proc = host.find_process("mds")
            if proc is not None and any("pump" in t.name for t in proc._tasks):
                return i
        return None

    def kill_serving_mds(c):
        index = serving_mds(c)
        if index is not None:
            c.kill_service(index, "mds")
        return index

    def probe(c):
        # The viewer's definition of "up": video actually flowing (a
        # chunk within the last two chunk intervals).
        flowing = (vod._last_chunk is not None
                   and c.now - vod._last_chunk <= 2.0 and not vod.finished)
        if flowing or vod.finished:
            timeline.mark_up()
        else:
            timeline.mark_down()
        return {"flowing": flowing, "position": round(vod.position, 1),
                "stalls": len(vod.interruptions)}

    print("== Scripted campaign: 4 faults over 4 simulated minutes ==")
    report = (Scenario()
              .at(20.0, "kill serving MDS", kill_serving_mds)
              .at(70.0, "kill all MMS replicas",
                  lambda c: [c.kill_service(i, "mms") for i in range(3)])
              .at(120.0, "crash server-2", lambda c: c.crash_server(2))
              .at(180.0, "reboot server-2", lambda c: c.reboot_server(2))
              .observe_every(1.0, "viewer", probe)
              .lasting(240.0)
              .run(cluster))

    for event in report.events:
        print(f"  t={event['t']:6.1f}s  {event['label']}")

    print("\n== Viewer availability over the campaign ==")
    summary = timeline.summary()
    print(f"availability: {summary['availability']:.4f}")
    print(f"outages: {summary['outages']} "
          f"(longest {summary['longest_outage']:.1f}s, "
          f"total downtime {summary['downtime']:.1f}s)")
    stalls = report.series("viewer", "stalls")[-1][1]
    position = report.series("viewer", "position")[-1][1]
    print(f"stream interruptions survived: {stalls}; "
          f"final position {position:.0f}s of 280s")
    print("\nPaper section 9.5: 'Most failures ... were covered with only "
          "a very brief interruption.'")


if __name__ == "__main__":
    main()
