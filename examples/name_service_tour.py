"""A tour of the name service (paper section 4), the paper's centrepiece.

Walks the exact examples the paper draws: the Figure 5 naming graph with
a remote context, the Figure 6 replicated context with its selector, the
Figure 7 member-context lookup, the Figure 8 per-neighbourhood and
per-server selectors, auditing (section 4.7), and a custom Selector
object.

Run:  python examples/name_service_tour.py
"""

from repro.cluster import build_full_cluster
from repro.core.naming import NameClient
from repro.core.naming.selectors import PreferredMemberSelector
from repro.ocs import OCSRuntime


def main() -> None:
    cluster = build_full_cluster(n_servers=3, seed=606)
    client = cluster.client_on(cluster.servers[0], name="tour")

    print("== The cluster name space (Figure 8) ==")

    async def show(path, indent="  "):
        listing = await client.names.list(path)
        for name, kind, ref in listing:
            where = f" -> {ref.type_id}@{ref.ip}" if ref is not None else ""
            print(f"{indent}{path}/{name} [{kind}]{where}")

    cluster.run_async(show("svc"))

    print("\n== Replicated contexts + selectors (Figures 6-7) ==")
    listing = cluster.run_async(client.names.list_repl("svc/mds"))
    print(f"  svc/mds members: {[name for name, _k, _r in listing]}")
    chosen = cluster.run_async(client.names.resolve("svc/mds"))
    print(f"  resolve('svc/mds') selected: {chosen.ip} "
          f"(selector hides replication from clients)")

    print("\n== Per-neighbourhood + per-server static selectors (5.1) ==")
    settop = cluster.add_settop(2)
    proc = settop.spawn("tour-app")
    settop_rt = OCSRuntime(proc, cluster.net)
    settop_names = NameClient(settop_rt, cluster.server_ips, cluster.params)
    cmgr = cluster.run_async(settop_names.resolve("svc/cmgr"))
    home = cluster.server_for_neighborhood(2)
    print(f"  settop in neighborhood 2 resolves svc/cmgr -> {cmgr.ip} "
          f"(its home server is {home.ip})")
    ras = cluster.run_async(client.names.resolve("svc/ras"))
    print(f"  client on {cluster.servers[0].ip} resolves svc/ras -> {ras.ip} "
          f"(sameserver selector)")

    print("\n== A custom Selector object (Figure 6's full generality) ==")
    sel_proc = cluster.servers[2].spawn("tour-selector")
    sel_rt = OCSRuntime(sel_proc, cluster.net)
    sel_ref = sel_rt.export(PreferredMemberSelector(cluster.servers[1].name),
                            "Selector")
    cluster.run_async(client.names.bind("svc/mds/selector", sel_ref))
    chosen = cluster.run_async(client.names.resolve("svc/mds"))
    print(f"  after binding a prefer-{cluster.servers[1].name} selector: "
          f"resolve('svc/mds') -> {chosen.ip}")

    print("\n== Context handoff to another name service (4.3, class 3) ==")
    motd = cluster.run_async(
        client.names.resolve(f"files/{cluster.servers[0].ip}/etc/motd"))
    print(f"  files/<server>/etc/motd resolved across the file service "
          f"handoff: {motd.type_id} object")

    print("\n== Auditing (4.7): dead objects leave the name space ==")
    # Stop through the CSC so neither the SSC nor the CSC reconcile
    # restarts it -- we want to watch the audit remove the dead binding.
    from repro.core.control.tools import OperatorConsole
    console = OperatorConsole(client.runtime, client.names, cluster.params)
    cluster.run_async(console.stop_service("vod", cluster.servers[2].ip))
    victim_nbhds = cluster.neighborhoods_by_server[cluster.servers[2].ip]
    name = f"svc/vod/{victim_nbhds[0]}"
    t0 = cluster.now
    gone_at = None
    while cluster.now - t0 < 60.0:
        cluster.run_for(1.0)
        try:
            cluster.run_async(client.names.resolve(name))
        except Exception:  # noqa: BLE001
            gone_at = cluster.now - t0
            break
    print(f"  {name} removed {gone_at:.0f}s after its service died "
          f"(NS audit poll {cluster.params.ns_audit_poll:.0f}s + RAS "
          f"freshness)")
    print("\nTour complete.")


if __name__ == "__main__":
    main()
