"""Quickstart: bring up the Orlando-style cluster and play a movie.

Replays the paper's core flows end to end:

- section 6.3 start-up: init -> SSC -> base services -> CSC -> ITV stack
- section 3.4.1 boot: settop learns its configuration from the broadcast
- Figure 3: the Application Manager downloads the navigator via the RDS
- Figure 4: opening and playing a movie through MMS / cmgr / MDS

Run:  python examples/quickstart.py
"""

from repro.cluster import build_full_cluster
from repro.cluster.media import movie_locations


def main() -> None:
    print("== Building the cluster (3 servers, 6 neighborhoods) ==")
    cluster = build_full_cluster(n_servers=3, seed=2026)
    print(f"settled at t={cluster.now:.1f}s")
    for host, services in sorted(cluster.running_services().items()):
        print(f"  {host}: {', '.join(services)}")

    print("\n== Booting a settop in neighborhood 1 ==")
    stk = cluster.add_settop_kernel(1)
    assert cluster.boot_settops([stk]), "settop failed to boot"
    boot_took = stk.booted_at - stk.powered_on_at
    print(f"settop {stk.host.ip} booted in {boot_took:.1f}s "
          f"(kernel + boot params via broadcast)")
    tune = stk.app_manager.last_tune
    print(f"navigator downloaded: {tune['bytes']:,} bytes in "
          f"{tune['download_time']:.2f}s (cover shown at "
          f"{tune['cover_at']:.1f}s)")

    print("\n== Tuning to the VOD channel ==")
    cluster.run_async(stk.app_manager.tune(5))
    tune = stk.app_manager.last_tune
    print(f"vod app: {tune['bytes']:,} bytes in {tune['download_time']:.2f}s"
          f" -- the paper's 2-4s rich-app start (section 9.3)")

    vod = stk.app_manager.current_app
    title = "T2"
    print(f"\n== Playing {title!r} (on servers: "
          f"{', '.join(movie_locations(cluster, title))}) ==")
    cluster.run_async(vod.play(title))
    downlink = cluster.net.downlink_of(stk.host.ip)
    print(f"circuit reserved: {downlink.reserved_bps/1e6:.1f} Mbit/s of "
          f"{downlink.rate_bps/1e6:.1f}")
    cluster.run_for(30.0)
    print(f"after 30s of play: position={vod.position:.0f}s, "
          f"chunks={vod.chunks_received}")

    print("\n== Closing (section 3.4.5) ==")
    cluster.run_async(vod.stop())
    print(f"circuit released: reserved={downlink.reserved_bps:.0f} bps")
    print("\nDone.  Next: examples/failover_drill.py")


if __name__ == "__main__":
    main()
