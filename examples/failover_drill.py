"""Failure drill: replay the paper's section 3.5 failure scenarios.

Three injections against a live movie session, driven through the
chaos engine's fault vocabulary (:mod:`repro.chaos`), so every
injection is a first-class, trace-logged ``Fault`` record:

1. MDS crash (3.5.2)  -- the app detects the stream stall and reopens.
2. MMS stop (3.5.3)   -- a ``stop_service`` fault takes the primary
   down *without* the local SSC resurrecting it; the backup wins the
   bind race within the 25 s bound and rebuilds its state from the MDSs.
3. settop crash (3.5.1) -- the MMS, polling the RAS, reclaims the ATM
   circuit and the disk stream.

Run:  python examples/failover_drill.py
"""

from repro.chaos import Fault, FaultInjector
from repro.cluster import build_full_cluster
from repro.metrics.availability import AvailabilityTimeline
from repro.sim.rand import SeededRandom


def find_pumping_mds(cluster):
    for index, host in enumerate(cluster.servers):
        proc = host.find_process("mds")
        if proc is not None and any("pump" in t.name for t in proc._tasks):
            return index
    return None


def main() -> None:
    cluster = build_full_cluster(n_servers=3, seed=404)
    injector = FaultInjector(cluster, SeededRandom(404).stream("drill"))
    stk = cluster.add_settop_kernel(1)
    assert cluster.boot_settops([stk])
    cluster.run_async(stk.app_manager.tune(5))
    vod = stk.app_manager.current_app

    print("== Scenario 1: MDS process crash while playing (section 3.5.2) ==")
    cluster.run_async(vod.play("T2"))
    cluster.run_for(10.0)
    stream = AvailabilityTimeline(cluster.kernel)
    victim = find_pumping_mds(cluster)
    print(f"t={cluster.now:.0f}s: killing mds on {cluster.servers[victim].name}"
          f" at position {vod.position:.0f}s")
    injector.inject(Fault(0.0, "kill_service",
                          {"server": victim, "service": "mds"}))
    stream.mark_down()
    while not vod.playing and cluster.now < 200:
        cluster.run_for(1.0)
    for _ in range(120):
        cluster.run_for(1.0)
        if vod.playing and vod.interruptions:
            break
    stream.mark_up()
    outage = vod.interruptions[-1]["outage"] if vod.interruptions else 0.0
    print(f"t={cluster.now:.0f}s: playback recovered at position "
          f"{vod.position:.0f}s after ~{outage:.0f}s interruption "
          f"(stall detection + reopen)\n")

    print("== Scenario 2: MMS fail-over (section 3.5.3, 25s bound) ==")
    client = cluster.client_on(cluster.servers[2], name="drill")

    async def mms_host():
        ref = await client.names.resolve("svc/mms")
        status = await client.runtime.invoke(ref, "status", ())
        return status["host"], status["sessions"]

    host, sessions = cluster.run_async(mms_host())
    print(f"t={cluster.now:.0f}s: MMS primary on {host} with {sessions} "
          f"session(s)")
    primary = next(i for i, h in enumerate(cluster.servers) if h.name == host)
    injector.inject(Fault(0.0, "stop_service",
                          {"server": primary, "service": "mms"}))
    t_fail = cluster.now
    new_host = host
    while new_host == host and cluster.now - t_fail < 60:
        cluster.run_for(1.0)
        try:
            new_host, sessions = cluster.run_async(mms_host())
        except Exception:  # noqa: BLE001 - window with no binding
            continue
    print(f"t={cluster.now:.0f}s: backup on {new_host} took over in "
          f"{cluster.now - t_fail:.0f}s (bound: "
          f"{cluster.params.max_failover:.0f}s) and recovered "
          f"{sessions} session(s) by querying the MDSs\n")

    print("== Scenario 3: settop crash -> resource reclamation (3.5.1) ==")
    downlink = cluster.net.downlink_of(stk.host.ip)
    print(f"t={cluster.now:.0f}s: settop crashes holding "
          f"{downlink.reserved_bps/1e6:.0f} Mbit/s of circuit")
    injector.inject(Fault(0.0, "crash_settop",
                          {"settop": cluster.settops.index(stk.host)}))
    t_crash = cluster.now
    while downlink.reserved_bps > 0 and cluster.now - t_crash < 120:
        cluster.run_for(1.0)
    print(f"t={cluster.now:.0f}s: circuit reclaimed "
          f"{cluster.now - t_crash:.0f}s after the crash "
          f"(settop-death detection + RAS poll + MMS audit poll)")
    _host, sessions = cluster.run_async(mms_host())
    print(f"MMS sessions now: {sessions}")
    print(f"faults injected: {len(injector.injected)} "
          f"({', '.join(f.kind for f in injector.injected)})")
    print("\nAll three section 3.5 scenarios covered.")


if __name__ == "__main__":
    main()
