"""Object references (paper section 3.2.1).

The deployed system's remote representation contained exactly these
fields; the comments quote the paper's own description of each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

# Wildcard incarnation for persistent, restart-surviving references.  The
# paper: "With a few exceptions, notably the name service, object
# references are only good as long as the implementor of the object
# reference is alive."  Name-service bootstrap references (the IP handed
# to a settop at boot) use this wildcard so they remain valid across name
# service restarts.
ANY_INCARNATION: Tuple[float, int] = (-1.0, -1)


@dataclass(frozen=True)
class ObjectRef:
    """Denotes a particular object; identifies the same object each use."""

    # "IP address and port number of the server process implementing the
    # object"
    ip: str
    port: int
    # "timestamp, used to prevent use of this reference after the
    # implementing process dies" -- our incarnation is (boot time, pid).
    incarnation: Tuple[float, int]
    # "object type identifier, used to determine the object's type at
    # runtime"
    type_id: str
    # "object id, which identifies this object amongst those defined by
    # the implementing process.  Typically the object id is null, because
    # most services export only one object."
    object_id: str = ""

    # Marshaled size hint consumed by repro.idl.types.estimated_size.
    wire_size = 64

    def same_implementor(self, other: "ObjectRef") -> bool:
        """Do two references point into the same process incarnation?"""
        return (self.ip == other.ip and self.port == other.port
                and self.incarnation == other.incarnation)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        oid = f"/{self.object_id}" if self.object_id else ""
        return f"<ObjectRef {self.type_id}@{self.ip}:{self.port}{oid}>"
