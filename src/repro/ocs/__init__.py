"""OCS object exchange layer: distributed objects over the simulated net.

This is the base of the paper's Object Communication System (section 3.2):
object references that uniquely identify an object and die with their
implementing process, client stubs that turn method calls into remote
invocations, and server-side dispatch with per-call caller identity.
"""

from repro.ocs.exceptions import (
    AuthError,
    CallTimeout,
    CommFailure,
    InvalidObjectReference,
    OCSError,
    RemoteException,
    ServiceUnavailable,
)
from repro.ocs.objref import ObjectRef
from repro.ocs.runtime import CallContext, OCSRuntime, Stub

__all__ = [
    "AuthError",
    "CallContext",
    "CallTimeout",
    "CommFailure",
    "InvalidObjectReference",
    "OCSError",
    "OCSRuntime",
    "ObjectRef",
    "RemoteException",
    "ServiceUnavailable",
    "Stub",
]
