"""OCS object exchange layer: distributed objects over the simulated net.

This is the base of the paper's Object Communication System (section 3.2):
object references that uniquely identify an object and die with their
implementing process, client stubs that turn method calls into remote
invocations, and server-side dispatch with per-call caller identity.
"""

# The transport names the application layer (services/, settop/) is
# allowed to touch.  Linter rule D006 forbids those packages importing
# repro.net directly; everything they legitimately need -- the datagram
# type, the network handle they are handed at construction, reservation
# failures, and the neighborhood topology helper -- is re-exported here
# as part of the object layer's sanctioned surface.
from repro.net.address import neighborhood_of
from repro.net.link import ReservationError
from repro.net.message import Message
from repro.net.network import Network
from repro.ocs.admission import AdmissionGate
from repro.ocs.exceptions import (
    AuthError,
    CallTimeout,
    CommFailure,
    DeadlineExceeded,
    InvalidObjectReference,
    OCSError,
    Overloaded,
    RemoteException,
    ServiceUnavailable,
    StaleReference,
)
from repro.ocs.objref import ObjectRef
from repro.ocs.runtime import CallContext, OCSRuntime, Stub

__all__ = [
    "AdmissionGate",
    "AuthError",
    "CallContext",
    "CallTimeout",
    "CommFailure",
    "DeadlineExceeded",
    "InvalidObjectReference",
    "Message",
    "Network",
    "OCSError",
    "OCSRuntime",
    "ObjectRef",
    "Overloaded",
    "RemoteException",
    "ReservationError",
    "ServiceUnavailable",
    "StaleReference",
    "Stub",
    "neighborhood_of",
]
