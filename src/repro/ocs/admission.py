"""Per-service admission control: bounded inflight + bounded queue.

The paper's VOD servers capped out near 1,000 settops each (section 9.2)
and relied on Selectors (section 5.1) plus RAS load data to spread work.
A saturated replica that keeps accepting calls defeats both: queues grow
without bound, every caller waits its full timeout, and the name service
keeps routing new work at the slowest member.

:class:`AdmissionGate` bounds the damage at the server.  A call is
*admitted* only while inflight executions are below ``max_inflight``
*and* the wait queue is below ``max_queue``; otherwise it is shed
immediately with :class:`~repro.ocs.exceptions.Overloaded` carrying a
``retry_after`` hint.  That admits at most ``max_inflight + max_queue``
outstanding calls at any instant -- the bound the queue-depth chaos
monitor holds the system to.  Shedding is cheap (one reply message, no
servant work) and gives the client library a signal to steer its retry
at a different replica.
"""

from __future__ import annotations

from repro.core.params import Params


class AdmissionGate:
    """Inflight/queue accounting for one service's OCS runtime.

    The runtime calls :meth:`try_admit` before enqueueing a call,
    :meth:`begin` when the servant starts executing, and :meth:`done`
    when it finishes (including error paths).  Between admit and begin
    the call counts as *queued*; between begin and done as *inflight*.
    """

    __slots__ = ("service", "max_inflight", "max_queue", "inflight",
                 "queued", "admitted", "shed_count", "peak_queue",
                 "peak_inflight", "retry_after")

    def __init__(self, service: str, params: Params):
        self.service = service
        self.max_inflight = params.admission_max_inflight
        self.max_queue = params.admission_max_queue
        self.retry_after = params.admission_retry_after
        self.inflight = 0
        self.queued = 0
        self.admitted = 0
        self.shed_count = 0
        self.peak_queue = 0
        self.peak_inflight = 0

    def try_admit(self) -> bool:
        """Admit (and count as queued) or shed the incoming call."""
        if self.inflight >= self.max_inflight or self.queued >= self.max_queue:
            self.shed_count += 1
            return False
        self.queued += 1
        self.admitted += 1
        if self.queued > self.peak_queue:
            self.peak_queue = self.queued
        return True

    def begin(self) -> None:
        """An admitted call left the queue and started executing."""
        if self.queued > 0:
            self.queued -= 1
        self.inflight += 1
        if self.inflight > self.peak_inflight:
            self.peak_inflight = self.inflight

    def done(self) -> None:
        """The servant finished (normally or with an error)."""
        if self.inflight > 0:
            self.inflight -= 1

    def drop_queued(self) -> None:
        """An admitted call was rejected before executing (expired)."""
        if self.queued > 0:
            self.queued -= 1

    def load(self) -> float:
        """Occupancy in [0, ~2]: 1.0 means inflight capacity is full."""
        capacity = max(1, self.max_inflight)
        return (self.inflight + self.queued) / capacity

    def shedding(self) -> bool:
        return (self.inflight >= self.max_inflight
                or self.queued >= self.max_queue)

    def gauges(self) -> dict:
        """Snapshot for RAS reporting and the chaos monitors."""
        return {
            "load": self.load(),
            "inflight": self.inflight,
            "queue_depth": self.queued,
            "shedding": self.shedding(),
            "shed_count": self.shed_count,
        }


def coalesce_gauges(gauges_by_service: dict) -> dict:
    """Roll per-service gate gauges up into one server-level snapshot.

    Used by the SSC's aggregated load report (PR 5): the wire carries
    one batch per server per interval, and this rollup rides along so
    operators and monitors get a single server-health number without
    re-deriving it.  Keys mirror :meth:`AdmissionGate.gauges`.
    """
    rollup = {"load": 0.0, "inflight": 0, "queue_depth": 0,
              "shedding": False, "shed_count": 0, "services": 0,
              "repl_lag": 0}
    for name in sorted(gauges_by_service):
        g = gauges_by_service[name]
        rollup["load"] = max(rollup["load"], g.get("load", 0.0))
        rollup["inflight"] += g.get("inflight", 0)
        rollup["queue_depth"] += g.get("queue_depth", 0)
        rollup["shedding"] = rollup["shedding"] or bool(g.get("shedding"))
        rollup["shed_count"] += g.get("shed_count", 0)
        rollup["services"] += 1
        # Replicated services report their change-log lag (PR 7); the
        # server-level number is the worst replica on this host.
        rollup["repl_lag"] = max(rollup["repl_lag"], g.get("repl_lag", 0))
    return rollup
