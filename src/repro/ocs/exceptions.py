"""OCS exception hierarchy.

The split that matters to availability code is :class:`ServiceUnavailable`
vs everything else: the paper's client library (section 8.2) rebinds
through the name service exactly when an invocation fails because the
implementor is gone -- not when the application itself raised an error.
"""


class OCSError(Exception):
    """Base class for all OCS-level errors."""


class ServiceUnavailable(OCSError):
    """The invoked object cannot currently provide service.

    Subclasses distinguish *why*, but the recovery action is the same:
    obtain a fresh object reference from the name service and retry.
    """


class CommFailure(ServiceUnavailable):
    """No reply: host down, network partition, or message loss."""


class CallTimeout(CommFailure):
    """The per-call deadline elapsed with no reply."""


class InvalidObjectReference(ServiceUnavailable):
    """The reference's implementor has died or unexported the object.

    Raised when the destination port is unbound (process exited), the
    incarnation timestamp is stale (process restarted), or the object id
    is no longer exported (section 3.2.1).
    """


class StaleReference(InvalidObjectReference):
    """The endpoint is alive but the reference's incarnation is old.

    The implementor process was restarted (new incarnation timestamp)
    since this reference was minted, so the reference names a previous
    life of the object.  This is the signal the paper's lazy validation
    scheme (section 3.2.1) relies on: references may be cached
    indefinitely because a stale one raises on next use, at which point
    the client drops its cached binding and re-resolves.
    """


class DiskWedged(ServiceUnavailable):
    """The servant's host disk is wedged (PR 8 storage fault model).

    Shares its name with ``repro.sim.host.DiskWedged`` on purpose: when a
    servant's storage I/O raises the sim-level error, the wire form is
    keyed by the exception class *name*, and the client side materialises
    this class instead -- so a caller sees a wedged replica as just
    another retryable unavailability and rebinds elsewhere, exactly the
    recovery the paper's client library prescribes for a gone
    implementor.  (Registered in ``repro.core.replication`` alongside
    ``NotPrimary``.)
    """


class Overloaded(ServiceUnavailable):
    """The servant's admission gate shed this call (PR 4, paper section 5.1).

    The replica is alive but saturated: its inflight + queued work is at
    capacity.  ``retry_after`` is the server's hint for how long a client
    should cool down before retrying *this* replica; the rebind layer
    uses it to steer the retry at a different replica instead.
    """

    def __init__(self, detail: str = "", retry_after: float = 0.0):
        super().__init__(detail)
        self.retry_after = retry_after


class DeadlineExceeded(OCSError):
    """The invocation's absolute deadline passed before useful work ran.

    Deliberately *not* a :class:`ServiceUnavailable`: rebinding to a
    different replica cannot help a caller whose time budget is already
    spent.  Raised client-side when the budget expires before send and
    server-side when expired work is rejected at or after dequeue.
    """


class RemoteException(OCSError):
    """The servant raised an exception type not registered for the wire."""


class AuthError(OCSError):
    """The call's credentials failed verification (section 3.3)."""
