"""OCS exception hierarchy.

The split that matters to availability code is :class:`ServiceUnavailable`
vs everything else: the paper's client library (section 8.2) rebinds
through the name service exactly when an invocation fails because the
implementor is gone -- not when the application itself raised an error.
"""


class OCSError(Exception):
    """Base class for all OCS-level errors."""


class ServiceUnavailable(OCSError):
    """The invoked object cannot currently provide service.

    Subclasses distinguish *why*, but the recovery action is the same:
    obtain a fresh object reference from the name service and retry.
    """


class CommFailure(ServiceUnavailable):
    """No reply: host down, network partition, or message loss."""


class CallTimeout(CommFailure):
    """The per-call deadline elapsed with no reply."""


class InvalidObjectReference(ServiceUnavailable):
    """The reference's implementor has died or unexported the object.

    Raised when the destination port is unbound (process exited), the
    incarnation timestamp is stale (process restarted), or the object id
    is no longer exported (section 3.2.1).
    """


class RemoteException(OCSError):
    """The servant raised an exception type not registered for the wire."""


class AuthError(OCSError):
    """The call's credentials failed verification (section 3.3)."""
