"""The per-process OCS runtime: export, dispatch, and remote invocation.

One :class:`OCSRuntime` exists per simulated process (the paper's "OCS
runtime" that IDL-generated stubs call into).  It owns a network port,
the table of exported objects, and the table of in-flight outgoing calls.
When the process dies the port is unbound, so peers invoking stale
references get a fast ``port_unreachable`` and raise
:class:`InvalidObjectReference` -- the paper's "the client will detect
this on the next attempt to use the object reference".
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.idl.interface import InterfaceDef, MethodDef, lookup_interface
from repro.idl.types import estimated_size, resolve_exception
from repro.net.message import (
    CHECKSUM_BYTES,
    DEADLINE_BYTES,
    REQUEST_ID_BYTES,
    Message,
)
from repro.net.network import Network
from repro.ocs.admission import AdmissionGate
from repro.ocs.replycache import ReplyCache
from repro.ocs.exceptions import (
    AuthError,
    CallTimeout,
    DeadlineExceeded,
    InvalidObjectReference,
    OCSError,
    Overloaded,
    RemoteException,
    StaleReference,
)
from repro.ocs.objref import ANY_INCARNATION, ObjectRef
from repro.sim.errors import CancelledError
from repro.sim.host import Process
from repro.sim.kernel import Future, Queue

DEFAULT_CALL_TIMEOUT = 3.0

# Section 3.3: "Calls and returns can optionally be signed and/or
# encrypted.  By default, calls are signed but not encrypted; this allows
# the server to authenticate a customer without entailing the overhead of
# encryption."  Signing cost is part of the fixed header; encryption adds
# padding + cipher framing per message.
ENCRYPTION_OVERHEAD_BYTES = 48

_port_counter = [9999]


def _next_port() -> int:
    _port_counter[0] += 1
    return _port_counter[0]


def reset_port_counter() -> None:
    """Restart port allocation; call when a fresh simulation run begins
    (see repro.sim.host.reset_pid_counter for why)."""
    _port_counter[0] = 9999


def allocate_port() -> int:
    """Allocate a fresh port for raw (non-OCS) traffic, e.g. the data
    port a settop application receives movie chunks on."""
    return _next_port()


@dataclass(frozen=True)
class CallContext:
    """Per-call caller identity handed to every servant method.

    Replaces Spring-style per-client capability objects: "each incoming
    call on an object contains the caller's identity and it is up to the
    service to determine if the caller is allowed to invoke the desired
    operation" (section 9.2).
    """

    caller: str
    caller_ip: str
    authenticated: bool = False
    encrypted: bool = False
    # The call envelope's absolute deadline (every call carries one:
    # explicit when the caller propagated a budget, now + timeout
    # otherwise).  Servants that issue downstream calls on the caller's
    # behalf pass this along so expiry stays end-to-end (rule P005).
    deadline: Optional[float] = None


@dataclass
class _Export:
    servant: Any
    interface: InterfaceDef
    single_threaded: bool = False
    queue: Optional[Queue] = None
    #: at-most-once dedup for this export's non-idempotent two-way
    #: methods.  Opting out (reply_cache=False) is only legitimate when
    #: every such method is declared idempotent -- lint rule P006.
    reply_cache: bool = True


@dataclass
class _PendingCall:
    future: Future
    msg_id: int
    method: str
    timeout_handle: Any
    deadline: Optional[float] = None


class OCSRuntime:
    """Object adapter + transport endpoint for one process."""

    #: process-global falsifiability knobs (PR 9), flipped by the
    #: sabotage fixtures the way broken_quorum() swaps a class property:
    #: ``dedup_enabled=False`` builds runtimes without a reply cache
    #: (retries double-execute -- what the at_most_once monitor must
    #: catch); ``checksum_guard=False`` dispatches corrupt frames.
    dedup_enabled: bool = True
    checksum_guard: bool = True
    reply_cache_capacity: int = 512

    def __init__(self, process: Process, network: Network,
                 principal: Optional[str] = None, port: Optional[int] = None):
        self.process = process
        self.network = network
        self.kernel = process.kernel
        self.ip = process.host.ip
        if self.ip is None:
            raise OCSError(f"host {process.host.name} is not attached to a network")
        # Well-known ports are used by bootstrap services (the name
        # service); everything else gets a fresh ephemeral port per
        # incarnation.
        self.port = port if port is not None else _next_port()
        self.principal = principal or f"{process.name}@{process.host.name}"
        # Optional security hooks installed by repro.auth: credentials are
        # attached to outgoing calls, the verifier checks incoming ones.
        self.credentials: Any = None
        self.verifier: Optional[Callable[[Any, str], bool]] = None
        self._exports: Dict[str, _Export] = {}
        self._pending: Dict[int, _PendingCall] = {}
        self._msgid_to_call: Dict[int, int] = {}
        self._call_counter = 0
        self.calls_sent = 0
        self.calls_served = 0
        # Overload controls (PR 4).  ``admission`` is installed by
        # services that opt into load shedding; ``servant_lag`` is a
        # chaos knob (slow_consumer fault) that delays every servant
        # between dequeue and execution so queues genuinely build.
        self.admission: Optional[AdmissionGate] = None
        self.servant_lag: float = 0.0
        # ``reject_expired`` is the deadline guard this PR adds; tests
        # flip it off to prove the expired-work monitor is falsifiable.
        self.reject_expired: bool = True
        self.deadline_rejects = 0
        self.expired_executions = 0
        # At-most-once machinery (PR 9): the reply cache dedups retried
        # request ids in front of non-idempotent dispatch, and the
        # checksum guard drops corrupt frames before they reach it.
        self.reply_cache: Optional[ReplyCache] = (
            ReplyCache(self.reply_cache_capacity) if self.dedup_enabled
            else None)
        self.verify_checksums: bool = self.checksum_guard
        self.corrupt_dropped = 0
        self.corrupt_dispatched = 0
        network.bind_port(self.ip, self.port, self._on_message)
        process.on_exit(self._on_process_exit)
        process.attachments["ocs"] = self
        hb = self.kernel.hb_log
        if hb is not None:
            # Teach the happens-before analyzer which (host, pid) actor
            # answers on this endpoint; later binds win, matching port
            # reuse across process incarnations.
            hb.emit("hb", "bind", ep=f"{self.ip}:{self.port}",
                    actor=self.hb_actor)

    @property
    def hb_actor(self) -> str:
        """This process's identity in the happens-before graph."""
        return f"{self.ip}/{self.process.pid}"

    @property
    def client_id(self) -> str:
        """This process's identity in request ids.

        Pids are monotonic and never reused within a run, so the pair
        ``(client_id, call_seq)`` names one logical request uniquely for
        the lifetime of the simulation.
        """
        return self.hb_actor

    def next_request_id(self) -> Tuple[str, int]:
        """Mint a request id for one *logical* call.

        Retry loops (``RebindingProxy``) mint one id up front and pass
        it to every :meth:`invoke` attempt, so a server that already
        executed the first attempt recognizes the retry.
        """
        self._call_counter += 1
        return (self.client_id, self._call_counter)

    def hb_write(self, var: str, ver: Optional[str] = None) -> None:
        """Record a mutation of shared cluster state for the race
        detector (no-op unless the run carries an hb sink)."""
        hb = self.kernel.hb_log
        if hb is not None:
            hb.emit("hb", "write", actor=self.hb_actor, var=var, ver=ver)

    # -- server side ---------------------------------------------------

    def export(self, servant: Any, type_id: str, object_id: str = "",
               single_threaded: bool = False,
               reply_cache: bool = True) -> ObjectRef:
        """Make ``servant`` invocable as an object of type ``type_id``.

        Most services export exactly one object with a null object id
        (paper section 9.2); dynamically created objects (MDS movie
        objects, naming contexts) pass an explicit ``object_id``.
        ``single_threaded`` serializes calls through a queue, modelling
        the paper's single-threaded services that could not answer pings
        while busy (section 7.2).  ``reply_cache=False`` skips at-most-
        once dedup for this export -- legitimate only when every two-way
        method is declared idempotent (lint rule P006).
        """
        iface = lookup_interface(type_id)
        if object_id in self._exports:
            raise OCSError(
                f"object id {object_id!r} already exported by {self.process.name}")
        export = _Export(servant=servant, interface=iface,
                         single_threaded=single_threaded,
                         reply_cache=reply_cache)
        if single_threaded:
            export.queue = Queue(self.kernel)
            self.process.create_task(
                self._single_thread_worker(export), name=f"st-{type_id}").detach()
        self._exports[object_id] = export
        return ObjectRef(ip=self.ip, port=self.port,
                         incarnation=self.process.incarnation,
                         type_id=type_id, object_id=object_id)

    def unexport(self, object_id: str = "") -> None:
        self._exports.pop(object_id, None)

    def is_exported(self, object_id: str = "") -> bool:
        return object_id in self._exports

    # -- client side -----------------------------------------------------

    def stub(self, ref: ObjectRef) -> "Stub":
        """Build a typed client stub for ``ref``."""
        return Stub(self, ref)

    def invoke(self, ref: Optional[ObjectRef], method: str, args: tuple = (),
               timeout: float = DEFAULT_CALL_TIMEOUT,
               encrypted: bool = False,
               deadline: Optional[float] = None,
               request_id: Optional[Tuple[str, int]] = None) -> Future:
        """Invoke ``method`` on the remote object; returns a future.

        Every call carries an absolute deadline in its message envelope:
        ``deadline`` if the caller propagates one, else ``now + timeout``.
        It also carries a ``(client_id, call_seq)`` request id -- minted
        fresh here unless the caller passes one, which is how a retry
        identifies itself as the *same* logical request so the server's
        reply cache can dedup it (at-most-once execution).
        Raises (through the future) :class:`InvalidObjectReference` when
        the implementor has died, :class:`CallTimeout` when no reply
        arrives, :class:`DeadlineExceeded` when the budget expires, or
        the servant's own registered exception type.
        """
        fut = self.kernel.create_future()
        if ref is None:
            fut.set_exception(InvalidObjectReference("nil object reference"))
            return fut
        try:
            iface = lookup_interface(ref.type_id)
            mdef = iface.method(method)
            mdef.check_args(args)
        except Exception as err:  # noqa: BLE001 - surface through the future
            fut.set_exception(err)
            return fut
        now = self.kernel.now
        # ``hard`` distinguishes a deadline the caller explicitly
        # propagated (its expiry is DeadlineExceeded -- rebinding cannot
        # help) from one derived from the per-attempt timeout (its
        # expiry stays CallTimeout so rebind loops retry as before).
        hard = deadline is not None
        if deadline is None:
            deadline = now + timeout
        else:
            # A propagated deadline bounds the per-attempt timer too: no
            # point waiting for a reply past the caller's total budget.
            timeout = min(timeout, deadline - now)
        if deadline <= now:
            # Budget already spent: fail fast without burning the wire.
            fut.set_exception(DeadlineExceeded(
                f"deadline passed before invoking {method}"))
            return fut
        self._call_counter += 1
        call_id = self._call_counter
        self.calls_sent += 1
        if request_id is None:
            request_id = (self.client_id, call_id)
        payload = {
            "call_id": call_id,
            "request_id": request_id,
            "object_id": ref.object_id,
            "incarnation": ref.incarnation,
            "type_id": ref.type_id,
            "method": method,
            "args": args,
            "caller": self.principal,
            "credentials": self.credentials,
            "encrypted": encrypted,
        }
        wire_bytes = (estimated_size(args) + DEADLINE_BYTES
                      + REQUEST_ID_BYTES + CHECKSUM_BYTES)
        if encrypted:
            wire_bytes += ENCRYPTION_OVERHEAD_BYTES
        msg = Message(
            src=(self.ip, self.port), dst=(ref.ip, ref.port),
            kind=f"rpc.call.{ref.type_id}.{method}",
            payload=payload, payload_bytes=wire_bytes, deadline=deadline)
        if mdef.oneway:
            self.network.send(msg)
            fut.set_result(None)
            return fut
        handle = self.kernel.call_later(timeout, self._on_timeout, call_id)
        self._pending[call_id] = _PendingCall(
            future=fut, msg_id=msg.msg_id, method=method,
            timeout_handle=handle, deadline=deadline if hard else None)
        self._msgid_to_call[msg.msg_id] = call_id
        self.network.send(msg)
        return fut

    # -- message handling ---------------------------------------------------

    def _on_message(self, msg: Message) -> None:
        if not self.process.alive:
            return
        if msg.corrupted:
            if self.verify_checksums:
                # The payload checksum fails: drop the frame before any
                # dispatch.  The sender's timeout machinery retries under
                # the same request id, so the op still happens once.
                self.corrupt_dropped += 1
                trace = self.network.trace
                if trace is not None:
                    trace.emit("net", "corrupt_dropped",
                               dst=f"{self.ip}:{self.port}", kind=msg.kind)
                return
            # Guard disabled (sabotage only): the corrupt frame reaches
            # dispatch, which is precisely what E18 asserts never happens
            # with the guard on.
            self.corrupt_dispatched += 1
        if msg.kind.startswith("rpc.call."):
            self._handle_call(msg)
        elif msg.kind.startswith("rpc.reply"):
            # Replies are consumed synchronously by the dispatch above
            # (result/error values are extracted, never the envelope), so
            # the envelope goes back to the free list here.  Call
            # envelopes are NOT released: servants park them in queues,
            # reply-cache waiter lists and async frames.
            self._handle_reply(msg)
            msg.release()
        elif msg.kind == "port_unreachable":
            self._handle_unreachable(msg)
            msg.release()

    def _handle_call(self, msg: Message) -> None:
        payload = msg.payload
        call_id = payload["call_id"]
        object_id = payload["object_id"]
        export = self._exports.get(object_id)
        incarnation_ok = (payload["incarnation"] == self.process.incarnation
                          or payload["incarnation"] == ANY_INCARNATION)
        if export is None or not incarnation_ok:
            if export is not None:
                # The object id is exported, but by a newer incarnation
                # of this process: the caller holds a reference into a
                # previous life.  Distinguishing this lets binding
                # caches invalidate precisely (coherence by exception).
                self._reply_error(msg, call_id, "StaleReference",
                                  f"stale incarnation for {object_id!r}")
            else:
                self._reply_error(msg, call_id,
                                  "InvalidObjectReference",
                                  f"no live object {object_id!r} here")
            return
        if self.verifier is not None:
            if not self.verifier(payload.get("credentials"), payload["caller"]):
                self._reply_error(msg, call_id, "AuthError",
                                  f"bad credentials from {payload['caller']}")
                return
        ctx = CallContext(caller=payload["caller"], caller_ip=msg.src[0],
                          authenticated=self.verifier is not None,
                          encrypted=bool(payload.get("encrypted")),
                          deadline=msg.deadline)
        if (self.reject_expired and msg.deadline is not None
                and self.kernel.now >= msg.deadline):
            # Pre-enqueue deadline check: the call expired in flight, so
            # queueing it would only burn servant time on work nobody is
            # waiting for.  The error reply resolves the caller's future
            # (it may race the caller's own deadline timer; first wins).
            self.deadline_rejects += 1
            self._reply_error(msg, call_id, "DeadlineExceeded",
                              f"{payload['method']} expired before dispatch")
            return
        key = self._dedup_key(payload, export)
        if key is not None:
            # At-most-once gate: a retried or duplicated request id is
            # answered from the reply cache (or parked on the inflight
            # execution) instead of reaching the servant again.  Sits in
            # front of admission: a replay costs no servant time, so it
            # must not burn (or leak) an admission slot.
            action, entry = self.reply_cache.begin(key[0], key[1])
            if action == "replay":
                self._send_record(msg, call_id, entry.reply,
                                  bool(payload.get("encrypted")))
                return
            if action == "inflight":
                entry.waiters.append((msg, call_id))
                return
            if action == "stale":
                return   # evicted duplicate: drop, never re-execute
        if self.admission is not None and not self.admission.try_admit():
            if key is not None:
                # The begin() above recorded an inflight entry for a call
                # that will now never run; forget it so the client's next
                # retry can execute.
                self.reply_cache.abort(key[0], key[1])
            self._reply_error(
                msg, call_id, "Overloaded",
                f"{self.admission.service} shedding at "
                f"inflight={self.admission.inflight} "
                f"queued={self.admission.queued}",
                retry_after=self.admission.retry_after)
            return
        if export.single_threaded:
            export.queue.put((msg, ctx, export))
        else:
            self.process.create_task(
                self._run_servant(msg, ctx, export),
                name=f"serve-{payload['method']}").detach()

    async def _single_thread_worker(self, export: _Export) -> None:
        while True:
            msg, ctx, exp = await export.queue.get()
            await self._run_servant(msg, ctx, exp)

    async def _run_servant(self, msg: Message, ctx: CallContext,
                           export: _Export) -> None:
        payload = msg.payload
        call_id = payload["call_id"]
        method_name = payload["method"]
        mdef = export.interface.method(method_name)
        oneway = mdef.oneway
        gate = self.admission
        if self.servant_lag > 0:
            # slow_consumer fault: the servant is slow to pick work off
            # its queue, so admitted calls sit queued while the lag
            # elapses -- exactly the state the deadline and queue-bound
            # monitors must cope with.
            await self.kernel.sleep(self.servant_lag)
        if msg.deadline is not None and self.kernel.now >= msg.deadline:
            # Post-dequeue deadline check: the call expired while it sat
            # in the queue.  Reject instead of executing dead work.
            if self.reject_expired:
                if gate is not None:
                    gate.drop_queued()
                self.deadline_rejects += 1
                # The request never executed: forget its inflight reply-
                # cache entry so a retry can run, and give any parked
                # duplicates the same expiry verdict.
                key = self._dedup_key(payload, export)
                if key is not None:
                    for wmsg, wcall_id in self.reply_cache.abort(*key):
                        self._reply_error(wmsg, wcall_id, "DeadlineExceeded",
                                          f"{method_name} expired in queue")
                if not oneway:
                    self._reply_error(msg, call_id, "DeadlineExceeded",
                                      f"{method_name} expired in queue")
                return
            # Guard disabled (tests only): the expired call runs anyway,
            # which is precisely what the expired_work monitor flags.
            self.expired_executions += 1
        if gate is not None:
            gate.begin()
        self.calls_served += 1
        record: Optional[Dict[str, Any]] = None
        try:
            try:
                self._note_effect(payload, mdef)
                handler = getattr(export.servant, method_name, None)
                if handler is None:
                    raise RemoteException(
                        f"servant for {export.interface.name} does not implement "
                        f"{method_name}")
                result = handler(ctx, *payload["args"])
                if hasattr(result, "__await__"):
                    result = await result
                record = {"ok": True, "result": result}
            except CancelledError:
                # The process died mid-call; the caller must observe silence
                # (and eventually a timeout), not a marshaled cancellation.
                raise
            except Exception as err:  # noqa: BLE001 - marshal back to caller
                if oneway:
                    return
                name = type(err).__name__
                if resolve_exception(name) is None and not isinstance(err, OCSError):
                    detail = "".join(traceback.format_exception_only(type(err), err))
                    record = {"ok": False, "error": "RemoteException",
                              "detail": detail.strip()}
                else:
                    record = {"ok": False, "error": name, "detail": str(err)}
        finally:
            if gate is not None:
                gate.done()
        if oneway:
            return
        # The executed outcome (result *or* marshaled exception) is what
        # this request id did; cache it and answer everyone waiting on it.
        waiters = []
        key = self._dedup_key(payload, export)
        if key is not None:
            waiters = self.reply_cache.complete(key[0], key[1], record)
        self._send_record(msg, call_id, record, bool(payload.get("encrypted")))
        for wmsg, wcall_id in waiters:
            self._send_record(wmsg, wcall_id, record,
                              bool(wmsg.payload.get("encrypted")))

    def _dedup_key(self, payload: Dict[str, Any],
                   export: _Export) -> Optional[Tuple[str, int]]:
        """The reply-cache key for this call, or None when dedup does
        not apply (no request id, cache disabled, export opted out, or
        the method is oneway/idempotent)."""
        request_id = payload.get("request_id")
        if (request_id is None or self.reply_cache is None
                or not export.reply_cache):
            return None
        mdef = export.interface.method(payload["method"])
        if mdef.oneway or mdef.idempotent:
            return None
        return (request_id[0], request_id[1])

    def _note_effect(self, payload: Dict[str, Any], mdef: MethodDef) -> None:
        """Stamp a non-idempotent execution into the kernel's effect
        ledger (chaos runs only) -- the at_most_once monitor's evidence."""
        if mdef.oneway or mdef.idempotent:
            return
        request_id = payload.get("request_id")
        if request_id is None:
            return
        ledger = self.kernel.effect_ledger
        if ledger is not None:
            ledger.record((request_id[0], request_id[1]),
                          actor=self.hb_actor,
                          method=f"{payload['type_id']}.{payload['method']}",
                          at=self.kernel.now)

    def _send_record(self, msg: Message, call_id: int, record: Dict[str, Any],
                     encrypted: bool) -> None:
        """Send one executed outcome (fresh or replayed) as a reply."""
        if record["ok"]:
            result = record["result"]
            reply_bytes = estimated_size(result) + CHECKSUM_BYTES
            if encrypted:
                # Returns are protected the same way the call was.
                reply_bytes += ENCRYPTION_OVERHEAD_BYTES
            reply = Message.acquire(
                src=(self.ip, self.port), dst=msg.src,
                kind="rpc.reply",
                payload={"call_id": call_id, "ok": True, "result": result},
                payload_bytes=reply_bytes)
            self.network.send(reply)
        else:
            self._reply_error(msg, call_id, record["error"], record["detail"])

    def _reply_error(self, msg: Message, call_id: int, exc_name: str,
                     detail: str, retry_after: Optional[float] = None) -> None:
        payload = {"call_id": call_id, "ok": False,
                   "error": exc_name, "detail": detail}
        if retry_after is not None:
            payload["retry_after"] = retry_after
        reply = Message.acquire(
            src=(self.ip, self.port), dst=msg.src, kind="rpc.reply.error",
            payload=payload,
            payload_bytes=estimated_size(detail) + CHECKSUM_BYTES)
        self.network.send(reply)

    def _handle_reply(self, msg: Message) -> None:
        payload = msg.payload
        pending = self._pending.pop(payload["call_id"], None)
        if pending is None:
            return  # reply raced with a timeout
        self._msgid_to_call.pop(pending.msg_id, None)
        pending.timeout_handle.cancel()
        if pending.future.done():
            return
        if payload["ok"]:
            pending.future.set_result(payload["result"])
        else:
            pending.future.set_exception(
                self._materialize(payload["error"], payload["detail"],
                                  payload.get("retry_after")))

    @staticmethod
    def _materialize(exc_name: str, detail: str,
                     retry_after: Optional[float] = None) -> BaseException:
        if exc_name == "StaleReference":
            return StaleReference(detail)
        if exc_name == "InvalidObjectReference":
            return InvalidObjectReference(detail)
        if exc_name == "AuthError":
            return AuthError(detail)
        if exc_name == "Overloaded":
            return Overloaded(detail, retry_after=retry_after or 0.0)
        if exc_name == "DeadlineExceeded":
            return DeadlineExceeded(detail)
        cls = resolve_exception(exc_name)
        if cls is not None:
            return cls(detail)
        return RemoteException(f"{exc_name}: {detail}")

    def _handle_unreachable(self, msg: Message) -> None:
        call_id = self._msgid_to_call.pop(msg.payload["msg_id"], None)
        if call_id is None:
            return
        pending = self._pending.pop(call_id, None)
        if pending is None:
            return
        pending.timeout_handle.cancel()
        if not pending.future.done():
            pending.future.set_exception(InvalidObjectReference(
                f"implementor of {pending.method} has exited"))

    def _on_timeout(self, call_id: int) -> None:
        pending = self._pending.pop(call_id, None)
        if pending is None:
            return
        self._msgid_to_call.pop(pending.msg_id, None)
        if pending.future.done():
            return
        if (pending.deadline is not None
                and self.kernel.now >= pending.deadline):
            # The overall budget (not just this attempt's reply timer)
            # ran out -- even if the server silently dropped the expired
            # call, the caller's future resolves here, never leaks.
            pending.future.set_exception(DeadlineExceeded(
                f"deadline passed awaiting reply to {pending.method}"))
        else:
            pending.future.set_exception(CallTimeout(
                f"no reply to {pending.method} within deadline"))

    def _on_process_exit(self, _proc: Process) -> None:
        self.network.unbind_port(self.ip, self.port)
        self._exports.clear()
        for pending in self._pending.values():
            pending.timeout_handle.cancel()
            if not pending.future.done():
                pending.future.cancel()
        self._pending.clear()
        self._msgid_to_call.clear()


class Stub:
    """IDL-compiler-style client stub: attribute access yields operations.

    ``await stub.open("T2")`` performs a remote invocation on the stub's
    object reference with full signature checking.
    """

    def __init__(self, runtime: OCSRuntime, ref: ObjectRef):
        self._runtime = runtime
        self._ref = ref
        self._iface = lookup_interface(ref.type_id)

    @property
    def ref(self) -> ObjectRef:
        return self._ref

    def __getattr__(self, name: str):
        # Raises NoSuchMethod for operations outside the interface,
        # matching IDL-compiled stubs failing at compile time.
        self._iface.method(name)

        def call(*args: Any, timeout: float = DEFAULT_CALL_TIMEOUT,
                 deadline: Optional[float] = None) -> Future:
            return self._runtime.invoke(self._ref, name, args, timeout=timeout,
                                        deadline=deadline)

        call.__name__ = name
        return call

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Stub {self._ref!r}>"
