"""Server-side at-most-once dedup: the per-service reply cache.

Every two-way call envelope carries a ``(client_id, call_seq)`` request
id; retries re-issue under the *same* id.  The cache gives the dispatch
path one question to ask per incoming call -- :meth:`ReplyCache.begin`
-- with four possible verdicts:

- ``execute``: first sighting; run the servant and :meth:`complete`.
- ``inflight``: the same request id is executing right now (a duplicate
  or an impatient retry overtook the reply).  The caller is parked as a
  waiter and answered from the original execution when it completes.
- ``replay``: the request already executed; the stored reply record is
  re-sent verbatim.  The servant never runs again.
- ``stale``: the id fell below the client's eviction floor.  It can
  only be a duplicate of a long-completed request, so it is dropped
  (never executed) -- re-execution is the one unrecoverable error.

Eviction is LRU over *completed* entries only, bounded by ``capacity``;
an entry with a retry still executing can never be evicted, so a parked
waiter always finds its reply.  Evicting a completed entry raises that
client's floor to the evicted sequence number: any later arrival at or
below the floor with no entry is dropped as stale.  The floor trades a
sliver of liveness (a request reordered behind ``capacity`` completed
calls from the same client is dropped and must fail over) for the
safety guarantee that an executed-and-forgotten request id is never
executed a second time by this incarnation.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class _Entry:
    """One request id's lifecycle: inflight (waiters park) or done."""

    seq: int
    done: bool = False
    #: the marshaled reply record (``{"ok": ...}``), once done.
    reply: Any = None
    #: duplicate arrivals parked while the first execution runs:
    #: (incoming message, its call_id) pairs, answered at complete().
    waiters: List[Tuple[Any, int]] = field(default_factory=list)


class ReplyCache:
    """Seq-windowed dedup keyed by ``(client_id, call_seq)``."""

    def __init__(self, capacity: int = 512):
        if capacity < 1:
            raise ValueError("reply cache capacity must be >= 1")
        self.capacity = capacity
        self._clients: Dict[str, Dict[int, _Entry]] = {}
        #: per-client eviction floor: seqs <= floor with no entry are
        #: stale duplicates (monotonically non-decreasing).
        self._floor: Dict[str, int] = {}
        #: LRU order over completed entries only.
        self._lru: "OrderedDict[Tuple[str, int], None]" = OrderedDict()
        self.executions = 0
        self.replays = 0
        self.suppressed = 0
        self.stale_drops = 0
        self.evictions = 0

    def begin(self, client: str, seq: int) -> Tuple[str, Optional[_Entry]]:
        """Classify one arrival; records an inflight entry on ``execute``."""
        entries = self._clients.get(client)
        if entries is not None:
            entry = entries.get(seq)
            if entry is not None:
                if entry.done:
                    self.replays += 1
                    self._lru.move_to_end((client, seq))
                    return "replay", entry
                self.suppressed += 1
                return "inflight", entry
        if seq <= self._floor.get(client, 0):
            self.stale_drops += 1
            return "stale", None
        entry = _Entry(seq=seq)
        if entries is None:
            entries = self._clients[client] = {}
        entries[seq] = entry
        self.executions += 1
        return "execute", entry

    def complete(self, client: str, seq: int,
                 reply: Any) -> List[Tuple[Any, int]]:
        """Store the executed reply; returns the parked waiters to answer."""
        entries = self._clients.get(client)
        entry = entries.get(seq) if entries is not None else None
        if entry is None:
            return []   # aborted (or this runtime's cache was disabled)
        entry.done = True
        entry.reply = reply
        waiters, entry.waiters = entry.waiters, []
        self._lru[(client, seq)] = None
        self._evict()
        return waiters

    def abort(self, client: str, seq: int) -> List[Tuple[Any, int]]:
        """The request was rejected *before* executing (expired in
        queue): forget the inflight entry so a retry can run, and hand
        back any parked waiters for an error reply.  A *completed*
        entry is never forgotten here -- aborting it would orphan its
        LRU slot and, worse, let the executed id run again."""
        entries = self._clients.get(client)
        if entries is None:
            return []
        entry = entries.get(seq)
        if entry is None or entry.done:
            return []
        del entries[seq]
        if not entries:
            del self._clients[client]
        return entry.waiters

    def _evict(self) -> None:
        while len(self._lru) > self.capacity:
            (client, seq), _ = self._lru.popitem(last=False)
            entries = self._clients.get(client)
            if entries is not None:
                entries.pop(seq, None)
                if not entries:
                    del self._clients[client]
            if seq > self._floor.get(client, 0):
                self._floor[client] = seq
            self.evictions += 1

    def stats(self) -> Dict[str, int]:
        """Counters for the delivery metrics collector."""
        return {"executions": self.executions, "replays": self.replays,
                "suppressed": self.suppressed,
                "stale_drops": self.stale_drops,
                "evictions": self.evictions,
                "cached": len(self._lru)}
