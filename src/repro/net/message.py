"""Network datagrams exchanged between OCS transports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Tuple

# Fixed per-message overhead: headers, authentication signature, marshaled
# call frame.  Calls are signed by default (paper section 3.3), so every
# message carries the signature cost.
HEADER_BYTES = 256

_msg_counter = [0]


def _next_msg_id() -> int:
    _msg_counter[0] += 1
    return _msg_counter[0]


def reset_msg_counter() -> None:
    """Restart message ids; call when a fresh simulation run begins (see
    repro.sim.host.reset_pid_counter for why)."""
    _msg_counter[0] = 0


@dataclass
class Message:
    """One datagram: source/destination endpoints plus an opaque payload.

    ``size_bytes`` drives link serialization delay; the payload itself is
    passed by reference (the simulation does not literally serialize
    Python objects, it charges for the bytes they would occupy).
    """

    src: Tuple[str, int]
    dst: Tuple[str, int]
    kind: str
    payload: Any = None
    payload_bytes: int = 0
    msg_id: int = field(default_factory=_next_msg_id)

    @property
    def size_bytes(self) -> int:
        return HEADER_BYTES + self.payload_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Message #{self.msg_id} {self.kind} "
                f"{self.src[0]}:{self.src[1]} -> {self.dst[0]}:{self.dst[1]} "
                f"{self.size_bytes}B>")
