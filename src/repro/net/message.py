"""Network datagrams exchanged between OCS transports.

``Message`` envelopes on the reply path are recycled through a free
list (:meth:`Message.acquire` / :meth:`Message.release`): replies and
port-unreachable notices are fully consumed by ``_handle_reply`` /
``_handle_unreachable`` and never retained, so their envelopes can be
reset and reused instead of allocated per datagram.  Call envelopes are
*not* poolable -- servants park them in queues, reply caches and
``async`` frames across awaits -- so the call path keeps plain
construction.  Release resets every field; acquire checks the reset
actually happened and raises
:class:`~repro.sim.errors.PoolHygieneError` on a stale envelope, so a
skipped reset is an immediate error rather than silent cross-talk.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.sim.errors import PoolHygieneError

# Fixed per-message overhead: headers, authentication signature, marshaled
# call frame.  Calls are signed by default (paper section 3.3), so every
# message carries the signature cost.
HEADER_BYTES = 256

# Absolute-deadline envelope field (PR 4 overload work): one float64 on
# the wire.  Charged explicitly so deadline propagation shows up in the
# byte accounting rather than hiding in HEADER_BYTES.
DEADLINE_BYTES = 8

# At-most-once request identity (PR 9): every two-way call envelope
# carries a ``(client_id, call_seq)`` pair so a retry is recognizable as
# the same logical request.  Charged as a fixed-width field (an 8-byte
# client hash plus an 8-byte sequence number) like DEADLINE_BYTES.
REQUEST_ID_BYTES = 16

# Payload checksum (PR 9): one CRC32 over the marshaled frame, so a
# receiver can reject a corrupted datagram instead of dispatching it.
CHECKSUM_BYTES = 4

_msg_counter = [0]


def _next_msg_id() -> int:
    _msg_counter[0] += 1
    return _msg_counter[0]


def reset_msg_counter() -> None:
    """Restart message ids; call when a fresh simulation run begins (see
    repro.sim.host.reset_pid_counter for why)."""
    _msg_counter[0] = 0


class Message:
    """One datagram: source/destination endpoints plus an opaque payload.

    ``size_bytes`` drives link serialization delay; the payload itself is
    passed by reference (the simulation does not literally serialize
    Python objects, it charges for the bytes they would occupy).

    Slotted rather than a dataclass: the network allocates one of these
    per datagram, and a per-instance ``__dict__`` is the single biggest
    allocation on the send path.
    """

    __slots__ = ("src", "dst", "kind", "payload", "payload_bytes", "msg_id",
                 "deadline", "corrupted", "_in_pool")

    #: Reply-envelope free list (class-wide; the sim is single-threaded).
    _pool: List["Message"] = []
    _pool_cap = 2048

    def __init__(self, src: Tuple[str, int], dst: Tuple[str, int], kind: str,
                 payload: Any = None, payload_bytes: int = 0,
                 msg_id: Optional[int] = None,
                 deadline: Optional[float] = None,
                 corrupted: bool = False):
        self.src = src
        self.dst = dst
        self.kind = kind
        self.payload = payload
        self.payload_bytes = payload_bytes
        self.msg_id = _next_msg_id() if msg_id is None else msg_id
        # Absolute (virtual-clock) deadline for the work this datagram
        # asks for; None means "no deadline" (replies, raw datagrams).
        self.deadline = deadline
        # A corrupt fault flipped bits in this copy's frame: the payload
        # checksum no longer verifies.  The payload object itself is
        # shared with any clean copies, so the damage is a flag, not a
        # mutation (a duplicated datagram corrupts independently).
        self.corrupted = corrupted
        self._in_pool = False

    # -- envelope pooling ---------------------------------------------

    @classmethod
    def acquire(cls, src: Tuple[str, int], dst: Tuple[str, int], kind: str,
                payload: Any = None, payload_bytes: int = 0,
                deadline: Optional[float] = None) -> "Message":
        """A fresh-or-recycled envelope.  Only for *consumed-on-delivery*
        datagrams (replies, unreachable notices): the receiver hands the
        envelope back via :meth:`release` after dispatch."""
        pool = cls._pool
        if pool:
            msg = pool.pop()
            if msg.kind is not None or msg.payload is not None:
                raise PoolHygieneError(
                    f"recycled Message carries stale state "
                    f"(kind={msg.kind!r})")
            msg._in_pool = False
            msg.src = src
            msg.dst = dst
            msg.kind = kind
            msg.payload = payload
            msg.payload_bytes = payload_bytes
            msg.msg_id = _next_msg_id()
            msg.deadline = deadline
            return msg
        return cls(src, dst, kind, payload, payload_bytes, deadline=deadline)

    def release(self) -> None:
        """Reset-on-release; double release is a hygiene error."""
        if self._in_pool:
            raise PoolHygieneError(
                f"Message #{self.msg_id} released twice")
        self.src = None
        self.dst = None
        self.kind = None
        self.payload = None
        self.payload_bytes = 0
        self.deadline = None
        self.corrupted = False
        pool = Message._pool
        if len(pool) < Message._pool_cap:
            self._in_pool = True
            pool.append(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Message):
            return NotImplemented
        return (self.src == other.src and self.dst == other.dst
                and self.kind == other.kind and self.payload == other.payload
                and self.payload_bytes == other.payload_bytes
                and self.msg_id == other.msg_id
                and self.deadline == other.deadline
                and self.corrupted == other.corrupted)

    __hash__ = None  # type: ignore[assignment] - dataclass(eq=True) semantics

    @property
    def size_bytes(self) -> int:
        return HEADER_BYTES + self.payload_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Message #{self.msg_id} {self.kind} "
                f"{self.src[0]}:{self.src[1]} -> {self.dst[0]}:{self.dst[1]} "
                f"{self.size_bytes}B>")
