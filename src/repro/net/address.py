"""IP addressing and neighbourhood assignment.

The paper (section 3.1): "we partition the settops into neighborhoods.
The neighborhood is determined by the settop's IP address."  We encode the
neighbourhood in the third octet of settop addresses, so the neighbourhood
selector (section 5.1) can recover it from a caller's address exactly as
the deployed system did.

Address plan:

- servers:  ``192.26.65.<n>``   (the paper's Figure 8 shows 192.26.65.82/83)
- settops:  ``10.<cluster>.<neighborhood>.<unit>``
"""

from __future__ import annotations

# Paper section 3.1: per-settop ATM bandwidth caps for the Orlando
# deployment.
DEFAULT_UPSTREAM_BPS = 50_000          # 50 kbit/s settop -> server
DEFAULT_DOWNSTREAM_BPS = 6_000_000     # 6 Mbit/s server -> settop

# Paper section 9.3: effective application-download bandwidth observed in
# the deployed system ("notably a download bandwidth of 1 MByte per
# second").
APP_DOWNLOAD_BPS = 8_000_000           # 1 MByte/s

SERVER_PREFIX = "192.26.65."
SETTOP_PREFIX = "10."


def server_ip(index: int) -> str:
    """Address of the ``index``-th server machine (0-based)."""
    if index < 0 or index > 253:
        raise ValueError(f"server index out of range: {index}")
    return f"{SERVER_PREFIX}{index + 1}"


def settop_ip(neighborhood: int, unit: int, cluster: int = 0) -> str:
    """Address of a settop in the given neighbourhood."""
    if neighborhood < 0 or neighborhood > 255:
        raise ValueError(f"neighborhood out of range: {neighborhood}")
    if unit < 0 or unit > 253:
        raise ValueError(f"unit out of range: {unit}")
    return f"{SETTOP_PREFIX}{cluster}.{neighborhood}.{unit + 1}"


def is_server_ip(ip: str) -> bool:
    return ip.startswith(SERVER_PREFIX)


def is_settop_ip(ip: str) -> bool:
    return ip.startswith(SETTOP_PREFIX)


def neighborhood_of(ip: str) -> int:
    """Recover the neighbourhood number from a settop IP address.

    Raises :class:`ValueError` for non-settop addresses: the deployed
    system never routed a neighbourhood-replicated service to a server's
    own address this way.
    """
    if not is_settop_ip(ip):
        raise ValueError(f"not a settop address: {ip}")
    parts = ip.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed address: {ip}")
    return int(parts[2])
