"""The network fabric: attachment, routing, delivery, partitions.

Delivery semantics chosen to match what the paper's clients observe:

- destination host down or partitioned away -> the datagram is silently
  dropped and the sender must rely on its call timeout (like UDP/ATM);
- destination host up but no process bound to the port -> the network
  returns an immediate ``port_unreachable`` notification (like a TCP RST),
  which is how "the client will detect this on the next attempt to use the
  object reference" (section 3.2.1) without waiting out a long timeout.

The network also keeps per-message-kind counters, which experiment E3
(RAS message scaling, paper section 7.2.1) reads directly.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.net.address import (
    DEFAULT_DOWNSTREAM_BPS,
    DEFAULT_UPSTREAM_BPS,
    is_settop_ip,
)
from repro.net.link import Link
from repro.net.message import HEADER_BYTES, Message
from repro.sim.host import Host
from repro.sim.kernel import Kernel

# FDDI ring between the servers (paper Figure 1); 100 Mbit/s was the FDDI
# standard rate.
FDDI_BPS = 100_000_000
FDDI_LATENCY = 0.0005
SETTOP_LATENCY = 0.005


class PortUnreachable(Exception):
    """Local send to a port nobody is bound to (used internally)."""


class _Interface:
    """A host's point of attachment: one inbound and one outbound link."""

    def __init__(self, host: Host, ip: str, in_link: Link, out_link: Link):
        self.host = host
        self.ip = ip
        self.in_link = in_link
        self.out_link = out_link
        self.ports: Dict[int, Callable[[Message], None]] = {}


class Network:
    """The cluster fabric connecting servers and settops."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self._interfaces: Dict[str, _Interface] = {}
        self._partitions: List[Tuple[Set[str], Set[str]]] = []
        self._loss: Dict[str, Tuple[float, Any]] = {}  # ip -> (prob, rng)
        # Chaos fault hooks (repro.chaos is the only sanctioned caller
        # outside tests -- lint rule D009).  All empty-dict guarded so the
        # fault-free hot path pays one falsy check per send.
        self._delay: Dict[str, float] = {}          # dst ip -> extra seconds
        self._dup: Dict[str, Tuple[float, Any]] = {}  # dst ip -> (prob, rng)
        self._gray: Dict[str, float] = {}           # src ip -> reply lag
        # dst ip -> (prob, max_skew, rng): random extra in-link delay, so
        # later datagrams overtake earlier ones (bounded reordering).
        self._reorder: Dict[str, Tuple[float, float, Any]] = {}
        # dst ip -> (prob, rng): deliver a checksum-failing copy.
        self._corrupt: Dict[str, Tuple[float, Any]] = {}
        # Trace sink for fault firings (wired by the cluster builder;
        # None outside a built cluster).  Faults are off by default, so
        # a fault-free run emits nothing here and golden digests hold.
        self.trace: Optional[Any] = None
        self.messages_sent: int = 0
        self.messages_delivered: int = 0
        self.messages_dropped: int = 0
        self.messages_lost: int = 0
        self.messages_duplicated: int = 0
        self.messages_reordered: int = 0
        self.messages_corrupted: int = 0
        # kind -> [count, bytes]: one dict probe per send instead of four.
        self._kind_stats: Dict[str, List[int]] = {}
        # dst ip -> [deliver_at, kernel_seq, msgs]: open same-tick delivery
        # batch.  Consecutive sends to one destination that compute the
        # same delivery instant -- and between which *nothing else* was
        # scheduled (kernel._seq unchanged) -- share one kernel event
        # instead of one event each.  The seq guard is what keeps the
        # collapse order-preserving: if no event was armed in between,
        # nothing could have interleaved the two deliveries anyway.
        self._batches: Dict[str, list] = {}

    @property
    def sent_by_kind(self) -> Dict[str, int]:
        """Per-kind message counts (materialized view of the hot counters)."""
        return {kind: stats[0] for kind, stats in self._kind_stats.items()}

    @property
    def bytes_by_kind(self) -> Dict[str, int]:
        """Per-kind byte totals.

        Broadcast traffic is counted per message but not per byte (the
        plant sends one copy); kinds that only ever broadcast are omitted
        here, matching the ledger the experiments have always read.
        """
        return {kind: stats[1] for kind, stats in self._kind_stats.items()
                if stats[1]}

    def _account(self, kind: str, size_bytes: int) -> None:
        self.messages_sent += 1
        stats = self._kind_stats.get(kind)
        if stats is None:
            self._kind_stats[kind] = [1, size_bytes]
        else:
            stats[0] += 1
            stats[1] += size_bytes

    # -- attachment ----------------------------------------------------

    def attach(self, host: Host, ip: str,
               upstream_bps: Optional[float] = None,
               downstream_bps: Optional[float] = None,
               latency: Optional[float] = None) -> None:
        """Attach a host at ``ip``.

        Settop addresses default to the Orlando per-settop caps (50 kbit/s
        up, 6 Mbit/s down); server addresses default to FDDI.
        """
        if ip in self._interfaces:
            raise ValueError(f"address already attached: {ip}")
        if is_settop_ip(ip):
            up = upstream_bps if upstream_bps is not None else DEFAULT_UPSTREAM_BPS
            down = (downstream_bps if downstream_bps is not None
                    else DEFAULT_DOWNSTREAM_BPS)
            lat = latency if latency is not None else SETTOP_LATENCY
        else:
            up = upstream_bps if upstream_bps is not None else FDDI_BPS
            down = downstream_bps if downstream_bps is not None else FDDI_BPS
            lat = latency if latency is not None else FDDI_LATENCY
        iface = _Interface(
            host, ip,
            in_link=Link(self.kernel, down, latency=lat, name=f"{ip}:in"),
            out_link=Link(self.kernel, up, latency=lat, name=f"{ip}:out"),
        )
        self._interfaces[ip] = iface
        host.ip = ip

    def detach(self, ip: str) -> None:
        self._interfaces.pop(ip, None)

    def interface(self, ip: str) -> _Interface:
        if ip not in self._interfaces:
            raise KeyError(f"no host attached at {ip}")
        return self._interfaces[ip]

    def host_at(self, ip: str) -> Host:
        return self.interface(ip).host

    def downlink_of(self, ip: str) -> Link:
        """The inbound link of a host (where CBR movie streams reserve)."""
        return self.interface(ip).in_link

    def uplink_of(self, ip: str) -> Link:
        return self.interface(ip).out_link

    # -- ports -----------------------------------------------------------

    def bind_port(self, ip: str, port: int, handler: Callable[[Message], None]) -> None:
        iface = self.interface(ip)
        if port in iface.ports:
            raise ValueError(f"port {port} already bound on {ip}")
        iface.ports[port] = handler

    def unbind_port(self, ip: str, port: int) -> None:
        iface = self._interfaces.get(ip)
        if iface is not None:
            iface.ports.pop(port, None)

    # -- partitions -------------------------------------------------------

    def partition(self, side_a: Set[str], side_b: Set[str]) -> None:
        """Block traffic between the two address sets (both directions)."""
        self._partitions.append((set(side_a), set(side_b)))

    def heal_partitions(self) -> None:
        self._partitions = []

    @property
    def partitioned(self) -> bool:
        """Whether any partition is currently in force (monitors pause
        convergence clocks while the network is split)."""
        return bool(self._partitions)

    # -- loss injection ------------------------------------------------------

    def set_loss(self, ip: str, probability: float, rng) -> None:
        """Drop inbound datagrams at ``ip`` with the given probability.

        Models a noisy drop on the cable plant.  Clients survive it
        through their normal machinery: call timeouts, rebinds, and the
        stream-stall watchdog.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError("loss probability must be in [0, 1]")
        if probability == 0.0:
            self._loss.pop(ip, None)
        else:
            self._loss[ip] = (probability, rng)

    def clear_loss(self) -> None:
        self._loss.clear()

    # -- chaos fault hooks (delay / duplication / gray failure) ----------

    def set_delay(self, ip: str, extra_seconds: float) -> None:
        """Add a fixed extra delay to every datagram delivered *to* ``ip``.

        Models plant congestion or a slow last hop.  Zero removes the
        fault.  Injected by :mod:`repro.chaos`; direct calls elsewhere are
        a lint violation (D009) so every fault shows up in the trace.
        """
        if extra_seconds < 0:
            raise ValueError("extra delay must be >= 0")
        if extra_seconds == 0:
            self._delay.pop(ip, None)
        else:
            self._delay[ip] = extra_seconds

    def set_duplicate(self, ip: str, probability: float, rng) -> None:
        """Duplicate datagrams delivered to ``ip`` with the given probability.

        The copy arrives one propagation latency after the original, as a
        plant echo would.  Zero probability removes the fault.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError("duplication probability must be in [0, 1]")
        if probability == 0.0:
            self._dup.pop(ip, None)
        else:
            self._dup[ip] = (probability, rng)

    def set_gray(self, ip: str, reply_lag: float) -> None:
        """Gray failure: the host at ``ip`` accepts calls but replies slowly.

        Every datagram *sent by* ``ip`` is delayed ``reply_lag`` extra
        seconds, so the replica looks alive to liveness checks while its
        clients watch calls crawl toward their timeouts -- the failure
        mode audits are worst at catching.  Zero removes the fault.
        """
        if reply_lag < 0:
            raise ValueError("reply lag must be >= 0")
        if reply_lag == 0:
            self._gray.pop(ip, None)
        else:
            self._gray[ip] = reply_lag

    def set_reorder(self, ip: str, probability: float, max_skew: float,
                    rng) -> None:
        """Randomly defer datagrams delivered to ``ip`` so later sends
        overtake them (bounded reordering).

        With the given probability a datagram picks up a uniform extra
        in-link delay in ``(0, max_skew]`` -- anything sent within that
        window can arrive first.  Models multipath on the plant.  Zero
        probability removes the fault.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError("reorder probability must be in [0, 1]")
        if max_skew <= 0.0:
            raise ValueError("reorder max_skew must be > 0")
        if probability == 0.0:
            self._reorder.pop(ip, None)
        else:
            self._reorder[ip] = (probability, max_skew, rng)

    def set_corrupt(self, ip: str, probability: float, rng) -> None:
        """Flip bits in datagrams delivered to ``ip`` with the given
        probability.

        The damaged copy carries the same message id but fails its
        payload checksum; receivers that verify checksums drop it and
        the sender's retry machinery takes over.  Each delivery (and
        each duplicate echo) corrupts independently.  Zero probability
        removes the fault.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError("corruption probability must be in [0, 1]")
        if probability == 0.0:
            self._corrupt.pop(ip, None)
        else:
            self._corrupt[ip] = (probability, rng)

    def clear_faults(self) -> None:
        """Remove every injected loss/delay/duplication/gray/reorder/
        corruption fault.

        Partitions are healed separately (:meth:`heal_partitions`): a
        schedule may want the plant noise gone while a split remains.
        """
        self._loss.clear()
        self._delay.clear()
        self._dup.clear()
        self._gray.clear()
        self._reorder.clear()
        self._corrupt.clear()

    def _lose(self, dst_ip: str) -> bool:
        entry = self._loss.get(dst_ip)
        if entry is None:
            return False
        probability, rng = entry
        if rng.random() < probability:
            self.messages_lost += 1
            return True
        return False

    def reachable(self, src_ip: str, dst_ip: str) -> bool:
        for side_a, side_b in self._partitions:
            if ((src_ip in side_a and dst_ip in side_b)
                    or (src_ip in side_b and dst_ip in side_a)):
                return False
        return True

    # -- delivery ---------------------------------------------------------

    def send(self, msg: Message) -> None:
        """Inject a datagram; delivery (or drop) happens asynchronously."""
        size = msg.size_bytes
        self._account(msg.kind, size)
        src_ip = msg.src[0]
        dst_ip = msg.dst[0]
        interfaces = self._interfaces
        src_iface = interfaces.get(src_ip)
        dst_iface = interfaces.get(dst_ip)
        if src_iface is None or not src_iface.host.up:
            self.messages_dropped += 1
            return
        if dst_iface is None or (self._partitions
                                 and not self.reachable(src_ip, dst_ip)):
            # Unknown destination or partition: the datagram vanishes.
            self.messages_dropped += 1
            return
        delay = src_iface.out_link.occupy(size)
        if src_ip != dst_ip:
            delay += dst_iface.in_link.occupy(size)
        else:
            # Loopback: no wire crossed; charge a scheduling quantum only.
            delay = 1e-5
        delay += self._fault_delay(src_ip, dst_ip)
        hb = self.kernel.hb_log
        if hb is not None:
            hb.emit("hb", "send", msg=msg.msg_id,
                    src=f"{src_ip}:{msg.src[1]}",
                    dst=f"{dst_ip}:{msg.dst[1]}")
        kernel = self.kernel
        when = kernel._now + delay
        batch = self._batches.get(dst_ip)
        if batch is not None and batch[0] == when and batch[1] == kernel._seq:
            batch[2].append(msg)
        else:
            msgs = [msg]
            kernel.call_at(when, self._deliver_batch, msgs, pooled=True)
            self._batches[dst_ip] = [when, kernel._seq, msgs]
        if self._dup:
            self._maybe_duplicate(msg, delay)

    def _deliver_batch(self, msgs: List[Message]) -> None:
        """Deliver a same-instant batch in arrival order.

        Equivalent to one ``_deliver`` event per message: the batch only
        ever absorbed sends whose events would have been seq-adjacent
        (see the guard in :meth:`send`), so back-to-back delivery within
        one event is the order the kernel would have produced anyway.
        """
        deliver = self._deliver
        for msg in msgs:
            deliver(msg)
        # A fired batch can never be appended to again (its deliver_at
        # lies in the past), so drop the envelope references eagerly.
        del msgs[:]

    def _fault_delay(self, src_ip: str, dst_ip: str) -> float:
        """Extra one-way delay from injected delay/gray/reorder faults
        (usually 0).  All three send paths route through here, so the
        faults apply with parity."""
        extra = 0.0
        if self._delay:
            extra += self._delay.get(dst_ip, 0.0)
        if self._gray:
            extra += self._gray.get(src_ip, 0.0)
        if self._reorder:
            entry = self._reorder.get(dst_ip)
            if entry is not None:
                probability, max_skew, rng = entry
                if rng.random() < probability:
                    self.messages_reordered += 1
                    skew = rng.uniform(0.0, max_skew)
                    if self.trace is not None:
                        self.trace.emit("net", "reorder", dst=dst_ip,
                                        skew=round(skew, 6))
                    extra += skew
        return extra

    def _maybe_duplicate(self, msg: Message, delay: float) -> None:
        entry = self._dup.get(msg.dst[0])
        if entry is None:
            return
        probability, rng = entry
        if rng.random() < probability:
            self.messages_duplicated += 1
            if self.trace is not None:
                self.trace.emit("net", "duplicate", dst=msg.dst[0],
                                kind=msg.kind)
            # The echo must be a distinct envelope: the first delivery's
            # receiver may release() a consumed-on-delivery message back
            # to the pool, and a pooled (or recycled) envelope must never
            # still be sitting in the event queue.  Same msg_id -- it is
            # the same datagram on the wire.
            echo = Message(src=msg.src, dst=msg.dst, kind=msg.kind,
                           payload=msg.payload,
                           payload_bytes=msg.payload_bytes,
                           msg_id=msg.msg_id, deadline=msg.deadline,
                           corrupted=msg.corrupted)
            self.kernel.call_later(delay + FDDI_LATENCY, self._deliver, echo,
                                   pooled=True)

    def _maybe_corrupt(self, msg: Message, dst_ip: str) -> Message:
        """Roll the corruption fault for one delivery; a hit hands the
        handler a flagged copy (same msg id) so clean duplicates of the
        same datagram are unaffected."""
        entry = self._corrupt.get(dst_ip)
        if entry is None:
            return msg
        probability, rng = entry
        if rng.random() >= probability:
            return msg
        self.messages_corrupted += 1
        if self.trace is not None:
            self.trace.emit("net", "corrupt", dst=dst_ip, kind=msg.kind)
        return Message(src=msg.src, dst=msg.dst, kind=msg.kind,
                       payload=msg.payload, payload_bytes=msg.payload_bytes,
                       msg_id=msg.msg_id, deadline=msg.deadline,
                       corrupted=True)

    def _deliver(self, msg: Message) -> None:
        dst_ip, dst_port = msg.dst
        iface = self._interfaces.get(dst_ip)
        if iface is None or not iface.host.up or (
                self._partitions and not self.reachable(msg.src[0], dst_ip)):
            # Host died or got partitioned while the datagram was in flight.
            self.messages_dropped += 1
            return
        if self._loss and self._lose(dst_ip):
            return  # plant noise ate the datagram
        if self._corrupt:
            msg = self._maybe_corrupt(msg, dst_ip)
        handler = iface.ports.get(dst_port)
        if handler is None:
            # TCP-RST analogue: tell the sender nobody is listening, so the
            # client fails fast instead of timing out (section 3.2.1).
            self.messages_dropped += 1
            self._send_unreachable(msg)
            return
        self.messages_delivered += 1
        hb = self.kernel.hb_log
        if hb is not None:
            hb.emit("hb", "recv", msg=msg.msg_id,
                    dst=f"{dst_ip}:{dst_port}")
        handler(msg)

    def _send_unreachable(self, original: Message) -> None:
        src_ip, src_port = original.src
        iface = self._interfaces.get(src_ip)
        if iface is None or not iface.host.up:
            return
        handler = iface.ports.get(src_port)
        if handler is None:
            return
        notice = Message.acquire(
            src=original.dst, dst=original.src, kind="port_unreachable",
            payload={"msg_id": original.msg_id}, payload_bytes=0)
        self.kernel.call_later(FDDI_LATENCY, self._deliver_notice, notice,
                               handler, pooled=True)

    def _deliver_notice(self, notice: Message, handler: Callable[[Message], None]) -> None:
        iface = self._interfaces.get(notice.dst[0])
        if iface is None or not iface.host.up:
            return
        # Re-check binding: the waiting process may itself have died.
        current = iface.ports.get(notice.dst[1])
        if current is not None:
            current(notice)

    # -- CBR streams and broadcast ------------------------------------------

    def send_reserved(self, msg: Message, reservation_key: str) -> bool:
        """Deliver a datagram over a CBR reservation on the destination's
        downlink (ATM virtual circuit).

        Reserved traffic bypasses the datagram queue -- the Connection
        Manager already carved out its bandwidth -- so delivery takes only
        propagation latency.  Returns False (dropping the message) when
        the circuit does not exist, matching ATM cells on a torn-down VC.
        """
        self._account(msg.kind, msg.size_bytes)
        src_ip, dst_ip = msg.src[0], msg.dst[0]
        src_iface = self._interfaces.get(src_ip)
        dst_iface = self._interfaces.get(dst_ip)
        if (src_iface is None or not src_iface.host.up or dst_iface is None
                or not self.reachable(src_ip, dst_ip)
                or not dst_iface.in_link.has_reservation(reservation_key)):
            self.messages_dropped += 1
            return False
        delay = dst_iface.in_link.latency + self._fault_delay(src_ip, dst_ip)
        hb = self.kernel.hb_log
        if hb is not None:
            hb.emit("hb", "send", msg=msg.msg_id,
                    src=f"{src_ip}:{msg.src[1]}",
                    dst=f"{dst_ip}:{msg.dst[1]}")
        self.kernel.call_later(delay, self._deliver, msg, pooled=True)
        if self._dup:
            # Parity with send(): reserved circuits echo like datagrams.
            self._maybe_duplicate(msg, delay)
        return True

    def broadcast(self, src_ip: str, dst_ips: List[str], port: int,
                  kind: str, payload: Any, payload_bytes: int = 0) -> int:
        """Downstream broadcast: one transmission reaching many settops.

        Models the cable plant's shared downstream channel (the boot and
        kernel broadcast services, section 3.4.1): the sender pays for one
        copy on its uplink; receivers hear it after their link latency
        without per-receiver serialization.  Returns the number of hosts
        the broadcast reached.
        """
        src_iface = self._interfaces.get(src_ip)
        if src_iface is None or not src_iface.host.up:
            return 0
        delay = src_iface.out_link.occupy(HEADER_BYTES + payload_bytes)
        reached = 0
        for dst_ip in dst_ips:
            iface = self._interfaces.get(dst_ip)
            if iface is None or not self.reachable(src_ip, dst_ip):
                # Parity with send(): an unknown or partitioned receiver
                # is a dropped datagram, not a silent skip.
                self._account(kind, 0)
                self.messages_dropped += 1
                continue
            msg = Message(src=(src_ip, 0), dst=(dst_ip, port), kind=kind,
                          payload=payload, payload_bytes=payload_bytes)
            # One copy on the wire regardless of population: count the
            # message but charge no per-receiver bytes.
            self._account(kind, 0)
            hb = self.kernel.hb_log
            if hb is not None:
                hb.emit("hb", "send", msg=msg.msg_id,
                        src=f"{src_ip}:0", dst=f"{dst_ip}:{port}")
            receiver_delay = (delay + iface.in_link.latency
                              + self._fault_delay(src_ip, dst_ip))
            self.kernel.call_later(receiver_delay, self._deliver, msg,
                                   pooled=True)
            if self._dup:
                # Parity with send(): a receiver behind a duplicating
                # plant segment hears the broadcast's echo too.
                self._maybe_duplicate(msg, receiver_delay)
            reached += 1
        return reached

    # -- accounting ---------------------------------------------------------

    def reset_counters(self) -> None:
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self._kind_stats = {}

    def count_kind(self, prefix: str) -> int:
        """Total messages whose kind starts with ``prefix``."""
        return sum(stats[0] for kind, stats in self._kind_stats.items()
                   if kind.startswith(prefix))
