"""Simulated network: ATM settop links, FDDI server ring, neighbourhoods.

Reproduces the paper's network configuration (section 3.1, Figure 1):
multiprocessor servers on an FDDI ring, settops reached over ATM with
asymmetric per-settop bandwidth caps (50 kbit/s upstream, 6 Mbit/s
downstream), and settops partitioned into *neighbourhoods* keyed by their
IP address -- the unit of service replication and fail-over.
"""

from repro.net.address import (
    DEFAULT_DOWNSTREAM_BPS,
    DEFAULT_UPSTREAM_BPS,
    neighborhood_of,
    server_ip,
    settop_ip,
)
from repro.net.link import Link, ReservationError
from repro.net.message import Message
from repro.net.network import Network, PortUnreachable

__all__ = [
    "DEFAULT_DOWNSTREAM_BPS",
    "DEFAULT_UPSTREAM_BPS",
    "Link",
    "Message",
    "Network",
    "PortUnreachable",
    "ReservationError",
    "neighborhood_of",
    "server_ip",
    "settop_ip",
]
