"""Point-of-attachment links with serialization delay and CBR reservations.

Each host attaches to the network through a pair of :class:`Link` objects
(inbound and outbound).  A link models:

- *serialization*: back-to-back messages queue FIFO; a message of ``n``
  bytes occupies the link for ``8n / rate`` seconds starting when the link
  frees up (store-and-forward), which is what makes a 2 MByte application
  download take seconds on the settop downlink (paper section 9.3);
- *propagation latency*: a fixed per-link delay;
- *CBR reservations* (paper sections 3.3, 3.4.4): the Connection Manager
  reserves constant-bit-rate capacity for movie streams; reservations
  subtract from the capacity available for admission control but movie
  payloads themselves are delivered as coarse chunks by the MDS, so the
  event count stays proportional to seconds of play, not frames.
"""

from __future__ import annotations

from typing import Dict

from repro.sim.kernel import Kernel


class ReservationError(Exception):
    """Requested CBR bandwidth exceeds remaining link capacity."""


class Link:
    """A unidirectional link with a bit rate, latency, and reservations."""

    def __init__(self, kernel: Kernel, rate_bps: float, latency: float = 0.001,
                 name: str = "link"):
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        self.kernel = kernel
        self.rate_bps = rate_bps
        self.latency = latency
        self.name = name
        self._busy_until = 0.0
        self._reservations: Dict[str, float] = {}
        self.bytes_carried = 0
        self.messages_carried = 0

    # -- datagram serialization ---------------------------------------

    def serialization_time(self, nbytes: int) -> float:
        return (8.0 * nbytes) / self.effective_rate_bps

    def occupy(self, nbytes: int) -> float:
        """Queue a message on the link; return its total one-way delay.

        The delay covers queueing behind earlier messages, serialization at
        the rate left over after CBR reservations, and propagation latency.
        """
        now = self.kernel.now
        start = max(now, self._busy_until)
        finish = start + self.serialization_time(nbytes)
        self._busy_until = finish
        self.bytes_carried += nbytes
        self.messages_carried += 1
        return (finish - now) + self.latency

    @property
    def effective_rate_bps(self) -> float:
        """Rate available to datagram traffic after CBR reservations."""
        reserved = sum(self._reservations.values())
        return max(self.rate_bps - reserved, self.rate_bps * 0.01)

    # -- CBR reservations ----------------------------------------------

    @property
    def reserved_bps(self) -> float:
        return sum(self._reservations.values())

    @property
    def available_bps(self) -> float:
        return self.rate_bps - self.reserved_bps

    def reserve(self, key: str, bps: float) -> None:
        """Reserve CBR capacity under ``key``; admission-controlled."""
        if bps <= 0:
            raise ValueError("reservation must be positive")
        if key in self._reservations:
            raise ReservationError(f"duplicate reservation key: {key}")
        if bps > self.available_bps + 1e-9:
            raise ReservationError(
                f"{self.name}: requested {bps} bps, only "
                f"{self.available_bps:.0f} available of {self.rate_bps}"
            )
        self._reservations[key] = bps

    def release(self, key: str) -> bool:
        """Drop a reservation; returns False when the key is unknown."""
        return self._reservations.pop(key, None) is not None

    def has_reservation(self, key: str) -> bool:
        return key in self._reservations

    def clear_reservations(self) -> None:
        self._reservations.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Link {self.name} {self.rate_bps:.0f}bps "
                f"reserved={self.reserved_bps:.0f}>")
