"""Virtual-time event loop with ``async``/``await`` support.

The kernel is a classic discrete-event scheduler: a timer backend of
``(time, sequence, callback)`` entries plus a FIFO fast lane for
callbacks scheduled *at the current timestamp* (``call_soon`` and past
``call_at`` targets).  Time only advances when a timer fires, so a
million simulated seconds of idle polling costs only the poll events
themselves.  Everything above this file -- the network, OCS, the name
service, the ITV services -- is written as ordinary ``async`` code
awaiting :class:`Future` objects created here.

Future timers live in a pluggable backend (``repro.sim.wheel``): a
hierarchical timer wheel by default (O(1) arm/cancel, comparisons only
within one time slot), or the original binary heap
(``Kernel(timer_backend="heap")``), kept as the reference oracle for the
differential suite in ``tests/test_timer_wheel.py``.  Both yield the
same ``(when, seq)`` pop order, so traces are byte-identical across
backends.

The fast lane is purely an optimisation: every handle still carries a
global sequence number and the run loop always executes the lowest
``(when, seq)`` pair across both containers, so the observable event
order (and therefore every trace) is identical to the single-container
scheduler.  ``call_soon`` is the hottest scheduling call (every future
completion funnels through it), and a deque append/popleft avoids the
O(log n) sift a heap would charge per callback.

Internal hot paths additionally recycle :class:`TimerHandle` shells
through a free list (``pooled=True`` on the scheduling calls).  Pooling
is opt-in per call site and only used where the handle provably never
escapes (future callbacks, ``sleep``, network delivery events) -- a
caller that keeps a handle to ``cancel()`` later must never pool it.
Recycled handles are reset on release and checked on acquire; a stale
shell raises :class:`~repro.sim.errors.PoolHygieneError`.

Determinism: ties in time are broken by insertion sequence number, and all
randomness in the simulation goes through :class:`repro.sim.rand.SeededRandom`,
so two runs with the same seed produce byte-identical traces.
"""

from __future__ import annotations

import weakref
from collections import deque
from typing import Any, Callable, Iterable, List, Optional

from repro.sim.errors import (
    CancelledError,
    InvalidStateError,
    KernelStopped,
    PoolHygieneError,
    SimTimeoutError,
)
from repro.sim.wheel import TimerHeap, TimerWheel

#: Upper bound on the handle free list; beyond this, retired shells are
#: simply dropped for the garbage collector (burst workloads should not
#: pin a worst-case pool forever).
_HANDLE_POOL_CAP = 4096

_PENDING = "PENDING"
_DONE = "DONE"
_CANCELLED = "CANCELLED"


class Future:
    """A write-once result container bound to a :class:`Kernel`.

    Mirrors the asyncio future API closely enough that simulated services
    read like ordinary async Python, but completion callbacks are scheduled
    on the *virtual* clock (same timestamp, later sequence number).
    """

    __slots__ = ("_kernel", "_state", "_result", "_exception", "_callbacks",
                 "_detached", "__weakref__")

    def __init__(self, kernel: "Kernel"):
        self._kernel = kernel
        self._state = _PENDING
        self._result: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: List[Callable[["Future"], None]] = []
        self._detached = False

    @property
    def kernel(self) -> "Kernel":
        return self._kernel

    def done(self) -> bool:
        return self._state != _PENDING

    def cancelled(self) -> bool:
        return self._state == _CANCELLED

    def result(self) -> Any:
        if self._state == _CANCELLED:
            raise CancelledError("future was cancelled")
        if self._state == _PENDING:
            raise InvalidStateError("result is not ready")
        if self._exception is not None:
            raise self._exception
        return self._result

    def exception(self) -> Optional[BaseException]:
        if self._state == _CANCELLED:
            raise CancelledError("future was cancelled")
        if self._state == _PENDING:
            raise InvalidStateError("result is not ready")
        return self._exception

    def set_result(self, value: Any) -> None:
        if self._state != _PENDING:
            raise InvalidStateError("future already completed")
        self._state = _DONE
        self._result = value
        self._schedule_callbacks()

    def set_exception(self, exc: BaseException) -> None:
        if self._state != _PENDING:
            raise InvalidStateError("future already completed")
        if isinstance(exc, type):
            exc = exc()
        self._state = _DONE
        self._exception = exc
        self._schedule_callbacks()

    def cancel(self) -> bool:
        if self._state != _PENDING:
            return False
        self._state = _CANCELLED
        self._schedule_callbacks()
        return True

    def detach(self) -> "Future":
        """Declare this future fire-and-forget (linter rule D008).

        The creator promises nothing will await the result: background
        loops that live until their process dies, best-effort
        notifications, and the like.  Detaching is an explicit statement
        of intent, so a discarded future is always a reviewable event.
        Returns ``self`` so creation sites read
        ``kernel.create_task(coro).detach()``.
        """
        self._detached = True
        return self

    @property
    def detached(self) -> bool:
        return self._detached

    def add_done_callback(self, fn: Callable[["Future"], None]) -> None:
        if self.done():
            self._kernel.call_soon(fn, self, pooled=True)
        else:
            self._callbacks.append(fn)

    def remove_done_callback(self, fn: Callable[["Future"], None]) -> int:
        before = len(self._callbacks)
        self._callbacks = [cb for cb in self._callbacks if cb is not fn]
        return before - len(self._callbacks)

    def _schedule_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            # pooled: completion-callback handles are fired-and-forgotten
            # by construction -- nothing outside the kernel sees them.
            self._kernel.call_soon(cb, self, pooled=True)

    def __await__(self):
        if not self.done():
            yield self
        return self.result()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Future {self._state} at t={self._kernel.now:.3f}>"


class Task(Future):
    """Drives a coroutine to completion on the kernel.

    A task is itself a future completing with the coroutine's return value.
    Cancelling a task throws :class:`CancelledError` into the coroutine at
    its current await point -- this is how process death tears down a
    service's internal loops.
    """

    __slots__ = ("_coro", "name", "_waiting_on", "_must_cancel", "_coro_closer")

    def __init__(self, kernel: "Kernel", coro, name: str = "task"):
        super().__init__(kernel)
        self._coro = coro
        self.name = name
        self._waiting_on: Optional[Future] = None
        self._must_cancel = False
        # Teardown hygiene: a task scheduled just before its kernel stops
        # never gets a first _step, leaving the coroutine unstarted.  A
        # plain __del__ cannot close it reliably -- task and coroutine die
        # together in one reference cycle and the coroutine's own
        # finalizer (which warns "never awaited") may run first.
        # weakref.finalize holds the coroutine alive until the task is
        # collected and is guaranteed to run before either finalizer.
        self._coro_closer = weakref.finalize(self, _close_coro_quietly, coro)
        kernel.call_soon(self._step, pooled=True)

    def cancel(self) -> bool:
        if self.done():
            return False
        if self._waiting_on is not None and not self._waiting_on.done():
            # Interrupt the await: cancelling the inner future resumes us,
            # and _wakeup converts the inner cancellation into one here.
            self._must_cancel = True
            self._waiting_on.cancel()
        else:
            self._must_cancel = True
        return True

    def _step(self, send_value: Any = None, exc: Optional[BaseException] = None) -> None:
        if self.done():
            return
        if self._must_cancel:
            exc = CancelledError(f"task {self.name!r} cancelled")
            self._must_cancel = False
        self._waiting_on = None
        try:
            if exc is not None:
                yielded = self._coro.throw(exc)
            else:
                yielded = self._coro.send(send_value)
        except StopIteration as stop:
            self._finish(result=stop.value)
            return
        except CancelledError:
            self._finish(cancelled=True)
            return
        except BaseException as err:  # repro: noqa D005 - the task stepper is the propagation boundary; failures land in the future
            self._finish(exception=err)
            return
        if not isinstance(yielded, Future):
            self._finish(
                exception=RuntimeError(
                    f"task {self.name!r} awaited a non-kernel awaitable: {yielded!r}"
                )
            )
            return
        self._waiting_on = yielded
        yielded.add_done_callback(self._wakeup)

    def _wakeup(self, fut: Future) -> None:
        if self.done():
            return
        if fut.cancelled():
            self._step(exc=CancelledError(f"task {self.name!r} cancelled"))
            return
        err = fut.exception()
        if err is not None:
            self._step(exc=err)
        else:
            self._step(send_value=fut.result())

    def _finish(self, result: Any = None, exception: Optional[BaseException] = None,
                cancelled: bool = False) -> None:
        self._coro_closer.detach()
        self._coro.close()
        if cancelled:
            Future.cancel(self)
        elif exception is not None:
            self.set_exception(exception)
        else:
            self.set_result(result)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Task {self.name!r} {self._state}>"


def _close_coro_quietly(coro) -> None:
    """Finalizer for tasks torn down before their first step."""
    coro.close()


class Kernel:
    """The virtual-time event loop.

    Use :meth:`create_task` to start coroutines, :meth:`run` to execute
    until the event heap drains or ``until`` is reached, and :meth:`sleep`
    / :meth:`wait_for` inside coroutines.
    """

    def __init__(self, timer_backend: str = "wheel") -> None:
        self._now = 0.0
        if timer_backend == "wheel":
            self._timers: Any = TimerWheel(on_drop=self._on_timer_drop)
        elif timer_backend == "heap":
            self._timers = TimerHeap(on_drop=self._on_timer_drop)
        else:
            raise ValueError(f"unknown timer backend: {timer_backend!r}")
        self.timer_backend = timer_backend
        self._timer_count = 0   # mirrors len(self._timers); int ops beat calls
        self._ready: "deque[TimerHandle]" = deque()
        self._seq = 0
        self._stopped = False
        self._task_count = 0
        self._handle_pool: List["TimerHandle"] = []
        # Happens-before instrumentation sink (a TraceLog, usually the
        # cluster's own).  None (the default) keeps every emission site a
        # single attribute check, so runs that do not ask for HB events
        # (Params.hb_trace) stay byte-identical to the golden traces.
        self.hb_log: Optional[Any] = None
        # Durability-audit sink (chaos DurabilityLedger): primaries call
        # ``ack_db``/``ack_ns`` at their acknowledgement points when one
        # is installed.  Same discipline as hb_log -- None by default so
        # un-audited runs pay one attribute check and emit nothing.
        self.durability_ledger: Optional[Any] = None
        # Side-effect ledger (chaos EffectLedger): servant dispatch
        # stamps each non-idempotent execution with its request id when
        # one is installed, so the at_most_once monitor can prove no
        # request ran twice.  Same None-by-default discipline as above.
        self.effect_ledger: Optional[Any] = None

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    # -- scheduling ---------------------------------------------------

    def call_at(self, when: float, fn: Callable, *args: Any,
                pooled: bool = False) -> "TimerHandle":
        if self._stopped:
            raise KernelStopped("kernel has been stopped")
        self._seq += 1
        if when <= self._now:
            # Fast lane: already due.  The deque is FIFO and every handle
            # in it shares when == now, so seq order is preserved.
            handle = self._new_handle(self._now, self._seq, fn, args, pooled)
            self._ready.append(handle)
        else:
            handle = self._new_handle(when, self._seq, fn, args, pooled)
            handle._in_timers = True
            self._timer_count += 1
            self._timers.push(handle)
        return handle

    def call_later(self, delay: float, fn: Callable, *args: Any,
                   pooled: bool = False) -> "TimerHandle":
        # Body duplicated from call_at: this is the second-hottest
        # scheduling path (every network delivery), and the extra frame
        # plus *args repack showed up in the timer bench.
        if self._stopped:
            raise KernelStopped("kernel has been stopped")
        when = self._now if delay <= 0.0 else self._now + delay
        self._seq += 1
        handle = self._new_handle(when, self._seq, fn, args, pooled)
        if when <= self._now:
            self._ready.append(handle)
        else:
            handle._in_timers = True
            self._timer_count += 1
            self._timers.push(handle)
        return handle

    def call_soon(self, fn: Callable, *args: Any,
                  pooled: bool = False) -> "TimerHandle":
        """Schedule ``fn`` at the current timestamp (FIFO fast lane).

        This is the hottest scheduling path -- every future completion
        callback lands here -- so it skips the timer backend entirely.
        """
        if self._stopped:
            raise KernelStopped("kernel has been stopped")
        self._seq += 1
        handle = self._new_handle(self._now, self._seq, fn, args, pooled)
        self._ready.append(handle)
        return handle

    # -- handle pooling -----------------------------------------------

    def _new_handle(self, when: float, seq: int, fn: Callable, args: tuple,
                    pooled: bool) -> "TimerHandle":
        """A fresh or recycled handle; ``pooled`` marks it recyclable.

        Only internal call sites that provably drop the handle on the
        floor pass ``pooled=True`` -- anything handed to a caller that
        may ``cancel()`` it later must be a throwaway object, because a
        recycled shell belongs to a *different* timer by then.
        """
        if pooled:
            pool = self._handle_pool
            if pool:
                handle = pool.pop()
                if handle.fn is not None or handle.args or handle.cancelled:
                    raise PoolHygieneError(
                        "recycled TimerHandle carries stale state "
                        f"(fn={handle.fn!r}, cancelled={handle.cancelled})")
                handle.when = when
                handle.seq = seq
                handle.fn = fn
                handle.args = args
                return handle
        return TimerHandle(when, seq, fn, args, self, pooled=pooled)

    def _recycle_handle(self, handle: "TimerHandle") -> None:
        """Reset-on-release: clear the shell, then free-list it."""
        handle.fn = None
        handle.args = ()
        handle.cancelled = False
        handle._in_timers = False
        pool = self._handle_pool
        if len(pool) < _HANDLE_POOL_CAP:
            pool.append(handle)

    def _on_timer_drop(self, handle: "TimerHandle") -> None:
        """Backend reaped a cancelled handle (never handed back to us)."""
        self._timer_count -= 1
        if handle._pooled:
            self._recycle_handle(handle)

    # -- tasks and futures --------------------------------------------

    def create_future(self) -> Future:
        return Future(self)

    def create_task(self, coro, name: Optional[str] = None) -> Task:
        self._task_count += 1
        return Task(self, coro, name=name or f"task-{self._task_count}")

    def sleep(self, delay: float) -> Future:
        """Return a future completing ``delay`` simulated seconds from now."""
        fut = self.create_future()
        self.call_later(delay, _set_result_if_pending, fut, None, pooled=True)
        return fut

    def wait_for(self, awaitable, timeout: float) -> Future:
        """Await ``awaitable`` with a deadline.

        Completes with the awaitable's result, or fails with
        :class:`SimTimeoutError` (cancelling the awaitable) when the
        deadline passes first.
        """
        inner = self.ensure_future(awaitable)
        outer = self.create_future()

        def on_timeout() -> None:
            if outer.done():
                return
            inner.cancel()
            outer.set_exception(SimTimeoutError(f"timed out after {timeout}s"))

        handle = self.call_later(timeout, on_timeout)

        def on_done(fut: Future) -> None:
            handle.cancel()
            if outer.done():
                return
            if fut.cancelled():
                outer.cancel()
            elif fut.exception() is not None:
                outer.set_exception(fut.exception())
            else:
                outer.set_result(fut.result())

        inner.add_done_callback(on_done)
        return outer

    def ensure_future(self, awaitable) -> Future:
        if isinstance(awaitable, Future):
            return awaitable
        return self.create_task(awaitable)

    # -- running ------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the heap drains or ``until`` is reached.

        Returns the simulated time at which the run stopped.  When
        ``until`` is given, time is advanced to exactly ``until`` even if
        the last event fired earlier (so repeated ``run(until=...)`` calls
        observe a monotone clock).
        """
        timers = self._timers
        ready = self._ready
        peek = timers.peek
        while not self._stopped:
            # The next event is the lowest (when, seq) across the ready
            # deque and the timer backend.  Ready handles all sit at
            # when == now, which is <= every queued timer, so the only
            # real contest is a timer at the same timestamp with an
            # earlier seq.  peek() skips cancelled timers, so only the
            # ready lane can surface a cancelled head here.
            if ready:
                head = ready[0]
                from_timers = False
                if self._timer_count:
                    timer_head = peek()
                    if timer_head is not None and (
                            (timer_head.when, timer_head.seq)
                            < (head.when, head.seq)):
                        head = timer_head
                        from_timers = True
            else:
                head = peek()
                if head is None:
                    break
                from_timers = True
            if head.cancelled:
                ready.popleft()
                if head._pooled:
                    self._recycle_handle(head)
                continue
            if until is not None and head.when > until:
                break
            if from_timers:
                timers.pop()
                self._timer_count -= 1
                head._in_timers = False
            else:
                ready.popleft()
            self._now = head.when
            head.fn(*head.args)
            if head._pooled:
                self._recycle_handle(head)
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        return self._now

    def run_until_complete(self, awaitable, limit: float = 1e12) -> Any:
        """Run the loop until ``awaitable`` finishes; return its result."""
        fut = self.ensure_future(awaitable)
        while not fut.done():
            if not self._timer_count and not self._ready:
                raise RuntimeError("event loop ran dry before future completed")
            if self._now > limit:
                raise SimTimeoutError(f"run_until_complete exceeded t={limit}")
            self.run_one()
        return fut.result()

    def run_one(self) -> None:
        """Process a single (non-cancelled) event."""
        timers = self._timers
        ready = self._ready
        while self._timer_count or ready:
            timer_head = timers.peek() if self._timer_count else None
            if ready:
                handle = ready[0]
                if timer_head is not None and (
                        (timer_head.when, timer_head.seq)
                        < (handle.when, handle.seq)):
                    handle = timer_head
                    timers.pop()
                    self._timer_count -= 1
                    handle._in_timers = False
                else:
                    ready.popleft()
            elif timer_head is not None:
                handle = timer_head
                timers.pop()
                self._timer_count -= 1
                handle._in_timers = False
            else:
                return
            if handle.cancelled:
                if handle._pooled:
                    self._recycle_handle(handle)
                continue
            self._now = handle.when
            handle.fn(*handle.args)
            if handle._pooled:
                self._recycle_handle(handle)
            return

    def stop(self) -> None:
        self._stopped = True

    def pending_events(self) -> int:
        return (sum(1 for h in self._timers if not h.cancelled)
                + sum(1 for h in self._ready if not h.cancelled))


class TimerHandle:
    """A cancellable scheduled callback, orderable for the timer backends."""

    __slots__ = ("when", "seq", "fn", "args", "cancelled", "_kernel",
                 "_in_timers", "_pooled")

    def __init__(self, when: float, seq: int, fn: Callable, args: tuple,
                 kernel: Optional["Kernel"] = None, pooled: bool = False):
        self.when = when
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._kernel = kernel
        self._in_timers = False
        self._pooled = pooled

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        # Release the callback and its closed-over state immediately; the
        # shell of the handle stays queued until the backend skips it.
        self.fn = None
        self.args = ()
        if self._in_timers and self._kernel is not None:
            self._kernel._timers.note_cancelled()

    def __lt__(self, other: "TimerHandle") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)


def _set_result_if_pending(fut: Future, value: Any) -> None:
    if not fut.done():
        fut.set_result(value)


def gather(kernel: Kernel, awaitables: Iterable, return_exceptions: bool = False) -> Future:
    """Await several awaitables; complete with the list of their results.

    With ``return_exceptions`` the result list holds exception objects for
    the entries that failed; otherwise the first failure fails the gather
    (remaining tasks keep running, as in asyncio).
    """
    futs = [kernel.ensure_future(a) for a in awaitables]
    outer = kernel.create_future()
    if not futs:
        outer.set_result([])
        return outer
    remaining = [len(futs)]

    def on_done(_fut: Future) -> None:
        remaining[0] -= 1
        if outer.done():
            return
        if not return_exceptions:
            if _fut.cancelled():
                outer.set_exception(CancelledError("gathered task cancelled"))
                return
            if _fut.exception() is not None:
                outer.set_exception(_fut.exception())
                return
        if remaining[0] == 0:
            results = []
            for f in futs:
                if f.cancelled():
                    results.append(CancelledError("cancelled"))
                elif f.exception() is not None:
                    results.append(f.exception())
                else:
                    results.append(f.result())
            outer.set_result(results)

    for f in futs:
        f.add_done_callback(on_done)
    return outer


class Event:
    """A level-triggered event: awaiting :meth:`wait` parks until set."""

    def __init__(self, kernel: Kernel):
        self._kernel = kernel
        self._set = False
        self._waiters: List[Future] = []

    def is_set(self) -> bool:
        return self._set

    def set(self) -> None:
        if self._set:
            return
        self._set = True
        waiters, self._waiters = self._waiters, []
        for fut in waiters:
            if not fut.done():
                fut.set_result(True)

    def clear(self) -> None:
        self._set = False

    async def wait(self) -> bool:
        if self._set:
            return True
        fut = self._kernel.create_future()
        self._waiters.append(fut)
        return await fut


class Queue:
    """An unbounded FIFO queue for task-to-task handoff."""

    def __init__(self, kernel: Kernel):
        self._kernel = kernel
        self._items: List[Any] = []
        self._getters: List[Future] = []

    def put(self, item: Any) -> None:
        while self._getters:
            fut = self._getters.pop(0)
            if not fut.done():
                fut.set_result(item)
                return
        self._items.append(item)

    async def get(self) -> Any:
        if self._items:
            return self._items.pop(0)
        fut = self._kernel.create_future()
        self._getters.append(fut)
        return await fut

    def qsize(self) -> int:
        return len(self._items)

    def empty(self) -> bool:
        return not self._items


class Semaphore:
    """A counting semaphore; used to model bounded server resources."""

    def __init__(self, kernel: Kernel, value: int):
        if value < 0:
            raise ValueError("semaphore value must be >= 0")
        self._kernel = kernel
        self._value = value
        self._waiters: List[Future] = []

    @property
    def value(self) -> int:
        return self._value

    async def acquire(self) -> None:
        if self._value > 0 and not self._waiters:
            self._value -= 1
            return
        fut = self._kernel.create_future()
        self._waiters.append(fut)
        await fut

    def try_acquire(self) -> bool:
        if self._value > 0 and not self._waiters:
            self._value -= 1
            return True
        return False

    def release(self) -> None:
        while self._waiters:
            fut = self._waiters.pop(0)
            if not fut.done():
                fut.set_result(None)
                return
        self._value += 1
