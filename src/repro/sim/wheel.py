"""Timer backends for the kernel: hierarchical wheel + reference heap.

The kernel needs one operation done fast: "give me the queued timer with
the lowest ``(when, seq)``".  Two interchangeable backends provide it:

- :class:`TimerHeap` is the original binary heap.  Every push/pop pays an
  O(log n) sift of Python-level ``TimerHandle.__lt__`` calls -- the
  dominant cost in timer-dense workloads.  It stays in-tree as the
  reference implementation and as the oracle for the differential suite
  (``tests/test_timer_wheel.py``).

- :class:`TimerWheel` is a hierarchical timing wheel (Varghese &
  Lauck).  Arming a timer is O(1): quantize ``when`` to a tick, bucket
  the handle by how far ahead the tick lies.  Near timers land in a
  fine-grained level-0 slot; far timers land in coarser levels and
  *cascade* down as the cursor approaches.  Comparison work happens only
  inside one slot at a time, on small ``(when, seq, handle)`` tuple
  heaps whose comparisons run at C speed.

Both backends expose the same five operations -- ``push`` / ``peek`` /
``pop`` / ``note_cancelled`` / iteration -- and both yield *exactly* the
same ``(when, seq)`` pop order, which is what keeps golden trace digests
byte-identical across the swap.

Wheel geometry
--------------

Ticks are ``int(when * 256)``: ~4 ms granularity.  Resolution is a pure
performance knob -- it decides how many timers share a slot and how
often cascades run, never the emitted order, because sub-tick ordering
is preserved exactly (see below).  256 Hz keeps second-scale timeouts
within the two cheapest levels.  Four levels of 256 slots cover deltas
up to ``256**4`` ticks (~194 simulated days);
anything further sits in a small overflow heap until the cursor gets
close.  A timer ``delta = tick - cursor`` ticks ahead lives at level
``k`` where ``256**k < delta <= 256**(k+1)`` (level 0 for ``delta <=
256``), in slot ``(tick >> 8k) & 255``.  Because ``delta`` for level
``k`` never exceeds one full wrap of that level, the absolute slot index
is unambiguous: each occupied slot holds timers exactly one circular
scan ahead of the cursor's position at that level.

Sub-tick exactness: a slot may hold many distinct ``when`` floats that
quantize to the same tick (or, at higher levels, many ticks).  Slots are
unordered lists; ordering is imposed only when the cursor reaches a
slot and its contents spill into ``_buffer``, a heap of ``(when, seq,
handle)`` tuples.  Every pop comes off that heap, so the emitted order
is the true ``(when, seq)`` order, not the quantized one.

The cursor-advance rule ("refill") is where correctness lives: the next
event is the *earliest* of (a) the nearest occupied level-0 slot, (b)
the nearest cascade point of any higher level, and (c) the overflow
minimum.  Cascades must win ties -- a level-1 slot covering ticks
[t, t+256) may contain an entry at ``t`` itself, earlier than anything a
level-0 scan can see -- so higher levels cascade first and reinsert
their entries (now strictly nearer, ``delta <= 256**k``) into lower
levels.  Each occupancy scan is a rotate-and-count-trailing-zeros on a
256-bit occupancy bitmap per level.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterator, List, Optional

_TICK_HZ = 256.0            # ticks per simulated second
_SLOT_BITS = 8
_SLOTS = 1 << _SLOT_BITS    # 256 slots per level
_MASK = _SLOTS - 1
_LEVELS = 4
_SPAN = _SLOTS ** _LEVELS   # widest delta the levels can hold, in ticks
_OCC_MASK = (1 << _SLOTS) - 1


class TimerWheel:
    """Hierarchical timing wheel over ``TimerHandle`` objects.

    ``on_drop`` is called once for every cancelled handle the wheel
    reaps internally (so the owner can keep counters and recycle pooled
    handles); handles returned by :meth:`pop` are the caller's problem.
    """

    __slots__ = ("_cursor", "_buffer", "_head", "_slots", "_occ",
                 "_overflow", "_size", "_on_drop")

    def __init__(self, on_drop: Optional[Callable[[Any], None]] = None):
        self._cursor = 0                  # all slotted ticks are > cursor
        self._buffer: List[tuple] = []    # heap of (when, seq, handle)
        self._head: Optional[Any] = None  # popped-out next candidate
        self._slots = [{} for _ in range(_LEVELS)]  # level -> {idx: [handle]}
        self._occ = [0] * _LEVELS         # level -> 256-bit occupancy bitmap
        self._overflow: List[tuple] = []  # heap of (when, seq, handle)
        self._size = 0
        self._on_drop = on_drop

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Any]:
        """All queued handles (cancelled shells included), any order."""
        if self._head is not None:
            yield self._head
        for _w, _s, h in self._buffer:
            yield h
        for level in self._slots:
            for idx in sorted(level):
                for h in level[idx]:
                    yield h
        for _w, _s, h in self._overflow:
            yield h

    # -- arming --------------------------------------------------------

    def push(self, handle: Any) -> None:
        self._size += 1
        tick = int(handle.when * _TICK_HZ)
        delta = tick - self._cursor
        if delta <= 0:
            # Due at (or quantized behind) the cursor: compete directly
            # in the buffer.  If it beats the popped-out head, the head
            # is demoted so peek() re-runs the contest.
            head = self._head
            if head is not None and (handle.when, handle.seq) < (head.when,
                                                                 head.seq):
                heapq.heappush(self._buffer, (head.when, head.seq, head))
                self._head = None
            heapq.heappush(self._buffer, (handle.when, handle.seq, handle))
            return
        self._place(handle, tick, delta)

    def _place(self, handle: Any, tick: int, delta: int) -> None:
        """Bucket a strictly-future handle by its distance from the cursor."""
        if delta <= _SLOTS:
            k = 0
        elif delta <= _SLOTS ** 2:
            k = 1
        elif delta <= _SLOTS ** 3:
            k = 2
        elif delta <= _SPAN:
            k = 3
        else:
            heapq.heappush(self._overflow, (handle.when, handle.seq, handle))
            return
        idx = (tick >> (_SLOT_BITS * k)) & _MASK
        slots = self._slots[k]
        bucket = slots.get(idx)
        if bucket is None:
            slots[idx] = [handle]
            self._occ[k] |= 1 << idx
        else:
            bucket.append(handle)

    # -- draining ------------------------------------------------------

    def peek(self) -> Optional[Any]:
        """The live handle with the lowest ``(when, seq)``, or None.

        Stable: repeated peeks return the same handle until it is popped,
        cancelled, or beaten by a newly pushed earlier timer.
        """
        while True:
            head = self._head
            if head is not None:
                if not head.cancelled:
                    return head
                self._head = None
                self._reap(head)
            buffer = self._buffer
            while buffer:
                _when, _seq, handle = heapq.heappop(buffer)
                if handle.cancelled:
                    self._reap(handle)
                    continue
                self._head = handle
                return handle
            if not self._refill():
                return None

    def pop(self) -> Any:
        """Remove and return the handle the last :meth:`peek` returned."""
        handle = self._head
        self._head = None
        self._size -= 1
        return handle

    def note_cancelled(self) -> None:
        """Cancelled handles are reaped lazily when their slot is reached."""

    def _reap(self, handle: Any) -> None:
        self._size -= 1
        if self._on_drop is not None:
            self._on_drop(handle)

    def _refill(self) -> bool:
        """Advance the cursor to the next occupied position and load it.

        Returns True when the buffer gained at least one entry.  Picks
        the earliest candidate across all levels and the overflow heap;
        higher levels cascade (win ties) because their slot may hide
        entries earlier than anything level 0 can expose.
        """
        while True:
            best_start = -1
            best_k = -1
            cursor = self._cursor
            for k in range(_LEVELS):
                occ = self._occ[k]
                if not occ:
                    continue
                shift = _SLOT_BITS * k
                level_pos = cursor >> shift
                pos = level_pos & _MASK
                # Rotate so the slot just after the cursor is bit 0, then
                # count trailing zeros: d in [1, 256] circular steps ahead.
                rot = ((occ >> (pos + 1))
                       | (occ << (_MASK - pos))) & _OCC_MASK
                d = (rot & -rot).bit_length()
                start = (level_pos + d) << shift
                if best_start < 0 or start < best_start or \
                        (start == best_start and k > best_k):
                    best_start = start
                    best_k = k
            overflow = self._overflow
            if overflow:
                over_tick = int(overflow[0][0] * _TICK_HZ)
                if best_start < 0 or over_tick <= best_start:
                    # Far timers have drifted into (or tie) the scan
                    # horizon: pull them into the levels and rescan.
                    if best_start < 0:
                        # Levels are empty; jump the cursor so the
                        # earliest far timer fits, then redistribute.
                        self._cursor = cursor = max(cursor, over_tick - 1)
                        horizon = cursor + _SPAN
                    else:
                        horizon = best_start
                    while overflow and \
                            int(overflow[0][0] * _TICK_HZ) <= horizon:
                        when, seq, handle = heapq.heappop(overflow)
                        if handle.cancelled:
                            self._reap(handle)
                            continue
                        tick = int(when * _TICK_HZ)
                        delta = tick - cursor
                        if delta <= 0:
                            heapq.heappush(self._buffer, (when, seq, handle))
                        else:
                            self._place(handle, tick, delta)
                    continue
            if best_start < 0:
                return False
            shift = _SLOT_BITS * best_k
            idx = (best_start >> shift) & _MASK
            bucket = self._slots[best_k].pop(idx)
            self._occ[best_k] &= ~(1 << idx)
            if best_k == 0:
                self._cursor = best_start
                loaded = False
                for handle in bucket:
                    if handle.cancelled:
                        self._reap(handle)
                        continue
                    heapq.heappush(self._buffer,
                                   (handle.when, handle.seq, handle))
                    loaded = True
                if loaded:
                    return True
                continue  # slot was all cancelled shells; keep scanning
            # Cascade: step to just before the slot's range and re-place
            # its entries -- deltas are now in [1, 256**k], so every one
            # lands at a strictly lower level.
            self._cursor = cursor = best_start - 1
            for handle in bucket:
                if handle.cancelled:
                    self._reap(handle)
                    continue
                tick = int(handle.when * _TICK_HZ)
                delta = tick - cursor
                if delta <= 0:
                    heapq.heappush(self._buffer,
                                   (handle.when, handle.seq, handle))
                else:
                    self._place(handle, tick, delta)


class TimerHeap:
    """The original binary-heap backend: reference implementation/oracle.

    Same five-operation interface as :class:`TimerWheel`.  Cancelled
    handles are dropped lazily at peek time; `note_cancelled` keeps the
    mass-cancellation compaction (``wait_for`` churn can leave the heap
    mostly dead shells) -- rebuilding via ``heapify`` preserves
    ``(when, seq)`` order exactly, so compaction is invisible to event
    ordering.
    """

    __slots__ = ("_heap", "_cancelled", "_on_drop")

    def __init__(self, on_drop: Optional[Callable[[Any], None]] = None):
        self._heap: List[Any] = []
        self._cancelled = 0
        self._on_drop = on_drop

    def __len__(self) -> int:
        return len(self._heap)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._heap)

    def push(self, handle: Any) -> None:
        heapq.heappush(self._heap, handle)

    def peek(self) -> Optional[Any]:
        heap = self._heap
        while heap:
            handle = heap[0]
            if not handle.cancelled:
                return handle
            heapq.heappop(heap)
            if self._cancelled:
                self._cancelled -= 1
            if self._on_drop is not None:
                self._on_drop(handle)
        return None

    def pop(self) -> Any:
        return heapq.heappop(self._heap)

    def note_cancelled(self) -> None:
        self._cancelled += 1
        if self._cancelled > 64 and self._cancelled * 2 > len(self._heap):
            heap = self._heap
            live = [h for h in heap if not h.cancelled]
            if self._on_drop is not None:
                for h in heap:
                    if h.cancelled:
                        self._on_drop(h)
            heap[:] = live
            heapq.heapify(heap)
            self._cancelled = 0
