"""Structured event tracing for simulations.

A :class:`TraceLog` collects ``(time, category, event, fields)`` tuples.
Benchmarks and availability analysis consume these instead of scraping
stdout; tests assert on them to check exact mechanism behaviour (e.g. the
sequence of bind-retry failures before a backup takes over).

Cost model (see DESIGN.md, "Hot-path cost model"): ``emit`` is on the
simulation hot path -- every message, failover and viewer action emits --
so it is a bare append of a slotted event object.  Queries are served
from lazily built per-``(category, event)`` indices: the first
``select("mms", "promoted")`` scans whatever suffix of the log the index
has not seen yet, and every later query for the same key costs
O(new events since last query) to catch the index up plus O(matches) to
answer.  Repeated polling of the same keys (what tests and experiments
do) therefore never rescans the log from the start.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


class TraceEvent:
    """One trace record.  Slotted: a simulation emits millions of these."""

    __slots__ = ("time", "category", "event", "fields")

    def __init__(self, time: float, category: str, event: str,
                 fields: Optional[Dict[str, Any]] = None):
        self.time = time
        self.category = category
        self.event = event
        self.fields = fields if fields is not None else {}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return (self.time == other.time and self.category == other.category
                and self.event == other.event and self.fields == other.fields)

    # Events carry a dict, so like the frozen dataclass this replaces they
    # are not hashable.
    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kv = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time:10.3f}] {self.category}.{self.event} {kv}"


class TraceLog:
    """An append-only trace with indexed category/event filtering.

    ``max_events`` turns the log into a ring: once the buffer holds twice
    that many events the oldest half is trimmed (amortised O(1) per
    emit), optionally handing the trimmed block to ``on_drop`` (a sink
    for long soak runs that want to archive rather than lose history).
    Queries only see retained events; ``dropped`` counts the rest.
    """

    def __init__(self, kernel, enabled: bool = True,
                 max_events: Optional[int] = None,
                 on_drop: Optional[Callable[[List[TraceEvent]], None]] = None):
        self._kernel = kernel
        self.enabled = enabled
        self.events: List[TraceEvent] = []
        self.max_events = max_events
        self.on_drop = on_drop
        self.dropped = 0
        # (category|None, event|None) -> [events_scanned, matches]
        self._index: Dict[Tuple[Optional[str], Optional[str]],
                          List[Any]] = {}

    def emit(self, category: str, event: str, **fields: Any) -> None:
        if not self.enabled:
            return
        self.events.append(TraceEvent(self._kernel.now, category, event, fields))
        if self.max_events is not None and len(self.events) >= 2 * self.max_events:
            self._trim()

    def _trim(self) -> None:
        cut = len(self.events) - self.max_events
        old = self.events[:cut]
        del self.events[:cut]
        self.dropped += cut
        # Index positions and cached matches reference trimmed events;
        # rebuild lazily on next query.  Trims are rare (every
        # max_events emits), so this amortises away.
        self._index.clear()
        if self.on_drop is not None:
            self.on_drop(old)

    def _matches(self, category: Optional[str],
                 event: Optional[str]) -> List[TraceEvent]:
        """The index lane: catch the (category, event) slot up, return it."""
        entry = self._index.get((category, event))
        if entry is None:
            entry = [0, []]
            self._index[(category, event)] = entry
        events = self.events
        n = len(events)
        scanned = entry[0]
        if scanned < n:
            out = entry[1]
            for i in range(scanned, n):
                ev = events[i]
                if category is not None and ev.category != category:
                    continue
                if event is not None and ev.event != event:
                    continue
                out.append(ev)
            entry[0] = n
        return entry[1]

    def select(self, category: Optional[str] = None,
               event: Optional[str] = None, **field_filters: Any) -> List[TraceEvent]:
        """Return events matching category, event name, and field values."""
        matches = self._matches(category, event)
        if not field_filters:
            return list(matches)
        items = list(field_filters.items())
        return [ev for ev in matches
                if not any(ev.fields.get(k) != v for k, v in items)]

    def _select_linear(self, category: Optional[str] = None,
                       event: Optional[str] = None,
                       **field_filters: Any) -> List[TraceEvent]:
        """Reference O(n) scan; kept for equivalence tests and benchmarks."""
        out = []
        for ev in self.events:
            if category is not None and ev.category != category:
                continue
            if event is not None and ev.event != event:
                continue
            if any(ev.fields.get(k) != v for k, v in field_filters.items()):
                continue
            out.append(ev)
        return out

    def count(self, category: Optional[str] = None, event: Optional[str] = None) -> int:
        return len(self._matches(category, event))

    def last(self, category: Optional[str] = None,
             event: Optional[str] = None) -> Optional[TraceEvent]:
        matches = self._matches(category, event)
        return matches[-1] if matches else None

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
