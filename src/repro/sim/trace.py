"""Structured event tracing for simulations.

A :class:`TraceLog` collects ``(time, category, event, fields)`` tuples.
Benchmarks and availability analysis consume these instead of scraping
stdout; tests assert on them to check exact mechanism behaviour (e.g. the
sequence of bind-retry failures before a backup takes over).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.sim.kernel import Kernel


@dataclass(frozen=True)
class TraceEvent:
    time: float
    category: str
    event: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kv = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time:10.3f}] {self.category}.{self.event} {kv}"


class TraceLog:
    """An append-only trace with simple category/event filtering."""

    def __init__(self, kernel: Kernel, enabled: bool = True):
        self._kernel = kernel
        self.enabled = enabled
        self.events: List[TraceEvent] = []

    def emit(self, category: str, event: str, **fields: Any) -> None:
        if not self.enabled:
            return
        self.events.append(TraceEvent(self._kernel.now, category, event, fields))

    def select(self, category: Optional[str] = None,
               event: Optional[str] = None, **field_filters: Any) -> List[TraceEvent]:
        """Return events matching category, event name, and field values."""
        out = []
        for ev in self.events:
            if category is not None and ev.category != category:
                continue
            if event is not None and ev.event != event:
                continue
            if any(ev.fields.get(k) != v for k, v in field_filters.items()):
                continue
            out.append(ev)
        return out

    def count(self, category: Optional[str] = None, event: Optional[str] = None) -> int:
        return len(self.select(category=category, event=event))

    def last(self, category: Optional[str] = None,
             event: Optional[str] = None) -> Optional[TraceEvent]:
        matches = self.select(category=category, event=event)
        return matches[-1] if matches else None

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
