"""Seeded randomness for reproducible simulations.

Every stochastic choice in the simulation (workload arrivals, crash times,
jitter) draws from a :class:`SeededRandom` owned by the scenario, never
from the global :mod:`random` state, so a seed fully determines a run.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


def stable_seed(*parts: object) -> int:
    """Derive an integer seed from ``parts``, stable across interpreter runs.

    Use this instead of ``hash()`` (PYTHONHASHSEED-sensitive) or ``id()``
    (allocation-order-sensitive) wherever a component derives its own
    seed or ordering key -- linter rule D004.  The recipe is the same
    digest :meth:`SeededRandom.stream` uses, so named substreams and
    ad-hoc derivations stay in one family.
    """
    text = ":".join(str(p) for p in parts)
    digest = hashlib.md5(text.encode()).hexdigest()
    return int(digest[:8], 16)


class SeededRandom:
    """A thin wrapper around :class:`random.Random` with named substreams.

    Substreams let independent components (workload vs failure injection)
    draw from uncorrelated generators derived from one master seed, so
    adding draws in one component does not perturb the other.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)
        self._streams: dict = {}

    def stream(self, name: str) -> "SeededRandom":
        """Return (creating if needed) the named substream.

        Derivation uses a stable digest, not ``hash()``, so runs are
        reproducible across interpreter invocations (PYTHONHASHSEED).
        """
        if name not in self._streams:
            self._streams[name] = SeededRandom(stable_seed(self.seed, name))
        return self._streams[name]

    def uniform(self, low: float, high: float) -> float:
        return self._rng.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        return self._rng.expovariate(rate)

    def randint(self, low: int, high: int) -> int:
        return self._rng.randint(low, high)

    def random(self) -> float:
        return self._rng.random()

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        return self._rng.sample(seq, k)

    def shuffle(self, seq: list) -> None:
        self._rng.shuffle(seq)

    def zipf_index(self, n: int, skew: float = 1.0) -> int:
        """Draw an index in ``[0, n)`` with Zipf(skew) popularity.

        Used for movie popularity: a handful of titles (the "T2"s of the
        catalog) absorb most open requests, which is what makes the
        recovery-storm experiment (paper section 8.2) interesting.
        """
        if n <= 0:
            raise ValueError("zipf_index needs n >= 1")
        weights = [1.0 / ((i + 1) ** skew) for i in range(n)]
        total = sum(weights)
        target = self._rng.random() * total
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if target <= acc:
                return i
        return n - 1
