"""Deterministic virtual-time simulation substrate.

The paper's system ran on SGI Challenge servers and custom settop kernels;
every mechanism it describes (bind-retry races, audit polling, fail-over
bounds) is defined in terms of *time and messages*, not hardware.  This
package provides the substitute substrate: a single-threaded event loop
running on simulated time, with ``async``/``await`` tasks, futures,
processes that can crash and restart, and seeded randomness so every run
is exactly reproducible.

Public surface:

- :class:`~repro.sim.kernel.Kernel` -- the virtual-time event loop.
- :class:`~repro.sim.kernel.Future`, :class:`~repro.sim.kernel.Task` --
  awaitable primitives bound to a kernel.
- :class:`~repro.sim.kernel.Event`, :class:`~repro.sim.kernel.Queue`,
  :class:`~repro.sim.kernel.Semaphore` -- synchronisation helpers.
- :class:`~repro.sim.host.Host` and :class:`~repro.sim.host.Process` --
  the unit of failure: killing a process cancels its tasks and fires exit
  watchers, exactly like the SSC's ``wait()`` loop in the paper (section 6.1).
"""

from repro.sim.errors import (
    CancelledError,
    InvalidStateError,
    SimError,
    SimTimeoutError,
)
from repro.sim.host import Host, Process, ProcessExit
from repro.sim.kernel import (
    Event,
    Future,
    Kernel,
    Queue,
    Semaphore,
    Task,
    gather,
)
from repro.sim.rand import SeededRandom

__all__ = [
    "CancelledError",
    "Event",
    "Future",
    "Host",
    "InvalidStateError",
    "Kernel",
    "Process",
    "ProcessExit",
    "Queue",
    "SeededRandom",
    "Semaphore",
    "SimError",
    "SimTimeoutError",
    "Task",
    "gather",
]
