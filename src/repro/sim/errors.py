"""Exception hierarchy for the simulation substrate."""


class SimError(Exception):
    """Base class for all simulation-level errors."""


class CancelledError(SimError):
    """A task or future was cancelled.

    Deliberately *not* Python's built-in ``asyncio.CancelledError`` so that
    simulated code cannot confuse kernel cancellation with host-level
    asyncio, and so it is catchable as a :class:`SimError`.
    """


class InvalidStateError(SimError):
    """An operation was attempted on a future in the wrong state."""


class SimTimeoutError(SimError):
    """A ``wait_for`` deadline elapsed before the awaitable completed."""


class KernelStopped(SimError):
    """The kernel was asked to do work after :meth:`Kernel.stop`."""


class PoolHygieneError(SimError):
    """An object came out of a free list carrying stale state.

    Raised at *acquire* time when a recycled ``TimerHandle`` or
    ``Message`` still holds the previous user's callback/payload -- the
    reset-on-release contract was violated.  Failing loudly here turns a
    silent cross-reuse corruption into an immediate, attributable error.
    """
