"""Exception hierarchy for the simulation substrate."""


class SimError(Exception):
    """Base class for all simulation-level errors."""


class CancelledError(SimError):
    """A task or future was cancelled.

    Deliberately *not* Python's built-in ``asyncio.CancelledError`` so that
    simulated code cannot confuse kernel cancellation with host-level
    asyncio, and so it is catchable as a :class:`SimError`.
    """


class InvalidStateError(SimError):
    """An operation was attempted on a future in the wrong state."""


class SimTimeoutError(SimError):
    """A ``wait_for`` deadline elapsed before the awaitable completed."""


class KernelStopped(SimError):
    """The kernel was asked to do work after :meth:`Kernel.stop`."""
