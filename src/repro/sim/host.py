"""Hosts and processes: the units of failure.

The paper's failure model has three grains (section 3.5): a *process*
(service or settop application) can crash, a *server machine* can crash,
and a *settop* can crash or be powered off.  This module models the first
two; settops are just hosts with a single-process kernel.

Key semantics reproduced from the paper:

- Killing a process kills all processes it spawned (section 6.1: "If the
  SSC crashes, all services that have been started by the SSC will exit as
  well", because the SSC is their ``wait()``-ing parent).
- Each process carries an *incarnation timestamp*; object references minted
  by an earlier incarnation are invalid after restart (section 3.2.1).
- Anything a process held in memory dies with it; only the host's
  :class:`Disk` survives, which is what makes the "stateless recovery"
  design of the RAS and MMS meaningful.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.sim.errors import SimError
from repro.sim.kernel import Kernel, Task


class ProcessExit(SimError):
    """Raised when interacting with a process that has exited."""


_pid_counter = [0]


def reset_pid_counter() -> None:
    """Restart pid allocation; call when a fresh simulation run begins.

    Pids are process-global, so back-to-back runs in one interpreter
    would otherwise see different pids in their traces -- breaking the
    same-seed byte-identical-trace invariant the determinism check
    (``repro --determinism-check``) enforces.
    """
    _pid_counter[0] = 0


class Process:
    """A crashable unit of execution on a :class:`Host`.

    Tasks created through :meth:`create_task` are cancelled when the
    process is killed; exit watchers fire afterwards (the SSC and the OCS
    transport both register watchers).
    """

    def __init__(self, host: "Host", name: str, parent: Optional["Process"] = None):
        _pid_counter[0] += 1
        self.pid = _pid_counter[0]
        self.host = host
        self.name = name
        self.parent = parent
        self.children: List["Process"] = []
        self.alive = True
        self.exit_status: Optional[str] = None
        # Snapshot of the tasks cancelled at death, retained so a chaos
        # monitor can verify none of them is still pending after a crash
        # (a leaked Future would keep serving from a dead incarnation).
        self.cancelled_tasks: List[Task] = []
        # Incarnation: (boot time, pid) -- unique even when two processes
        # start at the same simulated instant.
        self.incarnation = (host.kernel.now, self.pid)
        self._tasks: List[Task] = []
        self._exit_watchers: List[Callable[["Process"], None]] = []
        # Arbitrary per-process attachments (the OCS runtime lives here).
        self.attachments: Dict[str, Any] = {}
        if parent is not None:
            parent.children.append(self)

    @property
    def kernel(self) -> Kernel:
        return self.host.kernel

    def create_task(self, coro, name: Optional[str] = None) -> Task:
        if not self.alive:
            coro.close()
            raise ProcessExit(f"process {self.name}({self.pid}) has exited")
        task = self.kernel.create_task(coro, name=f"{self.name}:{name or 'task'}")
        self._tasks.append(task)
        self._tasks = [t for t in self._tasks if not t.done()]
        return task

    def on_exit(self, fn: Callable[["Process"], None]) -> None:
        """Register a watcher called (once) after this process dies."""
        if not self.alive:
            self.kernel.call_soon(fn, self)
        else:
            self._exit_watchers.append(fn)

    def kill(self, status: str = "killed") -> None:
        """Terminate the process, its tasks, and (recursively) its children."""
        if not self.alive:
            return
        self.alive = False
        self.exit_status = status
        for child in list(self.children):
            child.kill(status=f"parent {self.name} exited")
        tasks, self._tasks = self._tasks, []
        for task in tasks:
            task.cancel()
        self.cancelled_tasks = tasks
        if self.parent is not None and self in self.parent.children:
            self.parent.children.remove(self)
        watchers, self._exit_watchers = self._exit_watchers, []
        for fn in watchers:
            fn(self)
        self.host._forget(self)

    def exit(self, status: str = "exited") -> None:
        """Voluntary termination (same teardown as :meth:`kill`)."""
        self.kill(status=status)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else f"dead({self.exit_status})"
        return f"<Process {self.name} pid={self.pid} on {self.host.name} {state}>"


class Disk:
    """Host-attached storage that survives process crashes and reboots.

    The database service keeps its tables here; the MDS keeps movie files
    here.  A *host* crash does not lose the disk (the paper's servers kept
    their movies across reboots); only explicit :meth:`wipe` does.
    """

    def __init__(self) -> None:
        self._data: Dict[str, Any] = {}

    def read(self, key: str, default: Any = None) -> Any:
        return self._data.get(key, default)

    def write(self, key: str, value: Any) -> None:
        self._data[key] = value

    def delete(self, key: str) -> None:
        self._data.pop(key, None)

    def keys(self) -> List[str]:
        return sorted(self._data.keys())

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def wipe(self) -> None:
        self._data.clear()


class Host:
    """A machine: a server (SGI Challenge in the paper) or a settop.

    ``host.crash()`` kills every process; ``host.boot()`` brings the host
    back up and runs registered boot hooks (the cluster builder installs an
    init hook that restarts the SSC, reproducing section 6.3 step 1).
    """

    def __init__(self, kernel: Kernel, name: str, kind: str = "server"):
        self.kernel = kernel
        self.name = name
        self.kind = kind
        self.ip: Optional[str] = None  # assigned when attached to a network
        self.up = True
        self.disk = Disk()
        self.processes: List[Process] = []
        self._boot_hooks: List[Callable[["Host"], None]] = []
        self._crash_hooks: List[Callable[["Host"], None]] = []
        self.boot_count = 1

    def spawn(self, name: str, parent: Optional[Process] = None) -> Process:
        if not self.up:
            raise ProcessExit(f"host {self.name} is down")
        proc = Process(self, name, parent=parent)
        self.processes.append(proc)
        return proc

    def crash(self) -> None:
        """Fail-stop the machine: every process dies at once."""
        if not self.up:
            return
        self.up = False
        for proc in list(self.processes):
            proc.kill(status="host crashed")
        self.processes = []
        for hook in list(self._crash_hooks):
            hook(self)

    def boot(self) -> None:
        """Bring a crashed host back up and run its boot hooks (init)."""
        if self.up:
            return
        self.up = True
        self.boot_count += 1
        for hook in list(self._boot_hooks):
            hook(self)

    def add_boot_hook(self, fn: Callable[["Host"], None]) -> None:
        self._boot_hooks.append(fn)

    def add_crash_hook(self, fn: Callable[["Host"], None]) -> None:
        """Register an observer called after this host fail-stops.

        Chaos monitors use it to timestamp outages; hooks must only
        observe (scheduling work from one would perturb event order
        relative to an uninstrumented run)."""
        self._crash_hooks.append(fn)

    def find_process(self, name: str) -> Optional[Process]:
        for proc in self.processes:
            if proc.name == name and proc.alive:
                return proc
        return None

    def _forget(self, proc: Process) -> None:
        if proc in self.processes:
            self.processes.remove(proc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else "down"
        return f"<Host {self.name} ({self.kind}) {state} ip={self.ip}>"
