"""Hosts and processes: the units of failure.

The paper's failure model has three grains (section 3.5): a *process*
(service or settop application) can crash, a *server machine* can crash,
and a *settop* can crash or be powered off.  This module models the first
two; settops are just hosts with a single-process kernel.

Key semantics reproduced from the paper:

- Killing a process kills all processes it spawned (section 6.1: "If the
  SSC crashes, all services that have been started by the SSC will exit as
  well", because the SSC is their ``wait()``-ing parent).
- Each process carries an *incarnation timestamp*; object references minted
  by an earlier incarnation are invalid after restart (section 3.2.1).
- Anything a process held in memory dies with it; only the host's
  :class:`Disk` survives, which is what makes the "stateless recovery"
  design of the RAS and MMS meaningful.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, List, Optional

from repro.sim.errors import SimError
from repro.sim.kernel import Kernel, Task


class ProcessExit(SimError):
    """Raised when interacting with a process that has exited."""


class DiskWedged(SimError):
    """The disk is wedged: every I/O hangs forever (modelled as a raise).

    A wedged drive is indistinguishable from an infinitely slow one, so
    the simulator collapses the wedged/slow-I/O spectrum into this one
    fail-visible mode: any read/write/sync raises until the chaos layer
    unwedges the disk (``heal_all`` or a timed ``disk_wedge`` fault).
    Crossing an OCS call boundary this re-materialises client-side as a
    retryable unavailability (see ``repro.ocs.exceptions.DiskWedged``).
    """


class CorruptBlob:
    """What a reader finds where a torn or bit-rotten write landed.

    Deliberately not a dict/list/tuple: consumers that expect structured
    state must notice (checksum mismatch or an isinstance check) and take
    their recovery path instead of silently indexing into garbage.
    """

    __slots__ = ("key", "reason")

    def __init__(self, key: str, reason: str):
        self.key = key
        self.reason = reason

    def __repr__(self) -> str:
        return f"<CorruptBlob {self.key!r} ({self.reason})>"


class _Tombstone:
    """Buffered-delete marker inside a write barrier."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<tombstone>"


_TOMBSTONE = _Tombstone()


_pid_counter = [0]


def reset_pid_counter() -> None:
    """Restart pid allocation; call when a fresh simulation run begins.

    Pids are process-global, so back-to-back runs in one interpreter
    would otherwise see different pids in their traces -- breaking the
    same-seed byte-identical-trace invariant the determinism check
    (``repro --determinism-check``) enforces.
    """
    _pid_counter[0] = 0


class Process:
    """A crashable unit of execution on a :class:`Host`.

    Tasks created through :meth:`create_task` are cancelled when the
    process is killed; exit watchers fire afterwards (the SSC and the OCS
    transport both register watchers).
    """

    def __init__(self, host: "Host", name: str, parent: Optional["Process"] = None):
        _pid_counter[0] += 1
        self.pid = _pid_counter[0]
        self.host = host
        self.name = name
        self.parent = parent
        self.children: List["Process"] = []
        self.alive = True
        self.exit_status: Optional[str] = None
        # Snapshot of the tasks cancelled at death, retained so a chaos
        # monitor can verify none of them is still pending after a crash
        # (a leaked Future would keep serving from a dead incarnation).
        self.cancelled_tasks: List[Task] = []
        # Incarnation: (boot time, pid) -- unique even when two processes
        # start at the same simulated instant.
        self.incarnation = (host.kernel.now, self.pid)
        self._tasks: List[Task] = []
        self._exit_watchers: List[Callable[["Process"], None]] = []
        # Arbitrary per-process attachments (the OCS runtime lives here).
        self.attachments: Dict[str, Any] = {}
        if parent is not None:
            parent.children.append(self)

    @property
    def kernel(self) -> Kernel:
        return self.host.kernel

    def create_task(self, coro, name: Optional[str] = None) -> Task:
        if not self.alive:
            coro.close()
            raise ProcessExit(f"process {self.name}({self.pid}) has exited")
        task = self.kernel.create_task(coro, name=f"{self.name}:{name or 'task'}")
        self._tasks.append(task)
        self._tasks = [t for t in self._tasks if not t.done()]
        return task

    def on_exit(self, fn: Callable[["Process"], None]) -> None:
        """Register a watcher called (once) after this process dies."""
        if not self.alive:
            self.kernel.call_soon(fn, self)
        else:
            self._exit_watchers.append(fn)

    def kill(self, status: str = "killed") -> None:
        """Terminate the process, its tasks, and (recursively) its children."""
        if not self.alive:
            return
        self.alive = False
        self.exit_status = status
        for child in list(self.children):
            child.kill(status=f"parent {self.name} exited")
        tasks, self._tasks = self._tasks, []
        for task in tasks:
            task.cancel()
        self.cancelled_tasks = tasks
        if self.parent is not None and self in self.parent.children:
            self.parent.children.remove(self)
        watchers, self._exit_watchers = self._exit_watchers, []
        for fn in watchers:
            fn(self)
        self.host._forget(self)

    def exit(self, status: str = "exited") -> None:
        """Voluntary termination (same teardown as :meth:`kill`)."""
        self.kill(status=status)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else f"dead({self.exit_status})"
        return f"<Process {self.name} pid={self.pid} on {self.host.name} {state}>"


class Disk:
    """Host-attached storage that survives process crashes and reboots.

    The database service keeps its tables here; the MDS keeps movie files
    here.  A *host* crash does not lose the disk (the paper's servers kept
    their movies across reboots); only explicit :meth:`wipe` does.

    Values are isolated by value, not by reference: :meth:`write` stores a
    deep copy and :meth:`read` returns one, so a caller mutating an object
    after writing it cannot retroactively "update" the disk (and a reader
    cannot corrupt the stored copy in place).

    The storage *fault model* is entirely opt-in so that default runs stay
    byte-identical to the golden traces:

    - ``write_barrier``: writes land in a volatile buffer until
      :meth:`sync` flushes them to the durable image; a host crash drops
      the unsynced buffer (power-failure semantics).  Off by default --
      writes are durable immediately and :meth:`sync` is a counted no-op.
    - ``arm_torn_write``: the next crash garbles (rather than cleanly
      drops) the most recently buffered key -- the classic torn sector.
    - ``corrupt``: bit-rot; replaces a durable value with a
      :class:`CorruptBlob` in place.
    - ``wedged``: every I/O raises :class:`DiskWedged` until healed.

    Counters (``writes``/``syncs``/``lost_writes``/``torn_writes``/
    ``corrupted_keys``) feed the metrics layer; bumping them emits no
    trace events.
    """

    def __init__(self) -> None:
        self._data: Dict[str, Any] = {}     # durable (synced) image
        self._buffer: Dict[str, Any] = {}   # written but not yet synced
        self.write_barrier = False
        self.wedged = False
        self._torn_armed = False
        self._last_buffered: Optional[str] = None
        self.writes = 0
        self.syncs = 0
        self.lost_writes = 0
        self.torn_writes = 0
        self.corrupted_keys = 0

    def _check_wedged(self) -> None:
        if self.wedged:
            raise DiskWedged("disk is wedged")

    def read(self, key: str, default: Any = None) -> Any:
        self._check_wedged()
        if key in self._buffer:
            value = self._buffer[key]
            return default if value is _TOMBSTONE else copy.deepcopy(value)
        if key in self._data:
            return copy.deepcopy(self._data[key])
        return default

    def write(self, key: str, value: Any) -> None:
        self._check_wedged()
        self.writes += 1
        value = copy.deepcopy(value)
        if self.write_barrier:
            self._buffer[key] = value
            self._last_buffered = key
        else:
            self._data[key] = value

    def delete(self, key: str) -> None:
        self._check_wedged()
        if self.write_barrier:
            self._buffer[key] = _TOMBSTONE
            self._last_buffered = key
        else:
            self._data.pop(key, None)

    def sync(self) -> None:
        """Flush buffered writes to the durable image (fsync semantics).

        With the write barrier off this is a counted no-op, so durable
        consumers may call it unconditionally on their ack paths.
        """
        self._check_wedged()
        self.syncs += 1
        if not self._buffer:
            return
        for key, value in self._buffer.items():
            if value is _TOMBSTONE:
                self._data.pop(key, None)
            else:
                self._data[key] = value
        self._buffer.clear()
        self._last_buffered = None

    def keys(self) -> List[str]:
        self._check_wedged()
        live = set(self._data)
        for key, value in self._buffer.items():
            if value is _TOMBSTONE:
                live.discard(key)
            else:
                live.add(key)
        return sorted(live)

    def __contains__(self, key: str) -> bool:
        self._check_wedged()
        if key in self._buffer:
            return self._buffer[key] is not _TOMBSTONE
        return key in self._data

    def wipe(self) -> None:
        self._data.clear()
        self._buffer.clear()
        self._last_buffered = None

    # -- fault surface (driven by the chaos layer) -----------------------

    def arm_torn_write(self) -> None:
        """The next crash tears the most recently buffered write.

        A torn write needs a write in flight, so arming the tear also
        arms the write barrier.
        """
        self.write_barrier = True
        self._torn_armed = True

    def corrupt(self, key: str) -> bool:
        """Bit-rot: garble the stored value of ``key`` in place.

        Returns False if the key does not exist (nothing to rot).
        """
        present = (key in self._buffer and self._buffer[key] is not _TOMBSTONE
                   ) or key in self._data
        if not present:
            return False
        self._buffer.pop(key, None)
        self._data[key] = CorruptBlob(key, "bit rot")
        self.corrupted_keys += 1
        return True

    def heal(self) -> None:
        """End active disturbance: unwedge and disarm the pending tear.

        The write barrier stays as armed -- buffered state remains
        readable and only a *crash* (which the healed schedule no longer
        contains) could lose it.
        """
        self.wedged = False
        self._torn_armed = False

    def crash(self) -> None:
        """Power loss: unsynced buffered writes are gone.

        If a torn write was armed, the most recently buffered key lands
        garbled on the durable image instead of vanishing cleanly.
        """
        if not self._buffer:
            self._torn_armed = False
            return
        lost = len(self._buffer)
        if self._torn_armed and self._last_buffered in self._buffer:
            value = self._buffer[self._last_buffered]
            if value is not _TOMBSTONE:
                self._data[self._last_buffered] = CorruptBlob(
                    self._last_buffered, "torn write")
                self.torn_writes += 1
                lost -= 1
        self._torn_armed = False
        self.lost_writes += lost
        self._buffer.clear()
        self._last_buffered = None

    def counters(self) -> Dict[str, int]:
        """Snapshot of the I/O counters for the metrics layer."""
        return {"writes": self.writes, "syncs": self.syncs,
                "lost_writes": self.lost_writes,
                "torn_writes": self.torn_writes,
                "corrupted_keys": self.corrupted_keys,
                "unsynced": len(self._buffer)}


class Host:
    """A machine: a server (SGI Challenge in the paper) or a settop.

    ``host.crash()`` kills every process; ``host.boot()`` brings the host
    back up and runs registered boot hooks (the cluster builder installs an
    init hook that restarts the SSC, reproducing section 6.3 step 1).
    """

    def __init__(self, kernel: Kernel, name: str, kind: str = "server"):
        self.kernel = kernel
        self.name = name
        self.kind = kind
        self.ip: Optional[str] = None  # assigned when attached to a network
        self.up = True
        self.disk = Disk()
        self.processes: List[Process] = []
        self._boot_hooks: List[Callable[["Host"], None]] = []
        self._crash_hooks: List[Callable[["Host"], None]] = []
        self.boot_count = 1

    def spawn(self, name: str, parent: Optional[Process] = None) -> Process:
        if not self.up:
            raise ProcessExit(f"host {self.name} is down")
        proc = Process(self, name, parent=parent)
        self.processes.append(proc)
        return proc

    def crash(self) -> None:
        """Fail-stop the machine: every process dies at once."""
        if not self.up:
            return
        self.up = False
        for proc in list(self.processes):
            proc.kill(status="host crashed")
        self.processes = []
        self.disk.crash()
        for hook in list(self._crash_hooks):
            hook(self)

    def boot(self) -> None:
        """Bring a crashed host back up and run its boot hooks (init)."""
        if self.up:
            return
        self.up = True
        self.boot_count += 1
        for hook in list(self._boot_hooks):
            hook(self)

    def add_boot_hook(self, fn: Callable[["Host"], None]) -> None:
        self._boot_hooks.append(fn)

    def add_crash_hook(self, fn: Callable[["Host"], None]) -> None:
        """Register an observer called after this host fail-stops.

        Chaos monitors use it to timestamp outages; hooks must only
        observe (scheduling work from one would perturb event order
        relative to an uninstrumented run)."""
        self._crash_hooks.append(fn)

    def find_process(self, name: str) -> Optional[Process]:
        for proc in self.processes:
            if proc.name == name and proc.alive:
                return proc
        return None

    def _forget(self, proc: Process) -> None:
        if proc in self.processes:
            self.processes.remove(proc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else "down"
        return f"<Host {self.name} ({self.kind}) {state} ip={self.ip}>"
