"""The navigator: "a convenient way for settop users to find applications
of interest" (section 3.4.2).

Presents the channel line-up (venues, section 3.4.3) and asks the AM to
tune; its "UI" is the list of channels it can describe to the viewer.
"""

from __future__ import annotations

from repro.settop.apps.base import SettopApp


class NavigatorApp(SettopApp):
    name = "navigator"

    def __init__(self, am, process):
        super().__init__(am, process)
        self.current_venue = None

    async def start(self) -> None:
        self.emit("up", channels=len(self.am.channels))

    def enter_venue(self, venue) -> None:
        """Scope the navigator to one venue's set (None = full line-up)."""
        self.current_venue = venue
        if venue is not None:
            self.emit("venue", venue=venue)

    def lineup(self) -> dict:
        """What the viewer sees: the venue's applications, or the full
        channel line-up."""
        if self.current_venue is not None:
            apps = self.am.venues.get(self.current_venue, [])
            return {name: name for name in apps}
        return dict(self.am.channels)

    async def pick(self, channel) -> None:
        """Viewer selects an application through the navigator."""
        await self.am.tune(channel)
