"""The navigator: "a convenient way for settop users to find applications
of interest" (section 3.4.2).

Presents the channel line-up (venues, section 3.4.3) and asks the AM to
tune; its "UI" is the list of channels it can describe to the viewer.

PR 4: the navigator's shopping-backed menu degrades gracefully.  When
the shopping service (or the database behind it) is shedding load, the
viewer sees the last good menu from cache -- possibly stale, but on
screen -- instead of an error.
"""

from __future__ import annotations

from typing import Optional

from repro.ocs.exceptions import OCSError, ServiceUnavailable
from repro.settop.apps.base import SettopApp


class NavigatorApp(SettopApp):
    name = "navigator"

    def __init__(self, am, process):
        super().__init__(am, process)
        self.current_venue = None
        self.shop = None
        self._menu_cache: Optional[dict] = None
        self.cached_menus = 0

    async def start(self) -> None:
        self.shop = self.proxy("svc/shopping")
        self.emit("up", channels=len(self.am.channels))

    async def menu(self) -> dict:
        """The shopping-venue menu: live catalog, or the cached copy.

        The failure net is deliberately broad (any OCS-level error plus
        the shop's own StoreUnavailable): whatever went wrong between
        here and the database, the navigator's job is to keep something
        on screen.
        """
        from repro.services.shopping import StoreUnavailable
        try:
            catalog = await self.shop.call(
                "catalog",
                deadline=self.kernel.now + self.params.call_timeout)
            self._menu_cache = dict(catalog)
            return {"items": dict(catalog), "cached": False}
        except (StoreUnavailable, ServiceUnavailable, OCSError):
            self.cached_menus += 1
            items = dict(self._menu_cache) if self._menu_cache else {}
            self.emit("cached_menu", items=len(items))
            return {"items": items, "cached": True}

    def enter_venue(self, venue) -> None:
        """Scope the navigator to one venue's set (None = full line-up)."""
        self.current_venue = venue
        if venue is not None:
            self.emit("venue", venue=venue)

    def lineup(self) -> dict:
        """What the viewer sees: the venue's applications, or the full
        channel line-up."""
        if self.current_venue is not None:
            apps = self.am.venues.get(self.current_venue, [])
            return {name: name for name in apps}
        return dict(self.am.channels)

    async def pick(self, channel) -> None:
        """Viewer selects an application through the navigator."""
        await self.am.tune(channel)
