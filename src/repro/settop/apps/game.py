"""The settop multiplayer-game application (section 3).

Holds its own score so a restarted game service recovers state *from the
clients* (section 9.4's third technique): on :class:`NotInGame` the app
simply rejoins with the locally held score.
"""

from __future__ import annotations

from repro.services.game import NotInGame
from repro.settop.apps.base import SettopApp


class GameApp(SettopApp):
    name = "game"

    def __init__(self, am, process):
        super().__init__(am, process)
        self.game = None
        self.game_id = f"lobby-{am.boot_params['neighborhood']}"
        self.player = f"player@{self.host.ip}"
        self.score = 0
        self.rejoins = 0

    async def start(self) -> None:
        self.game = self.proxy("svc/game")
        await self.join()

    async def join(self) -> dict:
        state = await self.game.call("join", self.game_id, self.player,
                                     self.score)
        self.emit("joined", game=self.game_id)
        return state

    async def play_round(self, number: int) -> dict:
        """One guess; transparently rejoins if the service lost us."""
        while True:
            try:
                outcome = await self.game.call("guess", self.game_id,
                                               self.player, number)
                break
            except NotInGame:
                # The game service restarted and lost its volatile state;
                # recover it from the client side.
                self.rejoins += 1
                await self.join()
        if outcome["result"] == "correct":
            self.score += 1
        return outcome

    async def leave(self) -> None:
        await self.game.call("leave", self.game_id, self.player)

    async def shutdown(self) -> None:
        try:
            await self.leave()
        except Exception:  # noqa: BLE001 - best-effort on channel change
            pass
