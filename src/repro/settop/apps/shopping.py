"""The settop home-shopping application (section 3)."""

from __future__ import annotations

from typing import Dict, List

from repro.settop.apps.base import SettopApp


class ShoppingApp(SettopApp):
    name = "shopping"

    def __init__(self, am, process):
        super().__init__(am, process)
        self.shop = None
        self.orders: List[str] = []

    async def start(self) -> None:
        self.shop = self.proxy("svc/shopping")
        self.emit("up")

    def _budget(self) -> float:
        """Viewer patience: degrade rather than retry past this."""
        return self.kernel.now + self.params.interactive_deadline

    async def browse(self) -> Dict[str, dict]:
        """Fetch the catalog (navigated as video clips in the real UI)."""
        return await self.shop.call("catalog", deadline=self._budget())

    async def buy(self, item_id: str, quantity: int = 1) -> str:
        order_id = await self.shop.call("order", item_id, quantity,
                                        deadline=self._budget())
        self.orders.append(order_id)
        self.emit("ordered", item=item_id, order=order_id)
        return order_id

    async def check_order(self, order_id: str) -> dict:
        return await self.shop.call("orderStatus", order_id)
