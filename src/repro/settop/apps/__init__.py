"""Settop-side application portions (section 3: VOD, shopping, games)."""

from repro.settop.apps.base import SettopApp
from repro.settop.apps.game import GameApp
from repro.settop.apps.navigator import NavigatorApp
from repro.settop.apps.shopping import ShoppingApp
from repro.settop.apps.vod import VODApp

#: what the AM can download and launch, by application name
APP_CLASSES = {
    "navigator": NavigatorApp,
    "vod": VODApp,
    "shopping": ShoppingApp,
    "game": GameApp,
}

__all__ = ["APP_CLASSES", "GameApp", "NavigatorApp", "SettopApp",
           "ShoppingApp", "VODApp"]
