"""The settop VOD application (Figure 4 client side, sections 3.5.2,
10.1.1).

Opens movies through the MMS, receives the CBR stream on a private data
port, and keeps its own play position so that "if either the settop or
the service fails, the other can supply the information needed to start
the MDS at the point where the movie stopped".

Failure recovery is the paper's own recipe: "If the MDS ... crashes
while the settop is playing a movie, the application detects the failure
when it stops receiving data.  The application recovers by closing the
original movie and then asking MMS to open the movie again."
"""

from __future__ import annotations

from typing import List, Optional

from repro.ocs import Message
from repro.ocs.exceptions import (
    DeadlineExceeded,
    OCSError,
    Overloaded,
    ServiceUnavailable,
)
from repro.ocs.objref import ObjectRef
from repro.ocs.runtime import allocate_port
from repro.services.mms import MovieUnavailable
from repro.settop.apps.base import SettopApp

STALL_FACTOR = 3.0      # chunks missed before declaring the stream dead


class VODApp(SettopApp):
    name = "vod"

    def __init__(self, am, process):
        super().__init__(am, process)
        self.mms = None
        self.vod = None
        self.movie: Optional[ObjectRef] = None
        self.title: Optional[str] = None
        self.position = 0.0
        self.playing = False
        self.finished = False
        self._last_chunk: Optional[float] = None
        self.data_port = allocate_port()
        self.interruptions: List[dict] = []
        self.chunks_received = 0
        self.degraded_plays = 0
        self._needs_recovery = False

    async def start(self) -> None:
        self.mms = self.proxy("svc/mms")
        self.vod = self.proxy("svc/vod")
        self.am.settop.network.bind_port(self.host.ip, self.data_port,
                                         self._on_chunk)
        self.process.on_exit(
            lambda _p: self.am.settop.network.unbind_port(self.host.ip,
                                                          self.data_port))
        self.process.create_task(self._watchdog(), name="vod-watchdog").detach()
        self.process.create_task(self._position_reporter(), name="vod-pos").detach()

    # -- viewer operations -----------------------------------------------

    async def play(self, title: str, resume: bool = True) -> str:
        """Open and start a movie (Figure 4 steps 1-8).

        Returns ``"playing"``, or ``"degraded"`` when the delivery path
        is shedding load: rather than erroring the session, the app
        fetches the VOD service's (possibly low-bitrate) catalog answer
        so the viewer keeps a browsable screen and can retry shortly.
        """
        if self.movie is not None:
            await self.stop()
        # Viewer patience for the whole open sequence: past this the
        # app degrades instead of letting the proxy retry for a minute.
        budget = self.kernel.now + self.params.interactive_deadline
        start_at = 0.0
        if resume:
            try:
                start_at = await self.vod.call("getBookmark", title,
                                               deadline=budget)
            except (ServiceUnavailable, OCSError):
                start_at = self.position if self.title == title else 0.0
        self.title = title
        self.position = start_at
        self.finished = False
        try:
            await self._open_and_play(start_at, deadline=budget)
        except (Overloaded, DeadlineExceeded):
            self.degraded_plays += 1
            try:
                answer = await self.vod.call("catalog")
            except (ServiceUnavailable, OCSError):
                answer = {"titles": [], "degraded": True}
            self.emit("degraded", title=title,
                      titles=len(answer.get("titles") or []))
            return "degraded"
        return "playing"

    async def _open_and_play(self, from_position: float,
                             deadline: Optional[float] = None) -> None:
        # No deadline on the recovery path: a stalled stream is worth
        # waiting out a fail-over for (section 3.5.2), unlike a fresh
        # viewer-facing open.
        movie = await self.mms.call("open", self.title, self.data_port,
                                    deadline=deadline)
        await self.runtime.invoke(movie, "playFrom", (from_position,),
                                  timeout=self.params.call_timeout,
                                  deadline=deadline)
        self.movie = movie
        self.playing = True
        self._last_chunk = self.kernel.now
        self.emit("playing", title=self.title, position=from_position)

    async def seek(self, position: float) -> None:
        """VCR-style jump (the paper's "few seconds required for VCR
        operations" expectation): restart the stream at ``position``."""
        if self.movie is None:
            return
        self.position = max(0.0, position)
        try:
            await self.runtime.invoke(self.movie, "playFrom",
                                      (self.position,),
                                      timeout=self.params.call_timeout)
            self.playing = True
            self._last_chunk = self.kernel.now
            self.emit("seek", title=self.title, position=self.position)
        except (ServiceUnavailable, OCSError):
            # The movie object died under us; the watchdog path recovers.
            self._needs_recovery = True
            self.playing = False

    async def pause(self) -> None:
        if self.movie is None:
            return
        self.playing = False
        try:
            await self.runtime.invoke(self.movie, "pause", (),
                                      timeout=self.params.call_timeout)
        except (ServiceUnavailable, OCSError):
            pass
        await self._report_position()

    async def stop(self) -> None:
        """Close the movie (section 3.4.5): lets the MMS reclaim resources."""
        if self.movie is None:
            return
        movie, self.movie = self.movie, None
        self.playing = False
        try:
            await self.mms.call("close", movie)
        except (ServiceUnavailable, OCSError):
            pass
        await self._report_position()
        self.emit("stopped", title=self.title, position=round(self.position, 1))

    async def shutdown(self) -> None:
        await self.stop()

    # -- stream handling -----------------------------------------------------

    def _on_chunk(self, msg: Message) -> None:
        payload = msg.payload
        if payload.get("title") != self.title:
            return
        self._last_chunk = self.kernel.now
        self.chunks_received += 1
        if payload.get("eof"):
            self.playing = False
            self.finished = True
            self.emit("finished", title=self.title)
            self.process.create_task(self._finish(), name="vod-finish").detach()
            return
        self.position = payload["position"] + payload["span"]

    async def _finish(self) -> None:
        await self.stop()
        try:
            await self.vod.call("clearBookmark", self.title)
        except (ServiceUnavailable, OCSError):
            pass

    async def _watchdog(self) -> None:
        """Detect stream stalls and re-open through the MMS (section 3.5.2)."""
        stall_after = self.params.stream_chunk_seconds * STALL_FACTOR
        while True:
            await self.kernel.sleep(self.params.stream_chunk_seconds)
            if self._needs_recovery and not self.playing and not self.finished:
                # An earlier recovery attempt failed (e.g. the replacement
                # replica had not failed over yet); keep trying.
                await self._recover()
                continue
            if not self.playing or self._last_chunk is None:
                continue
            gap = self.kernel.now - self._last_chunk
            if gap < stall_after:
                continue
            stalled_at = self.kernel.now
            self.emit("stall_detected", title=self.title,
                      position=round(self.position, 1))
            await self._recover()
            self.interruptions.append({
                "title": self.title, "at": stalled_at,
                "outage": self.kernel.now - stalled_at + gap,
                "recovered": self.playing,
            })

    async def _recover(self) -> None:
        movie, self.movie = self.movie, None
        self.playing = False
        if movie is not None:
            try:
                await self.mms.call("close", movie)
            except (ServiceUnavailable, OCSError):
                pass
        try:
            await self._open_and_play(self.position)
            self._needs_recovery = False
            self.emit("recovered", title=self.title,
                      position=round(self.position, 1))
        except (MovieUnavailable, ServiceUnavailable, OCSError) as err:
            self._needs_recovery = True
            self.emit("recovery_failed", title=self.title, error=str(err))

    async def _position_reporter(self) -> None:
        """Keep the VOD service's copy of the position fresh (10.1.1)."""
        while True:
            await self.kernel.sleep(10.0)
            if self.playing:
                await self._report_position()

    async def _report_position(self) -> None:
        if self.title is None or self.finished:
            return
        try:
            await self.vod.call("reportPosition", self.title, self.position)
        except (ServiceUnavailable, OCSError):
            pass
