"""Base class for settop applications."""

from __future__ import annotations

from repro.core.naming.cache import cache_for
from repro.core.naming.client import NameClient
from repro.core.rebind import RebindingProxy
from repro.ocs.runtime import OCSRuntime
from repro.sim.host import Process
from repro.sim.kernel import Event


class SettopApp:
    """One downloaded application running on a settop."""

    name = "app"

    def __init__(self, am, process: Process):
        self.am = am
        self.process = process
        self.kernel = process.kernel
        self.host = process.host
        self.params = am.params
        self.runtime = OCSRuntime(process, am.settop.network,
                                  principal=f"{self.name}@{self.host.ip}")
        # Apps come and go with every channel change, but the host's
        # binding cache persists: a fresh app's first resolve of a name
        # any earlier component resolved is answered locally (PR 5).
        self.names = NameClient(self.runtime, am.boot_params.get("ns_ips", am.boot_params["ns_ip"]),
                                self.params, cache=cache_for(self.host, self.params))
        #: set once start() completes; the AM awaits it before handing
        #: the app to the viewer (remote-control events queue until then)
        self.ready = Event(self.kernel)

    async def run(self) -> None:
        await self.start()
        self.ready.set()
        await self.kernel.create_future()  # UI event loop

    async def start(self) -> None:
        """Override: set up proxies, display cover, etc."""

    async def shutdown(self) -> None:
        """Release held resources before the AM replaces this app.

        "Normally, applications close movies when they are through with
        them" (section 3.5.1) -- a channel change is the app being
        through.  Crash paths skip this, which is exactly the resource
        leak the RAS/limits machinery exists to bound.
        """

    def proxy(self, service_name: str, **kwargs) -> RebindingProxy:
        return RebindingProxy(self.runtime, self.names, service_name,
                              self.params, **kwargs)

    def emit(self, event: str, **fields) -> None:
        if self.am.settop.trace is not None:
            self.am.settop.trace.emit(f"app.{self.name}", event,
                                      settop=self.host.ip, **fields)
