"""The settop kernel: secure diskless boot + liveness heartbeats.

Section 3.4.1: "Because settops are diskless, the kernel and first
application are broadcast to settops using a secure protocol.  This
broadcast also provides the settops with basic configuration
information, such as the IP address of the name service replica to be
used by this settop.  The application obtained during boot is the
Application Manager."

The kernel also feeds the Settop Manager: a boot report and periodic
heartbeats on the slow upstream path, which is how the rest of the
system learns a settop died (section 7.2 source 1).
"""

from __future__ import annotations

from typing import Optional

from repro.core.params import Params
from repro.ocs import Message, Network
from repro.ocs.exceptions import ServiceUnavailable
from repro.ocs.runtime import OCSRuntime
from repro.services.boot import BOOT_PARAMS_PORT, KERNEL_PORT, KERNEL_VERSION
from repro.sim.host import Host, Process
from repro.sim.trace import TraceLog


class SettopKernel:
    """Software stack of one settop host."""

    def __init__(self, host: Host, network: Network, params: Params,
                 trace: Optional[TraceLog] = None):
        self.host = host
        self.network = network
        self.params = params
        self.trace = trace
        self.kernel = host.kernel
        self.state = "off"
        self.boot_params: Optional[dict] = None
        self.process: Optional[Process] = None
        self.app_manager = None
        self.powered_on_at: Optional[float] = None
        self.booted_at: Optional[float] = None

    # -- power control --------------------------------------------------

    def power_on(self) -> None:
        if self.state != "off":
            return
        # Power-on racing a deferred power-off cut: finish the cut first.
        cutoff = getattr(self, "_cutoff", None)
        if cutoff is not None and not cutoff.cancelled:
            cutoff.cancel()
            self.host.crash()
        if not self.host.up:
            self.host.boot()
        self.state = "waiting_params"
        self.powered_on_at = self.kernel.now
        self.process = self.host.spawn("stk")
        self.network.bind_port(self.host.ip, BOOT_PARAMS_PORT, self._on_params)
        self.network.bind_port(self.host.ip, KERNEL_PORT, self._on_kernel)
        self.process.on_exit(self._cleanup_ports)
        self._emit("power_on")

    def power_off(self) -> None:
        """User turns the set off: every settop process dies at once.

        A courtesy ``reportShutdown`` races ahead on the uplink so the
        Settop Manager marks the set down immediately instead of waiting
        out the missed-heartbeat horizon -- resource reclamation for a
        clean power-off is then just one RAS poll away.
        """
        self._emit("power_off")
        mgr = getattr(self, "_mgr_ref", None)
        runtime = getattr(self, "_runtime", None)
        announce = (mgr is not None and runtime is not None
                    and self.process is not None and self.process.alive)
        if announce:
            # reportShutdown is oneway: the protocol itself says no reply
            # is coming, so nothing is silently dropped by detaching the
            # (already-resolved) future.
            runtime.invoke(mgr, "reportShutdown", (self.host.ip,),
                           timeout=self.params.call_timeout).detach()
        self.state = "off"
        self.app_manager = None
        if announce:
            # The uplink is slow (50 kbit/s): give the datagram a beat to
            # serialize before the transmitter loses power.
            self._cutoff = self.kernel.call_later(0.2, self.host.crash)
        else:
            self.host.crash()

    def crash(self) -> None:
        """Settop software crash (section 3.5.1): same effect as power-off
        from the cluster's point of view, but unintentional."""
        self._emit("crash")
        self.state = "off"
        self.app_manager = None
        self.host.crash()

    def _cleanup_ports(self, _proc: Process) -> None:
        self.network.unbind_port(self.host.ip, BOOT_PARAMS_PORT)
        self.network.unbind_port(self.host.ip, KERNEL_PORT)

    # -- boot protocol ---------------------------------------------------

    def _on_params(self, msg: Message) -> None:
        if self.state != "waiting_params":
            return
        self.boot_params = dict(msg.payload)
        self.state = "waiting_kernel"
        self._emit("got_boot_params", ns_ip=self.boot_params["ns_ip"])

    def _on_kernel(self, msg: Message) -> None:
        if self.state != "waiting_kernel":
            return
        if msg.payload.get("version") != KERNEL_VERSION:
            return
        self.state = "booted"
        self.booted_at = self.kernel.now
        self._emit("booted", took=self.booted_at - self.powered_on_at)
        self.process.create_task(self._after_boot(), name="stk-postboot").detach()

    async def _after_boot(self) -> None:
        from repro.settop.app_manager import AppManager
        runtime = OCSRuntime(self.process, self.network,
                             principal=f"settop@{self.host.ip}")
        self._runtime = runtime
        await self._report_boot(runtime)
        self.process.create_task(self._heartbeat_loop(runtime),
                                 name="stk-heartbeat").detach()
        # Start the first application: the Application Manager.
        am_proc = self.host.spawn("appmgr", parent=self.process)
        self.app_manager = AppManager(self, am_proc, self.boot_params)
        am_proc.create_task(self.app_manager.run(), name="appmgr-main").detach()

    def _names(self, runtime: OCSRuntime):
        """A NameClient sharing the settop's binding cache (PR 5)."""
        from repro.core.naming.cache import cache_for
        from repro.core.naming.client import NameClient
        return NameClient(runtime,
                          self.boot_params.get("ns_ips", self.boot_params["ns_ip"]),
                          self.params, cache=cache_for(self.host, self.params))

    async def _report_boot(self, runtime: OCSRuntime) -> None:
        names = self._names(runtime)
        while self.state == "booted":
            mgr = None
            try:
                mgr = await names.resolve("svc/settopmgr")
                await runtime.invoke(mgr, "reportBoot", (self.host.ip,),
                                     timeout=self.params.call_timeout)
                self._mgr_ref = mgr
                return
            except Exception:  # noqa: BLE001 - cluster may still be starting
                # The resolve may have come out of the binding cache; a
                # failed use must report it bad or the retry loop would
                # be handed the same dead ref forever.
                if mgr is not None:
                    names.invalidate("svc/settopmgr", mgr)
                await self.kernel.sleep(2.0)

    async def _heartbeat_loop(self, runtime: OCSRuntime) -> None:
        names = self._names(runtime)
        mgr = getattr(self, "_mgr_ref", None)
        while True:
            await self.kernel.sleep(self.params.settop_heartbeat)
            if mgr is None:
                try:
                    mgr = await names.resolve("svc/settopmgr")
                except Exception:  # noqa: BLE001
                    continue
            try:
                await runtime.invoke(mgr, "heartbeat", (self.host.ip,),
                                     timeout=self.params.call_timeout)
            except ServiceUnavailable:
                # Coherence by exception: drop the settop's cached
                # binding so the re-resolve above reaches the name
                # service instead of replaying the cache.
                names.invalidate("svc/settopmgr", mgr)
                mgr = None

    def _emit(self, event: str, **fields) -> None:
        if self.trace is not None:
            self.trace.emit("settop", event, settop=self.host.ip, **fields)
