"""The Application Manager (sections 3.4.1-3.4.3, Figure 3).

"The AM receives channel change events from the remote control and
downloads the appropriate application when a subscriber tunes to a
channel that provides interactive services."  Downloads go through the
Reliable Delivery Service; the AM caches the RDS reference after the
first resolve and only returns to the name service when the reference
stops working (section 3.4.2) -- that behaviour is the RebindingProxy.

Section 9.3's user-visible latency model: the incoming application can
display *cover* (a still or settop-generated animation) within 0.5 s,
while the full download takes 2-4 s.
"""

from __future__ import annotations

from typing import Optional

from repro.core.naming.cache import cache_for
from repro.core.naming.client import NameClient
from repro.core.params import Params
from repro.core.rebind import RebindingProxy
from repro.ocs.runtime import OCSRuntime
from repro.sim.host import Process

COVER_LATENCY = 0.5   # seconds to put up cover art (section 9.3)


class AppManager:
    """The first application every settop runs."""

    def __init__(self, settop_kernel, process: Process, boot_params: dict):
        self.settop = settop_kernel
        self.process = process
        self.kernel = process.kernel
        self.boot_params = boot_params
        self.params: Params = settop_kernel.params
        self.runtime = OCSRuntime(process, settop_kernel.network,
                                  principal=f"appmgr@{settop_kernel.host.ip}")
        self.names = NameClient(self.runtime, boot_params.get("ns_ips", boot_params["ns_ip"]), self.params,
                                cache=cache_for(settop_kernel.host, self.params))
        self.rds = RebindingProxy(self.runtime, self.names, "svc/rds",
                                  self.params)
        self.channels = dict(boot_params.get("channels", {}))
        self.venues = dict(boot_params.get("venues", {}))
        self.current_channel: Optional[int] = None
        self.current_app = None
        self._app_process: Optional[Process] = None
        self.last_tune = None   # metrics for the latest channel change

    async def run(self) -> None:
        # Section 3.4.2: "The first application that the AM loads after
        # booting is called the navigator."
        await self.tune("navigator")
        await self._app_watchdog()  # serve remote-control events forever

    async def _app_watchdog(self) -> None:
        """Restart a crashed application on the current channel.

        "People don't expect TVs to crash" (section 3): a buggy
        application dying must look like a glitch, not a dead set.  The
        binary is still cached at the RDS, so the restart is one
        download away.
        """
        while True:
            await self.kernel.sleep(2.0)
            if (self._app_process is not None
                    and not self._app_process.alive
                    and self._app_process.exit_status != "channel change"):
                crashed = self.current_app.name if self.current_app else "?"
                self._emit("app_crashed", app=crashed)
                self.current_app = None
                self._app_process = None
                channel = self.current_channel or "navigator"
                try:
                    await self.tune(channel)
                except Exception:  # noqa: BLE001 - retry next tick
                    continue

    async def tune(self, channel) -> None:
        """Channel-change event from the remote control."""
        from repro.settop.apps import APP_CLASSES
        app_name = self.channels.get(channel, channel)
        venue = None
        if isinstance(app_name, str) and app_name.startswith("venue:"):
            # Section 3.4.3: a venue channel loads the navigator scoped
            # to the venue's application set.
            venue = app_name[len("venue:"):]
            if venue not in self.venues:
                raise KeyError(f"unknown venue {venue!r}")
            app_name = "navigator"
        if app_name not in APP_CLASSES:
            raise KeyError(f"channel {channel!r} is not interactive")
        if self.current_app is not None and self.current_app.name == app_name:
            # Already running the right application; a venue change only
            # re-scopes the navigator.
            if hasattr(self.current_app, "enter_venue"):
                self.current_app.enter_venue(venue)
            self.current_channel = channel
            return
        started = self.kernel.now
        cover_at = started + COVER_LATENCY  # viewer sees a response here
        # Download the application binary via the RDS (Figure 3 steps 1-2).
        blob = await self.rds.call("openData", f"apps/{app_name}",
                                   timeout=30.0)
        downloaded_at = self.kernel.now
        # "The AM copies the executable into memory and starts it."
        if self._app_process is not None and self._app_process.alive:
            # Give the outgoing application its chance to release movies
            # and other resources (section 3.4.5) before it dies.
            try:
                await self.current_app.shutdown()
            except Exception:  # noqa: BLE001 - cleanup is best-effort
                pass
            self._app_process.kill(status="channel change")
        app_proc = self.settop.host.spawn(f"{app_name}-app",
                                          parent=self.process)
        app_cls = APP_CLASSES[app_name]
        self.current_app = app_cls(self, app_proc)
        self._app_process = app_proc
        app_proc.create_task(self.current_app.run(), name=f"{app_name}-main").detach()
        await self.current_app.ready.wait()
        if venue is not None and hasattr(self.current_app, "enter_venue"):
            self.current_app.enter_venue(venue)
        self.current_channel = channel
        self.last_tune = {
            "app": app_name, "bytes": blob.size,
            "cover_at": COVER_LATENCY,
            "download_time": downloaded_at - started,
            "total_time": self.kernel.now - started,
        }
        self._emit("tuned", app=app_name,
                   download_time=round(self.last_tune["download_time"], 3))

    def app_crashed(self) -> bool:
        return self._app_process is not None and not self._app_process.alive

    def _emit(self, event: str, **fields) -> None:
        if self.settop.trace is not None:
            self.settop.trace.emit("am", event, settop=self.settop.host.ip,
                                   **fields)
