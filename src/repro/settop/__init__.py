"""The settop side: custom kernel, Application Manager, and applications.

"Applications are themselves distributed, with a portion to control the
user interface running on the settop and a portion to provide access to
data and other services running on a server machine" (section 3).
"""

from repro.settop.app_manager import AppManager
from repro.settop.kernel import SettopKernel

__all__ = ["AppManager", "SettopKernel"]
