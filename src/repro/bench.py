"""Micro-benchmarks for the simulation hot paths (``repro bench``).

Every future PR is measured against the numbers this module writes to
``BENCH_micro.json``: if a change slows the kernel event loop, the
network send/deliver path, trace emission, or an E11-sized boot storm,
the regression is visible as a diff of that file.  The suite is the
mechanical counterpart of the experiment benchmarks under
``benchmarks/`` -- those regenerate paper claims in *simulated* time,
this one measures how fast the simulator itself burns *wall* time.

The wall clock is exactly what this module is for, hence the linter
suppression: timings never influence simulation behaviour (every
benchmark runs its simulation to completion regardless of elapsed
time), so determinism is untouched.
"""

from __future__ import annotations

import json
import platform
import time  # repro: noqa D002 - benchmarks measure the wall clock by design
from typing import Any, Callable, Dict, List

SCHEMA = "repro-bench/1"

#: ``trace_select.speedup`` below this fails ``repro bench`` (DESIGN.md §8).
MIN_SELECT_SPEEDUP = 3.0

#: throughput metrics gated by ``repro bench --check`` (DESIGN.md §16):
#: benchmark name -> the per-second key compared against the committed
#: baseline.  Throughputs, not wall times: wall varies with load and
#: machine, while a same-machine throughput floor is a stable signal.
GATED_METRICS = {
    "kernel_timers": "events_per_sec",
    "network_send": "messages_per_sec",
    "trace_emit": "events_per_sec",
}

#: a gated throughput may fall this far below the baseline before
#: ``--check`` fails: wide enough to absorb run-to-run noise on CI
#: runners, tight enough to catch a real hot-path regression.
REGRESSION_TOLERANCE = 0.30


def load_baseline(path: str):
    """The committed baseline at ``path``, or None when absent/garbled
    (first run on a fresh machine: nothing to gate against yet)."""
    try:
        with open(path) as fh:
            baseline = json.load(fh)
    except (OSError, ValueError):
        return None
    return baseline if isinstance(baseline, dict) else None


def compare_to_baseline(results: Dict[str, Any], baseline) -> List[str]:
    """Regression report: one line per gated metric more than
    ``REGRESSION_TOLERANCE`` below the baseline; empty when healthy."""
    failures: List[str] = []
    base_benchmarks = (baseline or {}).get("benchmarks", {})
    for name, key in GATED_METRICS.items():
        base = base_benchmarks.get(name, {}).get(key)
        got = results["benchmarks"].get(name, {}).get(key)
        if not base or got is None:
            continue  # the baseline predates this metric; nothing to gate
        floor = base * (1.0 - REGRESSION_TOLERANCE)
        if got < floor:
            failures.append(
                f"{name}.{key} regressed: {got:.0f}/s < floor {floor:.0f}/s "
                f"(baseline {base:.0f}/s - {REGRESSION_TOLERANCE:.0%})")
    return failures


def _timed(fn: Callable[[], Any]) -> Dict[str, Any]:
    t0 = time.perf_counter()
    result = fn()
    wall = time.perf_counter() - t0
    out = {"wall_s": round(wall, 6)}
    if isinstance(result, dict):
        out.update(result)
    return out


# -- kernel -----------------------------------------------------------


def bench_kernel_soon(n: int) -> Dict[str, Any]:
    """call_soon chain: the fast lane every future completion rides."""
    from repro.sim.kernel import Kernel

    kernel = Kernel()
    remaining = [n]

    def tick() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            kernel.call_soon(tick)

    def run() -> Dict[str, Any]:
        kernel.call_soon(tick)
        kernel.run()
        return {"events": n}

    out = _timed(run)
    out["events_per_sec"] = round(out["events"] / max(out["wall_s"], 1e-9))
    return out


def bench_kernel_timers(n: int) -> Dict[str, Any]:
    """Heap-lane timers, including the cancelled-handle churn of
    ``wait_for``: half the timers are cancelled before they fire."""
    from repro.sim.kernel import Kernel

    kernel = Kernel()
    fired = [0]

    def tick() -> None:
        fired[0] += 1

    def run() -> Dict[str, Any]:
        handles = [kernel.call_later(((i * 7919) % 1000) / 10.0, tick)
                   for i in range(n)]
        for handle in handles[::2]:
            handle.cancel()
        kernel.run()
        return {"events": n, "fired": fired[0]}

    out = _timed(run)
    out["events_per_sec"] = round(out["events"] / max(out["wall_s"], 1e-9))
    return out


# -- network ----------------------------------------------------------


def bench_network_send(n: int) -> Dict[str, Any]:
    """Datagram send+deliver between two servers on the FDDI ring."""
    from repro.net import Message, Network, server_ip
    from repro.net.message import reset_msg_counter
    from repro.sim.host import Host
    from repro.sim.kernel import Kernel

    reset_msg_counter()
    kernel = Kernel()
    net = Network(kernel)
    a = Host(kernel, "bench-a")
    b = Host(kernel, "bench-b")
    net.attach(a, server_ip(0))
    net.attach(b, server_ip(1))
    delivered = [0]
    net.bind_port(b.ip, 9, lambda m: delivered.__setitem__(0, delivered[0] + 1))

    def run() -> Dict[str, Any]:
        send = net.send
        src, dst = (a.ip, 9), (b.ip, 9)
        for i in range(n):
            send(Message(src=src, dst=dst, kind="bench.ping",
                         payload_bytes=64))
            if i % 64 == 63:
                kernel.run()  # drain in batches, like real traffic bursts
        kernel.run()
        return {"messages": n, "delivered": delivered[0]}

    out = _timed(run)
    out["messages_per_sec"] = round(out["messages"] / max(out["wall_s"], 1e-9))
    return out


# -- trace ------------------------------------------------------------


def _synthetic_trace(n: int):
    from repro.sim.kernel import Kernel
    from repro.sim.trace import TraceLog

    kernel = Kernel()
    trace = TraceLog(kernel)
    cats = [("mms", "stream_started"), ("mms", "promoted"),
            ("ras", "poll"), ("ns", "update"), ("boot", "request")]
    for i in range(n):
        cat, ev = cats[i % len(cats)]
        trace.emit(cat, ev, host=f"h{i % 7}", seq=i)
    return trace


def bench_trace_emit(n: int) -> Dict[str, Any]:
    out = _timed(lambda: {"events": len(_synthetic_trace(n))})
    out["events_per_sec"] = round(out["events"] / max(out["wall_s"], 1e-9))
    return out


def bench_trace_select(n: int, queries: int) -> Dict[str, Any]:
    """Indexed ``select`` vs the reference linear scan, E11-sized log.

    The acceptance bar for this PR: the indexed path must be >= 3x the
    linear scan under the repeated-polling pattern experiments use.
    """
    from repro.sim.trace import TraceLog

    trace = _synthetic_trace(n)
    keys = [("mms", "promoted"), ("ras", "poll"), ("ns", "update")]

    def linear() -> Dict[str, Any]:
        hits = 0
        for q in range(queries):
            cat, ev = keys[q % len(keys)]
            hits += len(trace._select_linear(cat, ev))
        return {"hits": hits}

    # Fresh log sharing the same event list: the indexed side pays its
    # full index build inside the timed region.
    indexed_log = TraceLog(trace._kernel)
    indexed_log.events = trace.events

    def indexed() -> Dict[str, Any]:
        hits = 0
        for q in range(queries):
            cat, ev = keys[q % len(keys)]
            hits += len(indexed_log.select(cat, ev))
        return {"hits": hits}

    lin = _timed(linear)
    idx = _timed(indexed)
    assert lin["hits"] == idx["hits"], "index diverged from linear scan"
    return {
        "events": n,
        "queries": queries,
        "linear_wall_s": lin["wall_s"],
        "indexed_wall_s": idx["wall_s"],
        "wall_s": idx["wall_s"],
        "speedup": round(lin["wall_s"] / max(idx["wall_s"], 1e-9), 1),
    }


# -- admission control -------------------------------------------------


def bench_admission_gate(n: int) -> Dict[str, Any]:
    """The admission gate's admit/begin/done cycle plus shed decisions.

    The gate sits on every gated service's call path (PR 4), so its
    bookkeeping must stay negligible next to the kernel event loop.
    Half the cycles run admitted work to completion; the rest push the
    gate into saturation so the shed branch is measured too.
    """
    from repro.core.params import Params
    from repro.ocs.admission import AdmissionGate

    params = Params().with_overrides(admission_max_inflight=4,
                                     admission_max_queue=8)
    gate = AdmissionGate("bench", params)

    def run() -> Dict[str, Any]:
        for _ in range(n):
            if gate.try_admit():
                gate.begin()
                gate.done()
        # Saturate, then hammer the shed branch.
        while gate.try_admit():
            gate.begin()
        for _ in range(n):
            gate.try_admit()
        return {"cycles": 2 * n, "shed": gate.shed_count}

    out = _timed(run)
    out["cycles_per_sec"] = round(out["cycles"] / max(out["wall_s"], 1e-9))
    return out


# -- replication change log -------------------------------------------


def bench_changelog_append(n: int) -> Dict[str, Any]:
    """ChangeLog append/persist/compact: the primary's write-path tax.

    Every db write and NS update appends one entry and persists the log
    to disk (PR 7), so this must stay cheap relative to the RPC that
    carried the write.  ``retain`` is sized below ``n`` so the steady
    state -- append, advance the digest chain, compact, persist -- is
    what gets measured, not the empty-log honeymoon.
    """
    from repro.core.replication import ChangeLog
    from repro.sim.host import Disk

    log = ChangeLog(Disk(), "bench/changelog", retain=min(512, n // 4))

    def run() -> Dict[str, Any]:
        for i in range(n):
            log.append(("write", "bench", f"key{i % 64}", i, False), epoch=1)
        return {"appends": n, "compactions": log.compactions,
                "retained": len(log.entries)}

    out = _timed(run)
    out["appends_per_sec"] = round(out["appends"] / max(out["wall_s"], 1e-9))
    return out


# -- binding cache ----------------------------------------------------


def bench_binding_cache(n: int) -> Dict[str, Any]:
    """The settop binding cache's hit path plus singleflight herds.

    At population scale (PR 5) every application call crosses this
    cache, so the hit path must stay dictionary-cheap; the herd half
    checks that a post-invalidation stampede costs one resolver round
    (plus waiter wakeups), not one round per caller.
    """
    from repro.core.naming.cache import BindingCache
    from repro.sim.kernel import Kernel, gather

    kernel = Kernel()
    cache = BindingCache(kernel)

    async def resolver(name):
        await kernel.sleep(0.001)   # one simulated NS round trip
        return ("ref", name)

    herds = max(1, n // 200)

    def run() -> Dict[str, Any]:
        async def hot_path():
            for _ in range(n):
                await cache.resolve("svc/vod", resolver)

        kernel.run_until_complete(hot_path())

        async def herd():
            await gather(kernel, [cache.resolve("svc/vod", resolver)
                                  for _ in range(32)])

        for _ in range(herds):
            cache.invalidate("svc/vod")
            kernel.run_until_complete(herd())
        return {"lookups": n + herds * 32, "hits": cache.hits,
                "coalesced": cache.coalesced,
                "ns_rounds": cache.misses}

    out = _timed(run)
    out["lookups_per_sec"] = round(out["lookups"] / max(out["wall_s"], 1e-9))
    return out


# -- reply cache ------------------------------------------------------


def bench_reply_cache(n: int) -> Dict[str, Any]:
    """The at-most-once dedup gate: every two-way call pays one
    ``begin``/``complete`` round (PR 9), so the cache must stay
    dictionary-cheap under steady eviction pressure.

    The workload mixes fresh request ids (the common case), a 10%
    duplicate tail re-begun after completion (the replay path), and a
    client fan-out wide enough that the LRU evicts continuously --
    measuring the steady state, not the empty-cache honeymoon.
    """
    from repro.ocs.replycache import ReplyCache

    cache = ReplyCache(capacity=min(512, max(64, n // 16)))

    def run() -> Dict[str, Any]:
        for i in range(n):
            client = f"10.0.0.{i % 17}/c"
            seq = i // 17 + 1
            cache.begin(client, seq)
            cache.complete(client, seq, {"ok": True, "result": i})
            if i % 10 == 0:
                cache.begin(client, seq)   # duplicate arrival: replay
        return {"requests": n, "replays": cache.replays,
                "evictions": cache.evictions,
                "cached": cache.stats()["cached"]}

    out = _timed(run)
    out["requests_per_sec"] = round(out["requests"] / max(out["wall_s"], 1e-9))
    return out


# -- end to end -------------------------------------------------------


def bench_boot_storm(settops: int) -> Dict[str, Any]:
    """E11-sized end-to-end run: build the cluster, boot ``settops``
    simultaneously via broadcast, wall-time the whole simulation."""
    from repro.cluster.builder import build_full_cluster, fresh_run_state

    def run() -> Dict[str, Any]:
        fresh_run_state()
        cluster = build_full_cluster(n_servers=3, seed=14001)
        kernels = [cluster.add_settop_kernel(
            cluster.neighborhoods[i % len(cluster.neighborhoods)],
            power_on=False) for i in range(settops)]
        t0 = cluster.now
        for stk in kernels:
            stk.power_on()
        deadline = t0 + 300.0
        while cluster.now < deadline:
            cluster.run_for(1.0)
            if all(stk.state == "booted" for stk in kernels):
                break
        booted = sum(1 for stk in kernels if stk.state == "booted")
        return {"settops": settops, "booted": booted,
                "trace_events": len(cluster.trace),
                "sim_seconds": round(cluster.now - t0, 1)}

    out = _timed(run)
    out["sim_seconds_per_wall_s"] = round(
        out["sim_seconds"] / max(out["wall_s"], 1e-9), 1)
    return out


# -- suite ------------------------------------------------------------


def run_suite(quick: bool = False) -> Dict[str, Any]:
    scale = 1 if quick else 10
    benchmarks: Dict[str, Dict[str, Any]] = {}
    benchmarks["kernel_soon"] = bench_kernel_soon(20_000 * scale)
    benchmarks["kernel_timers"] = bench_kernel_timers(20_000 * scale)
    benchmarks["network_send"] = bench_network_send(5_000 * scale)
    benchmarks["trace_emit"] = bench_trace_emit(20_000 * scale)
    benchmarks["trace_select"] = bench_trace_select(20_000 * scale,
                                                    queries=100 * scale)
    benchmarks["admission_gate"] = bench_admission_gate(20_000 * scale)
    benchmarks["changelog_append"] = bench_changelog_append(5_000 * scale)
    benchmarks["binding_cache"] = bench_binding_cache(20_000 * scale)
    benchmarks["reply_cache"] = bench_reply_cache(20_000 * scale)
    benchmarks["boot_storm_e11"] = bench_boot_storm(16 if quick else 48)
    return {
        "schema": SCHEMA,
        "quick": quick,
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
        },
        "benchmarks": benchmarks,
    }


def format_lines(results: Dict[str, Any]) -> List[str]:
    lines = [f"== repro bench ({'quick' if results['quick'] else 'full'}; "
             f"python {results['host']['python']}) =="]
    for name, data in results["benchmarks"].items():
        parts = [f"{name}: {data['wall_s'] * 1000:.1f} ms"]
        for key in ("events_per_sec", "messages_per_sec", "cycles_per_sec",
                    "appends_per_sec", "lookups_per_sec", "requests_per_sec",
                    "speedup", "sim_seconds_per_wall_s"):
            if key in data:
                parts.append(f"{key}={data[key]}")
        lines.append("  " + "  ".join(parts))
    return lines


def write_baseline(results: Dict[str, Any], path: str) -> None:
    with open(path, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
