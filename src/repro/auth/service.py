"""The authentication service process and the OCS security hooks.

The service issues tickets; :func:`enable_signing` makes a runtime attach
its ticket to every outgoing call, and :func:`install_verifier` makes a
servant-side runtime reject calls whose credentials fail verification.
The cluster secret lives on each server's disk (seeded at build time,
like a keytab); settops receive their ticket during the secure boot
(section 3.4.1 -- "Anil also was deeply involved in figuring out how to
boot settops securely").
"""

from __future__ import annotations

from typing import Optional

from repro.auth.tickets import Ticket, sign_ticket, verify_ticket
from repro.idl import register_exception, register_interface
from repro.ocs.runtime import CallContext, OCSRuntime
from repro.services.base import Service

register_interface("Auth", {
    "getTicket": ("principal",),
    "renewTicket": ("ticket",),
    # Tickets are pure signed values (no server-side session state), so
    # re-issuing one on a retry is harmless.
}, doc="Kerberos-like ticket granting (section 3.3)",
   idempotent=("getTicket", "renewTicket"))


@register_exception
class AuthRefused(Exception):
    """The authentication service declined to issue a ticket."""


SECRET_DISK_KEY = "auth/cluster-secret"
DEFAULT_TICKET_LIFETIME = 8 * 3600.0


def seed_secret(disk, secret: bytes) -> None:
    disk.write(SECRET_DISK_KEY, secret)


class AuthenticationService(Service):
    service_name = "auth"

    async def start(self) -> None:
        secret = self.host.disk.read(SECRET_DISK_KEY)
        if secret is None:
            raise AuthRefused(f"no cluster secret on {self.host.name}")
        self._secret = secret
        self.ref = self.runtime.export(_AuthServant(self), "Auth")
        await self.register_objects([self.ref])
        await self.bind_as_replica("auth", self.host.ip, self.ref,
                                   selector="sameserver")

    def issue(self, principal: str) -> Ticket:
        if not principal or "/" in principal:
            raise AuthRefused(f"bad principal {principal!r}")
        return sign_ticket(self._secret, principal, self.kernel.now,
                           DEFAULT_TICKET_LIFETIME)


class _AuthServant:
    def __init__(self, svc: AuthenticationService):
        self._svc = svc

    async def getTicket(self, ctx: CallContext, principal: str):
        # The caller may only obtain tickets for its own identity, which
        # OCS derives from the transport (ctx.caller).
        if principal != ctx.caller:
            raise AuthRefused(
                f"{ctx.caller} may not obtain a ticket for {principal}")
        return self._svc.issue(principal)

    async def renewTicket(self, ctx: CallContext, ticket: Ticket):
        if not isinstance(ticket, Ticket) or ticket.principal != ctx.caller:
            raise AuthRefused("renewal requires the caller's own ticket")
        return self._svc.issue(ticket.principal)


def enable_signing(runtime: OCSRuntime, ticket: Ticket) -> None:
    """Attach ``ticket`` to every call this runtime makes."""
    runtime.credentials = ticket


def install_verifier(runtime: OCSRuntime, secret: bytes) -> None:
    """Reject incoming calls with missing/invalid credentials."""

    def verify(credentials: Optional[Ticket], caller: str) -> bool:
        if credentials is None:
            return False
        return verify_ticket(secret, credentials, runtime.kernel.now, caller)

    runtime.verifier = verify
