"""Tickets and signatures for the Kerberos-like scheme (section 3.3).

"By default, calls are signed but not encrypted; this allows the server
to authenticate a customer without entailing the overhead of
encryption."  We model exactly that: a ticket binds a principal name to
an expiry under an HMAC keyed by the cluster secret; the OCS runtime
attaches the ticket to every call and the servant side verifies it.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass


@dataclass(frozen=True)
class Ticket:
    principal: str
    issued_at: float
    expires_at: float
    signature: str

    # Marshaled size hint: principal + timestamps + MAC.
    wire_size = 96

    def body(self) -> bytes:
        return f"{self.principal}|{self.issued_at}|{self.expires_at}".encode()


def sign_ticket(secret: bytes, principal: str, issued_at: float,
                lifetime: float) -> Ticket:
    expires_at = issued_at + lifetime
    body = f"{principal}|{issued_at}|{expires_at}".encode()
    mac = hmac.new(secret, body, hashlib.sha256).hexdigest()
    return Ticket(principal=principal, issued_at=issued_at,
                  expires_at=expires_at, signature=mac)


def verify_ticket(secret: bytes, ticket: Ticket, now: float,
                  expected_principal: str) -> bool:
    """Check signature, expiry, and that the ticket names the caller."""
    if not isinstance(ticket, Ticket):
        return False
    if ticket.principal != expected_principal:
        return False
    if now > ticket.expires_at:
        return False
    mac = hmac.new(secret, ticket.body(), hashlib.sha256).hexdigest()
    return hmac.compare_digest(mac, ticket.signature)
