"""Authentication service: Kerberos-like per-call identity (section 3.3)."""

from repro.auth.service import AuthenticationService, enable_signing, install_verifier
from repro.auth.tickets import Ticket, sign_ticket, verify_ticket

__all__ = [
    "AuthenticationService",
    "Ticket",
    "enable_signing",
    "install_verifier",
    "sign_ticket",
    "verify_ticket",
]
