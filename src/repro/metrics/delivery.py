"""Delivery accounting: what the hostile network did and what survived.

One collection surface shared by the chaos engine and the E18 drill, so
both report the same numbers the same way.  Like every other collector
it only *reads* state (network counters, runtime reply-cache stats, the
kernel-resident effect ledger) -- it must never perturb the run.

The load-bearing numbers mirror the PR 8 disks collector: a run where
``duplicated``/``reordered``/``corrupted`` are all zero never actually
exercised the at-most-once machinery, so a green ``at_most_once``
verdict on it proves nothing.  E18 asserts they are *nonzero* for
exactly that reason -- and that ``corrupt_dispatched`` and
``same_actor_doubles`` are zero, which is the whole contract.
"""

from __future__ import annotations

from typing import Dict, Iterable


def _live_runtimes(cluster) -> Iterable:
    for host in list(cluster.servers) + list(cluster.settops):
        for proc in host.processes:
            runtime = proc.attachments.get("ocs")
            if runtime is not None:
                yield runtime


def collect_delivery(cluster) -> Dict[str, dict]:
    """Aggregate hostile-delivery counters across one cluster run.

    Returns a dict with three sections:

    - ``"net"``: what the fault surfaces injected (duplicated,
      reordered, corrupted message counts);
    - ``"envelopes"``: what the receivers did about it -- checksum-failed
      frames dropped vs. (should-be-zero) dispatched, plus the summed
      reply-cache counters of every live runtime;
    - ``"effects"``: the :class:`~repro.chaos.monitors.EffectLedger`
      summary (executions, distinct request ids, same-actor doubles,
      excused cross-actor re-executions), or an empty dict when no
      ledger was installed (non-chaos runs).
    """
    net = cluster.net
    envelopes = {"corrupt_dropped": 0, "corrupt_dispatched": 0,
                 "executions": 0, "replays": 0, "suppressed": 0,
                 "stale_drops": 0, "evictions": 0, "cached": 0,
                 "caching_runtimes": 0}
    for runtime in _live_runtimes(cluster):
        envelopes["corrupt_dropped"] += getattr(runtime, "corrupt_dropped", 0)
        envelopes["corrupt_dispatched"] += getattr(
            runtime, "corrupt_dispatched", 0)
        cache = getattr(runtime, "reply_cache", None)
        if cache is None:
            continue
        envelopes["caching_runtimes"] += 1
        for key, value in cache.stats().items():
            envelopes[key] += value

    ledger = getattr(cluster.kernel, "effect_ledger", None)
    return {
        "net": {"duplicated": net.messages_duplicated,
                "reordered": net.messages_reordered,
                "corrupted": net.messages_corrupted,
                "lost": net.messages_lost},
        "envelopes": envelopes,
        "effects": ledger.summary() if ledger is not None else {},
    }


def faults_exercised(delivery: Dict[str, dict]) -> bool:
    """Did the run actually deliver duplicates/reorders/corruption?"""
    net = delivery.get("net", {})
    return (net.get("duplicated", 0) > 0 and net.get("reordered", 0) > 0
            and net.get("corrupted", 0) > 0)


def double_executions(delivery: Dict[str, dict]) -> int:
    """Same-actor double executions -- the number that must stay zero."""
    return delivery.get("effects", {}).get("same_actor_doubles", 0)
