"""Message accounting over a simulated network.

Wraps :class:`repro.net.network.Network`'s per-kind counters with the
groupings experiments care about: control-plane vs data-plane, RAS
traffic (E3/E9), and name-service traffic (E6/E7).
"""

from __future__ import annotations

from typing import Dict

from repro.net.network import Network

#: kind prefix -> reporting group
GROUPS = {
    "rpc.call.RAS.": "ras",
    "rpc.call.NameReplica.": "ns-replication",
    "rpc.call.NamingContext.": "ns-lookup",
    "rpc.call.ReplicatedContext.": "ns-lookup",
    "rpc.call.SettopManager.": "settop-liveness",
    "rpc.call.ServiceController.": "control",
    "rpc.call.ClusterController.": "control",
    "mds.stream": "media-data",
    "boot.": "broadcast",
    "rpc.reply": "replies",
}


class MessageCensus:
    """Snapshot/delta view over the network's message counters."""

    def __init__(self, network: Network):
        self.network = network
        self._baseline: Dict[str, int] = {}
        self.snapshot()

    def snapshot(self) -> None:
        self._baseline = dict(self.network.sent_by_kind)

    def delta(self) -> Dict[str, int]:
        """Messages by kind since the last snapshot."""
        out = {}
        for kind, count in self.network.sent_by_kind.items():
            diff = count - self._baseline.get(kind, 0)
            if diff:
                out[kind] = diff
        return out

    def by_group(self) -> Dict[str, int]:
        grouped: Dict[str, int] = {}
        for kind, count in self.delta().items():
            group = "other"
            for prefix, name in GROUPS.items():
                if kind.startswith(prefix):
                    group = name
                    break
            grouped[group] = grouped.get(group, 0) + count
        return grouped

    def total(self) -> int:
        return sum(self.delta().values())

    def rate_per_second(self, duration: float) -> Dict[str, float]:
        if duration <= 0:
            raise ValueError("duration must be positive")
        return {group: count / duration
                for group, count in self.by_group().items()}
