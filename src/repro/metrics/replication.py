"""Replication accounting: what the change-log shipping actually did.

One collection surface shared by the chaos engine, the replication
tests, and experiment E16, so they all report the same numbers the same
way.  Like every other collector it only *reads* replica state
(attachments, change-log cursors, counters) -- it must never perturb
the run it measures.

The load-bearing number is the per-group ``converged`` verdict: the
change-log digest is a running hash chain over ``(seq, op)``, so two
replicas holding the same digest applied the *same updates in the same
order* -- a far stronger claim than matching sequence numbers.  A chaos
run that quiesces with ``converged`` false on any group has hit exactly
the silent replication gap PR 7 exists to close.
"""

from __future__ import annotations

from typing import Dict, List


def _replica_row(ip: str, seq: int, digest: str, svc, wedged: bool) -> dict:
    return {
        "ip": ip,
        "seq": seq,
        "digest": digest,
        "catch_ups": getattr(svc, "catch_ups", 0),
        "catch_up_ops": getattr(svc, "catch_up_ops", 0),
        "snapshot_fetches": getattr(svc, "snapshot_fetches", 0),
        # A wedged disk (PR 8) stalls this replica's log and gauges; the
        # marker tells a convergence report why the row looks frozen.
        "wedged": wedged,
    }


def collect_replication(cluster) -> Dict[str, dict]:
    """Aggregate replication state across one cluster run.

    Returns one section per replicated service (``"ns"``, ``"db"``),
    each with the per-replica rows (cursor, digest, catch-up counters),
    the elected primary's ip, and the ``converged`` verdict: every live
    replica's log digest equals the primary's.
    """
    out: Dict[str, dict] = {}
    for kind in ("ns", "db"):
        rows: List[dict] = []
        primary_ip = None
        for host in cluster.servers:
            proc = host.find_process(kind)
            if proc is None or not proc.alive:
                continue
            if kind == "ns":
                replica = proc.attachments.get("ns_replica")
                if replica is None:
                    continue
                rows.append(_replica_row(host.ip, replica.store.applied_seq,
                                         replica.changelog.digest, replica,
                                         host.disk.wedged))
                if replica.is_master:
                    primary_ip = host.ip
            else:
                svc = proc.attachments.get("service")
                log = getattr(svc, "log", None)
                if log is None:
                    continue
                rows.append(_replica_row(host.ip, log.seq, log.digest, svc,
                                         host.disk.wedged))
                if getattr(svc, "is_primary", False):
                    primary_ip = host.ip
        digests = {row["digest"] for row in rows}
        out[kind] = {
            "primary": primary_ip,
            "replicas": rows,
            "converged": len(digests) <= 1,
            "catch_ups": sum(r["catch_ups"] for r in rows),
            "catch_up_ops": sum(r["catch_up_ops"] for r in rows),
            "snapshot_fetches": sum(r["snapshot_fetches"] for r in rows),
        }
    return out


def all_converged(replication: Dict[str, dict]) -> bool:
    """True when every replicated group quiesced with one log digest."""
    return all(section.get("converged", False)
               for section in replication.values())
