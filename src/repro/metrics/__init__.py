"""Measurement helpers shared by tests, examples, and benchmarks."""

from repro.metrics.latency import LatencyRecorder, percentile, summarize
from repro.metrics.availability import AvailabilityTimeline
from repro.metrics.overload import collect_overload, total_degraded, total_sheds

__all__ = ["AvailabilityTimeline", "LatencyRecorder", "collect_overload",
           "percentile", "summarize", "total_degraded", "total_sheds"]
