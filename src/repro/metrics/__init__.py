"""Measurement helpers shared by tests, examples, and benchmarks."""

from repro.metrics.latency import LatencyRecorder, percentile, summarize
from repro.metrics.availability import AvailabilityTimeline

__all__ = ["AvailabilityTimeline", "LatencyRecorder", "percentile",
           "summarize"]
