"""Measurement helpers shared by tests, examples, and benchmarks."""

from repro.metrics.latency import LatencyRecorder, percentile, summarize
from repro.metrics.availability import AvailabilityTimeline
from repro.metrics.overload import collect_overload, total_degraded, total_sheds
from repro.metrics.replication import all_converged, collect_replication

__all__ = ["AvailabilityTimeline", "LatencyRecorder", "all_converged",
           "collect_overload", "collect_replication", "percentile",
           "summarize", "total_degraded", "total_sheds"]
