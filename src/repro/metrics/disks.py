"""Disk-counter accounting: what the storage fault model actually did.

One collection surface shared by the chaos engine and the E17 drill, so
both report the same numbers the same way.  Like every other collector
it only *reads* state (the per-:class:`~repro.sim.host.Disk` counters)
-- it must never perturb the run it measures.

The load-bearing numbers are ``lost_writes`` and ``torn_writes``: a run
where both are zero never actually exercised the crash-consistency
machinery, so a green durability verdict on it proves nothing.  E17
asserts they are *nonzero* for exactly that reason.
"""

from __future__ import annotations

from typing import Dict


def collect_disks(cluster) -> Dict[str, dict]:
    """Per-server disk counters, keyed by host ip.

    Each row is :meth:`repro.sim.host.Disk.counters`: writes, syncs,
    lost_writes (buffered writes a crash discarded), torn_writes (keys
    a crash left as :class:`~repro.sim.host.CorruptBlob`), corrupted
    keys currently on the platter, and the unsynced buffer depth.
    """
    return {host.ip: host.disk.counters() for host in cluster.servers}


def total(disks: Dict[str, dict], counter: str) -> int:
    """Sum one counter across every server disk."""
    return sum(row.get(counter, 0) for row in disks.values())
