"""Availability accounting: up/down intervals for a named capability.

Used by experiment E5 to turn event streams ("stream stalled at t",
"stream recovered at t'") into the paper's qualitative claim made
quantitative: failures are "covered with only a very brief interruption"
(section 9.5).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class AvailabilityTimeline:
    """Tracks one capability's up/down transitions over simulated time."""

    def __init__(self, kernel, initially_up: bool = True):
        self.kernel = kernel
        self._events: List[Tuple[float, bool]] = [(kernel.now, initially_up)]

    def mark_down(self) -> None:
        self._transition(False)

    def mark_up(self) -> None:
        self._transition(True)

    def _transition(self, up: bool) -> None:
        if self._events and self._events[-1][1] == up:
            return
        self._events.append((self.kernel.now, up))

    @property
    def is_up(self) -> bool:
        return self._events[-1][1]

    def outages(self, until: Optional[float] = None) -> List[Tuple[float, float]]:
        """Closed (start, duration) outage intervals up to ``until``.

        Transitions at or after ``until`` are out of scope: an outage
        still open at the cutoff is clamped to end there, even if an
        up-transition was recorded later.  (A previous version scanned
        the whole event list, so "down at 5, up at 15" reported 10s of
        downtime for ``until=10`` instead of 5s.)
        """
        end_time = until if until is not None else self.kernel.now
        out = []
        down_since: Optional[float] = None
        for t, up in self._events:
            if t >= end_time:
                break
            if not up and down_since is None:
                down_since = t
            elif up and down_since is not None:
                out.append((down_since, t - down_since))
                down_since = None
        if down_since is not None and end_time > down_since:
            out.append((down_since, end_time - down_since))
        return out

    def downtime(self, until: Optional[float] = None) -> float:
        return sum(d for _t, d in self.outages(until))

    def availability(self, since: float = 0.0,
                     until: Optional[float] = None) -> float:
        """Fraction of [since, until] the capability was up."""
        end_time = until if until is not None else self.kernel.now
        span = end_time - since
        if span <= 0:
            return 1.0
        down = 0.0
        for start, duration in self.outages(end_time):
            lo = max(start, since)
            hi = min(start + duration, end_time)
            if hi > lo:
                down += hi - lo
        return 1.0 - down / span

    def summary(self) -> Dict[str, float]:
        outs = self.outages()
        return {
            "outages": len(outs),
            "downtime": round(self.downtime(), 3),
            "availability": round(self.availability(), 6),
            "longest_outage": round(max((d for _s, d in outs), default=0.0), 3),
        }
