"""Overload accounting: what the admission gates and degraded paths did.

One collection surface shared by the chaos engine, the surge tests, and
experiment E14, so they all report the same numbers the same way.  The
collector only *reads* runtime counters and gate gauges -- like the
chaos monitors, it must never perturb the run it measures.
"""

from __future__ import annotations

from typing import Dict, List, Optional


def collect_overload(cluster, settop_kernels: Optional[List] = None) -> Dict[str, dict]:
    """Aggregate overload counters across one cluster run.

    Returns a dict with three sections:

    - ``"gates"``: per-service admission gauges summed across replicas
      (sheds, peaks, admissions);
    - ``"deadlines"``: deadline rejects and (should-be-zero) expired
      executions summed across server runtimes;
    - ``"degraded"``: how often each degraded fallback answered instead
      of erroring (VOD low-bitrate catalog, navigator cached menu,
      settop degraded plays).
    """
    gates: Dict[str, dict] = {}
    deadline_rejects = 0
    expired_executions = 0
    for host in cluster.servers:
        for proc in host.processes:
            runtime = proc.attachments.get("ocs")
            if runtime is None:
                continue
            deadline_rejects += getattr(runtime, "deadline_rejects", 0)
            expired_executions += getattr(runtime, "expired_executions", 0)
            gate = getattr(runtime, "admission", None)
            if gate is None:
                continue
            agg = gates.setdefault(gate.service, {
                "replicas": 0, "admitted": 0, "shed": 0,
                "peak_queue": 0, "peak_inflight": 0})
            agg["replicas"] += 1
            agg["admitted"] += gate.admitted
            agg["shed"] += gate.shed_count
            agg["peak_queue"] = max(agg["peak_queue"], gate.peak_queue)
            agg["peak_inflight"] = max(agg["peak_inflight"],
                                       gate.peak_inflight)
            service = proc.attachments.get("service")
            if service is not None:
                agg["degraded_answers"] = (
                    agg.get("degraded_answers", 0)
                    + getattr(service, "degraded_answers", 0))

    # Settops tear an app down on tune-away, so only the currently tuned
    # app is visible here; SessionStats.degraded carries the complete
    # per-session count.
    degraded = {"degraded_plays": 0, "cached_menus": 0}
    for stk in settop_kernels or []:
        am = getattr(stk, "app_manager", None)
        app = getattr(am, "current_app", None) if am is not None else None
        if app is not None:
            degraded["degraded_plays"] += getattr(app, "degraded_plays", 0)
            degraded["cached_menus"] += getattr(app, "cached_menus", 0)

    return {
        "gates": {name: gates[name] for name in sorted(gates)},
        "deadlines": {"rejected": deadline_rejects,
                      "expired_executions": expired_executions},
        "degraded": degraded,
    }


def total_sheds(overload: Dict[str, dict]) -> int:
    return sum(g["shed"] for g in overload.get("gates", {}).values())


def total_degraded(overload: Dict[str, dict]) -> int:
    section = overload.get("degraded", {})
    return sum(section.values())
