"""Latency accounting: distributions of simulated-time durations."""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence


def percentile(samples: Sequence[float], p: float,
               presorted: bool = False) -> float:
    """Nearest-rank percentile; p in [0, 100].

    Nearest-rank is ``ceil(p/100 * n)`` -- the smallest sample with at
    least ``p`` percent of the distribution at or below it.  (A previous
    version used ``round()``, whose banker's rounding picked rank 22
    instead of 23 for p90 of 25 samples.)

    ``presorted=True`` skips the sort when the caller already holds an
    ordered list (see :func:`summarize` and
    :meth:`LatencyRecorder.summary`).
    """
    if not samples:
        raise ValueError("no samples")
    ordered = samples if presorted else sorted(samples)
    if p <= 0:
        return ordered[0]
    if p >= 100:
        return ordered[-1]
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


def summarize(samples: Sequence[float]) -> Dict[str, float]:
    if not samples:
        return {"count": 0}
    ordered = sorted(samples)
    return _summarize_sorted(ordered)


def _summarize_sorted(ordered: Sequence[float]) -> Dict[str, float]:
    """Summary statistics from an already-sorted sample list (one sort
    total, instead of one per percentile plus min/max scans)."""
    n = len(ordered)
    return {
        "count": n,
        "mean": sum(ordered) / n,
        "min": ordered[0],
        "p50": percentile(ordered, 50, presorted=True),
        "p90": percentile(ordered, 90, presorted=True),
        "p99": percentile(ordered, 99, presorted=True),
        "max": ordered[-1],
    }


class LatencyRecorder:
    """Start/stop timers keyed by operation name, on the virtual clock."""

    def __init__(self, kernel):
        self.kernel = kernel
        self._samples: Dict[str, List[float]] = {}
        self._open: Dict[tuple, float] = {}
        # op -> sorted copy of _samples[op]; valid while lengths agree
        # (samples are append-only), so repeated summary() calls between
        # recordings reuse one sort.
        self._sorted: Dict[str, List[float]] = {}
        self._auto_token = 0

    def start(self, op: str, token=None) -> None:
        self._open[(op, token)] = self.kernel.now

    def stop(self, op: str, token=None) -> float:
        started = self._open.pop((op, token), None)
        if started is None:
            raise KeyError(f"no open timer for {op!r}/{token!r}")
        elapsed = self.kernel.now - started
        self.record(op, elapsed)
        return elapsed

    def discard(self, op: str, token=None) -> bool:
        """Abandon an open timer without recording a sample.

        The escape hatch for operations that die mid-flight (process
        crash, cancelled task): without it every abandoned ``start``
        leaks an ``_open`` entry forever.  Returns whether a timer was
        actually open.
        """
        return self._open.pop((op, token), None) is not None

    def time(self, op: str, token=None) -> "_LatencyTimer":
        """Context manager: record on clean exit, discard on exception.

        ``async with`` is not needed -- simulated time only advances at
        await points inside the body, and the recorder reads the virtual
        clock on entry/exit.
        """
        if token is None:
            self._auto_token += 1
            token = ("_auto", self._auto_token)
        return _LatencyTimer(self, op, token)

    def open_timers(self) -> int:
        """Number of started-but-unfinished timers (leak diagnostics)."""
        return len(self._open)

    def record(self, op: str, value: float) -> None:
        self._samples.setdefault(op, []).append(value)

    def samples(self, op: str) -> List[float]:
        return list(self._samples.get(op, []))

    def summary(self, op: str) -> Dict[str, float]:
        samples = self._samples.get(op)
        if not samples:
            return {"count": 0}
        ordered = self._sorted.get(op)
        if ordered is None or len(ordered) != len(samples):
            ordered = sorted(samples)
            self._sorted[op] = ordered
        return _summarize_sorted(ordered)

    def operations(self) -> List[str]:
        return sorted(self._samples)


class _LatencyTimer:
    """Context manager returned by :meth:`LatencyRecorder.time`."""

    __slots__ = ("recorder", "op", "token", "elapsed")

    def __init__(self, recorder: LatencyRecorder, op: str, token):
        self.recorder = recorder
        self.op = op
        self.token = token
        self.elapsed: Optional[float] = None

    def __enter__(self) -> "_LatencyTimer":
        self.recorder.start(self.op, self.token)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.elapsed = self.recorder.stop(self.op, self.token)
        else:
            self.recorder.discard(self.op, self.token)
        return False
