"""Latency accounting: distributions of simulated-time durations."""

from __future__ import annotations

from typing import Dict, List, Sequence


def percentile(samples: Sequence[float], p: float) -> float:
    """Nearest-rank percentile; p in [0, 100]."""
    if not samples:
        raise ValueError("no samples")
    ordered = sorted(samples)
    if p <= 0:
        return ordered[0]
    if p >= 100:
        return ordered[-1]
    rank = max(1, round(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


def summarize(samples: Sequence[float]) -> Dict[str, float]:
    if not samples:
        return {"count": 0}
    return {
        "count": len(samples),
        "mean": sum(samples) / len(samples),
        "min": min(samples),
        "p50": percentile(samples, 50),
        "p90": percentile(samples, 90),
        "p99": percentile(samples, 99),
        "max": max(samples),
    }


class LatencyRecorder:
    """Start/stop timers keyed by operation name, on the virtual clock."""

    def __init__(self, kernel):
        self.kernel = kernel
        self._samples: Dict[str, List[float]] = {}
        self._open: Dict[tuple, float] = {}

    def start(self, op: str, token=None) -> None:
        self._open[(op, token)] = self.kernel.now

    def stop(self, op: str, token=None) -> float:
        started = self._open.pop((op, token), None)
        if started is None:
            raise KeyError(f"no open timer for {op!r}/{token!r}")
        elapsed = self.kernel.now - started
        self.record(op, elapsed)
        return elapsed

    def record(self, op: str, value: float) -> None:
        self._samples.setdefault(op, []).append(value)

    def samples(self, op: str) -> List[float]:
        return list(self._samples.get(op, []))

    def summary(self, op: str) -> Dict[str, float]:
        return summarize(self._samples.get(op, []))

    def operations(self) -> List[str]:
        return sorted(self._samples)
