"""Cluster assembly: bring up the full Orlando-style system (Figures 1-2)."""

from repro.cluster.builder import Cluster, build_cluster, build_full_cluster
from repro.cluster.scenario import Scenario, ScenarioReport

__all__ = ["Cluster", "Scenario", "ScenarioReport", "build_cluster",
           "build_full_cluster"]
