"""Build and drive a whole cluster (the public top-level API).

``build_cluster()`` assembles the paper's deployment: N server machines
on FDDI, each booted by init into an SSC that starts the base services
(name service, RAS, Settop Manager, database, authentication -- section
6.3), neighbourhoods assigned round-robin to servers, and optionally the
ITV service stack and settops.

Everything a test, example, or benchmark does goes through the returned
:class:`Cluster` handle.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.core.control.registry import ServiceEnv, ServiceRegistry
from repro.core.control.ssc import install_init
from repro.core.naming.client import NameClient
from repro.core.params import Params
from repro.net.address import server_ip, settop_ip
from repro.net.message import reset_msg_counter
from repro.net.network import Network
from repro.ocs.runtime import OCSRuntime, reset_port_counter
from repro.sim.host import Host, Process, reset_pid_counter
from repro.sim.kernel import Kernel
from repro.sim.rand import SeededRandom
from repro.sim.trace import TraceLog

#: services init starts on every server, in dependency order (section 6.3
#: step 2: "the SSC starts the basic services, including the name service,
#: the authentication service, the Resource Audit Service, and the data
#: base service").
BASE_SERVICES = ["ns", "ras", "settopmgr", "db", "auth"]


def fresh_run_state() -> None:
    """Restart the process-global allocators (pids, message ids, ports).

    Pid/port/message-id sequences are process-global so that several
    clusters can coexist in one interpreter (shared test fixtures).  The
    price is that back-to-back runs see different absolute values in
    their traces.  Call this before each run that must be byte-identical
    to another -- the determinism harness
    (:mod:`repro.analysis.determinism`) does.  Do NOT call it while
    another cluster is still in use: its network would start handing out
    already-bound ports.
    """
    reset_pid_counter()
    reset_msg_counter()
    reset_port_counter()


class Cluster:
    """A running simulated cluster."""

    def __init__(self, n_servers: int = 3, neighborhoods_per_server: int = 2,
                 params: Optional[Params] = None, seed: int = 0,
                 base_services: Optional[List[str]] = None,
                 cluster_config: Optional[Dict[str, Any]] = None):
        self.kernel = Kernel()
        self.params = params or Params()
        self.rng = SeededRandom(seed)
        self.trace = TraceLog(self.kernel)
        if self.params.hb_trace:
            # Route happens-before events into the run's own trace; every
            # emission site guards on ``kernel.hb_log is not None``, so
            # runs without the flag stay byte-identical to the goldens.
            self.kernel.hb_log = self.trace
        self.net = Network(self.kernel)
        # Fault firings (duplicate/reorder/corrupt) log into the run's
        # trace; with no faults injected nothing is emitted, so golden
        # digests of fault-free runs are untouched.
        self.net.trace = self.trace
        self.registry = ServiceRegistry()
        self.base_services = list(base_services or BASE_SERVICES)
        self.servers: List[Host] = []
        self.settops: List[Host] = []
        self.neighborhoods_by_server: Dict[str, List[int]] = {}
        self._settop_counters: Dict[int, int] = {}

        for i in range(n_servers):
            host = Host(self.kernel, f"server-{i}")
            self.net.attach(host, server_ip(i))
            # Like hb_trace above: every disk keeps its PR-7 behavior
            # (writes durable immediately) unless the run opts into the
            # crash-consistency fault model.
            host.disk.write_barrier = self.params.disk_write_barrier
            self.servers.append(host)
        self.server_ips = [h.ip for h in self.servers]

        total_neighborhoods = n_servers * neighborhoods_per_server
        self.neighborhoods = list(range(1, total_neighborhoods + 1))
        for idx, nbhd in enumerate(self.neighborhoods):
            ip = self.server_ips[idx % n_servers]
            self.neighborhoods_by_server.setdefault(ip, []).append(nbhd)

        self.cluster_config: Dict[str, Any] = {
            "ns_replica_ips": list(self.server_ips),
            "neighborhoods_by_server": dict(self.neighborhoods_by_server),
            "server_ips": list(self.server_ips),
        }
        if cluster_config:
            self.cluster_config.update(cluster_config)

        self._register_builtin_services()
        self._seed_disks()
        for host in self.servers:
            install_init(host, self._env_maker(host), self.registry,
                         self.base_services)

    # ------------------------------------------------------------------
    # construction details
    # ------------------------------------------------------------------

    def _env_maker(self, host: Host) -> Callable[[], ServiceEnv]:
        def make_env() -> ServiceEnv:
            return ServiceEnv(
                host=host, network=self.net, params=self.params,
                ns_ip=host.ip, rng=self.rng.stream(f"svc-{host.ip}"),
                trace=self.trace, cluster=self.cluster_config)
        return make_env

    def _register_builtin_services(self) -> None:
        from repro.cluster.catalog import register_all_services
        register_all_services(self.registry, self)

    def _seed_disks(self) -> None:
        """Install keytabs and static configuration on every server disk."""
        from repro.auth.service import seed_secret
        from repro.db.service import seed_database
        secret = f"orlando-cluster-secret-{self.rng.seed}".encode()
        self.cluster_config["auth_secret"] = secret
        placement = self.cluster_config.get("service_placement", {})
        for host in self.servers:
            seed_secret(host.disk, secret)
            seed_database(host.disk, "config", {
                "placement": placement,
                "neighborhoods_by_server": self.neighborhoods_by_server,
            })
            # Factory image: build-time seeds (keytabs, config, media
            # catalogs) are durable even when the run's fault model
            # buffers runtime writes behind the write barrier.
            host.disk.sync()

    # ------------------------------------------------------------------
    # time control
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.kernel.now

    def run_for(self, duration: float) -> None:
        self.kernel.run(until=self.kernel.now + duration)

    def run_async(self, coro, limit: float = 1e9):
        return self.kernel.run_until_complete(coro, limit=limit)

    def settle(self, timeout: float = 120.0, extra_names: Optional[List[str]] = None,
               step: float = 1.0) -> bool:
        """Run until the base services are registered and resolvable.

        Checks that a name-service master exists and that every server's
        RAS binding resolves (plus any ``extra_names``).  Returns True on
        success, False if ``timeout`` simulated seconds pass first.
        """
        deadline = self.kernel.now + timeout
        names = [f"svc/ras/{ip}" for ip in self.server_ips
                 if "ras" in self.base_services]
        # Every base service's replica bindings, not just RAS: with
        # jittered-exponential retry backoff, a service can finish its
        # bind several (simulated) seconds after its peers, and "settled"
        # must mean all of them are resolvable.
        if "auth" in self.base_services:
            names += [f"svc/auth/{ip}" for ip in self.server_ips]
        if "db" in self.base_services:
            names += [f"svc/db-all/{ip}" for ip in self.server_ips]
        if "settopmgr" in self.base_services:
            names += [f"svc/settopmgr/{n}" for n in self.neighborhoods]
        names += list(extra_names or [])
        checker = self.client_on(self.servers[0], name="settle-checker")
        try:
            while self.kernel.now < deadline:
                self.run_for(step)
                if self._all_resolvable(checker, names):
                    return True
            return False
        finally:
            checker.process.kill(status="settle checker done")

    def _all_resolvable(self, checker: "ClusterClient", names: List[str]) -> bool:
        async def check() -> bool:
            for name in names:
                try:
                    await checker.names.resolve(name)
                except Exception:  # noqa: BLE001 - any failure means not ready
                    return False
            return True

        return self.run_async(check())

    # ------------------------------------------------------------------
    # clients and hosts
    # ------------------------------------------------------------------

    def client_on(self, host: Host, name: str = "client") -> "ClusterClient":
        proc = host.spawn(name)
        runtime = OCSRuntime(proc, self.net)
        return ClusterClient(self, proc, runtime)

    def add_settop(self, neighborhood: int, upstream_bps: Optional[float] = None,
                   downstream_bps: Optional[float] = None) -> Host:
        """Attach a new settop host in ``neighborhood`` (no software yet)."""
        if neighborhood not in self.neighborhoods:
            raise ValueError(f"unknown neighborhood {neighborhood}")
        unit = self._settop_counters.get(neighborhood, 0)
        self._settop_counters[neighborhood] = unit + 1
        host = Host(self.kernel, f"settop-{neighborhood}-{unit}", kind="settop")
        self.net.attach(host, settop_ip(neighborhood, unit),
                        upstream_bps=upstream_bps, downstream_bps=downstream_bps)
        self.settops.append(host)
        # The headend's plant map: who the broadcast services reach.
        plant = self.cluster_config.setdefault("settops_by_neighborhood", {})
        plant.setdefault(neighborhood, []).append(host.ip)
        return host

    def add_population(self, count: int) -> List[Host]:
        """Attach ``count`` bare settop hosts, round-robin across every
        neighborhood (PR 5).

        Population-scale workloads (:mod:`repro.workloads.population`)
        attach their own lightweight client stack to each host instead
        of booting a full :class:`SettopKernel`, so thousands of
        settops fit in one run.  The plant's address space allows 254
        settops per neighborhood; build the cluster with more
        neighborhoods per server to raise the ceiling.
        """
        per_nbhd = 254
        capacity = per_nbhd * len(self.neighborhoods)
        if len(self.settops) + count > capacity:
            raise ValueError(
                f"population of {len(self.settops) + count} settops exceeds "
                f"plant capacity {capacity} "
                f"({len(self.neighborhoods)} neighborhoods x {per_nbhd})")
        hosts: List[Host] = []
        for i in range(count):
            nbhd = self.neighborhoods[i % len(self.neighborhoods)]
            hosts.append(self.add_settop(nbhd))
        return hosts

    def add_settop_kernel(self, neighborhood: int, power_on: bool = True,
                          **kwargs):
        """Attach a settop *with software*: returns its SettopKernel."""
        from repro.settop.kernel import SettopKernel
        host = self.add_settop(neighborhood, **kwargs)
        stk = SettopKernel(host, self.net, self.params, trace=self.trace)
        if power_on:
            stk.power_on()
        return stk

    def boot_settops(self, kernels, timeout: float = 120.0,
                     require_app_manager: bool = True) -> bool:
        """Run until every given settop has booted (and started its AM)."""
        deadline = self.kernel.now + timeout
        while self.kernel.now < deadline:
            self.run_for(1.0)
            if all(stk.state == "booted"
                   and (not require_app_manager or
                        (stk.app_manager is not None
                         and stk.app_manager.current_app is not None))
                   for stk in kernels):
                return True
        return False

    def server_for_neighborhood(self, neighborhood: int) -> Host:
        for ip, nbhds in self.neighborhoods_by_server.items():
            if neighborhood in nbhds:
                return self.net.host_at(ip)
        raise ValueError(f"no server owns neighborhood {neighborhood}")

    # ------------------------------------------------------------------
    # failure injection
    # ------------------------------------------------------------------

    def crash_server(self, index: int) -> Host:
        host = self.servers[index]
        self.trace.emit("fault", "server_crash", host=host.name)
        host.crash()
        return host

    def reboot_server(self, index: int) -> Host:
        host = self.servers[index]
        self.trace.emit("fault", "server_boot", host=host.name)
        host.boot()
        return host

    def kill_service(self, index: int, process_name: str) -> bool:
        """Kill one service process on a server (returns False if absent)."""
        host = self.servers[index]
        proc = host.find_process(process_name)
        if proc is None:
            return False
        self.trace.emit("fault", "service_crash", host=host.name,
                        service=process_name)
        proc.kill()
        return True

    def crash_settop(self, index: int) -> Host:
        """Fail-stop one settop (by position in ``self.settops``)."""
        host = self.settops[index]
        self.trace.emit("fault", "settop_crash", host=host.name)
        host.crash()
        return host

    def kill_ssc(self, index: int) -> bool:
        """Kill a server's SSC: every service it started dies with it."""
        return self.kill_service(index, "ssc")

    def find_service(self, index: int, process_name: str) -> Optional[Process]:
        return self.servers[index].find_process(process_name)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def ns_master_ip(self) -> Optional[str]:
        for host in self.servers:
            proc = host.find_process("ns")
            if proc is None:
                continue
            runtime = proc.attachments.get("ocs")
            if runtime is None:
                continue
            # The replica stores itself on the process for inspection.
            replica = proc.attachments.get("ns_replica")
            if replica is not None and replica.role == "master":
                return host.ip
        return None

    def db_primary_ip(self) -> Optional[str]:
        """Which live db replica currently holds the primary binding.

        Write-through replication (PR 7) routes every write here; tests
        and fault schedules use this to aim kill-primary-mid-write
        drills at the right host.
        """
        for host in self.servers:
            proc = host.find_process("db")
            if proc is None or not proc.alive:
                continue
            service = proc.attachments.get("service")
            if service is not None and getattr(service, "is_primary", False):
                return host.ip
        return None

    def running_services(self) -> Dict[str, List[str]]:
        out: Dict[str, List[str]] = {}
        for host in self.servers:
            out[host.name] = sorted(p.name for p in host.processes if p.alive)
        return out


class ClusterClient:
    """A client process with OCS runtime + name client, for tests/examples."""

    def __init__(self, cluster: Cluster, process: Process, runtime: OCSRuntime):
        self.cluster = cluster
        self.process = process
        self.runtime = runtime
        self.names = NameClient(runtime, process.host.ip, cluster.params)

    @property
    def kernel(self) -> Kernel:
        return self.cluster.kernel


#: services every server runs in the full ITV configuration
PER_SERVER_SERVICES = ["cmgr", "mds", "rds", "boot", "fileservice",
                       "vod", "shopping", "game"]
#: primary/backup services placed on the first two servers
PB_SERVICES = ["mms", "kbs"]


def build_full_cluster(n_servers: int = 3, neighborhoods_per_server: int = 2,
                       params: Optional[Params] = None, seed: int = 0,
                       settle_timeout: float = 180.0,
                       **kwargs) -> Cluster:
    """Assemble the complete ITV system of Figure 2.

    Base services come up via init/SSC; the CSC (started on the first two
    servers) reads the placement from the database and directs each SSC
    to start the ITV stack (section 6.3 step 4).
    """
    cluster = Cluster(n_servers=n_servers,
                      neighborhoods_per_server=neighborhoods_per_server,
                      params=params, seed=seed,
                      base_services=BASE_SERVICES + ["csc"], **kwargs)
    server_ips = cluster.server_ips
    placement: Dict[str, List[str]] = {
        svc: list(server_ips) for svc in PER_SERVER_SERVICES}
    for svc in PB_SERVICES:
        placement[svc] = server_ips[:2] if len(server_ips) >= 2 else server_ips
    cluster.cluster_config["service_placement"] = placement
    from repro.cluster.media import seed_default_content
    seed_default_content(cluster)
    # Re-seed config now that the placement is known (disks were seeded in
    # the constructor before the placement existed).
    cluster._seed_disks()
    ready_names = ["svc/mms", "svc/kbs", "svc/csc"]
    ready_names += [f"svc/mds/{h.name}" for h in cluster.servers]
    ready_names += [f"svc/cmgr/{n}" for n in cluster.neighborhoods]
    ready_names += [f"svc/rds/{n}" for n in cluster.neighborhoods]
    if not cluster.settle(timeout=settle_timeout, extra_names=ready_names):
        raise RuntimeError("full cluster failed to settle")
    return cluster


def build_cluster(n_servers: int = 3, neighborhoods_per_server: int = 2,
                  params: Optional[Params] = None, seed: int = 0,
                  base_services: Optional[List[str]] = None,
                  settle: bool = True, **kwargs) -> Cluster:
    """Assemble a cluster and (by default) run it to a settled state."""
    cluster = Cluster(n_servers=n_servers,
                      neighborhoods_per_server=neighborhoods_per_server,
                      params=params, seed=seed, base_services=base_services,
                      **kwargs)
    if settle:
        if not cluster.settle():
            raise RuntimeError("cluster failed to settle")
    return cluster
