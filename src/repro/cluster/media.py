"""Content distribution: movies, application binaries, shop catalog.

The trial's content plan, sized so the section 9.3 numbers fall out:
application binaries of 1.5-3 MByte take 2-4 s on the settop downlink,
and movies are MPEG-era CBR streams replicated on at least two servers
("movies are replicated on more than one server", section 3.5.2).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.db.service import seed_database
from repro.services.file_service import seed_file
from repro.services.mds import seed_movie
from repro.services.rds import seed_data

#: channel -> application or venue (section 3.4.3: "Some channels
#: correspond to single applications, others to venues through which a
#: user can find a set of applications, e.g. games.")
DEFAULT_CHANNELS = {4: "navigator", 5: "vod", 6: "shopping", 7: "game",
                    8: "venue:arcade", 9: "venue:lifestyle"}

#: venue name -> the applications it gathers
DEFAULT_VENUES = {
    "arcade": ["game"],
    "lifestyle": ["shopping", "vod"],
}

#: application binaries: name -> bytes (1.5-3 MB -> 2-4 s at 6 Mbit/s)
DEFAULT_APPS = {
    "navigator": 1_500_000,
    "vod": 2_200_000,
    "shopping": 2_600_000,
    "game": 3_000_000,
}

#: shared assets downloadable via the RDS
DEFAULT_ASSETS = {
    "fonts/helvetica": 180_000,
    "fonts/times": 170_000,
    "images/menu-bg": 420_000,
    "images/store-front": 380_000,
}

#: title -> (duration seconds, bitrate bps); durations kept short enough
#: to simulate full plays, with one feature-length title
DEFAULT_MOVIES: Dict[str, Tuple[float, float]] = {
    "T2": (300.0, 3_000_000),
    "Casablanca": (240.0, 3_000_000),
    "Toy Story": (200.0, 3_000_000),
    "The Fugitive": (260.0, 3_000_000),
    "Jurassic Park": (280.0, 3_000_000),
    "Sneakers": (220.0, 3_000_000),
}

DEFAULT_CATALOG = {
    "tshirt": {"name": "Trial T-Shirt", "price": 14.99},
    "mug": {"name": "FSN Mug", "price": 7.99},
    "cap": {"name": "Orlando Cap", "price": 11.50},
    "remote": {"name": "Spare Remote", "price": 24.00},
}


def seed_default_content(cluster, movies: Dict[str, Tuple[float, float]] = None,
                         copies: int = 2) -> None:
    """Distribute content across the cluster's servers.

    Every server gets the full RDS data set (apps, fonts, images, seeded
    kernels) and the shop catalog; each movie lands on ``copies`` servers
    round-robin so single-server failures are coverable.
    """
    movies = movies if movies is not None else DEFAULT_MOVIES
    servers = cluster.servers
    cluster.cluster_config.setdefault("channels", dict(DEFAULT_CHANNELS))
    cluster.cluster_config.setdefault("venues", dict(DEFAULT_VENUES))
    for host in servers:
        for name, size in DEFAULT_APPS.items():
            seed_data(host.disk, f"apps/{name}", size, kind="binary")
        for name, size in DEFAULT_ASSETS.items():
            seed_data(host.disk, name, size)
        seed_database(host.disk, "shop_catalog", DEFAULT_CATALOG)
        seed_file(host.disk, "etc/motd", 2_000)
        seed_file(host.disk, "content/promo.mpg", 40_000_000)
    for idx, (title, (duration, bitrate)) in enumerate(sorted(movies.items())):
        for c in range(min(copies, len(servers))):
            host = servers[(idx + c) % len(servers)]
            seed_movie(host.disk, title, duration, bitrate)


def movie_locations(cluster, title: str) -> List[str]:
    """Which servers carry a title (inspection helper for tests/benches)."""
    out = []
    for host in cluster.servers:
        if f"movies/{title}" in host.disk:
            out.append(host.name)
    return out
