"""Service factory registration: the cluster's "service binaries".

Maps the service names used in placement configuration to factories the
SSCs can start.  Factories import their module lazily -- like init
exec'ing a binary only when a service is actually started -- so building
a minimal cluster does not pull in the whole ITV stack.
"""

from __future__ import annotations

import importlib

from repro.core.control.registry import ServiceEnv, ServiceRegistry
from repro.core.naming.replica import NameReplicaProcess
from repro.ocs.runtime import OCSRuntime
from repro.sim.host import Process


class _NameServiceAdapter:
    """Runs a name-service replica as an SSC-managed service."""

    def __init__(self, env: ServiceEnv, process: Process):
        runtime = OCSRuntime(process, env.network, port=env.params.ns_port)
        self.replica = NameReplicaProcess(
            process, runtime, env.params,
            env.cluster["ns_replica_ips"],
            rng=env.rng.stream(f"ns-{env.host.ip}"),
            trace=env.trace)
        process.attachments["ns_replica"] = self.replica

    def replication_gauges(self) -> dict:
        """Change-log cursor/lag for the SSC load-report batch (PR 7)."""
        return self.replica.replication_gauges()

    async def run(self) -> None:
        await self.replica.kernel.create_future()  # serve until killed


def _lazy(module: str, attr: str):
    def factory(env: ServiceEnv, process: Process):
        cls = getattr(importlib.import_module(module), attr)
        return cls(env, process)

    factory.__name__ = f"start_{attr}"
    return factory


#: service name -> (module, class).  Figure 2's full complement.
SERVICE_TABLE = {
    "ras": ("repro.core.ras.service", "ResourceAuditService"),
    "settopmgr": ("repro.services.settop_manager", "SettopManagerService"),
    "db": ("repro.db.service", "DatabaseService"),
    "auth": ("repro.auth.service", "AuthenticationService"),
    "csc": ("repro.core.control.csc", "ClusterServiceController"),
    "cmgr": ("repro.services.connection_manager", "ConnectionManagerService"),
    "mds": ("repro.services.mds", "MediaDeliveryService"),
    "rds": ("repro.services.rds", "ReliableDeliveryService"),
    "mms": ("repro.services.mms", "MediaManagementService"),
    "boot": ("repro.services.boot", "BootBroadcastService"),
    "kbs": ("repro.services.boot", "KernelBroadcastService"),
    "fileservice": ("repro.services.file_service", "FileService"),
    # application server portions (section 3: "Applications are
    # themselves distributed, with ... a portion to provide access to
    # data and other services running on a server machine")
    "vod": ("repro.services.vod", "VODService"),
    "shopping": ("repro.services.shopping", "ShoppingService"),
    "game": ("repro.services.game", "GameService"),
}


def register_all_services(registry: ServiceRegistry, cluster) -> None:
    """Register every service factory with ``registry``."""
    registry.register("ns", _NameServiceAdapter)
    for name, (module, attr) in SERVICE_TABLE.items():
        registry.register(name, _lazy(module, attr))
