"""Declarative failure scenarios: timed fault scripts over a cluster.

Experiments and examples keep writing the same shape of code -- "at t+10
kill the MDS, at t+40 crash server 2, observe X between events".  A
:class:`Scenario` captures that shape: an ordered script of timed
actions with named observation hooks, producing a structured report of
what happened when.  It drives exactly the public fault-injection
surface of :class:`repro.cluster.builder.Cluster`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.cluster.builder import Cluster

Action = Callable[[Cluster], Any]
Probe = Callable[[Cluster], Any]


@dataclass
class _Step:
    at: float
    label: str
    action: Action


@dataclass
class ScenarioReport:
    """What a scenario run produced."""

    started_at: float
    finished_at: float
    events: List[Dict[str, Any]] = field(default_factory=list)
    observations: Dict[str, List[Dict[str, Any]]] = field(default_factory=dict)

    def series(self, probe_name: str, key: Optional[str] = None) -> List:
        rows = self.observations.get(probe_name, [])
        if key is None:
            return [(r["t"], r["value"]) for r in rows]
        return [(r["t"], r["value"].get(key)) for r in rows]

    def event_times(self, label: str) -> List[float]:
        return [e["t"] for e in self.events if e["label"] == label]


class Scenario:
    """A timed fault/observation script.

    >>> scenario = (Scenario()
    ...     .at(10.0, "kill mds", lambda c: c.kill_service(0, "mds"))
    ...     .at(60.0, "crash server", lambda c: c.crash_server(1))
    ...     .observe_every(5.0, "streams", count_streams)
    ...     .lasting(120.0))
    >>> report = scenario.run(cluster)
    """

    def __init__(self) -> None:
        self._steps: List[_Step] = []
        self._probes: List[tuple] = []   # (interval, name, fn)
        self._duration = 60.0

    def at(self, offset: float, label: str, action: Action) -> "Scenario":
        """Schedule ``action(cluster)`` at ``offset`` seconds into the run."""
        if offset < 0:
            raise ValueError("scenario offsets must be >= 0")
        self._steps.append(_Step(at=offset, label=label, action=action))
        return self

    def observe_every(self, interval: float, name: str,
                      probe: Probe) -> "Scenario":
        """Sample ``probe(cluster)`` every ``interval`` seconds."""
        if interval <= 0:
            raise ValueError("probe interval must be positive")
        self._probes.append((interval, name, probe))
        return self

    def lasting(self, duration: float) -> "Scenario":
        """Total scenario length; must cover every scheduled step."""
        self._duration = duration
        return self

    def run(self, cluster: Cluster) -> ScenarioReport:
        steps = sorted(self._steps, key=lambda s: s.at)
        if steps and steps[-1].at > self._duration:
            raise ValueError("a step is scheduled past the scenario end")
        start = cluster.now
        report = ScenarioReport(started_at=start, finished_at=start)
        next_probe = {name: 0.0 for _i, name, _p in self._probes}

        elapsed = 0.0
        step_index = 0
        while elapsed < self._duration:
            # The next interesting instant: a step or a probe tick.
            upcoming = [self._duration]
            if step_index < len(steps):
                upcoming.append(steps[step_index].at)
            for interval, name, _probe in self._probes:
                upcoming.append(next_probe[name])
            target = max(min(upcoming), elapsed)
            if target > elapsed:
                cluster.run_for(target - elapsed)
                elapsed = target
            if step_index < len(steps) and steps[step_index].at <= elapsed:
                step = steps[step_index]
                step_index += 1
                result = step.action(cluster)
                report.events.append({"t": elapsed, "label": step.label,
                                      "result": result})
                continue
            fired = False
            for interval, name, probe in self._probes:
                if next_probe[name] <= elapsed:
                    value = probe(cluster)
                    report.observations.setdefault(name, []).append(
                        {"t": elapsed, "value": value})
                    next_probe[name] = elapsed + interval
                    fired = True
            if not fired and target >= self._duration:
                break
        report.finished_at = cluster.now
        return report
