"""Viewer session generator.

Drives booted settops through realistic evenings of use: channel
changes, movie opens with Zipf-distributed title popularity (a few hits
absorb most opens, which is what makes recovery storms and MDS load
imbalance interesting), shopping browses, and game rounds.  Sessions
record per-operation latencies so experiments can report response-time
distributions against the paper's half-second expectation (section 9.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.sim.rand import SeededRandom


@dataclass
class SessionStats:
    opens: int = 0
    open_failures: int = 0
    open_latencies: List[float] = field(default_factory=list)
    tunes: int = 0
    tune_latencies: List[float] = field(default_factory=list)
    orders: int = 0
    game_rounds: int = 0
    watch_seconds: float = 0.0
    interruptions: int = 0
    # PR 4: operations answered by a degraded path (low-bitrate catalog,
    # cached menu) instead of failing -- the overload success metric.
    degraded: int = 0

    def merge(self, other: "SessionStats") -> None:
        self.opens += other.opens
        self.open_failures += other.open_failures
        self.open_latencies.extend(other.open_latencies)
        self.tunes += other.tunes
        self.tune_latencies.extend(other.tune_latencies)
        self.orders += other.orders
        self.game_rounds += other.game_rounds
        self.watch_seconds += other.watch_seconds
        self.interruptions += other.interruptions
        self.degraded += other.degraded


class ViewerSession:
    """One subscriber's evening, driven against a booted settop."""

    def __init__(self, cluster, settop_kernel, rng: SeededRandom,
                 titles: Optional[List[str]] = None, zipf_skew: float = 1.1):
        self.cluster = cluster
        self.stk = settop_kernel
        self.rng = rng
        self.titles = titles or self._default_titles()
        self.zipf_skew = zipf_skew
        self.stats = SessionStats()

    def _default_titles(self) -> List[str]:
        from repro.cluster.media import DEFAULT_MOVIES
        return sorted(DEFAULT_MOVIES)

    def pick_title(self) -> str:
        return self.titles[self.rng.zipf_index(len(self.titles),
                                               self.zipf_skew)]

    async def run(self, duration: float) -> SessionStats:
        kernel = self.cluster.kernel
        end = kernel.now + duration
        while kernel.now < end:
            activity = self.rng.random()
            if activity < 0.55:
                await self._watch_movie(end)
            elif activity < 0.75:
                await self._shop()
            elif activity < 0.9:
                await self._game()
            else:
                await kernel.sleep(self.rng.uniform(5.0, 30.0))  # idle TV
        return self.stats

    async def _tune(self, channel) -> Optional[object]:
        am = self.stk.app_manager
        if am is None:
            return None
        kernel = self.cluster.kernel
        t0 = kernel.now
        before = am.last_tune
        try:
            await am.tune(channel)
        except Exception:  # noqa: BLE001 - the service may be failing over
            return None
        if am.last_tune is not None and am.last_tune is not before:
            # An actual channel change (not a no-op re-tune).
            self.stats.tunes += 1
            self.stats.tune_latencies.append(kernel.now - t0)
        return am.current_app

    async def _watch_movie(self, end: float) -> None:
        kernel = self.cluster.kernel
        app = await self._tune(5)
        if app is None or app.name != "vod":
            return
        title = self.pick_title()
        t0 = kernel.now
        interruptions_before = len(app.interruptions)
        try:
            mode = await app.play(title)
        except Exception:  # noqa: BLE001 - open failed (overload/fail-over)
            self.stats.open_failures += 1
            await kernel.sleep(5.0)
            return
        if mode == "degraded":
            # The delivery path shed us but the app kept a screen up;
            # browse the degraded catalog briefly instead of watching.
            self.stats.degraded += 1
            await kernel.sleep(self.rng.uniform(2.0, 10.0))
            return
        self.stats.opens += 1
        self.stats.open_latencies.append(kernel.now - t0)
        watch_for = min(self.rng.uniform(30.0, 180.0), max(end - kernel.now, 1))
        t_watch = kernel.now
        await kernel.sleep(watch_for)
        self.stats.watch_seconds += kernel.now - t_watch
        self.stats.interruptions += (len(app.interruptions)
                                     - interruptions_before)
        if not app.finished:
            await app.stop()

    async def _shop(self) -> None:
        from repro.ocs.exceptions import DeadlineExceeded, ServiceUnavailable
        kernel = self.cluster.kernel
        app = await self._tune(6)
        if app is None or app.name != "shopping":
            return
        try:
            catalog = await app.browse()
            await kernel.sleep(self.rng.uniform(5.0, 20.0))  # browsing
            if catalog and self.rng.random() < 0.4:
                item = sorted(catalog)[self.rng.randint(0, len(catalog) - 1)]
                await app.buy(item)
                self.stats.orders += 1
        except (ServiceUnavailable, DeadlineExceeded):
            # The shop is shedding (or out of budget): fall back to the
            # navigator's cached menu so the viewer still sees a screen.
            nav = await self._tune("navigator")
            if nav is not None and hasattr(nav, "menu"):
                await nav.menu()
                self.stats.degraded += 1
            await kernel.sleep(2.0)
        except Exception:  # noqa: BLE001
            await kernel.sleep(2.0)

    async def _game(self) -> None:
        kernel = self.cluster.kernel
        app = await self._tune(7)
        if app is None or app.name != "game":
            return
        for _round in range(self.rng.randint(2, 6)):
            try:
                await app.play_round(self.rng.randint(1, 100))
                self.stats.game_rounds += 1
            except Exception:  # noqa: BLE001
                break
            await kernel.sleep(self.rng.uniform(2.0, 8.0))


def run_viewers(cluster, settop_kernels, duration: float,
                seed: int = 0) -> SessionStats:
    """Run one session per settop concurrently; return merged stats."""
    rng = SeededRandom(seed)
    sessions = [ViewerSession(cluster, stk, rng.stream(f"viewer-{i}"))
                for i, stk in enumerate(settop_kernels)]
    tasks = [cluster.kernel.create_task(s.run(duration),
                                        name=f"viewer-{i}")
             for i, s in enumerate(sessions)]
    cluster.run_for(duration + 60.0)
    total = SessionStats()
    for session in sessions:
        total.merge(session.stats)
    return total
