"""Population-scale settop workload (PR 5, experiment E15).

Drives *thousands* of lightweight settop sessions through the real
OCS/NS/VOD path to measure what the paper only claims (sections 5.1,
9.6): that resolution traffic stays sublinear in settop count because
clients cache bindings and revalidate lazily.

Each population settop is one bare host + one process + one OCS runtime
-- no boot broadcast, no full application stack -- but every operation
is a genuine remote call: a fresh :class:`NameClient` +
:class:`RebindingProxy` per "tune" (modelling the Application Manager
starting a fresh app on every channel change, each with its own name
client), resolving ``svc/vod`` through the name service's neighborhood
selector and invoking real VOD servant methods.  With the per-host
:class:`BindingCache` the fresh client's resolve is answered locally
after the first tune; without it (``cached=False``, the E15 control
row) every tune is a name-service round trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.naming.cache import BindingCache
from repro.core.naming.client import NameClient
from repro.core.rebind import RebindingProxy
from repro.ocs.exceptions import OCSError, ServiceUnavailable
from repro.ocs.runtime import OCSRuntime
from repro.sim.rand import SeededRandom

#: titles the population leans on; bookmarks are per-settop so any
#: subset works, these just exist in the default content set.
TITLES = ["T2", "Casablanca", "Toy Story", "The Fugitive"]


@dataclass
class PopulationResult:
    """Aggregate numbers for one population run (one E15 table row)."""

    settops: int = 0
    duration: float = 0.0
    cached: bool = True
    ops: int = 0
    op_failures: int = 0
    tunes: int = 0
    #: client-side resolve() calls issued by population proxies
    client_resolves: int = 0
    #: delta of resolves actually served by the NS replicas (includes
    #: cluster background traffic: watchdogs, audits, SSC loops)
    ns_resolves: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_coalesced: int = 0
    #: total OCS calls sent by population runtimes (per-settop wire cost)
    calls_sent: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def resolves_per_settop(self) -> float:
        return self.ns_resolves / self.settops if self.settops else 0.0

    @property
    def msgs_per_settop(self) -> float:
        return self.calls_sent / self.settops if self.settops else 0.0

    def row(self) -> dict:
        """Table-ready summary (E15 / ``repro population``)."""
        return {
            "settops": self.settops,
            "cached": self.cached,
            "ops": self.ops,
            "failures": self.op_failures,
            "ns_resolves": self.ns_resolves,
            "resolves_per_settop": round(self.resolves_per_settop, 2),
            "hit_rate": round(self.hit_rate, 4),
            "msgs_per_settop": round(self.msgs_per_settop, 1),
        }


class PopulationEngine:
    """Runs ``count`` lightweight settop sessions against a cluster."""

    def __init__(self, cluster, count: int, seed: int = 0,
                 think: tuple = (12.0, 24.0), cached: bool = True):
        self.cluster = cluster
        self.count = count
        self.think = think
        self.cached = cached
        self.rng = SeededRandom(seed).stream("population")
        self.hosts = cluster.add_population(count)
        self.result = PopulationResult(settops=count, cached=cached)
        self._runtimes: List[OCSRuntime] = []
        self._caches: List[BindingCache] = []

    # -- one settop -----------------------------------------------------

    def _cache_on(self, host) -> Optional[BindingCache]:
        if not self.cached:
            return None
        cache = BindingCache.for_host(host)
        if cache not in self._caches:
            self._caches.append(cache)
        return cache

    async def _settop_session(self, index: int, host, end: float) -> None:
        kernel = self.cluster.kernel
        rng = self.rng.stream(f"settop-{index}")
        proc = host.spawn("stb")
        runtime = OCSRuntime(proc, self.cluster.net,
                             principal=f"pop@{host.ip}")
        self._runtimes.append(runtime)
        cache = self._cache_on(host)
        # Spread name-service load the way boot params would: each
        # settop starts its replica rotation at a different server.
        ips = list(self.cluster.server_ips)
        start = index % len(ips)
        ns_ips = ips[start:] + ips[:start]
        title = TITLES[index % len(TITLES)]
        # Stagger arrivals so the population does not phase-lock.
        await kernel.sleep(rng.uniform(0.0, self.think[1]))
        while kernel.now < end:
            # A "tune": the AM starts a fresh app, which builds its own
            # name client + proxy (exactly what settop/apps/base.py
            # does).  The host's binding cache is what persists.
            names = NameClient(runtime, ns_ips, self.cluster.params,
                               cache=cache)
            vod = RebindingProxy(runtime, names, "svc/vod",
                                 self.cluster.params, rng=rng,
                                 give_up_after=15.0)
            self.result.tunes += 1
            await self._one_op(vod, rng, title)
            self.result.client_resolves += vod.resolve_calls
            await kernel.sleep(rng.uniform(*self.think))

    async def _one_op(self, vod: RebindingProxy, rng: SeededRandom,
                      title: str) -> None:
        roll = rng.random()
        try:
            if roll < 0.45:
                await vod.call("getBookmark", title)
            elif roll < 0.80:
                await vod.call("reportPosition", title,
                               round(rng.uniform(0.0, 200.0), 1))
            else:
                await vod.call("catalog")
            self.result.ops += 1
        except (ServiceUnavailable, OCSError):
            self.result.op_failures += 1

    # -- the run --------------------------------------------------------

    def _ns_resolves_served(self) -> int:
        total = 0
        for host in self.cluster.servers:
            proc = host.find_process("ns")
            if proc is None:
                continue
            replica = proc.attachments.get("ns_replica")
            if replica is not None:
                total += replica.resolves_served
        return total

    def run(self, duration: float, grace: float = 30.0) -> PopulationResult:
        """Drive every settop for ``duration`` simulated seconds."""
        kernel = self.cluster.kernel
        end = kernel.now + duration
        before = self._ns_resolves_served()
        for index, host in enumerate(self.hosts):
            proc = host.spawn("pop-launch")
            proc.create_task(self._settop_session(index, host, end),
                             name=f"pop-{index}").detach()
        # The grace lets stragglers (ops started just before ``end``)
        # finish so their resolves and failures are counted.
        self.cluster.run_for(duration + grace)
        self.result.duration = duration
        self.result.ns_resolves = self._ns_resolves_served() - before
        self.result.calls_sent = sum(r.calls_sent for r in self._runtimes)
        for cache in self._caches:
            self.result.cache_hits += cache.hits
            self.result.cache_misses += cache.misses
            self.result.cache_coalesced += cache.coalesced
        return self.result


def run_population(settops: int = 2000, duration: float = 240.0,
                   n_servers: int = 3, neighborhoods_per_server: int = 4,
                   seed: int = 0, cached: bool = True,
                   think: tuple = (12.0, 24.0),
                   params=None) -> PopulationResult:
    """Build a full cluster and run one population experiment on it.

    The cluster is built with ``binding_cache`` matching ``cached`` so
    the control row really is cache-free end to end.
    """
    from repro.cluster.builder import build_full_cluster, fresh_run_state
    from repro.core.params import Params

    fresh_run_state()
    params = (params or Params()).with_overrides(binding_cache=cached)
    cluster = build_full_cluster(n_servers=n_servers,
                                 neighborhoods_per_server=neighborhoods_per_server,
                                 params=params, seed=seed)
    engine = PopulationEngine(cluster, settops, seed=seed, think=think,
                              cached=cached)
    return engine.run(duration)
