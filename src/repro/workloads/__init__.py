"""Synthetic viewer workloads (substitute for the Orlando trial traces)."""

from repro.workloads.sessions import SessionStats, ViewerSession, run_viewers

__all__ = ["SessionStats", "ViewerSession", "run_viewers"]
