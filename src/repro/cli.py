"""Command-line interface: ``python -m repro <command>``.

Narrated demonstrations of the reproduced system, runnable without
writing any code:

    python -m repro quickstart            # boot + Figure 3/4 flows
    python -m repro drill                 # the section 3.5 failure drills
    python -m repro evening --settops 3   # a busy viewing evening
    python -m repro operator              # CSC tooling walkthrough
    python -m repro report                # scripted availability campaign
    python -m repro inventory             # Figure 2 service census
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_quickstart(_args) -> int:
    from examples.quickstart import main
    main()
    return 0


def _cmd_drill(_args) -> int:
    from examples.failover_drill import main
    main()
    return 0


def _cmd_evening(args) -> int:
    sys.argv = ["busy_evening", str(args.settops)]
    from examples.busy_evening import main
    main()
    return 0


def _cmd_operator(_args) -> int:
    from examples.operator_console import main
    main()
    return 0


def _cmd_report(_args) -> int:
    from examples.availability_report import main
    main()
    return 0


def _cmd_inventory(args) -> int:
    from repro.cluster import build_full_cluster
    cluster = build_full_cluster(n_servers=args.servers, seed=args.seed)
    print(f"== Service census ({args.servers} servers, "
          f"{len(cluster.neighborhoods)} neighborhoods) ==")
    for host, services in sorted(cluster.running_services().items()):
        print(f"  {host}: {len(services)} processes")
        print(f"    {', '.join(services)}")
    print(f"\nservice types registered: {len(cluster.registry.names())}")
    print(f"placement (mms): "
          f"{cluster.cluster_config['service_placement']['mms']}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'A Highly Available, Scalable ITV "
                    "System' (SOSP 1995)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("quickstart", help="boot the cluster and play a movie") \
        .set_defaults(fn=_cmd_quickstart)
    sub.add_parser("drill", help="replay the section 3.5 failure scenarios") \
        .set_defaults(fn=_cmd_drill)

    evening = sub.add_parser("evening", help="run a busy viewing evening")
    evening.add_argument("--settops", type=int, default=3,
                         help="settops per neighborhood (default 3)")
    evening.set_defaults(fn=_cmd_evening)

    sub.add_parser("operator", help="CSC operator tooling walkthrough") \
        .set_defaults(fn=_cmd_operator)
    sub.add_parser("report", help="scripted availability campaign") \
        .set_defaults(fn=_cmd_report)

    inventory = sub.add_parser("inventory", help="Figure 2 service census")
    inventory.add_argument("--servers", type=int, default=3)
    inventory.add_argument("--seed", type=int, default=0)
    inventory.set_defaults(fn=_cmd_inventory)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    # The examples live next to the package in a source checkout; make
    # them importable when invoked as an installed module too.
    import pathlib
    repo_root = pathlib.Path(__file__).resolve().parent.parent.parent
    if (repo_root / "examples").is_dir() and str(repo_root) not in sys.path:
        sys.path.insert(0, str(repo_root))
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
