"""Command-line interface: ``python -m repro <command>``.

Narrated demonstrations of the reproduced system, runnable without
writing any code:

    python -m repro quickstart            # boot + Figure 3/4 flows
    python -m repro drill                 # the section 3.5 failure drills
    python -m repro evening --settops 3   # a busy viewing evening
    python -m repro operator              # CSC tooling walkthrough
    python -m repro report                # scripted availability campaign
    python -m repro inventory             # Figure 2 service census
    python -m repro lint src/repro        # determinism & layering linter
    python -m repro bench                 # hot-path micro-benchmarks
    python -m repro chaos --seeds 10      # fault-injection seed sweep
    python -m repro --determinism-check   # same-seed double-run trace diff
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_quickstart(_args) -> int:
    from examples.quickstart import main
    main()
    return 0


def _cmd_drill(_args) -> int:
    from examples.failover_drill import main
    main()
    return 0


def _cmd_evening(args) -> int:
    sys.argv = ["busy_evening", str(args.settops)]
    from examples.busy_evening import main
    main()
    return 0


def _cmd_operator(_args) -> int:
    from examples.operator_console import main
    main()
    return 0


def _cmd_report(_args) -> int:
    from examples.availability_report import main
    main()
    return 0


def _cmd_inventory(args) -> int:
    from repro.cluster import build_full_cluster
    cluster = build_full_cluster(n_servers=args.servers, seed=args.seed)
    print(f"== Service census ({args.servers} servers, "
          f"{len(cluster.neighborhoods)} neighborhoods) ==")
    for host, services in sorted(cluster.running_services().items()):
        print(f"  {host}: {len(services)} processes")
        print(f"    {', '.join(services)}")
    print(f"\nservice types registered: {len(cluster.registry.names())}")
    print(f"placement (mms): "
          f"{cluster.cluster_config['service_placement']['mms']}")
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis import lint_paths
    import os
    missing = [p for p in args.paths if not os.path.exists(p)]
    if missing:
        print(f"repro lint: no such file or directory: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    report = lint_paths(args.paths)
    if args.format == "json":
        print(report.to_json())
    elif args.format == "github":
        # GitHub Actions workflow commands (::error file=...), matched by
        # .github/repro-lint-problem-matcher.json for plain-text logs.
        for line in report.github_lines():
            print(line)
    elif args.stats:
        for line in report.stats_lines():
            print(line)
    else:
        for line in report.format_lines():
            print(line)
    if args.stats and args.format != "text":
        for line in report.stats_lines():
            print(line, file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_bench(args) -> int:
    from repro.bench import (
        MIN_SELECT_SPEEDUP,
        compare_to_baseline,
        format_lines,
        load_baseline,
        run_suite,
        write_baseline,
    )
    # The committed baseline must be read before --out overwrites it.
    baseline = load_baseline(args.out) if args.check and args.out else None
    results = run_suite(quick=args.quick)
    for line in format_lines(results):
        print(line)
    if args.out:
        write_baseline(results, args.out)
        print(f"wrote {args.out}")
    failed = False
    if args.check:
        if baseline is None:
            print("bench --check: no readable baseline; nothing to gate "
                  "against (wrote a fresh one)")
        for line in compare_to_baseline(results, baseline):
            print(f"FAIL: {line}", file=sys.stderr)
            failed = True
    speedup = results["benchmarks"]["trace_select"]["speedup"]
    if speedup < MIN_SELECT_SPEEDUP:
        print(f"FAIL: indexed trace select speedup {speedup}x < "
              f"{MIN_SELECT_SPEEDUP}x", file=sys.stderr)
        failed = True
    return 1 if failed else 0


def _cmd_analyze_trace(args) -> int:
    """Happens-before race analysis: from a saved JSONL or a fresh run."""
    from repro.analysis.hb import (analyze_events, dump_jsonl, load_jsonl,
                                   write_order_digests)

    if args.trace:
        with open(args.trace) as fh:
            events = load_jsonl(fh)
        source = args.trace
    else:
        from repro.chaos import FaultSchedule, run_seed
        from repro.core.params import Params
        schedule = (FaultSchedule.load(args.schedule) if args.schedule
                    else None)
        result = run_seed(args.seed, n_faults=args.faults,
                          horizon=args.horizon, settops=args.settops,
                          params=Params(hb_trace=True), schedule=schedule)
        for violation in result.violations:
            if violation.monitor != "hb_race":
                print(f"[{violation.monitor}] t={violation.time:.1f} "
                      f"{violation.detail}", file=sys.stderr)
        if result.hb_events is None:
            print("run produced no hb events (hb_trace wiring broken?)",
                  file=sys.stderr)
            return 2
        events = result.hb_events
        source = (f"seed {args.seed}, {len(result.schedule)} fault(s), "
                  f"horizon {result.schedule.horizon:.0f}s")

    report = analyze_events(events)
    print(f"== hb analysis: {source} ==")
    for line in report.format_lines():
        print(f"  {line}")
    for var, digest in sorted(write_order_digests(report).items()):
        print(f"  order {var}: {digest[:16]}")
    if args.dump:
        with open(args.dump, "w") as fh:
            dump_jsonl(events, fh)
        print(f"wrote {len(events)} hb event(s) to {args.dump}")
    return 1 if report.races else 0


def _cmd_chaos(args) -> int:
    from repro.chaos import (FaultSchedule, minimize_schedule, run_seed,
                             write_minimal)
    from repro.metrics.overload import total_sheds

    schedule = None
    if args.schedule:
        schedule = FaultSchedule.load(args.schedule)
        print(f"loaded schedule {args.schedule}: {len(schedule)} fault(s), "
              f"horizon {schedule.horizon}s")
    params = None
    if args.hb:
        from repro.core.params import Params
        params = Params(hb_trace=True)
    seeds = list(range(args.seed_base, args.seed_base + args.seeds))
    failures = 0
    for seed in seeds:
        runs = 2 if args.double_run else 1
        results = [run_seed(seed, n_faults=args.faults, horizon=args.horizon,
                            settops=args.settops, schedule=schedule,
                            params=params)
                   for _ in range(runs)]
        result = results[0]
        status = "ok" if result.ok else "FAIL"
        print(f"seed {seed}: {status}  faults={len(result.schedule)} "
              f"viewer_ops={result.viewer_ops} digest={result.digest[:16]}")
        sheds = total_sheds(result.overload)
        if sheds or result.degraded_ops:
            deadlines = result.overload.get("deadlines", {})
            gates = ", ".join(
                f"{name}: shed={g['shed']} peak_q={g['peak_queue']}"
                for name, g in result.overload.get("gates", {}).items()
                if g["shed"])
            print(f"  overload: sheds={sheds} "
                  f"degraded_ops={result.degraded_ops} "
                  f"deadline_rejects={deadlines.get('rejected', 0)} "
                  f"expired={deadlines.get('expired_executions', 0)}"
                  + (f"  [{gates}]" if gates else ""))
        if result.hb is not None:
            print(f"  hb: events={result.hb['events']} "
                  f"writes={result.hb['writes']} races={result.hb['races']}")
        for kind, repl in sorted(result.replication.items()):
            verdict = "converged" if repl["converged"] else "DIVERGED"
            print(f"  repl[{kind}]: {verdict} replicas={len(repl['replicas'])} "
                  f"catch_ups={repl['catch_ups']} "
                  f"ops={repl['catch_up_ops']} "
                  f"snapshot_fetches={repl['snapshot_fetches']}")
        from repro.metrics.disks import total as disk_total
        lost = disk_total(result.disks, "lost_writes")
        torn = disk_total(result.disks, "torn_writes")
        rot = disk_total(result.disks, "corrupted_keys")
        if lost or torn or rot:
            print(f"  disks: lost_writes={lost} torn_writes={torn} "
                  f"corrupted_keys={rot} "
                  f"syncs={disk_total(result.disks, 'syncs')}")
        net = result.delivery.get("net", {})
        if net.get("duplicated") or net.get("reordered") \
                or net.get("corrupted"):
            env = result.delivery.get("envelopes", {})
            effects = result.delivery.get("effects", {})
            print(f"  delivery: dup={net.get('duplicated', 0)} "
                  f"reorder={net.get('reordered', 0)} "
                  f"corrupt={net.get('corrupted', 0)} "
                  f"dropped={env.get('corrupt_dropped', 0)} "
                  f"dispatched={env.get('corrupt_dispatched', 0)} "
                  f"replays={env.get('replays', 0)} "
                  f"doubles={effects.get('same_actor_doubles', 0)}")
        if args.double_run:
            if results[1].digest != result.digest:
                print(f"  DETERMINISM VIOLATION: re-run digest "
                      f"{results[1].digest[:16]} != {result.digest[:16]}",
                      file=sys.stderr)
                failures += 1
            else:
                print(f"  replay digest identical ({result.digest[:16]})")
        for violation in result.violations:
            print(f"  [{violation.monitor}] t={violation.time:.1f} "
                  f"{violation.detail}")
        if not result.ok:
            failures += 1
            print(f"  shrinking {len(result.schedule)}-fault schedule ...")
            minimized = minimize_schedule(
                result.schedule, seed, failing=result,
                settops=args.settops)
            path = write_minimal(minimized, args.out)
            print(f"  minimal failing schedule: {len(minimized.schedule)} "
                  f"fault(s) after {minimized.runs} re-run(s) -> {path}")
            for line in minimized.schedule.describe():
                print(f"    {line}")
    print(f"\n{len(seeds)} seed(s): {len(seeds) - failures} ok, "
          f"{failures} failing")
    return 1 if failures else 0


def _cmd_population(args) -> int:
    from repro.workloads.population import run_population

    settops = args.settops
    duration = args.duration
    if args.quick:
        # Cap the population, not the duration: the hit rate is set by
        # tunes-per-settop, so shortening the run would starve the cache.
        settops = min(settops, 300)
    result = run_population(settops=settops, duration=duration,
                            n_servers=args.servers,
                            neighborhoods_per_server=args.neighborhoods,
                            seed=args.seed, cached=not args.uncached)
    row = result.row()
    print(f"== population: {row['settops']} settops, {duration:.0f}s, "
          f"{args.servers} servers, cache "
          f"{'off' if args.uncached else 'on'} ==")
    for key in ("ops", "failures", "ns_resolves", "resolves_per_settop",
                "hit_rate", "msgs_per_settop"):
        print(f"  {key}: {row[key]}")
    print(f"  cache: hits={result.cache_hits} misses={result.cache_misses} "
          f"coalesced={result.cache_coalesced}")
    if result.op_failures > result.ops * 0.01:
        print(f"FAIL: {result.op_failures} failed viewer ops", file=sys.stderr)
        return 1
    if not args.uncached and result.hit_rate < 0.90:
        print(f"FAIL: binding cache hit rate {result.hit_rate:.3f} < 0.90",
              file=sys.stderr)
        return 1
    return 0


def _run_determinism_check(args) -> int:
    from repro.analysis import double_run_diff
    diff = double_run_diff(args.seed, settops=args.settops,
                           duration=args.duration)
    if not diff:
        print(f"determinism check passed: seed {args.seed} ran twice, "
              "traces byte-identical")
        return 0
    print(f"DETERMINISM VIOLATION: seed {args.seed} produced diverging "
          "traces:")
    for line in diff[:200]:
        print(line)
    if len(diff) > 200:
        print(f"... {len(diff) - 200} more diff line(s)")
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'A Highly Available, Scalable ITV "
                    "System' (SOSP 1995)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("quickstart", help="boot the cluster and play a movie") \
        .set_defaults(fn=_cmd_quickstart)
    sub.add_parser("drill", help="replay the section 3.5 failure scenarios") \
        .set_defaults(fn=_cmd_drill)

    evening = sub.add_parser("evening", help="run a busy viewing evening")
    evening.add_argument("--settops", type=int, default=3,
                         help="settops per neighborhood (default 3)")
    evening.set_defaults(fn=_cmd_evening)

    sub.add_parser("operator", help="CSC operator tooling walkthrough") \
        .set_defaults(fn=_cmd_operator)
    sub.add_parser("report", help="scripted availability campaign") \
        .set_defaults(fn=_cmd_report)

    inventory = sub.add_parser("inventory", help="Figure 2 service census")
    inventory.add_argument("--servers", type=int, default=3)
    inventory.add_argument("--seed", type=int, default=0)
    inventory.set_defaults(fn=_cmd_inventory)

    lint = sub.add_parser(
        "lint", help="determinism, layering & protocol-conformance linter "
                     "(D001-D010, P001-P005, W001)")
    lint.add_argument("paths", nargs="*", default=["src/repro"],
                      help="files or directories to lint (default src/repro)")
    lint.add_argument("--stats", action="store_true",
                      help="summarize violations by rule and by file "
                           "(plus protocol call-site coverage)")
    lint.add_argument("--format", choices=["text", "json", "github"],
                      default="text",
                      help="output format: human text, a JSON report, or "
                           "GitHub Actions ::error annotations")
    lint.set_defaults(fn=_cmd_lint)

    bench = sub.add_parser(
        "bench", help="hot-path micro-benchmarks (kernel/net/trace/boot)")
    bench.add_argument("--quick", action="store_true",
                       help="smaller sizes for CI smoke runs")
    bench.add_argument("--check", action="store_true",
                       help="fail when a gated throughput (kernel_timers, "
                            "network_send, trace_emit) falls >30%% below "
                            "the committed baseline read from --out before "
                            "it is overwritten")
    bench.add_argument("--out", default="BENCH_micro.json",
                       help="baseline JSON path (default BENCH_micro.json; "
                            "empty string to skip writing)")
    bench.set_defaults(fn=_cmd_bench)

    chaos = sub.add_parser(
        "chaos", help="seeded fault-injection sweeps with invariant "
                      "monitors (repro.chaos)")
    chaos.add_argument("--seeds", type=int, default=5,
                       help="number of seeds to sweep (default 5)")
    chaos.add_argument("--seed-base", type=int, default=0,
                       help="first seed of the sweep (default 0)")
    chaos.add_argument("--faults", type=int, default=8,
                       help="faults per generated schedule (default 8)")
    chaos.add_argument("--horizon", type=float, default=240.0,
                       help="seconds of active fault injection (default 240)")
    chaos.add_argument("--settops", type=int, default=4,
                       help="settops under viewer load (default 4)")
    chaos.add_argument("--schedule", default="",
                       help="replay a schedule JSON instead of generating "
                            "(e.g. a minimized repro from benchmarks/out/)")
    chaos.add_argument("--out", default="benchmarks/out",
                       help="directory for minimized failing schedules")
    chaos.add_argument("--double-run", action="store_true",
                       help="run each seed twice and require identical "
                            "trace digests")
    chaos.add_argument("--hb", action="store_true",
                       help="instrument the run with happens-before events "
                            "and arm the hb_race monitor (Params.hb_trace)")
    chaos.set_defaults(fn=_cmd_chaos)

    analyze = sub.add_parser(
        "analyze-trace",
        help="vector-clock happens-before race analysis of an hb-"
             "instrumented run (repro.analysis.hb)")
    analyze.add_argument("--seed", type=int, default=0,
                         help="chaos seed to run instrumented (default 0)")
    analyze.add_argument("--faults", type=int, default=8,
                         help="faults in the generated schedule (default 8)")
    analyze.add_argument("--horizon", type=float, default=240.0,
                         help="seconds of fault injection (default 240)")
    analyze.add_argument("--settops", type=int, default=4,
                         help="settops under viewer load (default 4)")
    analyze.add_argument("--schedule", default="",
                         help="replay a schedule JSON instead of generating")
    analyze.add_argument("--trace", default="",
                         help="analyze a saved hb-event JSONL instead of "
                              "running a cluster")
    analyze.add_argument("--dump", default="",
                         help="write the run's hb events to this JSONL for "
                              "later --trace analysis")
    analyze.set_defaults(fn=_cmd_analyze_trace)

    population = sub.add_parser(
        "population", help="population-scale settop workload (E15: binding "
                           "cache + NS resolve traffic)")
    population.add_argument("--settops", type=int, default=2000,
                            help="simulated settop population (default 2000)")
    population.add_argument("--duration", type=float, default=240.0,
                            help="simulated seconds of viewing (default 240)")
    population.add_argument("--servers", type=int, default=3,
                            help="server count (default 3)")
    population.add_argument("--neighborhoods", type=int, default=4,
                            help="neighborhoods per server (default 4)")
    population.add_argument("--seed", type=int, default=0)
    population.add_argument("--uncached", action="store_true",
                            help="disable the binding cache (control run; "
                                 "skips the hit-rate floor)")
    population.add_argument("--quick", action="store_true",
                            help="cap the population at 300 for CI smoke")
    population.set_defaults(fn=_cmd_population)
    return parser


def build_determinism_parser() -> argparse.ArgumentParser:
    """Parser for the ``--determinism-check`` mode (no subcommand)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run the reference scenario twice with one seed and "
                    "diff the traces (exit 1 on drift)")
    parser.add_argument("--determinism-check", action="store_true",
                        required=True, help=argparse.SUPPRESS)
    parser.add_argument("--seed", type=int, default=0,
                        help="scenario seed (default 0)")
    parser.add_argument("--settops", type=int, default=2,
                        help="settops to boot (default 2)")
    parser.add_argument("--duration", type=float, default=120.0,
                        help="simulated seconds per run (default 120)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    # The examples live next to the package in a source checkout; make
    # them importable when invoked as an installed module too.
    import pathlib
    repo_root = pathlib.Path(__file__).resolve().parent.parent.parent
    if (repo_root / "examples").is_dir() and str(repo_root) not in sys.path:
        sys.path.insert(0, str(repo_root))
    if argv is None:
        argv = sys.argv[1:]
    if "--determinism-check" in argv:
        return _run_determinism_check(
            build_determinism_parser().parse_args(argv))
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
