"""repro: reproduction of "A Highly Available, Scalable ITV System" (SOSP'95).

The package reimplements, from scratch and on a deterministic
virtual-time simulation substrate, the Object Communication System (OCS)
and the full interactive-TV service stack SGI built for Time Warner's
Orlando trial: distributed objects, the replicated name service with
ReplicatedContexts/selectors/auditing, the Resource Audit Service, the
service controllers, and the ITV services and settop software on top.

Start here:

>>> from repro.cluster import build_full_cluster
>>> cluster = build_full_cluster(n_servers=3, seed=1)
>>> stk = cluster.add_settop_kernel(neighborhood=1)
>>> cluster.boot_settops([stk])
True

See README.md for the tour, DESIGN.md for the system inventory, and
EXPERIMENTS.md for the paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
