"""File Service: "provides settops access to UNIX files" (Figure 2).

The file service demonstrates section 4.2's goal that "system components
should be able to export objects by implementing the context interface":
it implements ``FileSystemContext``, a *subclass of the NamingContext
interface* with "additional operations for file creation" (section 4.6),
and binds its root context into the cluster-wide name space.  Name
resolution crossing into ``files/<server>/...`` is handed off from the
name service to this process transparently.

Files live on the server disk, surviving restarts.
"""

from __future__ import annotations

from typing import List, Optional

import repro.core.naming.interfaces  # noqa: F401 - NamingContext base
from repro.core.naming.errors import (
    AlreadyBound,
    InvalidName,
    NameNotFound,
    NotAContext,
)
from repro.core.naming.store import join_name, split_name
from repro.idl import register_interface
from repro.ocs.objref import ObjectRef
from repro.ocs.runtime import CallContext
from repro.services.base import Service

register_interface("FileSystemContext", {
    "createFile": ("name", "size"),
    "removeFile": ("name",),
}, base="NamingContext", doc="File service contexts (section 4.6)")

register_interface("File", {
    "read": (),
    "write": ("size",),
    "stat": (),
}, doc="A UNIX file exported through the file service",
   idempotent=("read", "stat"))

FS_DISK_PREFIX = "fs/"


def seed_file(disk, path: str, size: int) -> None:
    disk.write(FS_DISK_PREFIX + path, {"size": size, "mtime": 0.0})


class FileService(Service):
    service_name = "fileservice"

    async def start(self) -> None:
        self.root_ref = self._export_context("")
        await self.register_objects([self.root_ref])
        # Figure 8: file service contexts bound per server under "files".
        await self.bind_as_replica("files", self.host.ip, self.root_ref,
                                   selector="sameserver", parent="")

    # -- disk-backed tree ----------------------------------------------------

    def _disk_key(self, path: str) -> str:
        return FS_DISK_PREFIX + path

    def file_meta(self, path: str) -> Optional[dict]:
        return self.host.disk.read(self._disk_key(path))

    def is_dir(self, path: str) -> bool:
        if path == "":
            return True
        prefix = self._disk_key(path) + "/"
        marker = self._disk_key(path) + "/."
        return any(k.startswith(prefix) or k == marker
                   for k in self.host.disk.keys())

    def list_dir(self, path: str) -> List[str]:
        prefix = self._disk_key(path) + "/" if path else FS_DISK_PREFIX
        names = set()
        for key in sorted(self.host.disk.keys()):
            if not key.startswith(prefix):
                continue
            rest = key[len(prefix):]
            names.add(rest.split("/", 1)[0])
        names.discard(".")
        return sorted(names)

    def create_file(self, path: str, size: int) -> ObjectRef:
        if self.file_meta(path) is not None:
            raise AlreadyBound(path)
        self.host.disk.write(self._disk_key(path),
                             {"size": size, "mtime": self.kernel.now})
        return self._export_file(path)

    def remove_file(self, path: str) -> None:
        if self.file_meta(path) is None:
            raise NameNotFound(path)
        self.host.disk.delete(self._disk_key(path))
        self.runtime.unexport(f"file:{path}")

    def make_dir(self, path: str) -> None:
        # Directories are implied by children; a marker makes empties real.
        self.host.disk.write(self._disk_key(path) + "/.", {"dir": True})

    # -- object export -----------------------------------------------------------

    def _export_context(self, path: str) -> ObjectRef:
        object_id = "" if path == "" else f"dir:{path}"
        if not self.runtime.is_exported(object_id):
            self.runtime.export(_FSContextServant(self, path),
                                "FileSystemContext", object_id=object_id)
        from repro.ocs.objref import ObjectRef as _Ref
        return _Ref(ip=self.host.ip, port=self.runtime.port,
                    incarnation=self.process.incarnation,
                    type_id="FileSystemContext", object_id=object_id)

    def _export_file(self, path: str) -> ObjectRef:
        object_id = f"file:{path}"
        if not self.runtime.is_exported(object_id):
            self.runtime.export(_FileServant(self, path), "File",
                                object_id=object_id)
        from repro.ocs.objref import ObjectRef as _Ref
        return _Ref(ip=self.host.ip, port=self.runtime.port,
                    incarnation=self.process.incarnation,
                    type_id="File", object_id=object_id)


class _FSContextServant:
    """One directory, speaking the NamingContext protocol."""

    def __init__(self, svc: FileService, path: str):
        self._svc = svc
        self._path = path

    def _abs(self, name: str) -> str:
        return join_name(split_name(self._path) + split_name(name))

    def _resolve_local(self, name: str) -> ObjectRef:
        path = self._abs(name)
        if path == self._path:
            return self._svc._export_context(self._path)
        meta = self._svc.file_meta(path)
        if meta is not None:
            return self._svc._export_file(path)
        if self._svc.is_dir(path):
            return self._svc._export_context(path)
        raise NameNotFound(path)

    # -- NamingContext operations ---------------------------------------

    async def resolve(self, ctx: CallContext, name: str):
        return self._resolve_local(name)

    async def resolveFor(self, ctx: CallContext, name: str, caller_ip: str):
        return self._resolve_local(name)

    async def bind(self, ctx: CallContext, name: str, obj):
        raise NotAContext("the file service only binds files (createFile)")

    async def unbind(self, ctx: CallContext, name: str):
        self._svc.remove_file(self._abs(name))

    async def bindNewContext(self, ctx: CallContext, name: str):
        path = self._abs(name)
        if self._svc.is_dir(path) or self._svc.file_meta(path) is not None:
            raise AlreadyBound(path)
        self._svc.make_dir(path)

    async def bindReplContext(self, ctx: CallContext, name: str, selector=None):
        raise InvalidName("file service contexts cannot be replicated")

    async def list(self, ctx: CallContext, name: str):
        path = self._abs(name)
        if not self._svc.is_dir(path):
            raise NotAContext(path)
        out = []
        for child in self._svc.list_dir(path):
            child_path = join_name(split_name(path) + [child])
            if self._svc.file_meta(child_path) is not None:
                out.append((child, "leaf", self._svc._export_file(child_path)))
            else:
                out.append((child, "context",
                            self._svc._export_context(child_path)))
        return out

    async def listRepl(self, ctx: CallContext, name: str):
        raise NotAContext("file service contexts are not replicated")

    async def setSelector(self, ctx: CallContext, name: str, spec):
        raise InvalidName("file service contexts have no selectors")

    async def reportLoad(self, ctx: CallContext, name: str, member: str,
                         load: float):
        return None

    # -- FileSystemContext extensions -------------------------------------

    async def createFile(self, ctx: CallContext, name: str, size: int):
        return self._svc.create_file(self._abs(name), size)

    async def removeFile(self, ctx: CallContext, name: str):
        self._svc.remove_file(self._abs(name))


class _FileServant:
    def __init__(self, svc: FileService, path: str):
        self._svc = svc
        self._path = path

    def _meta(self) -> dict:
        meta = self._svc.file_meta(self._path)
        if meta is None:
            raise NameNotFound(self._path)
        return meta

    async def read(self, ctx: CallContext):
        from repro.services.data import Blob
        meta = self._meta()
        return Blob(name=self._path, size=meta["size"], kind="file")

    async def write(self, ctx: CallContext, size: int):
        meta = self._meta()
        meta.update(size=size, mtime=self._svc.kernel.now)
        self._svc.host.disk.write(self._svc._disk_key(self._path), meta)

    async def stat(self, ctx: CallContext):
        return dict(self._meta())
