"""Media Delivery Service: "delivers constant bit rate data (e.g. MPEG
video) to settops" (Figure 2, section 3.4.4).

One replica per server, bound under its server name (Figure 4 resolves
``svc/mds/forge``).  The MDS is one of the two services that create
objects dynamically (section 9.2): every ``open`` mints a movie object
that lives until closed or until its process dies, when the MMS's audit
machinery reclaims it.

Streaming: the movie object emits one chunk per
``Params.stream_chunk_seconds`` over the ATM circuit the Connection
Manager reserved (``Network.send_reserved``); the settop application
detects delivery failure as a chunk gap (section 3.5.2: "the application
detects the failure when it stops receiving data").

"The Media Delivery Service likewise waits for clients to call in to
restart the movie they were viewing at the time of failure" (section
10.1.1) -- the MDS keeps no durable open-movie state; clients reopen.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.idl import register_exception, register_interface
from repro.ocs import Message
from repro.ocs.objref import ObjectRef
from repro.ocs.runtime import CallContext
from repro.services.base import Service

register_interface("MDS", {
    "open": ("title", "settop_ip", "conn_id", "data_port"),
    "listTitles": (),
    "load": (),
    "listOpen": (),
    # open() commits a disk stream and mints a Movie object: dedup'd.
}, doc="Media Delivery Service (Figure 2)",
   idempotent=("listTitles", "load", "listOpen"))

register_interface("Movie", {
    # play/pause/playFrom set absolute transport state (playing, paused,
    # at position X); re-executing a retry lands the same state.  close
    # releases the stream budget exactly once, so it stays dedup'd.
    "play": (),
    "playFrom": ("position",),
    "pause": (),
    "position": (),
    "info": (),
    "close": (),
}, doc="One open movie stream (section 3.4.4)",
   idempotent=("play", "playFrom", "pause", "position", "info"))


@register_exception
class NoSuchTitle(Exception):
    """The requested movie is not on this server's disks."""


@register_exception
class DiskStreamsExhausted(Exception):
    """This MDS replica's disk-stream budget is fully committed."""


MOVIE_DISK_PREFIX = "movies/"


def seed_movie(disk, title: str, duration: float, bitrate: float) -> None:
    """Place a movie file on a server disk (content distribution)."""
    disk.write(MOVIE_DISK_PREFIX + title,
               {"duration": duration, "bitrate": bitrate})


class MediaDeliveryService(Service):
    service_name = "mds"
    ADMISSION_CONTROLLED = True

    def __init__(self, env, process):
        super().__init__(env, process)
        self._open: Dict[str, "MovieServant"] = {}
        self._movie_counter = 0
        self.chunks_sent = 0

    async def start(self) -> None:
        self.ref = self.runtime.export(_MDSServant(self), "MDS")
        await self.register_objects([self.ref])
        await self.bind_as_replica("mds", self.host.name, self.ref,
                                   selector="first")

    # -- catalog ------------------------------------------------------------

    def titles(self) -> List[str]:
        prefix = MOVIE_DISK_PREFIX
        return sorted(k[len(prefix):] for k in self.host.disk.keys()
                      if k.startswith(prefix))

    def movie_info(self, title: str) -> dict:
        info = self.host.disk.read(MOVIE_DISK_PREFIX + title)
        if info is None:
            raise NoSuchTitle(title)
        return info

    # -- movie objects --------------------------------------------------------

    def open_movie(self, title: str, settop_ip: str, conn_id: str,
                   data_port: int) -> ObjectRef:
        info = self.movie_info(title)
        if len(self._open) >= self.params.mds_disk_streams:
            raise DiskStreamsExhausted(
                f"{self.host.name}: {len(self._open)} streams open")
        self._movie_counter += 1
        object_id = f"movie:{self._movie_counter}"
        servant = MovieServant(self, object_id, title, info, settop_ip,
                               conn_id, data_port)
        ref = self.runtime.export(servant, "Movie", object_id=object_id)
        servant.ref = ref
        self._open[object_id] = servant
        self.emit("movie_opened", title=title, settop=settop_ip)
        return ref

    def close_movie(self, object_id: str) -> None:
        servant = self._open.pop(object_id, None)
        if servant is not None:
            servant.halt()
            self.runtime.unexport(object_id)
            self.emit("movie_closed", title=servant.title,
                      settop=servant.settop_ip)

    def load(self) -> dict:
        return {"open_streams": len(self._open),
                "capacity": self.params.mds_disk_streams,
                "host": self.host.name}

    def list_open(self) -> List[dict]:
        return [{"movie": s.ref, "title": s.title, "settop_ip": s.settop_ip,
                 "conn_id": s.conn_id}
                for s in self._open.values()]


class MovieServant:
    """One open movie: position tracking + the chunk pump."""

    def __init__(self, mds: MediaDeliveryService, object_id: str, title: str,
                 info: dict, settop_ip: str, conn_id: str, data_port: int):
        self.mds = mds
        self.object_id = object_id
        self.title = title
        self.duration = info["duration"]
        self.bitrate = info["bitrate"]
        self.settop_ip = settop_ip
        self.conn_id = conn_id
        self.data_port = data_port
        self.ref: Optional[ObjectRef] = None
        self.state = "open"        # open | playing | paused | done
        self.pos = 0.0
        self._pump = None

    # -- IDL operations --------------------------------------------------

    async def play(self, ctx: CallContext):
        self._start_pump()

    async def playFrom(self, ctx: CallContext, position: float):
        self.pos = max(0.0, min(float(position), self.duration))
        self._start_pump()

    async def pause(self, ctx: CallContext):
        self.state = "paused"
        self._stop_pump()

    async def position(self, ctx: CallContext):
        return self.pos

    async def info(self, ctx: CallContext):
        return {"title": self.title, "duration": self.duration,
                "bitrate": self.bitrate, "state": self.state,
                "position": self.pos}

    async def close(self, ctx: CallContext):
        self.mds.close_movie(self.object_id)

    # -- the pump -----------------------------------------------------------

    def _start_pump(self) -> None:
        self.state = "playing"
        if self._pump is None or self._pump.done():
            self._pump = self.mds.process.create_task(
                self._pump_loop(), name=f"pump-{self.title}")

    def _stop_pump(self) -> None:
        if self._pump is not None:
            self._pump.cancel()
            self._pump = None

    def halt(self) -> None:
        self.state = "done"
        self._stop_pump()

    async def _pump_loop(self) -> None:
        kernel = self.mds.kernel
        chunk = self.mds.params.stream_chunk_seconds
        while self.state == "playing" and self.pos < self.duration:
            span = min(chunk, self.duration - self.pos)
            msg = Message(
                src=(self.mds.host.ip, self.mds.runtime.port),
                dst=(self.settop_ip, self.data_port),
                kind="mds.stream",
                payload={"title": self.title, "position": self.pos,
                         "span": span, "eof": False},
                payload_bytes=int(self.bitrate * span / 8))
            delivered = self.mds.env.network.send_reserved(msg, self.conn_id)
            if delivered:
                self.mds.chunks_sent += 1
            self.pos += span
            await kernel.sleep(span)
        if self.state == "playing":
            self.state = "done"
            msg = Message(
                src=(self.mds.host.ip, self.mds.runtime.port),
                dst=(self.settop_ip, self.data_port), kind="mds.stream",
                payload={"title": self.title, "position": self.pos,
                         "span": 0.0, "eof": True},
                payload_bytes=64)
            self.mds.env.network.send_reserved(msg, self.conn_id)


class _MDSServant:
    def __init__(self, svc: MediaDeliveryService):
        self._svc = svc

    async def open(self, ctx: CallContext, title: str, settop_ip: str,
                   conn_id: str, data_port: int):
        return self._svc.open_movie(title, settop_ip, conn_id, data_port)

    async def listTitles(self, ctx: CallContext):
        return self._svc.titles()

    async def load(self, ctx: CallContext):
        return self._svc.load()

    async def listOpen(self, ctx: CallContext):
        return self._svc.list_open()
