"""Home shopping: the server portion of the shopping application.

One of the three application classes the Orlando trial offered
("video-on-demand, home shopping, and multiplayer games", section 3).
The catalog is slow-changing state in the database; orders are durable
writes -- this service is a textbook section 9.4 stateless service that
"can recover state ... by reading it from the database".
"""

from __future__ import annotations

from repro.core.rebind import RebindingProxy
from repro.db.service import NoSuchKey
from repro.idl import register_exception, register_interface
from repro.ocs.exceptions import ServiceUnavailable
from repro.ocs.runtime import CallContext
from repro.services.base import Service

register_interface("Shopping", {
    "catalog": (),
    "order": ("item_id", "quantity"),
    "orderStatus": ("order_id",),
    "myOrders": (),
    # order() mints an order id and charges the account: the canonical
    # non-idempotent op the reply cache exists for.
}, doc="Home shopping application server (section 3)",
   idempotent=("catalog", "orderStatus", "myOrders"))


@register_exception
class NoSuchItem(Exception):
    """order() named an item not in the catalog."""


@register_exception
class StoreUnavailable(Exception):
    """The database is unreachable; ordering is temporarily down."""


CATALOG_TABLE = "shop_catalog"
ORDERS_TABLE = "shop_orders"


class ShoppingService(Service):
    service_name = "shopping"
    ADMISSION_CONTROLLED = True

    def __init__(self, env, process):
        super().__init__(env, process)
        self._order_counter = 0

    async def start(self) -> None:
        self.ref = self.runtime.export(_ShoppingServant(self), "Shopping")
        await self.register_objects([self.ref])
        self._db = RebindingProxy(self.runtime, self.names, "svc/db",
                                  self.params)
        neighborhoods = self.env.cluster.get(
            "neighborhoods_by_server", {}).get(self.host.ip, [])
        for nbhd in neighborhoods:
            await self.bind_as_replica("shopping", str(nbhd), self.ref,
                                       selector="neighborhood")

    async def catalog(self) -> dict:
        try:
            return await self._db.call("scan", CATALOG_TABLE)
        except ServiceUnavailable as err:
            raise StoreUnavailable(str(err)) from err

    async def place_order(self, customer_ip: str, item_id: str,
                          quantity: int) -> str:
        try:
            item = await self._db.call("get", CATALOG_TABLE, item_id)
        except NoSuchKey as err:
            raise NoSuchItem(item_id) from err
        except ServiceUnavailable as err:
            raise StoreUnavailable(str(err)) from err
        self._order_counter += 1
        order_id = f"{self.host.ip}-{self.process.pid}-{self._order_counter}"
        record = {"customer": customer_ip, "item": item_id,
                  "quantity": quantity, "unit_price": item["price"],
                  "placed_at": self.kernel.now, "status": "accepted"}
        try:
            await self._db.call("put", ORDERS_TABLE, order_id, record)
        except ServiceUnavailable as err:
            raise StoreUnavailable(str(err)) from err
        self.emit("order_placed", order=order_id, item=item_id)
        return order_id

    async def order_status(self, order_id: str) -> dict:
        try:
            return await self._db.call("get", ORDERS_TABLE, order_id)
        except ServiceUnavailable as err:
            raise StoreUnavailable(str(err)) from err


class _ShoppingServant:
    def __init__(self, svc: ShoppingService):
        self._svc = svc

    async def catalog(self, ctx: CallContext):
        return await self._svc.catalog()

    async def order(self, ctx: CallContext, item_id: str, quantity: int):
        return await self._svc.place_order(ctx.caller_ip, item_id, quantity)

    async def orderStatus(self, ctx: CallContext, order_id: str):
        return await self._svc.order_status(order_id)

    async def myOrders(self, ctx: CallContext):
        orders = await self._svc._db.call("scan", ORDERS_TABLE)
        return {oid: rec for oid, rec in orders.items()
                if rec["customer"] == ctx.caller_ip}
