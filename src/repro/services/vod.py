"""Video-on-Demand service: the server portion of the VOD application.

Section 10.1.1: "The Video on Demand service, which is one of the
applications that can request the MDS to play movies, maintains
information about the current point in movie play both in the settop and
in its own service.  If either the settop or the service fails, the
other can supply the information needed to start the MDS at the point
where the movie stopped."

The settop VOD application opens movies through the MMS directly
(Figure 4); this service keeps the resume bookmarks, persisted through
the database so they also survive VOD service failures.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.rebind import RebindingProxy
from repro.idl import register_interface
from repro.ocs.exceptions import DeadlineExceeded, Overloaded, ServiceUnavailable
from repro.ocs.runtime import CallContext
from repro.services.base import Service

register_interface("VOD", {
    "getBookmark": ("title",),
    "reportPosition": ("title", "position"),
    "clearBookmark": ("title",),
    "listBookmarks": (),
    # PR 4: catalog answer with a degraded low-bitrate fallback when the
    # MDS pool is shedding or the caller's deadline is nearly spent.
    "catalog": (),
    # reportPosition/clearBookmark are absolute-value writes (set the
    # bookmark to X / to absent); re-executing a retry lands the same
    # final state, so they skip the reply cache like the reads do.
}, doc="VOD application server portion (section 10.1.1)",
   idempotent=("getBookmark", "reportPosition", "clearBookmark",
               "listBookmarks", "catalog"))

BOOKMARK_TABLE = "vod_bookmarks"


class VODService(Service):
    service_name = "vod"
    ADMISSION_CONTROLLED = True

    def __init__(self, env, process):
        super().__init__(env, process)
        # Volatile copy; the database is the durable one.
        self._bookmarks: Dict[str, float] = {}
        # Last good full-bitrate title list, kept for the degraded path.
        self._catalog_cache: Optional[List[str]] = None
        self.degraded_answers = 0

    async def start(self) -> None:
        self.ref = self.runtime.export(_VODServant(self), "VOD")
        await self.register_objects([self.ref])
        self._db = RebindingProxy(self.runtime, self.names, "svc/db",
                                  self.params)
        self._mds = RebindingProxy(self.runtime, self.names, "svc/mds",
                                   self.params, give_up_after=10.0)
        neighborhoods = self.env.cluster.get(
            "neighborhoods_by_server", {}).get(self.host.ip, [])
        for nbhd in neighborhoods:
            await self.bind_as_replica("vod", str(nbhd), self.ref,
                                       selector="neighborhood")

    @staticmethod
    def _key(settop_ip: str, title: str) -> str:
        return f"{settop_ip}/{title}"

    async def catalog(self) -> dict:
        """Title catalog, degrading instead of failing under overload.

        The full answer asks the MDS for its live title list at the
        advertised movie bitrate.  When the MDS pool is shedding (or the
        budget for asking it is spent), the last good list is re-served
        at a reduced bitrate with ``degraded`` set -- the paper's
        philosophy of staying on the air with a worse picture rather
        than erroring the session.
        """
        try:
            titles = await self._mds.call(
                "listTitles",
                deadline=self.kernel.now + self.params.call_timeout)
            self._catalog_cache = list(titles)
            return {"titles": list(titles),
                    "bitrate": self.params.movie_bitrate_bps,
                    "degraded": False}
        except (Overloaded, DeadlineExceeded, ServiceUnavailable):
            self.degraded_answers += 1
            self.emit("degraded_catalog",
                      cached=self._catalog_cache is not None)
            return {"titles": list(self._catalog_cache or []),
                    "bitrate": self.params.movie_bitrate_bps
                    * self.params.degraded_bitrate_fraction,
                    "degraded": True}

    async def get_bookmark(self, settop_ip: str, title: str) -> float:
        key = self._key(settop_ip, title)
        if key in self._bookmarks:
            return self._bookmarks[key]
        try:
            from repro.db.service import NoSuchKey
            try:
                pos = await self._db.call("get", BOOKMARK_TABLE, key)
            except NoSuchKey:
                pos = 0.0
        except ServiceUnavailable:
            pos = 0.0
        self._bookmarks[key] = pos
        return pos

    async def report_position(self, settop_ip: str, title: str,
                              position: float) -> None:
        key = self._key(settop_ip, title)
        self._bookmarks[key] = position
        try:
            await self._db.call("put", BOOKMARK_TABLE, key, position)
        except ServiceUnavailable:
            pass  # the in-memory copy still serves until the db returns

    async def clear_bookmark(self, settop_ip: str, title: str) -> None:
        key = self._key(settop_ip, title)
        self._bookmarks.pop(key, None)
        try:
            await self._db.call("delete", BOOKMARK_TABLE, key)
        except ServiceUnavailable:
            pass


class _VODServant:
    def __init__(self, svc: VODService):
        self._svc = svc

    async def getBookmark(self, ctx: CallContext, title: str):
        return await self._svc.get_bookmark(ctx.caller_ip, title)

    async def reportPosition(self, ctx: CallContext, title: str,
                             position: float):
        await self._svc.report_position(ctx.caller_ip, title, position)

    async def clearBookmark(self, ctx: CallContext, title: str):
        await self._svc.clear_bookmark(ctx.caller_ip, title)

    async def listBookmarks(self, ctx: CallContext):
        prefix = f"{ctx.caller_ip}/"
        return {k[len(prefix):]: v for k, v in self._svc._bookmarks.items()
                if k.startswith(prefix)}

    async def catalog(self, ctx: CallContext):
        return await self._svc.catalog()
