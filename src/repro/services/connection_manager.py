"""Connection Manager: "allocates ATM connections between settops and
servers" (Figure 2, section 3.4.4 step 4).

The one service using *both* replication styles (section 5.2): every
server runs an active replica, bound per-server under
``svc/cmgr-all/<ip>``, and each replica is the primary for its own
neighbourhoods under ``svc/cmgr/<n>`` while standing backup for the
neighbourhoods of the previous server in the ring.  It is also one of
only two services that replicate state (section 10.1.1): every
allocation is pushed to the peer replicas so a promoted backup knows the
outstanding circuits.

The switch fabric itself (link reservations) lives in the network
substrate, so circuits survive a Connection Manager crash -- exactly
like real ATM switch state.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.naming.errors import NamingError
from repro.core.replication import PrimaryBackupBinder
from repro.idl import register_exception, register_interface
from repro.ocs import ReservationError
from repro.ocs.exceptions import ServiceUnavailable
from repro.ocs.runtime import CallContext
from repro.services.base import Service

register_interface("ConnectionManager", {
    "allocate": ("settop_ip", "server_ip", "bps"),
    "deallocate": ("conn_id",),
    "connections": (),
    "available": ("settop_ip",),
    # internal: state push to peer replicas (section 10.1.1)
    "applyConn": ("conn_id", "record", "deleted"),
    # allocate mints circuit ids and commits bandwidth; deallocate
    # releases it -- both stay under at-most-once dedup.
}, doc="ATM connection allocation (Figure 2)",
   idempotent=("connections", "available"))


@register_exception
class BandwidthUnavailable(Exception):
    """Admission control refused the requested constant bit rate."""


@register_exception
class NoSuchConnection(Exception):
    """deallocate() named an unknown circuit."""


@register_exception
class ResourceLimitExceeded(Exception):
    """The settop hit its connection quota (section 7.3).

    "A settop client is only allowed to open a certain number of network
    connections and audio/video streams.  If the settop attempts to
    acquire more resources ... its request is denied."
    """


class ConnectionManagerService(Service):
    service_name = "cmgr"

    def __init__(self, env, process):
        super().__init__(env, process)
        self._conns: Dict[str, dict] = {}
        self._alloc_counter = 0
        self.binders: Dict[int, PrimaryBackupBinder] = {}
        self._db = None  # lazy accounting proxy

    async def start(self) -> None:
        self.ref = self.runtime.export(_CmgrServant(self), "ConnectionManager")
        await self.register_objects([self.ref])
        # Per-server active replica (state push + direct addressing).
        await self.bind_as_replica("cmgr-all", self.host.ip, self.ref,
                                   selector="sameserver")
        # Primary for own neighbourhoods, backup for the previous server's.
        await self.names.ensure_context("svc")
        await self.names.ensure_context("svc/cmgr", replicated=True,
                                        selector="neighborhood")
        by_server = self.env.cluster["neighborhoods_by_server"]
        server_ips = self.env.cluster["server_ips"]
        my_index = server_ips.index(self.host.ip)
        backup_for = server_ips[(my_index - 1) % len(server_ips)]
        primaries = list(by_server.get(self.host.ip, []))
        backups = [] if backup_for == self.host.ip else list(
            by_server.get(backup_for, []))
        for nbhd in primaries + backups:
            binder = PrimaryBackupBinder(self, f"svc/cmgr/{nbhd}", self.ref)
            self.binders[nbhd] = binder
            self.spawn_task(binder.run(), name=f"cmgr-binder-{nbhd}").detach()

    # -- allocation -----------------------------------------------------

    def allocate(self, settop_ip: str, server_ip: str, bps: float) -> str:
        # Section 7.3 resource limit: "either its request is denied or
        # one of the previously allocated resources is freed."
        held = [(rec["allocated_at"], cid) for cid, rec in self._conns.items()
                if rec["settop_ip"] == settop_ip]
        if len(held) >= self.params.max_connections_per_settop:
            if self.params.connection_limit_policy == "evict":
                _when, oldest = min(held)
                self.emit("limit_evicted", conn=oldest, settop=settop_ip)
                self.deallocate(oldest)
            else:
                raise ResourceLimitExceeded(
                    f"{settop_ip} already holds {len(held)} connections "
                    f"(limit {self.params.max_connections_per_settop})")
        self._alloc_counter += 1
        # The process id makes circuit ids unique across manager
        # incarnations -- a restarted replica's counter restarts at zero.
        conn_id = (f"{self.host.ip}:{self.process.pid}"
                   f":{self._alloc_counter}:{settop_ip}")
        downlink = self.env.network.downlink_of(settop_ip)
        try:
            downlink.reserve(conn_id, bps)
        except ReservationError as err:
            raise BandwidthUnavailable(str(err)) from err
        record = {"settop_ip": settop_ip, "server_ip": server_ip, "bps": bps,
                  "allocated_at": self.kernel.now}
        self._conns[conn_id] = record
        self.emit("allocated", conn=conn_id, bps=bps)
        self.spawn_task(self._push_state(conn_id, record, deleted=False),
                        name="cmgr-push").detach()
        return conn_id

    def deallocate(self, conn_id: str) -> None:
        record = self._conns.pop(conn_id, None)
        settop_ip = (record or {}).get("settop_ip") or self._settop_of(conn_id)
        if settop_ip is None:
            raise NoSuchConnection(conn_id)
        try:
            self.env.network.downlink_of(settop_ip).release(conn_id)
        except KeyError:
            pass  # settop detached; nothing to release
        self.emit("deallocated", conn=conn_id)
        if record is not None and self.params.resource_accounting:
            self.spawn_task(self._account_usage(settop_ip, record),
                            name="cmgr-account").detach()
        self.spawn_task(self._push_state(conn_id, record or {}, deleted=True),
                        name="cmgr-push").detach()

    async def _account_usage(self, settop_ip: str, record: dict) -> None:
        """Section 7.3 extension: per-settop resource accounting.

        "accounting is needed both for discovering buggy clients and for
        charging properly for resource usage" -- usage rows accumulate in
        the database, keyed by settop.
        """
        held_for = self.kernel.now - record["allocated_at"]
        megabit_seconds = record["bps"] * held_for / 1e6
        if self._db is None:
            from repro.core.rebind import RebindingProxy
            self._db = RebindingProxy(self.runtime, self.names, "svc/db",
                                      self.params, give_up_after=10.0)
        try:
            from repro.db.service import NoSuchKey
            try:
                usage = await self._db.call("get", "usage", settop_ip)
            except NoSuchKey:
                usage = {"connections": 0, "connection_seconds": 0.0,
                         "megabit_seconds": 0.0}
            usage["connections"] += 1
            usage["connection_seconds"] += held_for
            usage["megabit_seconds"] += megabit_seconds
            await self._db.call("put", "usage", settop_ip, usage)
        except Exception:  # noqa: BLE001 - accounting is best-effort
            pass

    @staticmethod
    def _settop_of(conn_id: str) -> Optional[str]:
        # conn ids embed the settop address, so even a replica that never
        # saw the allocation can release the circuit.
        parts = conn_id.split(":")
        return parts[-1] if len(parts) >= 3 else None

    def apply_conn(self, conn_id: str, record: dict, deleted: bool) -> None:
        if deleted:
            self._conns.pop(conn_id, None)
        else:
            self._conns[conn_id] = record

    async def _push_state(self, conn_id: str, record: dict,
                          deleted: bool) -> None:
        try:
            peers = await self.names.list_repl("svc/cmgr-all")
        except (NamingError, ServiceUnavailable):
            return
        for _member, _kind, ref in peers:
            if ref is None or ref.ip == self.host.ip:
                continue
            try:
                await self.runtime.invoke(ref, "applyConn",
                                          (conn_id, record, deleted),
                                          timeout=self.params.call_timeout)
            except ServiceUnavailable:
                continue

    def available_bps(self, settop_ip: str) -> float:
        return self.env.network.downlink_of(settop_ip).available_bps


class _CmgrServant:
    def __init__(self, svc: ConnectionManagerService):
        self._svc = svc

    async def allocate(self, ctx: CallContext, settop_ip: str, server_ip: str,
                       bps: float):
        return self._svc.allocate(settop_ip, server_ip, bps)

    async def deallocate(self, ctx: CallContext, conn_id: str):
        self._svc.deallocate(conn_id)

    async def connections(self, ctx: CallContext):
        return dict(self._svc._conns)

    async def available(self, ctx: CallContext, settop_ip: str):
        return self._svc.available_bps(settop_ip)

    async def applyConn(self, ctx: CallContext, conn_id: str, record: dict,
                        deleted: bool):
        self._svc.apply_conn(conn_id, record, deleted)
