"""The ITV services of paper Figure 2, built on OCS.

Base support services: Settop Manager, database, Resource Audit Service
(in :mod:`repro.core.ras`), authentication (in :mod:`repro.auth`).
Application building blocks: Connection Manager, Media Delivery Service,
Reliable Delivery Service, Media Management Service, Boot/Kernel
Broadcast, File Service.
"""

from repro.services.base import Service

__all__ = ["Service"]
