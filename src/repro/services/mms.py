"""Media Management Service (Figure 4, sections 3.4.4-3.5, 8.3).

The MMS "selects which Media Delivery Service to use to deliver a movie
to a settop and sets up the required ATM connection".  Opening a movie
follows the paper's ten steps: resolve the caller's neighbourhood
Connection Manager, choose an MDS replica "based on where the movie is
available and the current loads at servers", allocate the circuit, open
the movie on the chosen MDS, return the movie object, and poll the RAS
for the settop's status so crashed settops' movies are reclaimed
(section 3.5.1).

Availability: primary/backup (section 5.2).  "The volatile state of the
MMS can be reconstructed by querying each MDS in the cluster and by
querying the Connection Manager" (section 10.1.1) -- a promoted backup
does exactly that in ``_recover_state``.  The MMS also "tracks the
status of each MDS replica.  Once an attempt to open a movie from an MDS
replica fails, the MMS assumes that the replica is dead" and retries it
periodically (section 3.5.2).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.core.naming.errors import NamingError
from repro.core.ras.client import AuditClient
from repro.core.replication import PrimaryBackupBinder
from repro.idl import register_exception, register_interface
from repro.ocs import neighborhood_of
from repro.ocs.exceptions import OCSError, Overloaded, ServiceUnavailable
from repro.ocs.objref import ObjectRef
from repro.ocs.runtime import CallContext
from repro.services.base import Service
from repro.services.mds import DiskStreamsExhausted, NoSuchTitle

register_interface("MMS", {
    "open": ("title", "data_port"),
    "close": ("movie",),
    "openCount": (),
    "status": (),
    "listTitles": (),
}, doc="Media Management Service (Figure 4)",
   idempotent=("openCount", "status", "listTitles"))


@register_exception
class MovieUnavailable(Exception):
    """No live MDS replica can serve this title right now."""


MDS_RETRY_INTERVAL = 10.0


class MediaManagementService(Service):
    service_name = "mms"
    ADMISSION_CONTROLLED = True

    #: how long cached MDS catalog/load answers stay fresh
    CATALOG_TTL = 30.0
    LOAD_TTL = 2.0

    def __init__(self, env, process):
        super().__init__(env, process)
        # movie ref -> session record
        self._sessions: Dict[ObjectRef, dict] = {}
        self._dead_mds: Dict[str, float] = {}   # member name -> declared dead at
        self._is_primary = False
        self.opens_served = 0
        self.recoveries = 0
        # Movie-location and load caches: "the MMS chooses an appropriate
        # MDS replica ... based on where the movie is available and the
        # current loads at servers" -- location data is slow-changing and
        # loads tolerate seconds of staleness, so neither is re-fetched
        # per open.  Without this cache the MMS serializes the whole
        # cluster's opens behind O(replicas) RPCs each (found by the
        # full-scale E8 run).
        self._catalog: Dict[str, Tuple[float, set]] = {}   # member -> (t, titles)
        self._load: Dict[str, Tuple[float, dict]] = {}     # member -> (t, load)
        self._cmgr_cache: Dict[int, ObjectRef] = {}
        # Single-flight guards: a burst of cold-cache opens must produce
        # one fetch per member, not one per open (the stampede otherwise
        # re-creates the bottleneck the cache exists to remove).
        self._fetching: Dict[tuple, Any] = {}

    async def start(self) -> None:
        self.ref = self.runtime.export(_MMSServant(self), "MMS")
        await self.register_objects([self.ref])
        self.audit = AuditClient(self.runtime, self.names, self.params)
        self.audit.start(self.process)
        self.binder = PrimaryBackupBinder(self, "svc/mms", self.ref,
                                          on_promote=self._on_promote,
                                          on_demote=self._on_demote)
        self.spawn_task(self.binder.run(), name="mms-binder").detach()
        self.spawn_task(self._mds_retry_loop(), name="mms-mds-retry").detach()

    # -- primary/backup ---------------------------------------------------

    def _on_promote(self):
        self._is_primary = True
        self.spawn_task(self._circuit_audit_loop(), name="mms-circuit-audit").detach()
        return self._recover_state()

    def _on_demote(self):
        self._is_primary = False

    async def _recover_state(self) -> None:
        """Rebuild the open-movie table by querying every MDS replica."""
        members = await self._mds_members()
        for member, mds_ref in members:
            try:
                open_movies = await self.runtime.invoke(
                    mds_ref, "listOpen", (), timeout=self.params.call_timeout)
            except (ServiceUnavailable, OCSError):
                continue
            for record in open_movies:
                session = {"title": record["title"],
                           "settop_ip": record["settop_ip"],
                           "conn_id": record["conn_id"],
                           "mds_member": member}
                self._sessions[record["movie"]] = session
                self._watch_settop(record["settop_ip"])
                self.recoveries += 1
        if self.recoveries:
            self.emit("state_recovered", sessions=len(self._sessions))

    # -- opening (Figure 4) ---------------------------------------------------

    async def open_movie(self, settop_ip: str, title: str,
                         data_port: int) -> ObjectRef:
        # A re-open of the same title from the same settop supersedes any
        # existing session: "the Media Delivery Service ... waits for
        # clients to call in to restart the movie they were viewing at
        # the time of failure" (section 10.1.1).  A crashed-and-restarted
        # settop application thus reclaims its own leak.
        stale = [movie for movie, s in self._sessions.items()
                 if s["settop_ip"] == settop_ip and s["title"] == title]
        for movie in stale:
            self.emit("superseded", title=title, settop=settop_ip)
            await self.close_movie(movie)
        # Step 3: resolve the connection manager for the settop's
        # neighbourhood.
        cmgr = await self._resolve_cmgr(settop_ip)
        # Step 4a: candidate MDS replicas by movie location and load.
        candidates = await self._mds_candidates(title)
        if not candidates:
            raise MovieUnavailable(f"no live MDS replica carries {title!r}")
        movie = None
        member = None
        conn_id = None
        for member, mds_ref in candidates:
            # Step 4b: allocate the high-bandwidth connection to this
            # replica's server.
            try:
                conn_id = await self.runtime.invoke(
                    cmgr, "allocate",
                    (settop_ip, mds_ref.ip, self.params.movie_bitrate_bps),
                    timeout=self.params.call_timeout)
            except ServiceUnavailable:
                # The cached reference went stale (the cmgr restarted or
                # failed over): rebind through the name service once --
                # the standard section 8.2 client behaviour.
                self._cmgr_cache.pop(neighborhood_of(settop_ip), None)
                cmgr = await self._resolve_cmgr(settop_ip)
                conn_id = await self.runtime.invoke(
                    cmgr, "allocate",
                    (settop_ip, mds_ref.ip, self.params.movie_bitrate_bps),
                    timeout=self.params.call_timeout)
            # Steps 5-6: open the movie on the chosen MDS.
            try:
                movie = await self.runtime.invoke(
                    mds_ref, "open", (title, settop_ip, conn_id, data_port),
                    timeout=self.params.call_timeout)
                break
            except Overloaded:
                # Shedding, not dead: its admission gate is full.  Try
                # the next candidate without poisoning the liveness
                # cache -- the replica keeps serving its current load.
                await self._quiet_deallocate(cmgr, conn_id)
            except ServiceUnavailable:
                # The replica is gone: mark it dead and try the next
                # (section 3.5.2).
                await self._quiet_deallocate(cmgr, conn_id)
                self._declare_mds_dead(member)
            except (DiskStreamsExhausted, NoSuchTitle):
                # The replica is alive but cannot serve this open; a
                # lost race for its last disk stream is normal, not a
                # failure signal.
                await self._quiet_deallocate(cmgr, conn_id)
        if movie is None:
            raise MovieUnavailable(f"no MDS replica could open {title!r}")
        # Keep the load cache roughly honest between refreshes, so a
        # burst of concurrent opens spreads instead of herding onto the
        # replica that was least loaded two seconds ago.
        cached_load = self._load.get(member)
        if cached_load is not None:
            bumped = dict(cached_load[1])
            bumped["open_streams"] = bumped.get("open_streams", 0) + 1
            self._load[member] = (cached_load[0], bumped)
        self._sessions[movie] = {"title": title, "settop_ip": settop_ip,
                                 "conn_id": conn_id, "mds_member": member}
        self.opens_served += 1
        # Steps 9-10: watch the settop through the RAS; reclaim on death.
        self._watch_settop(settop_ip)
        self.emit("opened", title=title, settop=settop_ip, mds=member)
        return movie

    async def close_movie(self, movie: ObjectRef) -> None:
        session = self._sessions.pop(movie, None)
        if session is None:
            return  # already closed (idempotent: crash recovery races)
        try:
            await self.runtime.invoke(movie, "close", (),
                                      timeout=self.params.call_timeout)
        except (ServiceUnavailable, OCSError):
            pass  # the MDS died with the movie; circuit still needs release
        try:
            await self._deallocate_with_rebind(session["settop_ip"],
                                               session["conn_id"])
        except (NamingError, ServiceUnavailable):
            pass
        self.emit("closed", title=session["title"], settop=session["settop_ip"])
        # Stop watching the settop if it has no other open movies.
        settop_ip = session["settop_ip"]
        if not any(s["settop_ip"] == settop_ip for s in self._sessions.values()):
            self.audit.unwatch(settop_ip)

    async def _quiet_deallocate(self, cmgr: ObjectRef, conn_id: str) -> None:
        try:
            await self.runtime.invoke(cmgr, "deallocate", (conn_id,),
                                      timeout=self.params.call_timeout)
        except (ServiceUnavailable, OCSError):
            pass

    async def _deallocate_with_rebind(self, settop_ip: str,
                                      conn_id: str) -> None:
        """Release a circuit, refreshing a stale cached cmgr reference.

        Leaking here is worse than a lost close elsewhere: a circuit that
        never frees blocks the settop's quota and downlink until the
        orphan audit's grace expires.
        """
        cmgr = await self._resolve_cmgr(settop_ip)
        try:
            await self.runtime.invoke(cmgr, "deallocate", (conn_id,),
                                      timeout=self.params.call_timeout)
        except ServiceUnavailable:
            self._cmgr_cache.pop(neighborhood_of(settop_ip), None)
            cmgr = await self._resolve_cmgr(settop_ip)
            await self._quiet_deallocate(cmgr, conn_id)
        except OCSError:
            pass

    async def _resolve_cmgr(self, settop_ip: str) -> ObjectRef:
        nbhd = neighborhood_of(settop_ip)
        cached = self._cmgr_cache.get(nbhd)
        if cached is not None:
            return cached
        ref = await self.names.resolve(f"svc/cmgr/{nbhd}")
        self._cmgr_cache[nbhd] = ref
        return ref

    # -- MDS choice and liveness -----------------------------------------------

    async def _mds_members(self) -> List[Tuple[str, ObjectRef]]:
        try:
            listing = await self.names.list_repl("svc/mds")
        except (NamingError, ServiceUnavailable):
            return []
        return [(member, ref) for member, _kind, ref in listing
                if ref is not None]

    async def _cached_fetch(self, cache: Dict, member: str, ref: ObjectRef,
                            method: str, ttl: float, transform):
        """TTL cache with single-flight fill for one MDS attribute."""
        now = self.kernel.now
        cached = cache.get(member)
        if cached is not None and now - cached[0] <= ttl:
            return cached[1]
        key = (method, member)
        in_flight = self._fetching.get(key)
        if in_flight is not None:
            value = await in_flight
            if isinstance(value, BaseException):
                raise value
            return value
        fut = self.kernel.create_future()
        self._fetching[key] = fut
        try:
            raw = await self.runtime.invoke(ref, method, (),
                                            timeout=self.params.call_timeout)
            value = transform(raw)
            cache[member] = (self.kernel.now, value)
            if not fut.done():
                fut.set_result(value)
            return value
        except BaseException as err:
            if not fut.done():
                fut.set_result(err)   # waiters re-raise; no unhandled fut
            raise
        finally:
            self._fetching.pop(key, None)

    async def _mds_candidates(self, title: str) -> List[Tuple[str, ObjectRef]]:
        """Live replicas carrying the title, least-loaded first."""
        candidates = []
        for member, ref in await self._mds_members():
            if member in self._dead_mds:
                continue
            try:
                titles = await self._cached_fetch(
                    self._catalog, member, ref, "listTitles",
                    self.CATALOG_TTL, set)
                if title not in titles:
                    continue
                load = await self._cached_fetch(
                    self._load, member, ref, "load", self.LOAD_TTL, dict)
            except Overloaded:
                # Shedding replicas stay in the pool (alive, just full);
                # they simply are not candidates for this open.
                continue
            except (ServiceUnavailable, OCSError):
                self._declare_mds_dead(member)
                self._catalog.pop(member, None)
                self._load.pop(member, None)
                continue
            if load["open_streams"] >= load["capacity"]:
                continue
            candidates.append((load["open_streams"], member, ref))
        candidates.sort(key=lambda c: (c[0], c[1]))
        return [(member, ref) for _load, member, ref in candidates]

    def _declare_mds_dead(self, member: str) -> None:
        self._dead_mds[member] = self.kernel.now
        self.emit("mds_declared_dead", member=member)

    async def _mds_retry_loop(self) -> None:
        """Periodically re-resolve and retry MDS replicas marked dead."""
        while True:
            await self.kernel.sleep(MDS_RETRY_INTERVAL)
            for member in list(self._dead_mds):
                try:
                    ref = await self.names.resolve(f"svc/mds/{member}")
                    await self.runtime.invoke(ref, "load", (),
                                              timeout=self.params.call_timeout)
                except (NamingError, ServiceUnavailable, OCSError):
                    continue
                del self._dead_mds[member]
                self.emit("mds_recovered", member=member)

    # -- circuit reconciliation (section 10.1.1) -------------------------------

    CIRCUIT_AUDIT_INTERVAL = 30.0
    CIRCUIT_ORPHAN_GRACE = 60.0

    async def _circuit_audit_loop(self) -> None:
        """Reclaim circuits no session accounts for.

        Section 10.1.1: the MMS's state "can be reconstructed by querying
        each MDS in the cluster and by querying the Connection Manager".
        The converse also matters: a circuit the Connection Manager holds
        that no (recovered) session explains -- e.g. the MMS died between
        allocate and open, or movie and session records died together in
        a double failure -- is an orphan, and the MMS collects it after a
        grace period.
        """
        while self._is_primary:
            await self.kernel.sleep(self.CIRCUIT_AUDIT_INTERVAL)
            if not self._is_primary:
                return
            await self._audit_circuits_once()

    async def _audit_circuits_once(self) -> None:
        known = {s["conn_id"] for s in self._sessions.values()}
        try:
            replicas = await self.names.list_repl("svc/cmgr-all")
        except (NamingError, ServiceUnavailable):
            return
        now = self.kernel.now
        handled = set()  # every replica mirrors the state; reclaim once
        for _member, _kind, cmgr_ref in replicas:
            if cmgr_ref is None:
                continue
            try:
                conns = await self.runtime.invoke(
                    cmgr_ref, "connections", (),
                    timeout=self.params.call_timeout)
            except (ServiceUnavailable, OCSError):
                continue
            for conn_id, record in conns.items():
                if conn_id in known or conn_id in handled:
                    continue
                if now - record.get("allocated_at", now) < self.CIRCUIT_ORPHAN_GRACE:
                    continue  # possibly an open still in flight
                handled.add(conn_id)
                await self._quiet_deallocate(cmgr_ref, conn_id)
                self.emit("orphan_circuit_reclaimed", conn=conn_id,
                          settop=record.get("settop_ip"))

    # -- settop failure -> resource reclamation (section 3.5.1) -----------------

    def _watch_settop(self, settop_ip: str) -> None:
        if not self.audit.watching(settop_ip):
            self.audit.watch(settop_ip, self._on_settop_dead)

    def _on_settop_dead(self, settop_ip: str) -> None:
        doomed = [movie for movie, s in self._sessions.items()
                  if s["settop_ip"] == settop_ip]
        self.emit("settop_dead", settop=settop_ip, movies=len(doomed))
        for movie in doomed:
            self.spawn_task(self.close_movie(movie), name="mms-reclaim").detach()

    # -- introspection --------------------------------------------------------

    async def list_titles(self) -> List[str]:
        titles = set()
        for _member, ref in await self._mds_members():
            try:
                titles.update(await self.runtime.invoke(
                    ref, "listTitles", (), timeout=self.params.call_timeout))
            except (ServiceUnavailable, OCSError):
                continue
        return sorted(titles)


class _MMSServant:
    def __init__(self, svc: MediaManagementService):
        self._svc = svc

    async def open(self, ctx: CallContext, title: str, data_port: int):
        return await self._svc.open_movie(ctx.caller_ip, title, data_port)

    async def close(self, ctx: CallContext, movie: ObjectRef):
        await self._svc.close_movie(movie)

    async def openCount(self, ctx: CallContext):
        return len(self._svc._sessions)

    async def status(self, ctx: CallContext):
        return {"primary": self._svc._is_primary,
                "sessions": len(self._svc._sessions),
                "dead_mds": sorted(self._svc._dead_mds),
                "host": self._svc.host.name}

    async def listTitles(self, ctx: CallContext):
        return await self._svc.list_titles()
