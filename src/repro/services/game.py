"""Multiplayer games: the server portion of the game application.

A per-neighbourhood game lobby (players in a neighbourhood share a
replica, so they can actually play each other).  Game state is volatile
and recovered *from the clients* -- the third recovery technique of
section 9.4: each settop holds its own view and simply rejoins after a
service restart, re-supplying its player state.

The game itself is a simple shared-count guessing game -- enough state
to make recovery observable without inventing content the paper does not
describe.
"""

from __future__ import annotations

from typing import Dict

from repro.idl import register_exception, register_interface
from repro.ocs.runtime import CallContext
from repro.services.base import Service

register_interface("Game", {
    "join": ("game_id", "player", "score"),
    "leave": ("game_id", "player"),
    "guess": ("game_id", "player", "number"),
    "gameState": ("game_id",),
    # join/leave/guess mutate scores and membership: a replayed guess
    # must not score twice, so they stay under at-most-once dedup.
}, doc="Multiplayer game server (section 3)",
   idempotent=("gameState",))


@register_exception
class NotInGame(Exception):
    """A move from a player who has not joined (e.g. after a restart)."""


class GameService(Service):
    service_name = "game"
    ADMISSION_CONTROLLED = True

    def __init__(self, env, process):
        super().__init__(env, process)
        self._games: Dict[str, dict] = {}

    async def start(self) -> None:
        self.ref = self.runtime.export(_GameServant(self), "Game")
        await self.register_objects([self.ref])
        neighborhoods = self.env.cluster.get(
            "neighborhoods_by_server", {}).get(self.host.ip, [])
        for nbhd in neighborhoods:
            await self.bind_as_replica("game", str(nbhd), self.ref,
                                       selector="neighborhood")

    def _game(self, game_id: str) -> dict:
        if game_id not in self._games:
            rng = self.env.rng.stream(f"game-{game_id}")
            self._games[game_id] = {
                "target": rng.randint(1, 100),
                "players": {},           # player -> score
                "rounds": 0,
            }
        return self._games[game_id]

    def join(self, game_id: str, player: str, score: int) -> dict:
        game = self._game(game_id)
        # Rejoin after a service restart restores the client-held score.
        game["players"][player] = max(game["players"].get(player, 0), score)
        return self.state(game_id)

    def leave(self, game_id: str, player: str) -> None:
        game = self._games.get(game_id)
        if game is not None:
            game["players"].pop(player, None)
            if not game["players"]:
                del self._games[game_id]

    def guess(self, game_id: str, player: str, number: int) -> dict:
        game = self._game(game_id)
        if player not in game["players"]:
            raise NotInGame(f"{player} must join {game_id} first")
        game["rounds"] += 1
        target = game["target"]
        if number == target:
            game["players"][player] += 1
            rng = self.env.rng.stream(f"game-{game_id}")
            game["target"] = rng.randint(1, 100)
            result = "correct"
        elif number < target:
            result = "higher"
        else:
            result = "lower"
        return {"result": result, "state": self.state(game_id)}

    def state(self, game_id: str) -> dict:
        game = self._game(game_id)
        return {"players": dict(game["players"]), "rounds": game["rounds"]}


class _GameServant:
    def __init__(self, svc: GameService):
        self._svc = svc

    async def join(self, ctx: CallContext, game_id: str, player: str,
                   score: int):
        return self._svc.join(game_id, player, score)

    async def leave(self, ctx: CallContext, game_id: str, player: str):
        self._svc.leave(game_id, player)

    async def guess(self, ctx: CallContext, game_id: str, player: str,
                    number: int):
        return self._svc.guess(game_id, player, number)

    async def gameState(self, ctx: CallContext, game_id: str):
        return self._svc.state(game_id)
