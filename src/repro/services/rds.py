"""Reliable Delivery Service: "downloads to the settop such data as
fonts, images, and binaries, using a variable bit rate connection"
(Figure 2, section 3.4.2).

Replicated per neighbourhood: each server binds its replica under every
neighbourhood number it serves, behind the neighbourhood selector, so
``resolve("svc/rds")`` from a settop lands on its own server's replica
(section 5.1's worked example uses exactly ``svc/rds``).

Downloads are ordinary (signed) replies whose payload size is the file
size, so delivery time is governed by the settop's downlink -- the 2-4 s
application start of section 9.3.
"""

from __future__ import annotations

from typing import List

from repro.idl import register_exception, register_interface
from repro.ocs.runtime import CallContext
from repro.services.base import Service
from repro.services.data import Blob

register_interface("RDS", {
    "openData": ("name",),
    "listData": (),
    "stat": ("name",),
    # openData counts a download (metrics are effects too): dedup'd.
}, doc="Reliable Delivery Service (Figure 2)",
   idempotent=("listData", "stat"))


@register_exception
class NoSuchData(Exception):
    """openData() named content this cluster does not carry."""


RDS_DISK_PREFIX = "rdsdata/"


def seed_data(disk, name: str, size: int, version: int = 1,
              kind: str = "data") -> None:
    """Place downloadable content on a server disk."""
    disk.write(RDS_DISK_PREFIX + name,
               {"size": size, "version": version, "kind": kind})


class ReliableDeliveryService(Service):
    service_name = "rds"

    def __init__(self, env, process):
        super().__init__(env, process)
        self.downloads_served = 0
        self.bytes_served = 0

    async def start(self) -> None:
        self.ref = self.runtime.export(_RDSServant(self), "RDS")
        await self.register_objects([self.ref])
        neighborhoods = self.env.cluster.get(
            "neighborhoods_by_server", {}).get(self.host.ip, [])
        for nbhd in neighborhoods:
            await self.bind_as_replica("rds", str(nbhd), self.ref,
                                       selector="neighborhood")

    def open_data(self, name: str) -> Blob:
        meta = self.host.disk.read(RDS_DISK_PREFIX + name)
        if meta is None:
            raise NoSuchData(name)
        self.downloads_served += 1
        self.bytes_served += meta["size"]
        self.emit("download", name=name, size=meta["size"])
        return Blob(name=name, size=meta["size"], version=meta["version"],
                    kind=meta["kind"])

    def list_data(self) -> List[str]:
        prefix = RDS_DISK_PREFIX
        return sorted(k[len(prefix):] for k in self.host.disk.keys()
                      if k.startswith(prefix))


class _RDSServant:
    def __init__(self, svc: ReliableDeliveryService):
        self._svc = svc

    async def openData(self, ctx: CallContext, name: str):
        return self._svc.open_data(name)

    async def listData(self, ctx: CallContext):
        return self._svc.list_data()

    async def stat(self, ctx: CallContext, name: str):
        meta = self._svc.host.disk.read(RDS_DISK_PREFIX + name)
        if meta is None:
            raise NoSuchData(name)
        return dict(meta)
