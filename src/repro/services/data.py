"""Bulk-data value types carried over OCS.

The simulation charges the network for payload *sizes* rather than
shipping real megabytes through Python; a :class:`Blob` names a piece of
content and carries its byte size as the marshaling hint that
:func:`repro.idl.types.estimated_size` consumes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Blob:
    """Named bulk content: an application binary, font, image, kernel."""

    name: str
    size: int
    version: int = 1
    kind: str = "data"

    @property
    def wire_size(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Blob {self.name} v{self.version} {self.size}B>"
