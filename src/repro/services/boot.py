"""Boot Broadcast and Kernel Broadcast services (sections 3.3, 3.4.1).

"Because settops are diskless, the kernel and first application are
broadcast to settops using a secure protocol.  This broadcast also
provides the settops with basic configuration information, such as the
IP address of the name service replica to be used by this settop."

Each server's Boot Broadcast Service cycles boot parameters to the
settops of its neighbourhoods over the shared downstream channel.  The
Kernel Broadcast Service is one of the paper's primary/backup services
(section 8.1 lists it with the CSC and MMS): only the primary broadcasts
the kernel image, cluster-wide.
"""

from __future__ import annotations

from typing import List

from repro.core.replication import PrimaryBackupBinder
from repro.idl import register_interface
from repro.ocs.runtime import CallContext
from repro.services.base import Service
from repro.services.data import Blob

# Well-known settop ports for the downstream broadcast channel.
BOOT_PARAMS_PORT = 100
KERNEL_PORT = 101

BOOT_CYCLE = 2.0       # params broadcast period
KERNEL_CYCLE = 3.0     # kernel image broadcast period
KERNEL_SIZE = 512_000  # bytes
KERNEL_VERSION = 7

register_interface("BootBroadcast", {
    "bootInfo": ("neighborhood",),
    "broadcastCount": (),
}, doc="Boot parameter broadcast (section 3.4.1)",
   idempotent=("bootInfo", "broadcastCount"))

register_interface("KernelBroadcast", {
    "kernelVersion": (),
}, doc="Kernel image broadcast (Figure 2)",
   idempotent=("kernelVersion",))


class BootBroadcastService(Service):
    service_name = "boot"

    def __init__(self, env, process):
        super().__init__(env, process)
        self.broadcasts = 0

    async def start(self) -> None:
        self.ref = self.runtime.export(_BootServant(self), "BootBroadcast")
        await self.register_objects([self.ref])
        await self.bind_as_replica("boot", self.host.ip, self.ref,
                                   selector="sameserver")
        self.spawn_task(self._broadcast_loop(), name="boot-broadcast").detach()

    def _my_neighborhoods(self) -> List[int]:
        return self.env.cluster.get("neighborhoods_by_server",
                                    {}).get(self.host.ip, [])

    def boot_params(self, neighborhood: int) -> dict:
        return {
            "neighborhood": neighborhood,
            # The name service replica this settop should bootstrap from:
            # its neighbourhood's server, with the other replicas as
            # fall-backs should that server fail.
            "ns_ip": self.host.ip,
            "ns_ips": [self.host.ip] + [
                ip for ip in self.env.cluster.get("server_ips", [])
                if ip != self.host.ip],
            "kernel_version": KERNEL_VERSION,
            "first_application": "appmgr",
            # Channel line-up: which channels carry interactive
            # applications or venues (section 3.4.3).
            "channels": self.env.cluster.get("channels", {}),
            "venues": self.env.cluster.get("venues", {}),
        }

    async def _broadcast_loop(self) -> None:
        while True:
            settops = self.env.cluster.get("settops_by_neighborhood", {})
            for nbhd in self._my_neighborhoods():
                ips = settops.get(nbhd, [])
                if not ips:
                    continue
                self.env.network.broadcast(
                    self.host.ip, ips, BOOT_PARAMS_PORT, "boot.params",
                    self.boot_params(nbhd), payload_bytes=512)
                self.broadcasts += 1
            await self.kernel.sleep(BOOT_CYCLE)


class _BootServant:
    def __init__(self, svc: BootBroadcastService):
        self._svc = svc

    async def bootInfo(self, ctx: CallContext, neighborhood: int):
        return self._svc.boot_params(neighborhood)

    async def broadcastCount(self, ctx: CallContext):
        return self._svc.broadcasts


class KernelBroadcastService(Service):
    service_name = "kbs"

    def __init__(self, env, process):
        super().__init__(env, process)
        self._is_primary = False
        self.kernel_broadcasts = 0

    async def start(self) -> None:
        self.ref = self.runtime.export(_KernelServant(self), "KernelBroadcast")
        await self.register_objects([self.ref])
        self.binder = PrimaryBackupBinder(self, "svc/kbs", self.ref,
                                          on_promote=self._on_promote,
                                          on_demote=self._on_demote)
        self.spawn_task(self.binder.run(), name="kbs-binder").detach()

    def _on_promote(self):
        self._is_primary = True
        self.spawn_task(self._broadcast_loop(), name="kbs-broadcast").detach()

    def _on_demote(self):
        self._is_primary = False

    async def _broadcast_loop(self) -> None:
        image = Blob(name="kernel", size=KERNEL_SIZE, version=KERNEL_VERSION,
                     kind="kernel")
        while self._is_primary:
            settops = self.env.cluster.get("settops_by_neighborhood", {})
            all_ips = [ip for ips in settops.values() for ip in ips]
            if all_ips:
                self.env.network.broadcast(
                    self.host.ip, all_ips, KERNEL_PORT, "boot.kernel",
                    {"version": KERNEL_VERSION, "image": image},
                    payload_bytes=KERNEL_SIZE)
                self.kernel_broadcasts += 1
            await self.kernel.sleep(KERNEL_CYCLE)


class _KernelServant:
    def __init__(self, svc: KernelBroadcastService):
        self._svc = svc

    async def kernelVersion(self, ctx: CallContext):
        return KERNEL_VERSION
