"""Base class for OCS services.

Encodes the paper's standard service start-up sequence (section 9.1):
create and export the service object, register it with the local SSC
(``notifyReady``, so the RAS can audit it), and bind it into the cluster
name space -- retrying through name-service start-up races.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.backoff import Backoff
from repro.core.control.registry import ServiceEnv
from repro.core.control.ssc import ssc_ref
from repro.core.naming.client import NameClient
from repro.core.naming.errors import AlreadyBound, NamingError
from repro.ocs.admission import AdmissionGate
from repro.ocs.exceptions import OCSError, ServiceUnavailable
from repro.ocs.objref import ObjectRef
from repro.ocs.runtime import OCSRuntime
from repro.sim.host import Process


class Service:
    """One service process: subclass and override :meth:`start`."""

    #: name space path fragment, e.g. "mms" -> bound under svc/mms
    service_name = "service"

    #: how often a service re-verifies its own name bindings
    BINDING_WATCHDOG_INTERVAL = 15.0

    #: Opt into admission control (PR 4).  True for request-serving
    #: application services (VOD, MDS, MMS, shopping, game, DB); left
    #: False for infrastructure the boot path storms by design (RAS,
    #: RDS, boot service, CSC) where shedding would break start-up.
    ADMISSION_CONTROLLED = False

    def __init__(self, env: ServiceEnv, process: Process):
        self.env = env
        self.process = process
        self.kernel = env.kernel
        self.host = env.host
        self.params = env.params
        self.runtime = OCSRuntime(process, env.network)
        self.names = NameClient(self.runtime, env.ns_ip, env.params)
        # Monitors (repro.chaos) read service state through the process,
        # the same side door the ns replica uses ("ns_replica").
        process.attachments.setdefault("service", self)
        self._replica_bindings: List[dict] = []
        self._watchdog_task = None
        # Per-incarnation substream: retries stay uncorrelated between
        # services (no phase-lock after a mass restart) yet byte-stable
        # across same-seed runs (pids are deterministic).
        self._backoff_rng = env.rng.stream(
            f"backoff-{self.service_name}-{process.pid}")
        if self.ADMISSION_CONTROLLED:
            self.runtime.admission = AdmissionGate(self.service_name,
                                                   self.params)

    def retry_backoff(self, max_elapsed: Optional[float] = None) -> Backoff:
        """A fresh jittered-exponential backoff for one retry loop.

        ``max_elapsed`` caps the loop's *total* sleep time so a retry
        loop with a deadline cannot sleep past its own budget.
        """
        return Backoff(self.params, self._backoff_rng,
                       max_elapsed=max_elapsed)

    async def run(self) -> None:
        """Process main: start, then serve until killed.

        Overload reporting (PR 4) no longer spawns a per-service loop
        here: the SSC scrapes every managed service's admission gauges
        and replica bindings in-process and sends *one* coalesced
        ``reportLoadBatch`` per server per ``load_report_interval``
        (PR 5) -- O(servers) report messages instead of O(services).
        """
        await self.start()
        await self.kernel.create_future()  # park; tasks do the serving

    async def start(self) -> None:
        raise NotImplementedError

    # -- start-up helpers -------------------------------------------------

    async def register_objects(self, refs: List[ObjectRef]) -> None:
        """``notifyReady`` to the local SSC so the RAS can audit us."""
        backoff = self.retry_backoff()
        while True:
            try:
                await self.runtime.invoke(
                    ssc_ref(self.host.ip), "notifyReady",
                    (self.process.pid, refs),
                    timeout=self.params.call_timeout)
                return
            except (ServiceUnavailable, OCSError):
                await self.kernel.sleep(backoff.next_delay())

    async def bind_as_replica(self, context: str, member: str,
                              ref: ObjectRef, selector: str = "sameserver",
                              parent: str = "svc") -> None:
        """Bind into a replicated context as an active replica (section 5.1).

        A stale binding left by this replica's previous incarnation (the
        audit may not have removed it yet) is replaced, but a *live-looking*
        binding on another server is not touched.

        The binding is also re-verified periodically: if the name space
        loses it -- most drastically, every name-service replica dying at
        once and restarting empty -- the service re-creates its contexts
        and re-binds, so the cluster heals without operator action.
        """
        await self._bind_replica_once(context, member, ref, selector, parent)
        self._replica_bindings.append(
            {"context": context, "member": member, "ref": ref,
             "selector": selector, "parent": parent})
        if self._watchdog_task is None or self._watchdog_task.done():
            self._watchdog_task = self.spawn_task(self._binding_watchdog(),
                                                  name="binding-watchdog")

    async def _bind_replica_once(self, context: str, member: str,
                                 ref: ObjectRef, selector: str,
                                 parent: str) -> None:
        path = f"{parent}/{context}" if parent else context
        name = f"{path}/{member}"
        backoff = self.retry_backoff()
        while True:
            try:
                if parent:
                    await self.names.ensure_context(parent)
                await self.names.ensure_context(path, replicated=True,
                                                selector=selector)
            except (NamingError, ServiceUnavailable):
                await self.kernel.sleep(backoff.next_delay())
                continue
            try:
                await self.names.bind(name, ref)
                return
            except AlreadyBound:
                pass
            except (NamingError, ServiceUnavailable):
                await self.kernel.sleep(backoff.next_delay())
                continue
            # Somebody holds the member name.  Our own previous
            # incarnation's stale binding is replaced; a binding on
            # another server is a genuine conflict for the caller.
            try:
                existing = await self.names.resolve(name)
                if existing is not None and existing.ip != self.host.ip:
                    raise AlreadyBound(name)
                await self.names.unbind(name)
                await self.names.bind(name, ref)
                return
            except AlreadyBound:
                raise
            except (NamingError, ServiceUnavailable):
                await self.kernel.sleep(backoff.next_delay())

    async def _binding_watchdog(self) -> None:
        """Re-assert this replica's bindings if the name space lost them."""
        while True:
            await self.kernel.sleep(self.BINDING_WATCHDOG_INTERVAL)
            for binding in list(self._replica_bindings):
                path = (f"{binding['parent']}/{binding['context']}"
                        if binding["parent"] else binding["context"])
                name = f"{path}/{binding['member']}"
                try:
                    existing = await self.names.resolve(name)
                    if existing == binding["ref"]:
                        continue
                except (NamingError, ServiceUnavailable):
                    pass
                try:
                    await self._bind_replica_once(
                        binding["context"], binding["member"], binding["ref"],
                        binding["selector"], binding["parent"])
                    self.emit("binding_reasserted", name=name)
                except AlreadyBound:
                    continue  # another live replica owns the member name

    async def resolve_retrying(self, name: str, give_up_after: float = 120.0,
                               poll: float = 1.0) -> ObjectRef:
        """Resolve a peer service, waiting out start-up ordering races."""
        return await self.names.wait_resolve(name, timeout=give_up_after,
                                             poll=poll)

    def spawn_task(self, coro, name: Optional[str] = None):
        return self.process.create_task(coro, name=name)

    def emit(self, event: str, **fields) -> None:
        self.env.emit(self.service_name, event, **fields)
