"""Settop Manager: "maintains information on settop status (up or down)".

Replicated per neighbourhood (section 5.1's per-neighbourhood style):
each server runs one Settop Manager process that is bound into the name
space under every neighbourhood number assigned to that server.  Settops
report a boot and then heartbeat on their slow uplink; a settop that
misses heartbeats for ``Params.settop_dead_after`` is reported down.

State is volatile and rebuilt from heartbeats after a restart -- the
stateless-server recovery pattern of section 10.1.1.
"""

from __future__ import annotations

from typing import Dict, List

from repro.idl import MethodDef, register_interface
from repro.ocs.runtime import CallContext
from repro.services.base import Service

register_interface("SettopManager", {
    "reportBoot": ("settop_ip",),
    # Acknowledged, so the settop notices a restarted manager (stale
    # reference -> exception -> re-resolve) and its heartbeats rebuild
    # the manager's volatile table.
    "heartbeat": ("settop_ip",),
    # Oneway: the set is powering off and will never await (or even be
    # around to receive) a reply -- the protocol says so, instead of the
    # caller silently detaching a two-way reply (rule P004).
    "reportShutdown": MethodDef("reportShutdown", ("settop_ip",),
                                oneway=True),
    "getStatus": ("settop_ips",),
    "listSettops": (),
    # heartbeat/reportBoot are absolute-value upserts into the liveness
    # table; re-executing a retry reasserts the same fact.
}, doc="Settop liveness tracking (Figure 2)",
   idempotent=("reportBoot", "heartbeat", "getStatus", "listSettops"))


class SettopManagerService(Service):
    service_name = "settopmgr"

    def __init__(self, env, process):
        super().__init__(env, process)
        self._last_seen: Dict[str, float] = {}
        self._shutdown: Dict[str, bool] = {}

    async def start(self) -> None:
        ref = self.runtime.export(_SettopManagerServant(self), "SettopManager")
        await self.register_objects([ref])
        neighborhoods = self.env.cluster.get(
            "neighborhoods_by_server", {}).get(self.host.ip, [])
        for nbhd in neighborhoods:
            await self.bind_as_replica("settopmgr", str(nbhd), ref,
                                       selector="neighborhood")
        # Also reachable per-server for the local RAS.
        await self.bind_as_replica("settopmgr-local", self.host.ip, ref,
                                   selector="sameserver")

    # -- status model -------------------------------------------------------

    def record_alive(self, settop_ip: str) -> None:
        self._last_seen[settop_ip] = self.kernel.now
        self._shutdown[settop_ip] = False

    def record_shutdown(self, settop_ip: str) -> None:
        self._shutdown[settop_ip] = True

    def status_of(self, settop_ip: str) -> str:
        if self._shutdown.get(settop_ip):
            return "down"
        last = self._last_seen.get(settop_ip)
        if last is None:
            return "unknown"
        if self.kernel.now - last > self.params.settop_dead_after:
            return "down"
        return "up"


class _SettopManagerServant:
    def __init__(self, svc: SettopManagerService):
        self._svc = svc

    async def reportBoot(self, ctx: CallContext, settop_ip: str):
        self._svc.record_alive(settop_ip)

    async def heartbeat(self, ctx: CallContext, settop_ip: str):
        self._svc.record_alive(settop_ip)

    async def reportShutdown(self, ctx: CallContext, settop_ip: str):
        self._svc.record_shutdown(settop_ip)

    async def getStatus(self, ctx: CallContext, settop_ips: List[str]):
        return [self._svc.status_of(ip) for ip in settop_ips]

    async def listSettops(self, ctx: CallContext):
        return sorted(ip for ip in self._svc._last_seen
                      if self._svc.status_of(ip) == "up")
