"""Protocol conformance checking (rules P001..P006).

The paper's IDL compiler made a whole class of bugs impossible: a stub
call that names a missing operation or passes the wrong argument count
simply does not compile.  Our reproduction declares interfaces at
runtime (:func:`repro.idl.register_interface`), so a bad call site only
surfaces when a test happens to execute it.  This module restores the
compile-time guarantee statically:

1. :func:`extract_protocol` runs an AST pass over the package source and
   rebuilds every ``register_interface(...)`` declaration -- interface
   name, operations, parameter lists, ``oneway`` flags, and the base
   chain -- into a :class:`ProtocolModel`, without importing anything.

2. The P-rules then classify every ``invoke(ref, "method", args)`` and
   ``proxy.call("method", ...)`` site in the tree against the model:

   - P001: the operation name is not declared by any interface;
   - P002: the literal argument tuple matches no declared arity;
   - P003: the call awaits a reply from a ``oneway`` operation;
   - P004: a two-way call's future is ``.detach()``-ed, silently
     dropping the reply (and any marshalled exception);
   - P005: a function that holds a ``deadline`` budget issues a call
     without propagating it (the flow-sensitive upgrade of D010);
   - P006: a service exports with ``reply_cache=False`` although its
     interface declares two-way operations not marked ``idempotent`` --
     retried calls would re-execute them (PR 9's at-most-once contract).

Sites whose operation name is not a string literal (the rebinding
proxy's own forwarder, the fault injector) are *dynamic*: they cannot be
checked against a signature, but they are still counted, so
``repro lint --stats`` can prove the census covers 100% of call sites.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.engine import FileContext, Rule, Violation, collect_files

#: operation-name arguments that mark an OCS call site.
_INVOKE_ATTR = "invoke"
_PROXY_ATTR = "call"


@dataclass(frozen=True)
class ProtoMethod:
    """One operation as declared in source (the static MethodDef)."""

    name: str
    params: Tuple[str, ...]
    oneway: bool
    interface: str
    idempotent: bool = False


@dataclass
class ProtoInterface:
    """One ``register_interface`` declaration."""

    name: str
    methods: Dict[str, ProtoMethod]
    base: Optional[str]
    path: str
    line: int


class ProtocolModel:
    """Every interface the source tree declares, base chains resolved."""

    def __init__(self, interfaces: Optional[Dict[str, ProtoInterface]] = None):
        self.interfaces: Dict[str, ProtoInterface] = interfaces or {}
        self._candidates: Dict[str, List[ProtoMethod]] = {}

    def add(self, iface: ProtoInterface) -> None:
        self.interfaces[iface.name] = iface
        self._candidates.clear()

    def resolved_methods(self, name: str) -> Dict[str, ProtoMethod]:
        """Operations of interface ``name`` including inherited ones."""
        chain: List[ProtoInterface] = []
        seen = set()
        cur: Optional[str] = name
        while cur is not None and cur in self.interfaces and cur not in seen:
            seen.add(cur)
            chain.append(self.interfaces[cur])
            cur = self.interfaces[cur].base
        merged: Dict[str, ProtoMethod] = {}
        for iface in reversed(chain):
            merged.update(iface.methods)
        return merged

    def candidates(self, method: str) -> List[ProtoMethod]:
        """Every declaration of ``method`` across all interfaces.

        Call sites rarely pin the interface statically (references flow
        through the name service), so a site checks against the union:
        unknown only when *no* interface declares the name, arity-bad
        only when *no* declaration accepts the count.  Conservative by
        construction -- zero false positives at the price of letting a
        cross-interface confusion through (the runtime check still
        catches those).
        """
        if not self._candidates:
            by_name: Dict[str, List[ProtoMethod]] = {}
            for iface_name in sorted(self.interfaces):
                for mdef in self.resolved_methods(iface_name).values():
                    by_name.setdefault(mdef.name, []).append(mdef)
            self._candidates = by_name
        return self._candidates.get(method, [])


# ----------------------------------------------------------------------
# extraction
# ----------------------------------------------------------------------

def _literal_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _literal_params(node: ast.AST) -> Optional[Tuple[str, ...]]:
    if isinstance(node, (ast.Tuple, ast.List)):
        out = []
        for elt in node.elts:
            s = _literal_str(elt)
            if s is None:
                return None
            out.append(s)
        return tuple(out)
    return None


def _parse_methoddef(call: ast.Call, default_name: str,
                     interface: str) -> Optional[ProtoMethod]:
    """Parse a ``MethodDef(name, params, oneway=...)`` literal."""
    name = default_name
    params: Optional[Tuple[str, ...]] = ()
    oneway = False
    idempotent = False
    if call.args:
        name = _literal_str(call.args[0]) or default_name
    if len(call.args) >= 2:
        params = _literal_params(call.args[1])
    for kw in call.keywords:
        if kw.arg == "params":
            params = _literal_params(kw.value)
        elif kw.arg == "oneway":
            if isinstance(kw.value, ast.Constant):
                oneway = bool(kw.value.value)
        elif kw.arg == "idempotent":
            if isinstance(kw.value, ast.Constant):
                idempotent = bool(kw.value.value)
        elif kw.arg == "name":
            name = _literal_str(kw.value) or name
    if params is None:
        return None  # computed params: not statically checkable
    return ProtoMethod(name=name, params=params, oneway=oneway,
                       interface=interface, idempotent=idempotent)


def _extract_from_tree(tree: ast.Module, path: str,
                       model: ProtocolModel) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        fname = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        if fname != "register_interface" or len(node.args) < 2:
            continue
        iface_name = _literal_str(node.args[0])
        if iface_name is None or not isinstance(node.args[1], ast.Dict):
            continue
        base = None
        idempotent_names: Tuple[str, ...] = ()
        for kw in node.keywords:
            if kw.arg == "base":
                base = _literal_str(kw.value)
            elif kw.arg == "idempotent":
                idempotent_names = _literal_params(kw.value) or ()
        methods: Dict[str, ProtoMethod] = {}
        for key, value in zip(node.args[1].keys, node.args[1].values):
            mname = _literal_str(key) if key is not None else None
            if mname is None:
                continue
            if isinstance(value, ast.Call):
                mdef = _parse_methoddef(value, mname, iface_name)
                if mdef is not None:
                    methods[mname] = mdef
            else:
                params = _literal_params(value)
                if params is not None:
                    methods[mname] = ProtoMethod(
                        name=mname, params=params, oneway=False,
                        interface=iface_name)
        for mname in idempotent_names:
            if mname in methods:
                methods[mname] = ProtoMethod(
                    name=methods[mname].name, params=methods[mname].params,
                    oneway=methods[mname].oneway, interface=iface_name,
                    idempotent=True)
        model.add(ProtoInterface(name=iface_name, methods=methods,
                                 base=base, path=path,
                                 line=node.lineno))


def extract_protocol(paths: Sequence[str]) -> ProtocolModel:
    """Build the protocol model from every ``.py`` file under ``paths``."""
    model = ProtocolModel()
    for path in collect_files(paths):
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue  # the lint engine reports E000 for this file
        _extract_from_tree(tree, path, model)
    return model


_DEFAULT_MODEL: Optional[ProtocolModel] = None


def default_model() -> ProtocolModel:
    """The model extracted from the installed ``repro`` package source.

    Cached: the extraction parses the whole tree once per process, and
    the declarations only change when the source on disk does.
    """
    global _DEFAULT_MODEL
    if _DEFAULT_MODEL is None:
        import repro
        _DEFAULT_MODEL = extract_protocol([os.path.dirname(repro.__file__)])
    return _DEFAULT_MODEL


# ----------------------------------------------------------------------
# call-site scanning
# ----------------------------------------------------------------------

@dataclass
class Site:
    """One OCS call site as the scanner classified it."""

    node: ast.Call
    style: str                 # "invoke" | "proxy"
    method: Optional[str]      # literal operation name, None = dynamic
    arity: Optional[int]       # positional argument count, None = unknown
    awaited: bool = False
    detached: bool = False
    has_deadline: bool = False
    has_kwargs: bool = False


def _classify_call(node: ast.Call) -> Optional[Site]:
    if not isinstance(node.func, ast.Attribute):
        return None
    attr = node.func.attr
    if attr == _INVOKE_ATTR:
        if len(node.args) < 2:
            return None  # not the invoke(ref, method, args) shape
        method = _literal_str(node.args[1])
        arity: Optional[int] = 0
        if len(node.args) >= 3:
            args_node = node.args[2]
            if isinstance(args_node, (ast.Tuple, ast.List)) and not any(
                    isinstance(e, ast.Starred) for e in args_node.elts):
                arity = len(args_node.elts)
            else:
                arity = None
        site = Site(node=node, style="invoke", method=method, arity=arity)
    elif attr == _PROXY_ATTR:
        if not node.args:
            return None
        method = _literal_str(node.args[0])
        if method is None and not (isinstance(node.args[0], ast.Name)
                                   and len(node.args) >= 2):
            # An arbitrary `.call(x)` that does not look like the proxy
            # forwarder (`self.call(name, *args, ...)`) is not a site.
            return None
        rest = node.args[1:]
        if any(isinstance(a, ast.Starred) for a in rest):
            arity = None
        else:
            arity = len(rest)
        site = Site(node=node, style="proxy", method=method, arity=arity)
    else:
        return None
    kw = {k.arg for k in site.node.keywords}
    site.has_deadline = "deadline" in kw
    site.has_kwargs = None in kw
    parent = getattr(node, "parent", None)
    site.awaited = isinstance(parent, ast.Await)
    if isinstance(parent, ast.Attribute) and parent.attr == "detach" \
            and isinstance(getattr(parent, "parent", None), ast.Call):
        site.detached = True
    return site


def scan_sites(tree: ast.Module) -> List[Site]:
    """Every OCS call site in one parsed (parent-annotated) module."""
    out = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            site = _classify_call(node)
            if site is not None:
                out.append(site)
    return out


@dataclass
class SiteCoverage:
    """The census ``repro lint --stats`` reports: every site classified.

    ``checked`` sites carry a literal operation name and were validated
    against the model; ``dynamic`` sites forward a computed name (the
    rebinding proxy, the fault injector) and fall back to the runtime
    check.  checked + dynamic == total is the 100%-coverage invariant.
    """

    total: int = 0
    checked: int = 0
    dynamic: int = 0
    by_style: Dict[str, int] = field(default_factory=dict)

    def note(self, site: Site) -> None:
        self.total += 1
        self.by_style[site.style] = self.by_style.get(site.style, 0) + 1
        if site.method is None:
            self.dynamic += 1
        else:
            self.checked += 1

    @property
    def classified(self) -> int:
        return self.checked + self.dynamic

    def to_dict(self) -> Dict[str, object]:
        return {"total_sites": self.total, "checked": self.checked,
                "dynamic": self.dynamic,
                "by_style": dict(sorted(self.by_style.items())),
                "coverage": 1.0 if self.total == 0
                else self.classified / self.total}

    def stats_lines(self) -> List[str]:
        pct = 100.0 if self.total == 0 else 100.0 * self.classified / self.total
        styles = ", ".join(f"{k}={v}" for k, v in
                           sorted(self.by_style.items()))
        return ["== protocol call-site coverage ==",
                f"  {self.classified}/{self.total} sites classified "
                f"({pct:.1f}%): {self.checked} checked against the model, "
                f"{self.dynamic} dynamic",
                f"  by style: {styles or '(none)'}"]


# ----------------------------------------------------------------------
# the rules
# ----------------------------------------------------------------------

class _ProtocolRule(Rule):
    """Base for P-rules: shares the model and skips test files."""

    def __init__(self, model: Optional[ProtocolModel] = None):
        self._model = model

    @property
    def model(self) -> ProtocolModel:
        if self._model is None:
            self._model = default_model()
        return self._model

    def _exempt(self, ctx: FileContext) -> bool:
        return os.path.basename(ctx.relpath).startswith("test_")

    def sites(self, tree: ast.Module) -> List[Site]:
        return scan_sites(tree)


class UnknownOperationRule(_ProtocolRule):
    rule_id = "P001"
    title = "call sites must name a declared operation"
    rationale = ("An operation name no interface declares fails only at "
                 "runtime (NoSuchMethod through the future); the IDL "
                 "compiler the paper relied on rejected it at build time.")

    def __init__(self, model: Optional[ProtocolModel] = None,
                 coverage: Optional[SiteCoverage] = None):
        super().__init__(model)
        self.coverage = coverage

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterable[Violation]:
        out = []
        exempt = self._exempt(ctx)
        for site in self.sites(tree):
            if self.coverage is not None and not exempt:
                self.coverage.note(site)
            if exempt or site.method is None:
                continue
            if not self.model.candidates(site.method):
                out.append(self.violation(
                    ctx, site.node,
                    f"operation {site.method!r} is not declared by any "
                    "registered interface"))
        return out


class ArityMismatchRule(_ProtocolRule):
    rule_id = "P002"
    title = "argument counts must match a declared signature"
    rationale = ("MethodDef.check_args raises SignatureError at call "
                 "time; checking the literal argument tuple statically "
                 "moves the failure to lint time, like IDL stubs did.")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterable[Violation]:
        if self._exempt(ctx):
            return []
        out = []
        for site in self.sites(tree):
            if site.method is None or site.arity is None:
                continue
            cands = self.model.candidates(site.method)
            if not cands:
                continue  # P001's problem
            if any(len(c.params) == site.arity for c in cands):
                continue
            expect = sorted({len(c.params) for c in cands})
            decls = ", ".join(sorted({f"{c.interface}.{c.name}"
                                      f"({', '.join(c.params)})"
                                      for c in cands}))
            out.append(self.violation(
                ctx, site.node,
                f"{site.method!r} called with {site.arity} argument(s) "
                f"but declared with {'/'.join(map(str, expect))}: {decls}"))
        return out


class AwaitOnewayRule(_ProtocolRule):
    rule_id = "P003"
    title = "oneway operations have no reply to await"
    rationale = ("A oneway invocation's future resolves immediately -- "
                 "awaiting it suggests the caller expects delivery "
                 "confirmation that the protocol never sends.")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterable[Violation]:
        if self._exempt(ctx):
            return []
        out = []
        for site in self.sites(tree):
            if site.method is None or not site.awaited:
                continue
            cands = self.model.candidates(site.method)
            if cands and all(c.oneway for c in cands):
                out.append(self.violation(
                    ctx, site.node,
                    f"awaiting oneway operation {site.method!r}: the reply "
                    "future resolves immediately and confirms nothing; "
                    "send and move on (or make the operation two-way)"))
        return out


class DetachedReplyRule(_ProtocolRule):
    rule_id = "P004"
    title = "two-way replies must not be detached"
    rationale = ("`.detach()` on a two-way call discards the reply and "
                 "any marshalled exception -- failures become silent.  "
                 "Await the future, or declare the operation oneway so "
                 "the protocol itself says no reply is coming.")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterable[Violation]:
        if self._exempt(ctx):
            return []
        out = []
        for site in self.sites(tree):
            if site.method is None or not site.detached:
                continue
            cands = self.model.candidates(site.method)
            if cands and not any(c.oneway for c in cands):
                out.append(self.violation(
                    ctx, site.node,
                    f"reply of two-way operation {site.method!r} is "
                    "detached; await it or declare the operation oneway"))
        return out


class DeadlinePropagationRule(_ProtocolRule):
    rule_id = "P005"
    title = "a held deadline budget must be propagated"
    rationale = ("A function that received (or computed) a `deadline` "
                 "and then invokes without passing it breaks the "
                 "propagation chain D010 exists for: downstream servers "
                 "keep working on a budget that upstream already "
                 "started, so expiry stops being end-to-end.  "
                 "Flow-sensitive upgrade of D010.")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterable[Violation]:
        if self._exempt(ctx):
            return []
        out: List[Violation] = []
        for scope in ast.walk(tree):
            if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not self._holds_deadline(scope):
                continue
            for site in self._own_sites(scope):
                if site.has_deadline or site.has_kwargs:
                    continue
                out.append(self.violation(
                    ctx, site.node,
                    f"`{scope.name}` holds a `deadline` budget but this "
                    "call does not propagate it; pass `deadline=` so the "
                    "budget stays end-to-end"))
        return out

    def _holds_deadline(self, scope: ast.AST) -> bool:
        args = scope.args
        names = [a.arg for a in args.args + args.kwonlyargs
                 + getattr(args, "posonlyargs", [])]
        if "deadline" in names:
            return True
        for node in self._own_nodes(scope):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == "deadline":
                        return True
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(node.target, ast.Name) \
                        and node.target.id == "deadline":
                    return True
        return False

    def _own_nodes(self, scope: ast.AST) -> Iterable[ast.AST]:
        """Walk ``scope`` without descending into nested function scopes
        (a nested function's `deadline` is its own budget, not ours)."""
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def _own_sites(self, scope: ast.AST) -> List[Site]:
        out = []
        for node in self._own_nodes(scope):
            if isinstance(node, ast.Call):
                site = _classify_call(node)
                if site is not None:
                    out.append(site)
        out.sort(key=lambda s: (s.node.lineno, s.node.col_offset))
        return out


class UncachedDispatchRule(_ProtocolRule):
    rule_id = "P006"
    title = "non-idempotent two-way operations need the reply cache"
    rationale = ("`export(..., reply_cache=False)` turns at-most-once "
                 "dedup off for the whole servant; any two-way operation "
                 "not declared `idempotent=True` then re-executes on a "
                 "duplicated or retried envelope -- the double-order/"
                 "double-score bug PR 9's reply cache exists to prevent.  "
                 "Declare the operations idempotent (and make them so), "
                 "or keep the cache on.")

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterable[Violation]:
        if self._exempt(ctx):
            return []
        out = []
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "export"):
                continue
            opted_out = any(
                kw.arg == "reply_cache"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is False
                for kw in node.keywords)
            if not opted_out or len(node.args) < 2:
                continue
            iface = _literal_str(node.args[1])
            if iface is None or iface not in self.model.interfaces:
                continue
            unsafe = sorted(
                m.name for m in self.model.resolved_methods(iface).values()
                if not m.oneway and not m.idempotent)
            if unsafe:
                out.append(self.violation(
                    ctx, node,
                    f"export of {iface!r} with reply_cache=False, but "
                    f"{', '.join(unsafe)} are two-way and not declared "
                    "idempotent; retried envelopes would re-execute them"))
        return out


def protocol_rules(model: Optional[ProtocolModel] = None) -> List[Rule]:
    """The P-rule set, sharing one model and one coverage census."""
    coverage = SiteCoverage()
    return [UnknownOperationRule(model, coverage), ArityMismatchRule(model),
            AwaitOnewayRule(model), DetachedReplyRule(model),
            DeadlinePropagationRule(model), UncachedDispatchRule(model)]
